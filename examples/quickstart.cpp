// Quickstart: bring up a 3-process system, A-broadcast a handful of
// messages with each algorithm and print the delivery logs plus the
// measured latency — the "hello world" of the library.
#include <cstdio>

#include "core/experiment.hpp"

using namespace fdgm;

namespace {

void demo(core::Algorithm algo) {
  core::SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 3;
  cfg.lambda = 1.0;
  cfg.seed = 42;

  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 50.0});
  run.start();
  run.run_until(500.0);  // half a simulated second

  std::printf("--- %s algorithm, n=3, lambda=1, T=50/s ---\n",
              core::algorithm_name(algo));
  std::printf("broadcast: %zu messages, delivered everywhere first at mean latency %.2f ms\n",
              run.recorder().total_broadcast(),
              run.recorder().window_stats(0.0, 500.0).mean());
  for (int p = 0; p < cfg.n; ++p)
    std::printf("process %d delivered %llu messages\n", p,
                static_cast<unsigned long long>(run.proc(p).delivered_count()));
}

}  // namespace

int main() {
  std::printf("fdgm-abcast quickstart: two uniform atomic broadcast algorithms\n");
  std::printf("(reproduction of Urban, Shnayderman, Schiper; DSN 2003)\n\n");
  demo(core::Algorithm::kFd);
  demo(core::Algorithm::kGm);
  return 0;
}
