// Reproduces Figure 1 of the paper: the message exchange of a single
// A-broadcast under both algorithms, with neither crashes nor suspicions.
// The two algorithms generate the same pattern:
//     m (multicast) ; proposal/seqnum (multicast) ; acks (unicasts) ;
//     decision/deliver (multicast)
// This example prints every network delivery with its timestamp so the
// pattern (and its equality across the algorithms) is visible.
#include <cstdio>
#include <memory>
#include <vector>

#include "abcast/fd_abcast.hpp"
#include "abcast/gm_abcast.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"

using namespace fdgm;

namespace {

/// Prints every local A-delivery with its latency.
struct DeliveryPrinter final : abcast::DeliverSink {
  net::System* sys = nullptr;
  net::ProcessId id = 0;
  void on_deliver(const abcast::AppMessage& msg) override {
    std::printf("  t=%5.1f ms   A-deliver(m) at p%d  (latency %.1f ms)\n", sys->now(), id,
                sys->now() - msg.sent_at);
  }
};

template <typename Proc>
void trace(const char* name) {
  std::printf("--- %s algorithm: A-broadcast(m) at p1, n = 3, lambda = 1 ---\n", name);
  net::System sys(3, {}, 1);
  fd::QosFailureDetectorModel fdm(sys, {});
  std::vector<std::unique_ptr<Proc>> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(std::make_unique<Proc>(sys, i, fdm.at(i)));
  fdm.start();

  sys.network().set_delivery_tap([&](const net::Message& m, net::ProcessId dst) {
    const char* proto = "?";
    switch (m.proto) {
      case net::ProtocolId::kReliableBroadcast:
        proto = "rbcast";
        break;
      case net::ProtocolId::kConsensus:
        proto = "consensus";
        break;
      case net::ProtocolId::kAtomicBroadcast:
        proto = "abcast";
        break;
      default:
        break;
    }
    std::printf("  t=%5.1f ms   p%d -> p%d   [%s]%s\n", sys.now(), m.src, dst, proto,
                m.dst == net::kBroadcast ? " (multicast)" : "");
  });

  std::vector<DeliveryPrinter> printers(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    printers[i].sys = &sys;
    printers[i].id = procs[i]->id();
    procs[i]->set_deliver_sink(&printers[i]);
  }

  procs[1]->a_broadcast();
  sys.scheduler().run();
  std::printf("  wire slots used: %llu\n\n",
              static_cast<unsigned long long>(sys.network().network_uses()));
}

}  // namespace

int main() {
  std::printf("Figure 1 trace: example run of the two atomic broadcast algorithms\n\n");
  trace<abcast::FdAbcastProcess>("FD (Chandra-Toueg)");
  trace<abcast::GmAbcastProcess>("GM (fixed sequencer)");
  return 0;
}
