// Demonstrates the paper's headline qualitative result (Figs. 6/7): under
// wrong failure suspicions the failure-detector based algorithm degrades
// gracefully while the group-membership based algorithm pays view changes,
// exclusions and rejoins.  Prints a side-by-side latency table and the
// number of views the GM group went through.
#include <cstdio>

#include "abcast/gm_abcast.hpp"
#include "core/runner.hpp"

using namespace fdgm;

int main() {
  std::printf("Suspicion storm: latency under wrong suspicions (n=3, T=10/s, TM=0)\n\n");
  std::printf("%12s %14s %14s\n", "TMR [ms]", "FD [ms]", "GM [ms]");
  for (double tmr : {20.0, 50.0, 200.0, 1000.0, 5000.0}) {
    fd::QosParams qp;
    qp.wrong_suspicions = true;
    qp.mistake_recurrence = tmr;
    qp.mistake_duration = 0.0;

    core::SteadyConfig sc;
    sc.throughput = 10.0;
    sc.samples = 120;
    sc.replicas = 3;
    sc.min_window_ms = std::min(15.0 * tmr, 15000.0);

    core::SimConfig fd_cfg;
    fd_cfg.n = 3;
    fd_cfg.seed = 3;
    fd_cfg.fd_params = qp;
    fd_cfg.algorithm = core::Algorithm::kFd;
    core::SimConfig gm_cfg = fd_cfg;
    gm_cfg.algorithm = core::Algorithm::kGm;

    const auto fd = core::run_steady(fd_cfg, sc);
    const auto gm = core::run_steady(gm_cfg, sc);
    auto fmt = [](const core::PointResult& r) {
      static char buf[2][32];
      static int i = 0;
      char* b = buf[i ^= 1];
      if (!r.stable)
        std::snprintf(b, 32, "unstable");
      else
        std::snprintf(b, 32, "%.2f", r.latency.mean);
      return b;
    };
    std::printf("%12.0f %14s %14s\n", tmr, fmt(fd), fmt(gm));
  }

  // Show the mechanism: count view changes in one GM run.
  std::printf("\nwhy: one 10-second GM run at TMR = 200 ms goes through this many views:\n");
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 200.0;
  net::System sys(3, {}, 5);
  fd::QosFailureDetectorModel fdm(sys, qp);
  std::vector<std::unique_ptr<abcast::GmAbcastProcess>> procs;
  for (int i = 0; i < 3; ++i)
    procs.push_back(std::make_unique<abcast::GmAbcastProcess>(sys, i, fdm.at(i)));
  fdm.start();
  sys.scheduler().run_until(10000.0);
  std::printf("  views installed at p0: %llu (every one of them froze the data plane,\n"
              "  exchanged unstable messages and ran a consensus)\n",
              static_cast<unsigned long long>(procs[0]->membership().views_installed()));
  return 0;
}
