// Active replication (paper §5.1): a key-value service replicated with
// atomic broadcast.  Clients send requests through A-broadcast; every
// replica applies them in delivery order, so the replicas stay identical
// and the client-observable response time tracks the latency metric L
// (time to the *first* delivery).
//
// The example runs the same request stream over both algorithms, verifies
// replica-state convergence, then crashes the coordinator/sequencer and
// shows that the service keeps operating.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace fdgm;

namespace {

/// A trivial deterministic state machine: counters keyed by client id.
struct Replica {
  std::map<int, int> counters;
  std::uint64_t applied = 0;

  void apply(const abcast::AppMessage& request) {
    counters[request.id.origin] += static_cast<int>(request.id.seq % 7 + 1);
    ++applied;
  }

  [[nodiscard]] std::string digest() const {
    std::string d;
    for (const auto& [k, v] : counters) d += std::to_string(k) + ":" + std::to_string(v) + ";";
    return d;
  }
};

/// Applies each delivery to one replica and keeps feeding the run's
/// latency recorder (replacing the sink SimRun installs by default).
struct ReplicaSink final : abcast::DeliverSink {
  Replica* replica = nullptr;
  core::SimRun* run = nullptr;
  void on_deliver(const abcast::AppMessage& m) override {
    replica->apply(m);
    run->recorder().on_deliver(m, run->system().now());
  }
};

void run_service(core::Algorithm algo) {
  std::printf("--- replicated counter service over %s atomic broadcast ---\n",
              core::algorithm_name(algo));
  core::SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 3;
  cfg.seed = 7;
  cfg.fd_params.detection_time = 20.0;

  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 120.0});
  std::vector<Replica> replicas(3);
  std::vector<ReplicaSink> sinks(3);
  util::RunningStats response_time;
  for (int p = 0; p < 3; ++p) {
    auto& sink = sinks[static_cast<std::size_t>(p)];
    sink.replica = &replicas[static_cast<std::size_t>(p)];
    sink.run = &run;
    run.proc(p).set_deliver_sink(&sink);
  }
  run.start();

  run.run_until(1000.0);
  std::printf("  t=1000 ms: %llu requests applied at replica 0\n",
              static_cast<unsigned long long>(replicas[0].applied));

  // Crash the coordinator/sequencer: the service must keep going.
  run.system().crash(0);
  std::printf("  t=1000 ms: p0 (coordinator/sequencer) crashes\n");
  run.run_until(2700.0);
  run.workload().stop();  // drain so the replicas can be compared
  run.run_until(3000.0);

  const auto stats = run.recorder().window_stats(0.0, 2800.0);
  std::printf("  t=3000 ms: replica1 applied %llu, replica2 applied %llu\n",
              static_cast<unsigned long long>(replicas[1].applied),
              static_cast<unsigned long long>(replicas[2].applied));
  std::printf("  state digests equal: %s\n",
              replicas[1].digest() == replicas[2].digest() ? "yes" : "NO!");
  std::printf("  mean response latency: %.2f ms (min %.2f, max %.2f)\n\n", stats.mean(),
              stats.min(), stats.max());
}

}  // namespace

int main() {
  std::printf("Active replication demo (paper §5.1)\n\n");
  run_service(core::Algorithm::kFd);
  run_service(core::Algorithm::kGm);
  return 0;
}
