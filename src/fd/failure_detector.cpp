#include "fd/failure_detector.hpp"

#include <algorithm>

namespace fdgm::fd {

std::vector<net::ProcessId> FailureDetector::suspected() const {
  std::vector<net::ProcessId> out;
  for (std::size_t i = 0; i < suspected_.size(); ++i)
    if (suspected_[i]) out.push_back(static_cast<net::ProcessId>(i));
  return out;
}

void FailureDetector::remove_listener(SuspicionListener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l), listeners_.end());
}

void FailureDetector::set_suspected(net::ProcessId p, bool s) {
  auto idx = static_cast<std::size_t>(p);
  if (suspected_.at(idx) == s) return;
  suspected_[idx] = s;
  if (s) ++edges_;
  // Copy: a listener callback may add/remove listeners while we iterate.
  // The scratch buffer is stolen (not aliased) so that a re-entrant edge
  // from inside a callback simply falls back to a fresh buffer.
  std::vector<SuspicionListener*> snapshot = std::move(snapshot_);
  snapshot.assign(listeners_.begin(), listeners_.end());
  for (auto* l : snapshot) {
    if (std::find(listeners_.begin(), listeners_.end(), l) == listeners_.end()) continue;
    if (s)
      l->on_suspect(p);
    else
      l->on_trust(p);
  }
  snapshot_ = std::move(snapshot);  // return the capacity to the scratch
}

}  // namespace fdgm::fd
