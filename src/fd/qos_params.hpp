// Quality-of-service parameters of the failure detectors, after
// Chen, Toueg, Aguilera (IEEE ToC 2002) as used in paper §6.2:
//
//   TD  — detection time: elapses between a crash and the moment every
//         monitoring process suspects it permanently (constant),
//   TMR — mistake recurrence time: start-to-start gap between two wrong
//         suspicions of a correct process (exponential),
//   TM  — mistake duration: how long a wrong suspicion lasts (exponential).
//
// All failure-detector modules are independent and identically distributed
// (one module per ordered process pair), exactly as the paper assumes.
#pragma once

namespace fdgm::fd {

struct QosParams {
  /// TD in ms.  Applied identically by every monitoring process.
  double detection_time = 0.0;

  /// Enables the wrong-suspicion renewal process (suspicion-steady runs).
  bool wrong_suspicions = false;

  /// Mean of the exponential TMR, in ms.  Only used when
  /// wrong_suspicions is true.
  double mistake_recurrence = 1e9;

  /// Mean of the exponential TM, in ms.  A mean of 0 produces point
  /// mistakes: suspect immediately followed by trust (paper Fig. 6).
  double mistake_duration = 0.0;
};

}  // namespace fdgm::fd
