// Drives all failure-detector modules from the QoS parameters (paper §6.2):
//
//  * crash of p at time t  →  every q suspects p permanently at t + TD
//    (unless p restarted before the detection fired);
//  * restart of p at time t →  every q trusts p again at t + TD (recovery
//    is detected with the same delay as a crash) and the wrong-suspicion
//    renewal process of the pair resumes;
//  * wrong suspicions of a correct p at q follow a renewal process: mistake
//    starts are spaced Exp(TMR) apart, each mistake lasts Exp(TM).
//
// Each ordered pair (q monitors p) owns an independent RNG sub-stream, so
// modules are independent and identically distributed, and the schedule of
// pair (q,p) is invariant to what other pairs do.
//
// The fault injector can additionally *force* suspicions (correlated
// suspicion storms) through inject_suspicion(); forced suspicions share
// the mistake-release bookkeeping, so overlapping storms and renewal
// mistakes extend each other instead of releasing early.
//
// Gray failures modulate the QoS parameters per node (set_clock_rate /
// set_limp_factor, driven by the Injector's drift and limp windows):
//
//  * a drifted node's clock runs at `rate`× real speed.  A slow *target*
//    (rate < 1) sends heartbeats late, so monitors wrongly suspect it
//    more often (TMR ×rate) and for longer (TM /rate); a fast *monitor*
//    times out early, suspecting everyone more often (TMR /rate) but
//    clearing sooner (TM /rate), and detects crashes/recoveries sooner
//    (TD /rate);
//  * a limping node's heartbeat send/receive processing queues behind
//    its stretched CPU: as a target it looks like a slow clock (TMR
//    /factor, TM ×factor), as a monitor it detects late (TD ×factor).
//
// All factors default to 1.0, and the scalings are pure multiplies /
// divides — exactly neutral at 1.0 (x * 1.0 == x bit-for-bit) and
// consuming no extra RNG draws, so a schedule without gray events
// reproduces the golden hashes unchanged.  Already-scheduled renewal
// events keep their original times; draws made after a window opens see
// the new factors (the same lag semantics as the CPU stretch).
#pragma once

#include <memory>
#include <vector>

#include "fd/failure_detector.hpp"
#include "fd/qos_params.hpp"
#include "net/system.hpp"
#include "sim/rng.hpp"

namespace fdgm::fd {

class QosFailureDetectorModel {
 public:
  QosFailureDetectorModel(net::System& sys, QosParams params);

  QosFailureDetectorModel(const QosFailureDetectorModel&) = delete;
  QosFailureDetectorModel& operator=(const QosFailureDetectorModel&) = delete;

  /// The failure-detector module of process q.
  [[nodiscard]] FailureDetector& at(net::ProcessId q) {
    return *fds_.at(static_cast<std::size_t>(q));
  }

  [[nodiscard]] const QosParams& params() const { return params_; }

  /// Launch the wrong-suspicion renewal processes (no-op unless
  /// params.wrong_suspicions).  Call once, before running the simulation.
  void start();

  /// Force q to suspect p until `until` (fault injection: suspicion
  /// storms).  No-op when either process is crashed or p's crash has been
  /// detected; the suspicion releases at `until` unless a renewal mistake
  /// or a later storm extended the window.
  void inject_suspicion(net::ProcessId q, net::ProcessId p, sim::Time until);

  /// Gray-failure knobs (see the header comment).  1.0 = nominal, exactly
  /// neutral.  Both must be > 0.
  void set_clock_rate(net::ProcessId p, double rate);
  void set_limp_factor(net::ProcessId p, double factor);
  [[nodiscard]] double clock_rate(net::ProcessId p) const {
    return clock_rate_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] double limp_factor(net::ProcessId p) const {
    return limp_.at(static_cast<std::size_t>(p));
  }

 private:
  /// Per ordered pair (q monitors p).  The pair's RNG engine is lazy:
  /// constructing n^2 mt19937_64 engines up front dominated setup time at
  /// large n (~40% of a quick n=128 run), yet most pairs draw zero or one
  /// variate (none at all when wrong_suspicions is off).  pair_draw forks
  /// the engine from base_ with the pair's original tag on first use —
  /// the streams are bit-identical to the eager layout — and only
  /// persists it on the second draw (a one-shot draw uses a stack-local
  /// engine and just counts the consumption for a later replay).
  struct PairState {
    std::unique_ptr<sim::Rng> engine;  // null until the second draw
    std::uint32_t draws = 0;           // variates consumed pre-persist
    bool crashed_permanent = false;    // p crashed; suspicion is final
    sim::Time suspect_until = 0.0;     // end of the latest mistake window
    /// Generation of the renewal chain: a pending next-mistake callback
    /// whose epoch is stale (the pair was reset by a crash/recovery)
    /// dies silently, so restarts never double the mistake rate.
    std::uint64_t epoch = 0;
  };

  void on_crash(net::ProcessId p, sim::Time when);
  void on_recover(net::ProcessId p, sim::Time when);
  /// Single funnel for every suspect/trust flip: applies the flip to q's
  /// module and reports the *transition* (state actually changed) to the
  /// armed observer's QoS meter.  All set_suspected call sites go through
  /// here so the measured T_D / T_M / T_MR see every edge exactly once.
  void set_suspected_observed(net::ProcessId q, net::ProcessId p, bool suspected);
  void schedule_next_mistake(net::ProcessId q, net::ProcessId p, sim::Time from);
  void schedule_release(net::ProcessId q, net::ProcessId p, sim::Time until);
  /// (Re)start the renewal chain of (q, p) from `from`.
  void restart_renewal(net::ProcessId q, net::ProcessId p, sim::Time from);
  /// Monitor q's effective crash/recovery detection delay:
  /// TD × limp(q) / clock_rate(q).
  [[nodiscard]] double detect_delay(net::ProcessId q) const {
    return params_.detection_time * limp_.at(static_cast<std::size_t>(q)) /
           clock_rate_.at(static_cast<std::size_t>(q));
  }
  PairState& pair(net::ProcessId q, net::ProcessId p);
  /// Exponential variate from (q, p)'s lazily materialized sub-stream.
  double pair_draw(PairState& st, net::ProcessId q, net::ProcessId p, double mean);

  net::System* sys_;
  QosParams params_;
  /// Parent stream the per-pair engines fork from (fork is const — safe
  /// from concurrent partition workers under the parallel backend).
  sim::Rng base_;
  std::vector<std::unique_ptr<FailureDetector>> fds_;
  std::vector<PairState> pairs_;  // n*n, row = monitor q, col = target p
  /// Per-node gray factors (1.0 = nominal; see the header comment).
  std::vector<double> clock_rate_;
  std::vector<double> limp_;
  bool started_ = false;
};

}  // namespace fdgm::fd
