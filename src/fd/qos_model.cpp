#include "fd/qos_model.hpp"

#include <stdexcept>

namespace fdgm::fd {

QosFailureDetectorModel::QosFailureDetectorModel(net::System& sys, QosParams params)
    : sys_(&sys), params_(params) {
  if (params_.detection_time < 0)
    throw std::invalid_argument("QosFailureDetectorModel: negative TD");
  if (params_.wrong_suspicions && params_.mistake_recurrence <= 0)
    throw std::invalid_argument("QosFailureDetectorModel: TMR must be positive");
  if (params_.mistake_duration < 0)
    throw std::invalid_argument("QosFailureDetectorModel: negative TM");

  const int n = sys.n();
  fds_.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) fds_.push_back(std::make_unique<FailureDetector>(q, n));

  pairs_.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  sim::Rng base = sys.rng().fork("fd-qos-model");
  for (int q = 0; q < n; ++q)
    for (int p = 0; p < n; ++p)
      pairs_.push_back(PairState{
          base.fork(static_cast<std::uint64_t>(q) * static_cast<std::uint64_t>(n) +
                    static_cast<std::uint64_t>(p)),
          false});

  sys.add_crash_listener([this](net::ProcessId p, sim::Time t) { on_crash(p, t); });
}

QosFailureDetectorModel::PairState& QosFailureDetectorModel::pair(net::ProcessId q,
                                                                  net::ProcessId p) {
  return pairs_.at(static_cast<std::size_t>(q) * static_cast<std::size_t>(sys_->n()) +
                   static_cast<std::size_t>(p));
}

void QosFailureDetectorModel::on_crash(net::ProcessId p, sim::Time when) {
  for (net::ProcessId q : sys_->all()) {
    if (q == p) continue;
    sys_->scheduler().schedule_at(when + params_.detection_time, [this, q, p] {
      pair(q, p).crashed_permanent = true;
      if (sys_->node(q).crashed()) return;  // a dead monitor notifies nobody
      at(q).set_suspected(p, true);
    });
  }
}

void QosFailureDetectorModel::start() {
  if (started_) return;
  started_ = true;
  if (!params_.wrong_suspicions) return;
  for (net::ProcessId q : sys_->all())
    for (net::ProcessId p : sys_->all())
      if (q != p) schedule_next_mistake(q, p, sys_->now());
}

void QosFailureDetectorModel::schedule_next_mistake(net::ProcessId q, net::ProcessId p,
                                                    sim::Time from) {
  const double gap = pair(q, p).rng.exponential(params_.mistake_recurrence);
  sys_->scheduler().schedule_at(from + gap, [this, q, p] {
    PairState& st = pair(q, p);
    // A permanently suspected (crashed) target ends the renewal process;
    // so does the crash of the monitoring process itself.
    if (st.crashed_permanent || sys_->node(q).crashed() || sys_->node(p).crashed()) return;

    const sim::Time start = sys_->now();
    const double duration = st.rng.exponential(params_.mistake_duration);
    at(q).set_suspected(p, true);

    // End of this mistake.  Overlapping mistakes (next start before this
    // end) keep the pair suspected: the trust event only fires when no
    // later mistake extended the suspicion window.
    const sim::Time until = start + duration;
    if (st.suspect_until < until) st.suspect_until = until;
    sys_->scheduler().schedule_at(until, [this, q, p, until] {
      PairState& s2 = pair(q, p);
      if (s2.crashed_permanent) return;
      if (until < s2.suspect_until) return;  // a later mistake extended it
      at(q).set_suspected(p, false);
    });

    schedule_next_mistake(q, p, start);
  });
}

}  // namespace fdgm::fd
