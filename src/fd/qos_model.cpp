#include "fd/qos_model.hpp"

#include <stdexcept>

#include "obs/observer.hpp"

namespace fdgm::fd {

QosFailureDetectorModel::QosFailureDetectorModel(net::System& sys, QosParams params)
    : sys_(&sys), params_(params), base_(sys.rng().fork("fd-qos-model")) {
  if (params_.detection_time < 0)
    throw std::invalid_argument("QosFailureDetectorModel: negative TD");
  if (params_.wrong_suspicions && params_.mistake_recurrence <= 0)
    throw std::invalid_argument("QosFailureDetectorModel: TMR must be positive");
  if (params_.mistake_duration < 0)
    throw std::invalid_argument("QosFailureDetectorModel: negative TM");

  const int n = sys.n();
  fds_.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) fds_.push_back(std::make_unique<FailureDetector>(q, n));

  // Pair engines are forked lazily on first draw (see pair_draw): eagerly
  // seeding n^2 mt19937_64 engines dominated setup at large n.
  pairs_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  clock_rate_.assign(static_cast<std::size_t>(n), 1.0);
  limp_.assign(static_cast<std::size_t>(n), 1.0);

  sys.add_crash_listener([this](net::ProcessId p, sim::Time t) { on_crash(p, t); });
  sys.add_recovery_listener([this](net::ProcessId p, sim::Time t) { on_recover(p, t); });
}

QosFailureDetectorModel::PairState& QosFailureDetectorModel::pair(net::ProcessId q,
                                                                  net::ProcessId p) {
  return pairs_.at(static_cast<std::size_t>(q) * static_cast<std::size_t>(sys_->n()) +
                   static_cast<std::size_t>(p));
}

double QosFailureDetectorModel::pair_draw(PairState& st, net::ProcessId q, net::ProcessId p,
                                          double mean) {
  // Mirrors Rng::exponential's mean <= 0 contract, which consumes no
  // engine state — so `draws` counts exactly the consuming draws.
  if (mean <= 0.0) return 0.0;
  if (st.engine == nullptr) {
    const std::uint64_t tag = static_cast<std::uint64_t>(q) *
                                  static_cast<std::uint64_t>(sys_->n()) +
                              static_cast<std::uint64_t>(p);
    if (st.draws == 0) {
      // First draw: a stack-local engine avoids persisting state for the
      // (common) pairs that only ever draw once.
      sim::Rng tmp = base_.fork(tag);
      st.draws = 1;
      return tmp.exponential(mean);
    }
    // Second draw: persist the engine and replay the consumed prefix.
    // exponential_distribution's engine consumption is independent of the
    // mean, so replaying with mean 1 reproduces the stream position.
    st.engine = std::make_unique<sim::Rng>(base_.fork(tag));
    for (std::uint32_t i = 0; i < st.draws; ++i) (void)st.engine->exponential(1.0);
  }
  return st.engine->exponential(mean);
}

void QosFailureDetectorModel::on_crash(net::ProcessId p, sim::Time when) {
  for (net::ProcessId q : sys_->all()) {
    if (q == p) continue;
    // Owned by the monitor q: the detection event only touches q's pair
    // row and q's module, so it runs on q's partition under kParallel.
    sys_->scheduler().schedule_at_owned(q, when + detect_delay(q), [this, q, p] {
      PairState& st = pair(q, p);
      // Monitors observe p's state with lag TD: the heartbeat gap of the
      // crash is seen even when p restarted in the meantime.  A still-dead
      // p is suspected permanently; a restarted p is suspected until its
      // recovery is detected (on_recover schedules the trust edge at
      // restart + TD, which is strictly later than this event).
      if (sys_->node(p).crashed()) st.crashed_permanent = true;
      if (sys_->node(q).crashed()) return;  // a dead monitor notifies nobody
      if (auto* o = sys_->obs()) o->count(q, obs::Counter::kSuspicions, sys_->now());
      set_suspected_observed(q, p, true);
    });
  }
}

void QosFailureDetectorModel::on_recover(net::ProcessId p, sim::Time when) {
  // Every monitor detects the recovery with the same delay TD as a crash.
  const std::uint64_t incarnation = sys_->node(p).incarnation();
  for (net::ProcessId q : sys_->all()) {
    if (q == p) continue;
    // The crash's heartbeat-gap suspicion (see on_crash) lasts until the
    // recovery is detected; stretch the pair's window so that a mistake
    // release scheduled earlier cannot end it prematurely.
    PairState& st = pair(q, p);
    if (st.suspect_until < when + detect_delay(q))
      st.suspect_until = when + detect_delay(q);
    sys_->scheduler().schedule_at_owned(q, when + detect_delay(q),
                                        [this, q, p, incarnation] {
      // Re-crashed (or restarted again) in the meantime: this detection is
      // void; the newer crash/recovery drives the pair's state.
      if (sys_->node(p).crashed() || sys_->node(p).incarnation() != incarnation) return;
      PairState& st = pair(q, p);
      st.crashed_permanent = false;
      st.suspect_until = sys_->now();
      if (!sys_->node(q).crashed()) set_suspected_observed(q, p, false);
      restart_renewal(q, p, sys_->now());
    });
  }
  // The recovered process's own modules resync immediately: it keeps
  // suspecting processes whose crash it had detected, drops everything
  // else, and its renewal processes start afresh.
  for (net::ProcessId r : sys_->all()) {
    if (r == p) continue;
    PairState& st = pair(p, r);
    st.suspect_until = when;
    set_suspected_observed(p, r, st.crashed_permanent);
    if (!st.crashed_permanent && !sys_->node(r).crashed()) restart_renewal(p, r, when);
  }
}

void QosFailureDetectorModel::start() {
  if (started_) return;
  started_ = true;
  if (!params_.wrong_suspicions) return;
  for (net::ProcessId q : sys_->all())
    for (net::ProcessId p : sys_->all())
      if (q != p) schedule_next_mistake(q, p, sys_->now());
}

void QosFailureDetectorModel::restart_renewal(net::ProcessId q, net::ProcessId p,
                                              sim::Time from) {
  ++pair(q, p).epoch;  // kill any renewal chain still pending for the pair
  if (started_ && params_.wrong_suspicions) schedule_next_mistake(q, p, from);
}

void QosFailureDetectorModel::inject_suspicion(net::ProcessId q, net::ProcessId p,
                                               sim::Time until) {
  if (q == p) return;
  PairState& st = pair(q, p);
  if (st.crashed_permanent || sys_->node(q).crashed() || sys_->node(p).crashed()) return;
  if (auto* o = sys_->obs()) o->count(q, obs::Counter::kSuspicions, sys_->now());
  set_suspected_observed(q, p, true);
  if (st.suspect_until < until) st.suspect_until = until;
  schedule_release(q, p, until);
}

void QosFailureDetectorModel::schedule_release(net::ProcessId q, net::ProcessId p,
                                               sim::Time until) {
  // End of a mistake / storm window.  Overlapping windows keep the pair
  // suspected: the trust event only fires when no later window extended
  // the suspicion.
  sys_->scheduler().schedule_at_owned(q, until, [this, q, p, until] {
    PairState& st = pair(q, p);
    if (st.crashed_permanent) return;
    if (until < st.suspect_until) return;  // a later window extended it
    set_suspected_observed(q, p, false);
  });
}

void QosFailureDetectorModel::schedule_next_mistake(net::ProcessId q, net::ProcessId p,
                                                    sim::Time from) {
  // A slow target clock / limping target makes wrong suspicions of it
  // more frequent; so does a fast monitor clock (see the header comment).
  // Scaling the drawn value (not the mean) keeps engine consumption
  // identical — the draw-count replay of lazy PairState stays valid.
  const double gap = pair_draw(pair(q, p), q, p, params_.mistake_recurrence) *
                     (clock_rate_[static_cast<std::size_t>(p)] /
                      (clock_rate_[static_cast<std::size_t>(q)] *
                       limp_[static_cast<std::size_t>(p)]));
  const std::uint64_t epoch = pair(q, p).epoch;
  sys_->scheduler().schedule_at_owned(q, from + gap, [this, q, p, epoch] {
    PairState& st = pair(q, p);
    // A stale chain (the pair was reset by a crash or recovery) dies; so
    // does the chain of a permanently suspected (crashed) target or of a
    // crashed monitor — restart_renewal revives it on recovery.
    if (st.epoch != epoch) return;
    if (st.crashed_permanent || sys_->node(q).crashed() || sys_->node(p).crashed()) return;

    const sim::Time start = sys_->now();
    // A limping / slow-clocked target stays wrongly suspected longer (its
    // next heartbeat is late); a fast monitor clock clears sooner.
    const double duration = pair_draw(st, q, p, params_.mistake_duration) *
                            (limp_[static_cast<std::size_t>(p)] /
                             (clock_rate_[static_cast<std::size_t>(p)] *
                              clock_rate_[static_cast<std::size_t>(q)]));
    if (auto* o = sys_->obs()) o->count(q, obs::Counter::kSuspicions, start);
    set_suspected_observed(q, p, true);

    const sim::Time until = start + duration;
    if (st.suspect_until < until) st.suspect_until = until;
    schedule_release(q, p, until);

    schedule_next_mistake(q, p, start);
  });
}

void QosFailureDetectorModel::set_suspected_observed(net::ProcessId q, net::ProcessId p,
                                                     bool suspected) {
  FailureDetector& m = at(q);
  const bool was = m.suspects(p);
  m.set_suspected(p, suspected);
  if (was == suspected) return;  // no edge: e.g. overlapping storm windows
  if (auto* o = sys_->obs()) {
    const int flags = (suspected ? 1 : 0) | (sys_->node(p).crashed() ? 2 : 0);
    o->on_fd_transition(q, p, flags, sys_->now());
  }
}

void QosFailureDetectorModel::set_clock_rate(net::ProcessId p, double rate) {
  if (!(rate > 0))
    throw std::invalid_argument("QosFailureDetectorModel: clock rate must be > 0");
  clock_rate_.at(static_cast<std::size_t>(p)) = rate;
}

void QosFailureDetectorModel::set_limp_factor(net::ProcessId p, double factor) {
  if (!(factor > 0))
    throw std::invalid_argument("QosFailureDetectorModel: limp factor must be > 0");
  limp_.at(static_cast<std::size_t>(p)) = factor;
}

}  // namespace fdgm::fd
