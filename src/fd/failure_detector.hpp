// Per-process failure-detector module: the oracle each algorithm queries
// and subscribes to.  The module is driven by QosFailureDetectorModel —
// it never exchanges messages itself (the paper models failure detectors
// abstractly through their QoS, not through a concrete heartbeat protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace fdgm::fd {

/// Edge-triggered notifications of suspicion changes at one process.
class SuspicionListener {
 public:
  SuspicionListener() = default;
  SuspicionListener(const SuspicionListener&) = delete;
  SuspicionListener& operator=(const SuspicionListener&) = delete;
  virtual ~SuspicionListener() = default;

  /// The local failure detector started suspecting p.
  virtual void on_suspect(net::ProcessId p) = 0;

  /// The local failure detector stopped suspecting p.
  virtual void on_trust(net::ProcessId /*p*/) {}
};

class FailureDetector {
 public:
  FailureDetector(net::ProcessId owner, int n)
      : owner_(owner), suspected_(static_cast<std::size_t>(n), false) {}

  [[nodiscard]] net::ProcessId owner() const { return owner_; }

  /// Does this process currently suspect p?
  [[nodiscard]] bool suspects(net::ProcessId p) const {
    return suspected_.at(static_cast<std::size_t>(p));
  }

  /// Snapshot of all currently suspected processes.
  [[nodiscard]] std::vector<net::ProcessId> suspected() const;

  void add_listener(SuspicionListener* l) { listeners_.push_back(l); }
  void remove_listener(SuspicionListener* l);

  /// Driven by the QoS model; fires listener callbacks on edges.
  void set_suspected(net::ProcessId p, bool s);

  /// Number of suspect-edges raised so far (for tests).
  [[nodiscard]] std::uint64_t suspicion_edges() const { return edges_; }

 private:
  net::ProcessId owner_;
  std::vector<bool> suspected_;
  std::vector<SuspicionListener*> listeners_;
  /// Scratch for set_suspected's iteration snapshot: at large n a module
  /// fires O(n) edges with O(instances) listeners each — reusing the
  /// buffer keeps the edge path allocation-free.
  std::vector<SuspicionListener*> snapshot_;
  std::uint64_t edges_ = 0;
};

}  // namespace fdgm::fd
