// Shared types of the consensus subsystem.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"

namespace fdgm::consensus {

/// Identifies one consensus instance.  `context` separates independent
/// users of the service (the FD atomic broadcast sequence, the group
/// membership view changes); `number` is the instance index within the
/// context (consensus #k / view change #v).
struct InstanceKey {
  std::uint32_t context = 0;
  std::uint64_t number = 0;

  friend bool operator==(const InstanceKey&, const InstanceKey&) = default;
};

struct InstanceKeyHash {
  std::size_t operator()(const InstanceKey& k) const {
    return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.context) << 48) ^ k.number);
  }
};

/// Wire message of the Chandra-Toueg algorithm.  ESTIMATE/ACK/NACK are
/// unicast to the round's coordinator; PROPOSE is multicast by it; DECIDE
/// travels via reliable broadcast (not through this payload's normal path).
class ConsensusMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kConsensus;
  static constexpr std::uint8_t kKind = 0;

  enum class Kind : std::uint8_t { kEstimate, kPropose, kAck, kNack, kRoundFailed, kDecide };

  ConsensusMsg(InstanceKey key, Kind kind, std::uint32_t round, net::PayloadPtr value,
               std::uint32_t ts)
      : Payload(kProto, kKind), key(key), kind(kind), round(round), value(value), ts(ts) {}

  InstanceKey key;
  Kind kind;
  std::uint32_t round;
  net::PayloadPtr value;  // estimate / proposal / decision (null for ack/nack)
  std::uint32_t ts;       // estimate timestamp (ESTIMATE only)
};

}  // namespace fdgm::consensus
