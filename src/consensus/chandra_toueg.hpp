// Chandra-Toueg ◇S consensus (JACM'96) with the optimizations the paper
// applies (§4.1, footnote 4):
//
//  * Round 1 skips the estimate-collection phase: the first coordinator
//    proposes its own initial value immediately (all timestamps are 0, so
//    any estimate is admissible).
//  * Processes advance rounds lazily: after acknowledging a proposal they
//    wait for the decision and move to the next round only when they
//    suspect the current coordinator (instead of free-running through
//    rounds), so a failure-free instance costs exactly one proposal
//    multicast, n-1 acks and one decision broadcast — the Fig. 1 pattern.
//  * Phase 4 follows the published rule: the first majority of replies
//    decides the round's fate — all ACKs: decide; any NACK: the round
//    fails.  On failure the coordinator multicasts a ROUND-FAILED
//    notification so that processes blocked waiting for the decision
//    resynchronize into the next round immediately (without it, lazy
//    round advancement can deadlock under asymmetric wrong suspicions).
//    The notification costs nothing on the failure-free path.
//  * A process that receives a proposal of a later round jumps to that
//    round and acknowledges (safe: the estimate-locking argument of the
//    algorithm does not depend on which rounds a process skips).
//
// The coordinator of round r is members[(offset + r - 1) mod |members|];
// `offset` implements the coordinator re-numbering optimization discussed
// for the crash-steady scenario (§7).
//
// Instances are value-agnostic: estimates/decisions are opaque payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "consensus/types.hpp"
#include "fd/failure_detector.hpp"
#include "net/message.hpp"
#include "net/system.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::consensus {

/// Everything needed to start (or join) one instance.
struct StartInfo {
  /// Participating processes.  Majority quorums are relative to this set.
  /// Points at the caller's member list: Instance::reset copies it
  /// synchronously (into a capacity-retaining pooled vector), so the
  /// pointee only has to outlive the start/join call — no per-instance
  /// vector allocation on the hot path.
  const std::vector<net::ProcessId>* members = nullptr;
  /// Rotation offset: coordinator of round 1 is members[offset % size].
  int coordinator_offset = 0;
  /// This process's initial value (proposed if it coordinates round 1).
  net::PayloadPtr initial = nullptr;
  /// Optional: called when this process coordinates a round in which no
  /// estimate carries a positive timestamp (no value was ever locked — any
  /// proposal is safe).  Lets the client refresh the proposal with work
  /// that arrived after the instance started, so messages queued behind a
  /// stalled round are batched into its recovery instead of waiting.
  std::function<net::PayloadPtr()> refresh{};
};

class ConsensusService;

/// One running Chandra-Toueg instance at one process.
///
/// Instance bodies are pooled by the ConsensusService: one consensus
/// instance runs per message batch, so the per-instance containers
/// (membership, per-round reply arrays) are recycled through
/// reset()/retire() instead of being reallocated per message — the
/// steady-state cost of an instance is O(members) writes into
/// already-sized arrays.
class Instance final : public fd::SuspicionListener {
 public:
  Instance(ConsensusService& service, InstanceKey key, net::ProcessId self, StartInfo info);
  ~Instance() override;

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Re-arms a pooled instance body for a new key (capacity of the
  /// per-round arrays is retained).  The instance must be retired.
  void reset(InstanceKey key, StartInfo info);

  /// Detaches from the failure detector and clears payload references;
  /// the body is ready for reset().  Idempotent.
  void retire();

  /// Kick off participation (round-1 coordinator proposes here).
  void start();

  /// Handle an ESTIMATE / PROPOSE / ACK / NACK addressed to this instance.
  void on_msg(net::ProcessId from, const ConsensusMsg& m);

  /// The service marks the instance decided (decision arrived via rbcast).
  void halt() { done_ = true; }

  // fd::SuspicionListener
  void on_suspect(net::ProcessId p) override;

  [[nodiscard]] std::uint32_t round() const { return round_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] net::ProcessId coordinator(std::uint32_t r) const;

 private:
  /// Per-round reply bookkeeping, flattened: instead of ProcessId-keyed
  /// maps/sets (one node allocation per reply), replies live in one
  /// rank-indexed array sized |members| — O(1) lookup, zero allocation
  /// once the pooled body warmed up.  Replies from non-members (stale
  /// traffic from processes outside the instance's membership) are
  /// ignored — they must not count toward a majority of `members`.
  struct RoundState {
    static constexpr std::uint8_t kEstimate = 1;
    static constexpr std::uint8_t kAck = 2;
    static constexpr std::uint8_t kNack = 4;
    struct PerMember {
      net::PayloadPtr est_value = nullptr;
      std::uint32_t est_ts = 0;
      std::uint8_t bits = 0;
    };
    std::vector<PerMember> from;  // rank-indexed (position in members_)
    std::size_t estimates = 0;
    std::size_t acks = 0;
    std::size_t nacks = 0;
    bool proposed = false;
    bool resolved = false;  // coordinator saw its first majority of replies
    net::PayloadPtr proposal = nullptr;  // set on participants when PROPOSE arrives
    bool have_proposal = false;
    bool failed = false;  // ROUND-FAILED received (or issued)
    // Participant side.
    bool acked = false;
    bool nacked = false;
    bool estimate_sent = false;

    void clear() {
      from.clear();  // capacity retained; re-sized by rs() on first use
      estimates = acks = nacks = 0;
      proposed = resolved = have_proposal = failed = false;
      acked = nacked = estimate_sent = false;
      proposal = nullptr;
    }
  };

  void try_progress();
  void advance_to(std::uint32_t r);
  /// Round r's state (rounds are dense from 1; bodies are pooled across
  /// reset() and stay address-stable while rounds_ grows).
  RoundState& rs(std::uint32_t r);
  /// Position of p in members_, or -1 when p is not a member.
  [[nodiscard]] int rank_of(net::ProcessId p) const;
  [[nodiscard]] std::size_t majority() const { return members_.size() / 2 + 1; }
  void send_to_coordinator(std::uint32_t r, ConsensusMsg::Kind kind, net::PayloadPtr value,
                           std::uint32_t ts);

  ConsensusService* service_;
  InstanceKey key_;
  net::ProcessId self_;
  std::vector<net::ProcessId> members_;
  int offset_ = 0;
  std::function<net::PayloadPtr()> refresh_;
  net::PayloadPtr estimate_ = nullptr;
  std::uint32_t ts_ = 0;
  std::uint32_t round_ = 1;
  bool done_ = false;
  bool in_progress_ = false;  // re-entrancy guard for try_progress
  bool listening_ = false;    // registered as a suspicion listener
  std::vector<std::unique_ptr<RoundState>> rounds_;  // index r-1
};

/// Per-process consensus endpoint: routes messages to instances, creates
/// instances on demand (join-on-first-message), and disseminates/receives
/// decisions through reliable broadcast.
class ConsensusService final : public net::Layer {
 public:
  struct ContextConfig {
    /// Invoked when a message arrives for an unknown instance.  Return the
    /// StartInfo to join immediately, or nullopt to buffer the message
    /// until a local start() (e.g. the membership layer joins a view
    /// change only once it learned about it).
    std::function<std::optional<StartInfo>(const InstanceKey&)> join;
    /// Invoked exactly once per instance with the decision value.
    std::function<void(const InstanceKey&, const net::PayloadPtr&)> on_decide;
  };

  ConsensusService(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                   rbcast::ReliableBroadcast& rb);
  ~ConsensusService() override;

  ConsensusService(const ConsensusService&) = delete;
  ConsensusService& operator=(const ConsensusService&) = delete;

  void register_context(std::uint32_t context, ContextConfig cfg);

  /// Start instance `key` locally (no-op if already started or decided).
  void start(const InstanceKey& key, StartInfo info);

  /// Re-offer buffered messages of `context` to its join callback — used
  /// when the client's readiness condition changed (e.g. the abcast
  /// pipeline window advanced, or a view was installed).
  void retry_buffered(std::uint32_t context);

  /// Crash-recovery catch-up: declare every instance of `context` with a
  /// number below `number` settled (the client learned their outcomes out
  /// of band, e.g. through a log sync).  Stale local instances and
  /// buffered traffic below the floor are dropped, as are their retained
  /// decisions.  Must not be called from inside an Instance callback.
  void close_below(std::uint32_t context, std::uint64_t number);

  [[nodiscard]] bool decided(const InstanceKey& key) const {
    return decided_.contains(key) || below_floor(key);
  }
  [[nodiscard]] bool running(const InstanceKey& key) const { return instances_.contains(key); }

  /// Introspection for tests/debugging: (round, coordinator of round) of a
  /// running instance.
  struct InstanceDebug {
    std::uint32_t round = 0;
    net::ProcessId coordinator = -1;
    bool done = false;
  };
  [[nodiscard]] std::optional<InstanceDebug> debug_state(const InstanceKey& key) const {
    auto it = instances_.find(key);
    if (it == instances_.end()) return std::nullopt;
    return InstanceDebug{it->second->round(), it->second->coordinator(it->second->round()),
                         it->second->done()};
  }

  // net::Layer — ESTIMATE/PROPOSE/ACK/NACK arrive here.
  void on_message(const net::Message& m) override;

  [[nodiscard]] net::System& system() { return *sys_; }
  [[nodiscard]] net::ProcessId self() const { return self_; }
  [[nodiscard]] fd::FailureDetector& fd() { return *fd_; }

  // --- used by Instance ---
  void unicast(net::ProcessId dst, const ConsensusMsg* m);
  /// Multicast to every member except this process (no loopback copy).
  void multicast_others(const std::vector<net::ProcessId>& members, const ConsensusMsg* m);
  /// Coordinator path: reliably broadcast the decision to the members.
  void decide(const InstanceKey& key, const std::vector<net::ProcessId>& members,
              net::PayloadPtr value);

 private:
  void on_decide_rb(const rbcast::RbId& id, net::ProcessId origin, net::PayloadPtr inner);
  void dispatch(net::ProcessId from, const ConsensusMsg* m);
  /// Applies a decision (from rbcast or a direct relay); returns true when
  /// it was new.
  bool handle_decision(const ConsensusMsg* cm);
  [[nodiscard]] bool below_floor(const InstanceKey& key) const {
    auto it = closed_floor_.find(key.context);
    return it != closed_floor_.end() && key.number < it->second;
  }

  net::System* sys_;
  net::ProcessId self_;
  fd::FailureDetector* fd_;
  rbcast::ReliableBroadcast* rb_;
  /// Takes an instance body from the pool (or allocates the first time)
  /// and arms it for `key`.
  [[nodiscard]] std::unique_ptr<Instance> acquire_instance(const InstanceKey& key,
                                                           StartInfo info);
  /// Retires an instance body into the pool for reuse.
  void retire(std::unique_ptr<Instance> inst);

  std::unordered_map<std::uint32_t, ContextConfig> contexts_;
  std::unordered_map<InstanceKey, std::unique_ptr<Instance>, InstanceKeyHash> instances_;
  /// Retired instance bodies, reused by acquire_instance — one consensus
  /// instance runs per message batch, so this avoids re-growing the
  /// per-instance containers on every message.
  std::vector<std::unique_ptr<Instance>> pool_;
  std::unordered_map<InstanceKey, std::vector<std::pair<net::ProcessId, const ConsensusMsg*>>,
                     InstanceKeyHash>
      buffered_;
  std::unordered_set<InstanceKey, InstanceKeyHash> decided_;
  /// Per-context floor set by close_below(); instances below it count as
  /// decided.
  std::unordered_map<std::uint32_t, std::uint64_t> closed_floor_;
};

}  // namespace fdgm::consensus
