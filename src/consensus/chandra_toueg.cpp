#include "consensus/chandra_toueg.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/observer.hpp"

namespace fdgm::consensus {

namespace {
/// rbcast client tag of the decision dissemination channel.
constexpr int kDecideTag = 0x434f4e53;  // "CONS"
}  // namespace

// ---------------------------------------------------------------- Instance

Instance::Instance(ConsensusService& service, InstanceKey key, net::ProcessId self,
                   StartInfo info)
    : service_(&service), self_(self) {
  reset(key, std::move(info));
}

Instance::~Instance() { retire(); }

void Instance::reset(InstanceKey key, StartInfo info) {
  key_ = key;
  if (info.members == nullptr || info.members->empty())
    throw std::invalid_argument("consensus::Instance: empty membership");
  members_.assign(info.members->begin(), info.members->end());
  offset_ = info.coordinator_offset;
  refresh_ = std::move(info.refresh);
  estimate_ = std::move(info.initial);
  ts_ = 0;
  round_ = 1;
  if (auto* o = service_->system().obs())
    o->count(self_, obs::Counter::kConsensusRounds, service_->system().now());
  done_ = false;
  in_progress_ = false;
  std::sort(members_.begin(), members_.end());
  if (!std::binary_search(members_.begin(), members_.end(), self_))
    throw std::invalid_argument("consensus::Instance: self not a member");
  service_->fd().add_listener(this);
  listening_ = true;
}

void Instance::retire() {
  if (listening_) {
    service_->fd().remove_listener(this);
    listening_ = false;
  }
  for (auto& p : rounds_)
    if (p) p->clear();
  estimate_ = nullptr;
  refresh_ = nullptr;
  done_ = true;
}

Instance::RoundState& Instance::rs(std::uint32_t r) {
  if (rounds_.size() < r) rounds_.resize(r);
  auto& p = rounds_[r - 1];
  if (!p) p = std::make_unique<RoundState>();
  if (p->from.empty()) p->from.assign(members_.size(), RoundState::PerMember{});
  return *p;
}

int Instance::rank_of(net::ProcessId p) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) return -1;
  return static_cast<int>(it - members_.begin());
}

net::ProcessId Instance::coordinator(std::uint32_t r) const {
  const auto n = members_.size();
  const auto idx = (static_cast<std::size_t>(offset_) + (r - 1)) % n;
  return members_[idx];
}

void Instance::start() { try_progress(); }

void Instance::send_to_coordinator(std::uint32_t r, ConsensusMsg::Kind kind,
                                   net::PayloadPtr value, std::uint32_t ts) {
  const ConsensusMsg* msg =
      service_->system().arena().make<ConsensusMsg>(key_, kind, r, value, ts);
  const net::ProcessId coord = coordinator(r);
  if (coord == self_) {
    on_msg(self_, *msg);  // local bookkeeping, no network cost
  } else {
    service_->unicast(coord, msg);
  }
}

void Instance::on_msg(net::ProcessId from, const ConsensusMsg& m) {
  if (done_) return;
  RoundState& st = rs(m.round);
  const int rank = rank_of(from);
  switch (m.kind) {
    case ConsensusMsg::Kind::kEstimate:
      if (rank >= 0) {
        auto& pm = st.from[static_cast<std::size_t>(rank)];
        if (!(pm.bits & RoundState::kEstimate)) {  // first estimate wins
          pm.bits |= RoundState::kEstimate;
          pm.est_value = m.value;
          pm.est_ts = m.ts;
          ++st.estimates;
        }
      }
      break;
    case ConsensusMsg::Kind::kPropose:
      if (!st.have_proposal) {
        st.have_proposal = true;
        st.proposal = m.value;
      }
      // Jump forward: a proposal proves a majority reached round m.round.
      if (m.round > round_) advance_to(m.round);
      break;
    case ConsensusMsg::Kind::kAck:
      if (rank >= 0) {
        auto& pm = st.from[static_cast<std::size_t>(rank)];
        if (!(pm.bits & RoundState::kAck)) {
          pm.bits |= RoundState::kAck;
          ++st.acks;
        }
      }
      break;
    case ConsensusMsg::Kind::kNack:
      if (rank >= 0) {
        auto& pm = st.from[static_cast<std::size_t>(rank)];
        if (!(pm.bits & RoundState::kNack)) {
          pm.bits |= RoundState::kNack;
          ++st.nacks;
        }
      }
      break;
    case ConsensusMsg::Kind::kRoundFailed:
      st.failed = true;
      // The coordinator of m.round gave up; anyone at or before that round
      // moves on so the next coordinator can collect its estimates.
      if (m.round >= round_) advance_to(m.round + 1);
      break;
    case ConsensusMsg::Kind::kDecide:
      throw std::logic_error("consensus: DECIDE must arrive via reliable broadcast");
  }
  try_progress();
}

void Instance::on_suspect(net::ProcessId p) {
  if (done_) return;
  if (p == coordinator(round_)) try_progress();
}

void Instance::advance_to(std::uint32_t r) {
  if (r <= round_) return;
  if (auto* o = service_->system().obs())
    o->count(self_, obs::Counter::kConsensusRounds, service_->system().now(), r - round_);
  round_ = r;
  RoundState& st = rs(round_);
  if (!st.estimate_sent) {
    st.estimate_sent = true;
    // Round 1 never collects estimates (optimized round), so this only
    // happens for r > 1.
    send_to_coordinator(round_, ConsensusMsg::Kind::kEstimate, estimate_, ts_);
  }
}

void Instance::try_progress() {
  if (in_progress_) return;  // local sends re-enter via on_msg
  in_progress_ = true;
  bool changed = true;
  while (changed && !done_) {
    changed = false;
    const std::uint32_t r = round_;
    const net::ProcessId coord = coordinator(r);
    RoundState& st = rs(r);

    // --- Coordinator: phase 2, issue the proposal.
    if (coord == self_ && !st.proposed) {
      bool can_propose = false;
      net::PayloadPtr value = nullptr;
      if (r == 1) {
        // Optimized first round: propose the initial value directly.
        can_propose = true;
        value = estimate_;
      } else if (st.estimates >= majority()) {
        // Pick the estimate with the highest timestamp (ties broken by the
        // lowest process id — ranks iterate in member order, "first wins").
        std::uint32_t best_ts = 0;
        for (const auto& pm : st.from) {
          if (!(pm.bits & RoundState::kEstimate)) continue;
          if (!value || pm.est_ts > best_ts) {
            value = pm.est_value;
            best_ts = pm.est_ts;
          }
        }
        // Nothing locked anywhere: any proposal is safe.  The coordinator
        // imposes its own estimate (refreshed if the client provides it) —
        // this is the tie-break that lets a round-2 coordinator exclude a
        // process whose own round-1 proposal was nacked away.
        if (best_ts == 0) value = refresh_ ? refresh_() : estimate_;
        can_propose = true;
      }
      if (can_propose) {
        st.proposed = true;
        st.have_proposal = true;
        st.proposal = value;
        const ConsensusMsg* msg = service_->system().arena().make<ConsensusMsg>(
            key_, ConsensusMsg::Kind::kPropose, r, value, /*ts=*/0);
        service_->multicast_others(members_, msg);
        changed = true;
      }
    }

    // --- Participant: phase 3, ack or nack the current round's proposal.
    if (!st.acked && !st.nacked) {
      if (st.have_proposal) {
        estimate_ = st.proposal;
        ts_ = r;
        st.acked = true;
        send_to_coordinator(r, ConsensusMsg::Kind::kAck, nullptr, 0);
        changed = true;
      } else if (service_->fd().suspects(coord) && coord != self_) {
        st.nacked = true;
        send_to_coordinator(r, ConsensusMsg::Kind::kNack, nullptr, 0);
        advance_to(r + 1);
        changed = true;
        continue;
      }
    } else if (st.acked && service_->fd().suspects(coord) && coord != self_) {
      // Lazy rotation: we acknowledged but the coordinator now looks dead;
      // move on so the next coordinator can gather a majority of estimates.
      advance_to(r + 1);
      changed = true;
      continue;
    }

    // --- Coordinator: phase 4, the first majority of replies decides the
    // round's fate: all acks -> decision; any nack -> the round failed.
    if (coord == self_ && st.proposed && !st.resolved && !done_ &&
        st.acks + st.nacks >= majority()) {
      st.resolved = true;
      if (st.nacks == 0) {
        done_ = true;
        service_->decide(key_, members_, st.proposal);
        break;
      }
      // Tell everybody the round failed so that processes waiting for the
      // decision resynchronize immediately instead of waiting for their
      // failure detector.  Counted once, at the coordinator that resolved
      // the round — not at the n-1 receivers of the announcement.
      if (auto* o = service_->system().obs())
        o->count(self_, obs::Counter::kConsensusRoundFails, service_->system().now());
      const ConsensusMsg* msg = service_->system().arena().make<ConsensusMsg>(
          key_, ConsensusMsg::Kind::kRoundFailed, r, nullptr, /*ts=*/0);
      service_->multicast_others(members_, msg);
      advance_to(r + 1);
      changed = true;
    }
  }
  in_progress_ = false;
}

// --------------------------------------------------------- ConsensusService

ConsensusService::ConsensusService(net::System& sys, net::ProcessId self,
                                   fd::FailureDetector& fd, rbcast::ReliableBroadcast& rb)
    : sys_(&sys), self_(self), fd_(&fd), rb_(&rb) {
  sys.node(self).register_handler(net::ProtocolId::kConsensus, this);
  rb.register_client(kDecideTag,
                     [this](const rbcast::RbId& id, net::ProcessId origin,
                            const net::PayloadPtr& inner) { on_decide_rb(id, origin, inner); });
}

ConsensusService::~ConsensusService() {
  sys_->node(self_).register_handler(net::ProtocolId::kConsensus, nullptr);
}

void ConsensusService::register_context(std::uint32_t context, ContextConfig cfg) {
  if (!contexts_.emplace(context, std::move(cfg)).second)
    throw std::logic_error("ConsensusService: duplicate context");
}

std::unique_ptr<Instance> ConsensusService::acquire_instance(const InstanceKey& key,
                                                             StartInfo info) {
  if (!pool_.empty()) {
    std::unique_ptr<Instance> inst = std::move(pool_.back());
    pool_.pop_back();
    inst->reset(key, std::move(info));
    return inst;
  }
  return std::make_unique<Instance>(*this, key, self_, std::move(info));
}

void ConsensusService::retire(std::unique_ptr<Instance> inst) {
  inst->retire();
  pool_.push_back(std::move(inst));
}

void ConsensusService::start(const InstanceKey& key, StartInfo info) {
  if (decided(key) || instances_.contains(key)) return;
  std::unique_ptr<Instance> inst = acquire_instance(key, std::move(info));
  Instance* raw = inst.get();
  instances_.emplace(key, std::move(inst));
  // Replay messages that arrived before we joined.
  if (auto it = buffered_.find(key); it != buffered_.end()) {
    auto msgs = std::move(it->second);
    buffered_.erase(it);
    for (auto& [from, m] : msgs) raw->on_msg(from, *m);
  }
  raw->start();
}

void ConsensusService::retry_buffered(std::uint32_t context) {
  auto cit = contexts_.find(context);
  if (cit == contexts_.end() || !cit->second.join) return;
  // Collect keys first: start() mutates buffered_.
  std::vector<InstanceKey> keys;
  for (const auto& [key, msgs] : buffered_)
    if (key.context == context && !instances_.contains(key) && !decided(key))
      keys.push_back(key);
  std::sort(keys.begin(), keys.end(),
            [](const InstanceKey& a, const InstanceKey& b) { return a.number < b.number; });
  for (const InstanceKey& key : keys) {
    if (instances_.contains(key) || decided(key)) continue;
    if (auto info = cit->second.join(key)) start(key, std::move(*info));
  }
}

void ConsensusService::close_below(std::uint32_t context, std::uint64_t number) {
  auto& floor = closed_floor_[context];
  if (number <= floor) return;
  floor = number;
  auto below = [&](const InstanceKey& key) {
    return key.context == context && key.number < number;
  };
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (below(it->first)) {
      it->second->halt();
      retire(std::move(it->second));
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = buffered_.begin(); it != buffered_.end();)
    it = below(it->first) ? buffered_.erase(it) : std::next(it);
  for (auto it = decided_.begin(); it != decided_.end();)
    it = below(*it) ? decided_.erase(it) : std::next(it);
}

void ConsensusService::on_message(const net::Message& m) {
  const ConsensusMsg* cm = net::payload_cast<ConsensusMsg>(m);
  if (cm == nullptr) throw std::logic_error("ConsensusService: foreign payload");
  dispatch(m.src, cm);
}

void ConsensusService::dispatch(net::ProcessId from, const ConsensusMsg* m) {
  if (decided(m->key)) return;  // stale traffic for a closed instance
  if (auto it = instances_.find(m->key); it != instances_.end()) {
    it->second->on_msg(from, *m);
    return;
  }
  // Unknown instance: ask the owning context whether to join now.
  auto cit = contexts_.find(m->key.context);
  if (cit == contexts_.end()) throw std::logic_error("ConsensusService: unknown context");
  if (cit->second.join) {
    if (auto info = cit->second.join(m->key)) {
      buffered_[m->key].emplace_back(from, m);
      start(m->key, std::move(*info));
      return;
    }
  }
  buffered_[m->key].emplace_back(from, m);
}

void ConsensusService::unicast(net::ProcessId dst, const ConsensusMsg* m) {
  sys_->node(self_).send(dst, net::ProtocolId::kConsensus, m);
}

void ConsensusService::multicast_others(const std::vector<net::ProcessId>& members,
                                        const ConsensusMsg* m) {
  sys_->node(self_).multicast_others(members, net::ProtocolId::kConsensus, m);
}

void ConsensusService::decide(const InstanceKey& key, const std::vector<net::ProcessId>& members,
                              net::PayloadPtr value) {
  const ConsensusMsg* msg = sys_->arena().make<ConsensusMsg>(
      key, ConsensusMsg::Kind::kDecide, /*round=*/0, value, /*ts=*/0);
  rb_->broadcast_group(kDecideTag, members, msg);
}

void ConsensusService::on_decide_rb(const rbcast::RbId& id, net::ProcessId /*origin*/,
                                    net::PayloadPtr inner) {
  const ConsensusMsg* cm = net::payload_cast<ConsensusMsg>(inner);
  if (cm == nullptr || cm->kind != ConsensusMsg::Kind::kDecide)
    throw std::logic_error("ConsensusService: bad decision payload");
  handle_decision(cm);
  // Release even when the decision was a duplicate or already settled by
  // close_below: retaining it would re-multicast a stale decision to
  // everybody on every later suspicion of its origin.
  rb_->release(id);
}

bool ConsensusService::handle_decision(const ConsensusMsg* cm) {
  if (below_floor(cm->key)) return false;  // settled out of band already
  if (!decided_.insert(cm->key).second) return false;  // duplicate decision
  if (auto it = instances_.find(cm->key); it != instances_.end()) {
    // halt() now; retire later.  The decision can arrive synchronously
    // from inside the instance's own try_progress (the coordinator's local
    // rbcast delivery), so pooling here could hand a live stack frame's
    // instance to a new key.
    it->second->halt();
    const InstanceKey key = cm->key;
    sys_->scheduler().schedule_after(0, [this, key] {
      auto dit = instances_.find(key);
      if (dit == instances_.end()) return;  // close_below retired it already
      retire(std::move(dit->second));
      instances_.erase(dit);
    });
  }
  buffered_.erase(cm->key);
  auto cit = contexts_.find(cm->key.context);
  if (cit == contexts_.end()) throw std::logic_error("ConsensusService: unknown context");
  cit->second.on_decide(cm->key, cm->value);
  return true;
}

}  // namespace fdgm::consensus
