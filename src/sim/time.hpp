// Simulated time for the discrete-event kernel.
//
// The paper sets the network service time to one "time unit" and, for
// readability, interprets that unit as 1 ms.  We keep the same convention:
// Time is a double counting simulated milliseconds.
#pragma once

#include <limits>

namespace fdgm::sim {

using Time = double;

/// A time value larger than any reachable simulation instant.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Simulation epoch.
inline constexpr Time kTimeZero = 0.0;

}  // namespace fdgm::sim
