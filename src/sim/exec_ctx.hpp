// Execution context of the parallel scheduler backend (kParallel).
//
// Under conservative windowed rounds, node-partition events execute on
// worker threads.  A worker must not mutate state outside its own
// partition; instead it *stages* cross-partition operations (schedules
// targeting the shared partition, shared-resource jobs, cancellations of
// shared-partition timers, and side effects on process-global objects
// such as the Observer or the latency recorder).  Staged operations are
// replayed serially at the round barrier in exact global (time, seq)
// order, which is how the parallel backend reproduces the sequential
// backends' behavior bit for bit.
//
// The thread-local ExecCtx pointer tells scheduler-aware code which mode
// it runs in:
//   * null           — serial context (sequential backends, the parallel
//                      coordinator between rounds, barrier replay, or any
//                      call outside event execution);
//   * staging        — a worker executing one partition's sub-window;
//   * direct (!staging) — the coordinator executing an event serially
//                      under kParallel (shared events, or single-partition
//                      rounds that skip the staging machinery).
//
// Components outside src/sim observe only two things: the inherited
// owner of the currently executing event (Scheduler::schedule_at tags new
// events with it) and stage_effect(), which defers a side-effect method
// call to the barrier when — and only when — a staging worker is running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <type_traits>

#include "sim/time.hpp"

namespace fdgm::sim {

/// Owner tag of events not tied to one process: they execute serially on
/// the coordinator (the "shared partition").  This is the default owner
/// of everything scheduled from a serial context.
inline constexpr int kOwnerShared = -1;

class Scheduler;

struct ExecCtx {
  Scheduler* sched = nullptr;
  /// Simulated time of the event being executed (Scheduler::now()).
  Time now = 0.0;
  /// Owner of the executing event: a process id, or kOwnerShared.
  int owner = kOwnerShared;
  /// True on a staging worker; false in the coordinator's direct mode.
  bool staging = false;
  /// The worker's Partition (opaque outside the scheduler).
  void* part = nullptr;
};

namespace detail {
inline thread_local ExecCtx* t_exec_ctx = nullptr;
}  // namespace detail

[[nodiscard]] inline ExecCtx* exec_ctx() { return detail::t_exec_ctx; }

/// Maximum POD argument bytes of a staged effect.
inline constexpr std::size_t kMaxEffectArgBytes = 40;

using EffectFn = void (*)(void* obj, const void* args);

/// Appends an effect op to the current staging worker's op list (defined
/// in scheduler.cpp).  Pre: exec_ctx() != null && exec_ctx()->staging.
void stage_effect_raw(EffectFn fn, void* obj, const void* args, std::size_t size);

namespace detail {
// Trivially copyable argument pack (std::tuple is not trivially copyable
// in common standard libraries), memcpy'd through the staging buffer.
template <typename... Args>
struct ArgPack;
template <>
struct ArgPack<> {
  template <auto M, typename Obj>
  void invoke(Obj* o) const {
    (o->*M)();
  }
};
template <typename A0>
struct ArgPack<A0> {
  A0 a0;
  template <auto M, typename Obj>
  void invoke(Obj* o) const {
    (o->*M)(a0);
  }
};
template <typename A0, typename A1>
struct ArgPack<A0, A1> {
  A0 a0;
  A1 a1;
  template <auto M, typename Obj>
  void invoke(Obj* o) const {
    (o->*M)(a0, a1);
  }
};
template <typename A0, typename A1, typename A2>
struct ArgPack<A0, A1, A2> {
  A0 a0;
  A1 a1;
  A2 a2;
  template <auto M, typename Obj>
  void invoke(Obj* o) const {
    (o->*M)(a0, a1, a2);
  }
};
template <typename A0, typename A1, typename A2, typename A3>
struct ArgPack<A0, A1, A2, A3> {
  A0 a0;
  A1 a1;
  A2 a2;
  A3 a3;
  template <auto M, typename Obj>
  void invoke(Obj* o) const {
    (o->*M)(a0, a1, a2, a3);
  }
};

template <auto Method, typename Obj, typename Pack>
void effect_thunk(void* obj, const void* args) {
  Pack p{};
  std::memcpy(&p, args, sizeof(Pack));
  p.template invoke<Method>(static_cast<Obj*>(obj));
}
}  // namespace detail

/// Defer `(obj->*Method)(args...)` to the round barrier, where it replays
/// in global event order, iff a staging worker is executing.  Returns
/// false (caller runs the body inline) in every serial context, so
/// sequential backends pay one thread-local load and a branch.
///
/// Args must be trivially copyable and small (kMaxEffectArgBytes); the
/// replay re-invokes the *public* method, which must therefore detect the
/// serial context and run its body (it will: replay runs with a null
/// ExecCtx).
template <auto Method, typename Obj, typename... Args>
[[nodiscard]] bool stage_effect(Obj* obj, Args... args) {
  const ExecCtx* c = exec_ctx();
  if (c == nullptr || !c->staging) return false;
  using Pack = detail::ArgPack<std::decay_t<Args>...>;
  static_assert(std::is_trivially_copyable_v<Pack>,
                "staged effect arguments must be trivially copyable");
  static_assert(sizeof(Pack) <= kMaxEffectArgBytes, "staged effect arguments too large");
  const Pack pack{args...};
  stage_effect_raw(&detail::effect_thunk<Method, Obj, Pack>, obj, &pack, sizeof(Pack));
  return true;
}

}  // namespace fdgm::sim
