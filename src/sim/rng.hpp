// Deterministic random-number streams.
//
// Every source of randomness in a simulation (workload arrivals, failure
// detector mistakes, ...) gets its own named sub-stream forked from one
// master seed, so adding a consumer never perturbs the draws seen by the
// others and every experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace fdgm::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix(seed)), seed_base_(seed) {}

  /// Derive an independent stream identified by (this stream, tag).
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(splitmix(seed_base_ ^ splitmix(tag + 0x51ed2701)));
  }

  /// Derive an independent stream from a human-readable label.
  [[nodiscard]] Rng fork(std::string_view label) const { return fork(fnv1a(label)); }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential variate with the given mean (mean 0 returns 0).
  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Raw 64-bit draw.
  std::uint64_t next_u64() { return engine_(); }

  using result_type = std::mt19937_64::result_type;
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

 private:
  static std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_base_ = 0;
};

}  // namespace fdgm::sim
