#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <thread>

namespace fdgm::sim {

const char* scheduler_backend_name(SchedulerBackend b) {
  switch (b) {
    case SchedulerBackend::kHeap:
      return "heap";
    case SchedulerBackend::kWheel:
      return "wheel";
    case SchedulerBackend::kParallel:
      return "par";
  }
  return "?";
}

namespace {
/// Installs an ExecCtx for the duration of a scope (exception-safe).
struct CtxScope {
  ExecCtx* prev;
  explicit CtxScope(ExecCtx* c) : prev(detail::t_exec_ctx) { detail::t_exec_ctx = c; }
  ~CtxScope() { detail::t_exec_ctx = prev; }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;
};
}  // namespace

struct Scheduler::ParallelEngine {
  std::vector<std::thread> threads;
  /// Bumped to publish a round; workers wait on it.
  std::atomic<std::uint64_t> round{0};
  /// Helper threads still working on the published round.
  std::atomic<std::uint32_t> remaining{0};
  std::atomic<bool> quit{false};
  std::mutex err_mu;
  std::exception_ptr error;
  /// Pool width, the coordinator included.
  int workers = 1;
};

Scheduler::Scheduler(const SchedulerConfig& cfg) : cfg_(cfg) {
  if (cfg_.backend == SchedulerBackend::kWheel) {
    if (!(cfg_.wheel_tick_ms > 0.0))
      throw std::invalid_argument("Scheduler: wheel_tick_ms must be positive");
    inv_tick_ = 1.0 / cfg_.wheel_tick_ms;
    levels_ = std::make_unique<std::array<WheelLevel, kWheelLevels>>();
  }
  parallel_ = cfg_.backend == SchedulerBackend::kParallel;
}

Scheduler::~Scheduler() {
  if (engine_) {
    engine_->quit.store(true, std::memory_order_release);
    engine_->round.fetch_add(1, std::memory_order_release);
    engine_->round.notify_all();
    for (std::thread& th : engine_->threads) th.join();
  }
  // Destroy callables of events never executed nor cancelled.
  for (Partition& p : parts_)
    for (Slot& sl : p.slots)
      if (sl.run != nullptr) sl.destroy(sl);
}

void Scheduler::set_partitions(int owners) {
  if (cfg_.backend != SchedulerBackend::kParallel) return;
  if (owners < 0 || owners > 255)
    throw std::invalid_argument("Scheduler::set_partitions: supports 0..255 owners");
  if (next_seq_ != 1 || executed_ != 0 || live_ != 0 || engine_)
    throw std::logic_error("Scheduler::set_partitions: scheduler already in use");
  parts_.resize(static_cast<std::size_t>(owners) + 1);
  for (std::uint32_t i = 0; i < parts_.size(); ++i) parts_[i].index = i;
}

int Scheduler::resolved_threads() const {
  int t = cfg_.threads;
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t < 1) t = 1;
  const int owners = static_cast<int>(parts_.size()) - 1;
  if (owners >= 1 && t > owners) t = owners;
  return t;
}

std::uint32_t Scheduler::acquire_slot(Partition& p) {
  if (p.free_head != kNoSlot) {
    const std::uint32_t local = p.free_head;
    p.free_head = p.slots[local].next_free;
    return (p.index << kPartShift) | local;
  }
  p.slots.emplace_back();
  const auto local = static_cast<std::uint32_t>(p.slots.size() - 1);
  if (local > kLocalSlotMask) throw std::length_error("Scheduler: partition slot slab overflow");
  return (p.index << kPartShift) | local;
}

void Scheduler::release_slot(std::uint32_t idx) {
  Partition& p = parts_[idx >> kPartShift];
  const std::uint32_t local = idx & kLocalSlotMask;
  Slot& sl = p.slots[local];
  sl.run = nullptr;
  sl.destroy = nullptr;
  ++sl.gen;  // stale queue records / EventIds stop matching
  sl.next_free = p.free_head;
  p.free_head = local;
}

bool Scheduler::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  const std::uint32_t part = idx >> kPartShift;
  if (part >= parts_.size()) return false;
  const std::uint32_t local = idx & kLocalSlotMask;
  if (local >= parts_[part].slots.size()) return false;
  Slot& sl = parts_[part].slots[local];
  if (sl.run == nullptr || sl.gen != gen) return false;
  ExecCtx* c = exec_ctx();
  if (c != nullptr && c->staging && c->sched == this) {
    Partition& p = *static_cast<Partition*>(c->part);
    if (part == p.index) {
      sl.destroy(sl);
      release_slot(idx);
      --p.live_delta;
      return true;
    }
    // Shared-partition timers may be cancelled from workers: shared
    // events cannot fire inside a round, so destroying the callback at
    // the barrier — in exact global order — is observably sequential.
    // Cancelling another *node* partition's event would race with its
    // worker; nothing in the model holds such a handle.
    assert(part == 0 && "worker cancelled another node partition's event");
    StagedOp op{};
    op.kind = StagedOp::Kind::kCancel;
    op.slot = idx;
    op.gen = gen;
    p.ops.push_back(op);
    return true;
  }
  sl.destroy(sl);
  release_slot(idx);
  --live_;
  if (parallel_ && node_min_valid_ && part == node_min_part_) node_min_valid_ = false;
  return true;
}

void stage_effect_raw(EffectFn fn, void* obj, const void* args, std::size_t size) {
  ExecCtx* c = exec_ctx();
  assert(c != nullptr && c->staging && "stage_effect_raw outside a staging worker");
  auto& p = *static_cast<Scheduler::Partition*>(c->part);
  Scheduler::StagedOp op{};
  op.kind = Scheduler::StagedOp::Kind::kEffect;
  op.obj = obj;
  op.fn.effect = fn;
  assert(size <= kMaxEffectArgBytes);
  std::memcpy(op.args, args, size);
  p.ops.push_back(op);
}

void Scheduler::sift_up(std::vector<HeapRec>& h, std::size_t i) {
  HeapRec rec = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(rec, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = rec;
}

void Scheduler::sift_down(std::vector<HeapRec>& h, std::size_t i) {
  const std::size_t n = h.size();
  HeapRec rec = h[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(h[c], h[best])) best = c;
    if (!before(h[best], rec)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = rec;
}

void Scheduler::heap_push_on(std::vector<HeapRec>& h, HeapRec rec) {
  h.push_back(rec);
  sift_up(h, h.size() - 1);
}

void Scheduler::heap_pop_root_on(std::vector<HeapRec>& h) {
  h.front() = h.back();
  h.pop_back();
  if (!h.empty()) sift_down(h, 0);
}

void Scheduler::serial_insert(Partition& p, const HeapRec& rec) {
  if (!parallel_) {
    enqueue(rec);
    return;
  }
  heap_push_on(p.heap, rec);
  if (p.index != 0 && node_min_valid_) {
    if (node_min_part_ == 0 || rec.t < node_min_t_ ||
        (rec.t == node_min_t_ && rec.seq < node_min_seq_)) {
      node_min_part_ = p.index;
      node_min_t_ = rec.t;
      node_min_seq_ = rec.seq;
    }
  }
}

void Scheduler::enqueue(HeapRec rec) {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    heap_push_on(heap_, rec);
  } else {
    wheel_enqueue(rec);
  }
}

// -------------------------------------------------------------------- wheel

std::uint64_t Scheduler::tick_of(Time t) const {
  const double ticks = t * inv_tick_;
  // Guard the double -> u64 cast: UB at/above 2^64 (and for +inf, should a
  // caller ever schedule at kTimeInfinity).  Monotone: x * c and the cast
  // are monotone, the clamp keeps the tail constant.
  constexpr double kMaxTicks = 9.0e18;
  if (!(ticks < kMaxTicks)) return static_cast<std::uint64_t>(kMaxTicks);
  return static_cast<std::uint64_t>(ticks);
}

bool Scheduler::wheel_target(std::uint64_t tick, unsigned& level, std::size_t& slot) const {
  // tick ^ cur_tick_ has all bits above level L's span clear exactly when
  // tick lies in the same level-L window as the cursor.
  const std::uint64_t x = tick ^ cur_tick_;
  if ((x >> kWheelBits) == 0) {
    level = 0;
    slot = tick & kWheelSlotMask;
  } else if ((x >> (2 * kWheelBits)) == 0) {
    level = 1;
    slot = (tick >> kWheelBits) & kWheelSlotMask;
  } else if ((x >> (3 * kWheelBits)) == 0) {
    level = 2;
    slot = (tick >> (2 * kWheelBits)) & kWheelSlotMask;
  } else {
    return false;  // beyond the top window: far-future overflow
  }
  return true;
}

std::uint32_t Scheduler::node_acquire(const HeapRec& rec) {
  std::uint32_t idx;
  if (node_free_ != kNilNode) {
    idx = node_free_;
    node_free_ = nodes_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  WheelNode& nd = nodes_[idx];
  nd.t = rec.t;
  nd.seq = rec.seq;
  nd.slot = rec.slot;
  nd.gen = rec.gen;
  return idx;
}

void Scheduler::node_release(std::uint32_t idx) {
  nodes_[idx].next = node_free_;
  node_free_ = idx;
}

void Scheduler::wheel_link(unsigned level, std::size_t slot, std::uint32_t node) {
  WheelLevel& lvl = (*levels_)[level];
  nodes_[node].next = lvl.head[slot];
  lvl.head[slot] = node;
  wheel_mark(lvl, slot);
  ++wheel_count_;
}

void Scheduler::wheel_place(const HeapRec& rec, std::uint64_t tick) {
  unsigned level;
  std::size_t slot;
  if (!wheel_target(tick, level, slot)) {
    heap_push_on(heap_, rec);
    return;
  }
  wheel_link(level, slot, node_acquire(rec));
}

void Scheduler::wheel_enqueue(HeapRec rec) {
  const std::uint64_t tick = tick_of(rec.t);
  if (tick <= cur_tick_) {
    // The event lands in (or before) the bucket at the cursor.  The
    // cursor can rest ahead of tick_of(now()) — it advances over
    // cancelled records without executing anything — so ticks at or
    // below it go through ready_, never through a passed wheel slot.
    if (!ready_active_) {
      // Re-open ready_ for this event.  Safe unconditionally: outside a
      // refill, every record parked in the wheel levels or the overflow
      // has a tick strictly greater than the cursor (placement and
      // cascade only ever file ahead of it), hence a strictly later t,
      // so ready_ draining first preserves the global order.
      ready_.clear();
      ready_pos_ = 0;
      ready_active_ = true;
    }
    // Its (t, seq) exceeds everything already consumed (t >= now_,
    // fresh seq), so sorting it into the un-consumed tail preserves the
    // global FIFO order.
    const auto it = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_), ready_.end(), rec, before);
    ready_.insert(it, rec);
    return;
  }
  wheel_place(rec, tick);
}

std::size_t Scheduler::wheel_scan(const WheelLevel& lvl, std::size_t from) const {
  if (from >= kWheelSlots) return kWheelSlots;
  std::size_t word = from >> 6;
  std::uint64_t bits = lvl.occupied[word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    if (++word >= lvl.occupied.size()) return kWheelSlots;
    bits = lvl.occupied[word];
  }
}

void Scheduler::wheel_cascade(unsigned level, std::size_t slot) {
  WheelLevel& lvl = (*levels_)[level];
  std::uint32_t node = lvl.head[slot];
  lvl.head[slot] = kNilNode;
  wheel_unmark(lvl, slot);
  // Relink every node into its lower-level bucket (the cursor entered
  // this slot's window, so the target is always a strictly lower level —
  // never this list).  Nodes move, nothing is copied or allocated.
  while (node != kNilNode) {
    const std::uint32_t next = nodes_[node].next;
    --wheel_count_;
    unsigned lv = 0;
    std::size_t sl = 0;
    [[maybe_unused]] const bool in_wheel = wheel_target(tick_of(nodes_[node].t), lv, sl);
    assert(in_wheel && lv < level);
    wheel_link(lv, sl, node);
    node = next;
  }
}

void Scheduler::wheel_pull_overflow() {
  const std::uint64_t window = cur_tick_ >> (kWheelLevels * kWheelBits);
  while (!heap_.empty() &&
         (tick_of(heap_.front().t) >> (kWheelLevels * kWheelBits)) == window) {
    const HeapRec rec = heap_.front();
    heap_pop_root_on(heap_);
    wheel_place(rec, tick_of(rec.t));
  }
}

bool Scheduler::wheel_refill() {
  ready_.clear();
  ready_pos_ = 0;
  ready_active_ = false;
  auto& lv = *levels_;
  for (;;) {
    if (wheel_count_ == 0) {
      if (heap_.empty()) return false;
      // The wheel ran dry: jump the cursor to the overflow's earliest
      // tick (the root has the minimal (t, seq), and tick_of is
      // monotone) and pull that whole top-level window in.
      cur_tick_ = tick_of(heap_.front().t);
      wheel_pull_overflow();
      continue;
    }
    // Level 0: the next occupied slot in the cursor's 256-tick window is
    // the next bucket to drain (one tick per slot).
    if (const std::size_t s = wheel_scan(lv[0], cur_tick_ & kWheelSlotMask); s < kWheelSlots) {
      cur_tick_ = (cur_tick_ & ~kWheelSlotMask) | s;
      std::uint32_t node = lv[0].head[s];
      lv[0].head[s] = kNilNode;
      wheel_unmark(lv[0], s);
      while (node != kNilNode) {
        const WheelNode& nd = nodes_[node];
        ready_.push_back(HeapRec{nd.t, nd.seq, nd.slot, nd.gen});
        const std::uint32_t next = nd.next;
        node_release(node);
        node = next;
        --wheel_count_;
      }
      std::sort(ready_.begin(), ready_.end(), before);
      ready_active_ = true;
      return true;
    }
    // Level-0 window exhausted: cascade the next occupied level-1 slot
    // (the cursor's own level-1 slot is empty by construction — its
    // events were placed at level 0).
    const std::size_t l1 = (cur_tick_ >> kWheelBits) & kWheelSlotMask;
    if (const std::size_t s = wheel_scan(lv[1], l1 + 1); s < kWheelSlots) {
      constexpr std::uint64_t kSpan1 = (std::uint64_t{1} << (2 * kWheelBits)) - 1;
      cur_tick_ = (cur_tick_ & ~kSpan1) | (static_cast<std::uint64_t>(s) << kWheelBits);
      wheel_cascade(1, s);
      continue;
    }
    const std::size_t l2 = (cur_tick_ >> (2 * kWheelBits)) & kWheelSlotMask;
    if (const std::size_t s = wheel_scan(lv[2], l2 + 1); s < kWheelSlots) {
      constexpr std::uint64_t kSpan2 = (std::uint64_t{1} << (3 * kWheelBits)) - 1;
      cur_tick_ = (cur_tick_ & ~kSpan2) | (static_cast<std::uint64_t>(s) << (2 * kWheelBits));
      wheel_cascade(2, s);
      continue;
    }
    assert(false && "wheel_count_ > 0 but no occupied slot ahead of the cursor");
    return false;
  }
}

// ------------------------------------------------------------------ driving

bool Scheduler::peek_next(HeapRec& out) {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    while (!heap_.empty()) {
      const HeapRec& rec = heap_.front();
      // A slot generation mismatch marks a cancelled (or already reused)
      // event: drop the stale record.
      if (rec_live(rec)) {
        out = rec;
        return true;
      }
      heap_pop_root_on(heap_);
    }
    return false;
  }
  for (;;) {
    while (ready_pos_ < ready_.size()) {
      const HeapRec& rec = ready_[ready_pos_];
      if (rec_live(rec)) {
        out = rec;
        return true;
      }
      ++ready_pos_;  // stale: cancelled or reused
    }
    if (!wheel_refill()) return false;
  }
}

void Scheduler::pop_peeked() {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    heap_pop_root_on(heap_);
  } else {
    ++ready_pos_;
  }
}

bool Scheduler::step() {
  if (parallel_) return step_parallel();
  if (stopped()) return false;
  HeapRec rec;
  if (!peek_next(rec)) return false;
  pop_peeked();
  assert(rec.t >= now_);
  now_ = rec.t;
  ++executed_;
  --live_;
  slot_ref(rec.slot).run(*this, rec.slot);
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(Time t) {
  if (parallel_) return run_until_parallel(t);
  std::uint64_t n = 0;
  HeapRec rec;
  while (!stopped()) {
    // Not-due events are left in place (peek does not consume), so FIFO
    // order is preserved across run_until boundaries.
    if (!peek_next(rec) || rec.t > t) break;
    pop_peeked();
    now_ = rec.t;
    ++executed_;
    ++n;
    --live_;
    slot_ref(rec.slot).run(*this, rec.slot);
  }
  if (!stopped() && now_ < t) now_ = t;
  return n;
}

// ---------------------------------------------------------------- kParallel

bool Scheduler::part_peek(Partition& p, HeapRec& out) {
  while (!p.heap.empty()) {
    if (rec_live(p.heap.front())) {
      out = p.heap.front();
      return true;
    }
    heap_pop_root_on(p.heap);
  }
  return false;
}

void Scheduler::recompute_node_min() {
  node_min_valid_ = true;
  node_min_part_ = 0;
  HeapRec h{};
  for (std::uint32_t p = 1; p < parts_.size(); ++p) {
    if (!part_peek(parts_[p], h)) continue;
    if (node_min_part_ == 0 || h.t < node_min_t_ ||
        (h.t == node_min_t_ && h.seq < node_min_seq_)) {
      node_min_part_ = p;
      node_min_t_ = h.t;
      node_min_seq_ = h.seq;
    }
  }
}

bool Scheduler::global_min(HeapRec& out, std::uint32_t& out_part) {
  HeapRec sh{};
  const bool has_sh = part_peek(parts_[0], sh);
  if (!node_min_valid_) recompute_node_min();
  HeapRec nm{};
  bool has_nm = false;
  while (node_min_part_ != 0) {
    // Re-peek the cached partition: its head may have been cancelled
    // since the cache was filled.
    if (part_peek(parts_[node_min_part_], nm) && nm.t == node_min_t_ &&
        nm.seq == node_min_seq_) {
      has_nm = true;
      break;
    }
    recompute_node_min();
  }
  if (has_nm && (!has_sh || before(nm, sh))) {
    out = nm;
    out_part = node_min_part_;
    return true;
  }
  if (has_sh) {
    out = sh;
    out_part = 0;
    return true;
  }
  return false;
}

void Scheduler::exec_direct(Partition& p, const HeapRec& rec) {
  heap_pop_root_on(p.heap);
  assert(rec.t >= now_);
  now_ = rec.t;
  ++executed_;
  --live_;
  ExecCtx ctx;
  ctx.sched = this;
  ctx.now = rec.t;
  ctx.owner = static_cast<int>(p.index) - 1;
  ctx.staging = false;
  CtxScope scope(&ctx);
  slot_ref(rec.slot).run(*this, rec.slot);
  if (p.index != 0) node_min_valid_ = false;
}

bool Scheduler::step_parallel() {
  if (stopped()) return false;
  HeapRec rec{};
  std::uint32_t pm = 0;
  if (!global_min(rec, pm)) return false;
  exec_direct(parts_[pm], rec);
  return true;
}

std::uint64_t Scheduler::run_until_parallel(Time limit) {
  std::uint64_t n = 0;
  HeapRec rec{};
  std::uint32_t pm = 0;
  while (!stopped()) {
    if (!global_min(rec, pm) || rec.t > limit) break;
    if (pm == 0) {
      // Shared events execute serially between rounds; they are also
      // what usually bounds a round, so this is the common serial path.
      exec_direct(parts_[0], rec);
      ++n;
      continue;
    }
    const double la = lookahead_ ? lookahead_() : 0.0;
    if (!(la > 0.0)) {
      // No conservative horizon available: degenerate serial stepping.
      exec_direct(parts_[pm], rec);
      ++n;
      continue;
    }
    // Exclusive round bound: the run_until limit (inclusive of time
    // `limit` itself), the conservative horizon, and the earliest shared
    // event, whichever key comes first.
    Time bt = limit;
    std::uint64_t bseq = UINT64_MAX;
    const Time horizon = rec.t + la;
    if (horizon < bt || (horizon == bt && bseq != 0)) {
      bt = horizon;
      bseq = 0;
    }
    HeapRec sh{};
    if (part_peek(parts_[0], sh) && (sh.t < bt || (sh.t == bt && sh.seq < bseq))) {
      bt = sh.t;
      bseq = sh.seq;
    }
    // A round only pays off when several partitions hold work inside the
    // bound; otherwise execute the single active partition's event
    // directly (exact sequential semantics, no staging overhead).
    std::uint32_t active = 0;
    HeapRec h{};
    for (std::uint32_t p = 1; p < parts_.size() && active < 2; ++p)
      if (part_peek(parts_[p], h) && (h.t < bt || (h.t == bt && h.seq < bseq))) ++active;
    if (active < 2) {
      exec_direct(parts_[pm], rec);
      ++n;
      continue;
    }
    round_bound_t_ = bt;
    round_bound_seq_ = bseq;
    n += run_round();
  }
  if (!stopped() && now_ < limit) now_ = limit;
  return n;
}

void Scheduler::ensure_engine() {
  if (engine_) return;
  engine_ = std::make_unique<ParallelEngine>();
  engine_->workers = resolved_threads();
  for (int w = 1; w < engine_->workers; ++w)
    engine_->threads.emplace_back([this, w] { worker_main(w); });
}

void Scheduler::worker_main(int worker) {
  ParallelEngine& e = *engine_;
  std::uint64_t seen = 0;
  for (;;) {
    e.round.wait(seen, std::memory_order_acquire);
    const std::uint64_t r = e.round.load(std::memory_order_acquire);
    if (r == seen) continue;
    seen = r;
    if (e.quit.load(std::memory_order_acquire)) return;
    try {
      run_worker_passes(worker);
    } catch (...) {
      const std::lock_guard<std::mutex> lk(e.err_mu);
      if (!e.error) e.error = std::current_exception();
    }
    e.remaining.fetch_sub(1, std::memory_order_release);
    e.remaining.notify_one();
  }
}

void Scheduler::run_worker_passes(int worker) {
  const auto stride = static_cast<std::uint32_t>(engine_->workers);
  for (std::uint32_t p = 1 + static_cast<std::uint32_t>(worker); p < parts_.size(); p += stride)
    run_partition_pass(parts_[p]);
}

void Scheduler::run_partition_pass(Partition& p) {
  const Time bt = round_bound_t_;
  const std::uint64_t bseq = round_bound_seq_;
  ExecCtx ctx;
  ctx.sched = this;
  ctx.owner = static_cast<int>(p.index) - 1;
  ctx.staging = true;
  ctx.part = &p;
  CtxScope scope(&ctx);
  for (;;) {
    while (!p.heap.empty() && !rec_live(p.heap.front())) heap_pop_root_on(p.heap);
    if (p.heap.empty()) break;
    const HeapRec rec = p.heap.front();
    if (!(rec.t < bt || (rec.t == bt && rec.seq < bseq))) break;
    heap_pop_root_on(p.heap);
    ctx.now = rec.t;
    const auto ops_at = static_cast<std::uint32_t>(p.ops.size());
    p.log.push_back(ExecRec{rec.t, rec.seq, ops_at, ops_at});
    const std::size_t li = p.log.size() - 1;
    ++p.round_executed;
    --p.live_delta;
    slot_ref(rec.slot).run(*this, rec.slot);
    p.log[li].ops_end = static_cast<std::uint32_t>(p.ops.size());
  }
}

std::uint64_t Scheduler::run_round() {
  ensure_engine();
  ParallelEngine& e = *engine_;
  const int helpers = e.workers - 1;
  if (helpers > 0) {
    e.remaining.store(static_cast<std::uint32_t>(helpers), std::memory_order_relaxed);
    e.round.fetch_add(1, std::memory_order_release);
    e.round.notify_all();
  }
  run_worker_passes(0);
  if (helpers > 0) {
    std::uint32_t rem = e.remaining.load(std::memory_order_acquire);
    while (rem != 0) {
      e.remaining.wait(rem, std::memory_order_acquire);
      rem = e.remaining.load(std::memory_order_acquire);
    }
  }
  if (e.error) {
    std::exception_ptr err = e.error;
    e.error = nullptr;
    std::rethrow_exception(err);  // partition state is unusable past this
  }
  std::uint64_t executed = 0;
  for (std::uint32_t p = 1; p < parts_.size(); ++p) executed += parts_[p].round_executed;
  merge_round();
  return executed;
}

void Scheduler::replay_op(Partition& src, const StagedOp& op, Time t) {
  switch (op.kind) {
    case StagedOp::Kind::kSchedule: {
      // Seq consumption must match the sequential run exactly, so the
      // real seq is assigned even when the event was cancelled in-pass.
      const std::uint64_t seq = next_seq_++;
      if (op.owner >= 0 && partition_of(op.owner) == src.index) {
        // In-pass provisional schedule: the record is already queued (or
        // executed/cancelled); only its seq needs resolving.
        src.patch[op.prov & ~kProvBit] = seq;
        break;
      }
      Partition& dst = parts_[partition_of(op.owner)];
      const Slot& sl = slot_ref(op.slot);
      if (sl.run != nullptr && sl.gen == op.gen)
        heap_push_on(dst.heap, HeapRec{op.t, seq, op.slot, op.gen});
      break;
    }
    case StagedOp::Kind::kResource: {
      const Time done = op.fn.commit(op.obj, t, op.service);
      const std::uint64_t seq = next_seq_++;
      Partition& dst = parts_[partition_of(op.owner)];
      const Slot& sl = slot_ref(op.slot);
      if (sl.run != nullptr && sl.gen == op.gen)
        heap_push_on(dst.heap, HeapRec{done, seq, op.slot, op.gen});
      break;
    }
    case StagedOp::Kind::kEffect:
      op.fn.effect(op.obj, op.args);
      break;
    case StagedOp::Kind::kCancel: {
      Slot& sl = slot_ref(op.slot);
      if (sl.run != nullptr && sl.gen == op.gen) {
        sl.destroy(sl);
        release_slot(op.slot);
        --live_;
      }
      break;
    }
  }
}

void Scheduler::merge_round() {
  [[maybe_unused]] constexpr std::uint64_t kUnpatched = ~std::uint64_t{0};
  struct Cursor {
    std::uint32_t part;
    std::uint32_t i;
    Time t;
    std::uint64_t seq;  // resolved
  };
  auto cur_before = [](const Cursor& a, const Cursor& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  };
  std::vector<Cursor> heap;
  heap.reserve(parts_.size());
  auto push = [&](Cursor c) {
    heap.push_back(c);
    std::size_t i = heap.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!cur_before(heap[i], heap[parent])) break;
      std::swap(heap[i], heap[parent]);
      i = parent;
    }
  };
  auto pop = [&] {
    heap.front() = heap.back();
    heap.pop_back();
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      if (l >= heap.size()) break;
      std::size_t m = l;
      if (l + 1 < heap.size() && cur_before(heap[l + 1], heap[l])) m = l + 1;
      if (!cur_before(heap[m], heap[i])) break;
      std::swap(heap[i], heap[m]);
      i = m;
    }
  };
  // A provisional log seq always resolves by the time its cursor is
  // (re)loaded: the scheduling parent is an earlier entry of the same
  // partition's log, already replayed (its patch entry written) before
  // the cursor advanced past it.
  auto resolve = [&](Cursor& c) {
    Partition& p = parts_[c.part];
    const ExecRec& e = p.log[c.i];
    c.t = e.t;
    c.seq = (e.seq & kProvBit) != 0 ? p.patch[e.seq & ~kProvBit] : e.seq;
    assert(c.seq != kUnpatched && (c.seq & kProvBit) == 0);
  };
  for (std::uint32_t pi = 1; pi < parts_.size(); ++pi) {
    Partition& p = parts_[pi];
    if (p.prov_next != 0) p.patch.assign(p.prov_next, kUnpatched);
    if (!p.log.empty()) {
      Cursor c{pi, 0, kTimeZero, 0};
      resolve(c);
      push(c);
    }
  }
  // Replay every executed event's staged ops in exact global (t, seq)
  // order: this assigns the real FIFO seqs in the order the sequential
  // backends would have, applies shared-resource jobs and external side
  // effects at the right simulated times, and performs cross-partition
  // inserts and cancels.
  while (!heap.empty()) {
    Cursor c = heap.front();
    pop();
    Partition& p = parts_[c.part];
    const ExecRec& e = p.log[c.i];
    assert(e.t >= now_);
    now_ = e.t;
    for (std::uint32_t k = e.ops_begin; k < e.ops_end; ++k) replay_op(p, p.ops[k], e.t);
    if (++c.i < p.log.size()) {
      resolve(c);
      push(c);
    }
  }
  for (std::uint32_t pi = 1; pi < parts_.size(); ++pi) {
    Partition& p = parts_[pi];
    if (p.prov_next != 0) {
      // Rewrite leftover provisional seqs to their real values.  The
      // remap is order-preserving (seqs were assigned in replay order,
      // which respects provisional order within a partition) and every
      // patched value exceeds every real seq already in the queue, so
      // the heap property is untouched.
      for (HeapRec& r : p.heap)
        if ((r.seq & kProvBit) != 0) r.seq = p.patch[r.seq & ~kProvBit];
      p.prov_next = 0;
    }
    live_ = static_cast<std::size_t>(static_cast<std::int64_t>(live_) + p.live_delta);
    p.live_delta = 0;
    executed_ += p.round_executed;
    p.round_executed = 0;
    p.ops.clear();
    p.log.clear();
  }
  node_min_valid_ = false;
}

}  // namespace fdgm::sim
