#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace fdgm::sim {

EventId Scheduler::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(cb)});
  return id;
}

EventId Scheduler::schedule_after(Time delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Scheduler::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: remember the id; the heap entry is dropped when popped.
  return cancelled_.insert(id).second;
}

bool Scheduler::pop_next(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; we must copy the callback anyway
    // because pop() destroys the node.
    out = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(out.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    return true;
  }
  return false;
}

bool Scheduler::step() {
  if (stopped_) return false;
  Event ev;
  if (!pop_next(ev)) return false;
  assert(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  ev.cb();
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(Time t) {
  std::uint64_t n = 0;
  Event ev;
  while (!stopped_) {
    if (!pop_next(ev)) break;
    if (ev.t > t) {
      // Not due yet: put it back (cheap; preserves id so FIFO order holds).
      heap_.push(std::move(ev));
      break;
    }
    now_ = ev.t;
    ++executed_;
    ++n;
    ev.cb();
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace fdgm::sim
