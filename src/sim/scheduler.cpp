#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>

namespace fdgm::sim {

const char* scheduler_backend_name(SchedulerBackend b) {
  switch (b) {
    case SchedulerBackend::kHeap:
      return "heap";
    case SchedulerBackend::kWheel:
      return "wheel";
  }
  return "?";
}

Scheduler::Scheduler(const SchedulerConfig& cfg) : cfg_(cfg) {
  if (cfg_.backend == SchedulerBackend::kWheel) {
    if (!(cfg_.wheel_tick_ms > 0.0))
      throw std::invalid_argument("Scheduler: wheel_tick_ms must be positive");
    inv_tick_ = 1.0 / cfg_.wheel_tick_ms;
    levels_ = std::make_unique<std::array<WheelLevel, kWheelLevels>>();
  }
}

Scheduler::~Scheduler() {
  // Destroy callables of events never executed nor cancelled.
  for (Slot& sl : slots_)
    if (sl.run != nullptr) sl.destroy(sl);
}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t idx) {
  Slot& sl = slots_[idx];
  sl.run = nullptr;
  sl.destroy = nullptr;
  ++sl.gen;  // stale queue records / EventIds stop matching
  sl.next_free = free_head_;
  free_head_ = idx;
}

bool Scheduler::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& sl = slots_[idx];
  if (sl.run == nullptr || sl.gen != gen) return false;
  sl.destroy(sl);
  release_slot(idx);
  --live_;
  return true;
}

void Scheduler::sift_up(std::size_t i) {
  HeapRec rec = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(rec, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = rec;
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapRec rec = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], rec)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = rec;
}

void Scheduler::heap_push(HeapRec rec) {
  heap_.push_back(rec);
  sift_up(heap_.size() - 1);
}

void Scheduler::heap_pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Scheduler::enqueue(HeapRec rec) {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    heap_push(rec);
  } else {
    wheel_enqueue(rec);
  }
}

// -------------------------------------------------------------------- wheel

std::uint64_t Scheduler::tick_of(Time t) const {
  const double ticks = t * inv_tick_;
  // Guard the double -> u64 cast: UB at/above 2^64 (and for +inf, should a
  // caller ever schedule at kTimeInfinity).  Monotone: x * c and the cast
  // are monotone, the clamp keeps the tail constant.
  constexpr double kMaxTicks = 9.0e18;
  if (!(ticks < kMaxTicks)) return static_cast<std::uint64_t>(kMaxTicks);
  return static_cast<std::uint64_t>(ticks);
}

bool Scheduler::wheel_target(std::uint64_t tick, unsigned& level, std::size_t& slot) const {
  // tick ^ cur_tick_ has all bits above level L's span clear exactly when
  // tick lies in the same level-L window as the cursor.
  const std::uint64_t x = tick ^ cur_tick_;
  if ((x >> kWheelBits) == 0) {
    level = 0;
    slot = tick & kWheelSlotMask;
  } else if ((x >> (2 * kWheelBits)) == 0) {
    level = 1;
    slot = (tick >> kWheelBits) & kWheelSlotMask;
  } else if ((x >> (3 * kWheelBits)) == 0) {
    level = 2;
    slot = (tick >> (2 * kWheelBits)) & kWheelSlotMask;
  } else {
    return false;  // beyond the top window: far-future overflow
  }
  return true;
}

std::uint32_t Scheduler::node_acquire(const HeapRec& rec) {
  std::uint32_t idx;
  if (node_free_ != kNilNode) {
    idx = node_free_;
    node_free_ = nodes_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  WheelNode& nd = nodes_[idx];
  nd.t = rec.t;
  nd.seq = rec.seq;
  nd.slot = rec.slot;
  nd.gen = rec.gen;
  return idx;
}

void Scheduler::node_release(std::uint32_t idx) {
  nodes_[idx].next = node_free_;
  node_free_ = idx;
}

void Scheduler::wheel_link(unsigned level, std::size_t slot, std::uint32_t node) {
  WheelLevel& lvl = (*levels_)[level];
  nodes_[node].next = lvl.head[slot];
  lvl.head[slot] = node;
  wheel_mark(lvl, slot);
  ++wheel_count_;
}

void Scheduler::wheel_place(const HeapRec& rec, std::uint64_t tick) {
  unsigned level;
  std::size_t slot;
  if (!wheel_target(tick, level, slot)) {
    heap_push(rec);
    return;
  }
  wheel_link(level, slot, node_acquire(rec));
}

void Scheduler::wheel_enqueue(HeapRec rec) {
  const std::uint64_t tick = tick_of(rec.t);
  if (tick <= cur_tick_) {
    // The event lands in (or before) the bucket at the cursor.  The
    // cursor can rest ahead of tick_of(now()) — it advances over
    // cancelled records without executing anything — so ticks at or
    // below it go through ready_, never through a passed wheel slot.
    if (!ready_active_) {
      // Re-open ready_ for this event.  Safe unconditionally: outside a
      // refill, every record parked in the wheel levels or the overflow
      // has a tick strictly greater than the cursor (placement and
      // cascade only ever file ahead of it), hence a strictly later t,
      // so ready_ draining first preserves the global order.
      ready_.clear();
      ready_pos_ = 0;
      ready_active_ = true;
    }
    // Its (t, seq) exceeds everything already consumed (t >= now_,
    // fresh seq), so sorting it into the un-consumed tail preserves the
    // global FIFO order.
    const auto it = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_), ready_.end(), rec, before);
    ready_.insert(it, rec);
    return;
  }
  wheel_place(rec, tick);
}

std::size_t Scheduler::wheel_scan(const WheelLevel& lvl, std::size_t from) const {
  if (from >= kWheelSlots) return kWheelSlots;
  std::size_t word = from >> 6;
  std::uint64_t bits = lvl.occupied[word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    if (++word >= lvl.occupied.size()) return kWheelSlots;
    bits = lvl.occupied[word];
  }
}

void Scheduler::wheel_cascade(unsigned level, std::size_t slot) {
  WheelLevel& lvl = (*levels_)[level];
  std::uint32_t node = lvl.head[slot];
  lvl.head[slot] = kNilNode;
  wheel_unmark(lvl, slot);
  // Relink every node into its lower-level bucket (the cursor entered
  // this slot's window, so the target is always a strictly lower level —
  // never this list).  Nodes move, nothing is copied or allocated.
  while (node != kNilNode) {
    const std::uint32_t next = nodes_[node].next;
    --wheel_count_;
    unsigned lv = 0;
    std::size_t sl = 0;
    [[maybe_unused]] const bool in_wheel = wheel_target(tick_of(nodes_[node].t), lv, sl);
    assert(in_wheel && lv < level);
    wheel_link(lv, sl, node);
    node = next;
  }
}

void Scheduler::wheel_pull_overflow() {
  const std::uint64_t window = cur_tick_ >> (kWheelLevels * kWheelBits);
  while (!heap_.empty() &&
         (tick_of(heap_.front().t) >> (kWheelLevels * kWheelBits)) == window) {
    const HeapRec rec = heap_.front();
    heap_pop_root();
    wheel_place(rec, tick_of(rec.t));
  }
}

bool Scheduler::wheel_refill() {
  ready_.clear();
  ready_pos_ = 0;
  ready_active_ = false;
  auto& lv = *levels_;
  for (;;) {
    if (wheel_count_ == 0) {
      if (heap_.empty()) return false;
      // The wheel ran dry: jump the cursor to the overflow's earliest
      // tick (the root has the minimal (t, seq), and tick_of is
      // monotone) and pull that whole top-level window in.
      cur_tick_ = tick_of(heap_.front().t);
      wheel_pull_overflow();
      continue;
    }
    // Level 0: the next occupied slot in the cursor's 256-tick window is
    // the next bucket to drain (one tick per slot).
    if (const std::size_t s = wheel_scan(lv[0], cur_tick_ & kWheelSlotMask); s < kWheelSlots) {
      cur_tick_ = (cur_tick_ & ~kWheelSlotMask) | s;
      std::uint32_t node = lv[0].head[s];
      lv[0].head[s] = kNilNode;
      wheel_unmark(lv[0], s);
      while (node != kNilNode) {
        const WheelNode& nd = nodes_[node];
        ready_.push_back(HeapRec{nd.t, nd.seq, nd.slot, nd.gen});
        const std::uint32_t next = nd.next;
        node_release(node);
        node = next;
        --wheel_count_;
      }
      std::sort(ready_.begin(), ready_.end(), before);
      ready_active_ = true;
      return true;
    }
    // Level-0 window exhausted: cascade the next occupied level-1 slot
    // (the cursor's own level-1 slot is empty by construction — its
    // events were placed at level 0).
    const std::size_t l1 = (cur_tick_ >> kWheelBits) & kWheelSlotMask;
    if (const std::size_t s = wheel_scan(lv[1], l1 + 1); s < kWheelSlots) {
      constexpr std::uint64_t kSpan1 = (std::uint64_t{1} << (2 * kWheelBits)) - 1;
      cur_tick_ = (cur_tick_ & ~kSpan1) | (static_cast<std::uint64_t>(s) << kWheelBits);
      wheel_cascade(1, s);
      continue;
    }
    const std::size_t l2 = (cur_tick_ >> (2 * kWheelBits)) & kWheelSlotMask;
    if (const std::size_t s = wheel_scan(lv[2], l2 + 1); s < kWheelSlots) {
      constexpr std::uint64_t kSpan2 = (std::uint64_t{1} << (3 * kWheelBits)) - 1;
      cur_tick_ = (cur_tick_ & ~kSpan2) | (static_cast<std::uint64_t>(s) << (2 * kWheelBits));
      wheel_cascade(2, s);
      continue;
    }
    assert(false && "wheel_count_ > 0 but no occupied slot ahead of the cursor");
    return false;
  }
}

// ------------------------------------------------------------------ driving

bool Scheduler::peek_next(HeapRec& out) {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    while (!heap_.empty()) {
      const HeapRec& rec = heap_.front();
      // A slot generation mismatch marks a cancelled (or already reused)
      // event: drop the stale record.
      if (rec_live(rec)) {
        out = rec;
        return true;
      }
      heap_pop_root();
    }
    return false;
  }
  for (;;) {
    while (ready_pos_ < ready_.size()) {
      const HeapRec& rec = ready_[ready_pos_];
      if (rec_live(rec)) {
        out = rec;
        return true;
      }
      ++ready_pos_;  // stale: cancelled or reused
    }
    if (!wheel_refill()) return false;
  }
}

void Scheduler::pop_peeked() {
  if (cfg_.backend == SchedulerBackend::kHeap) {
    heap_pop_root();
  } else {
    ++ready_pos_;
  }
}

bool Scheduler::step() {
  if (stopped_) return false;
  HeapRec rec;
  if (!peek_next(rec)) return false;
  pop_peeked();
  assert(rec.t >= now_);
  now_ = rec.t;
  ++executed_;
  --live_;
  slots_[rec.slot].run(*this, rec.slot);
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(Time t) {
  std::uint64_t n = 0;
  HeapRec rec;
  while (!stopped_) {
    // Not-due events are left in place (peek does not consume), so FIFO
    // order is preserved across run_until boundaries.
    if (!peek_next(rec) || rec.t > t) break;
    pop_peeked();
    now_ = rec.t;
    ++executed_;
    ++n;
    --live_;
    slots_[rec.slot].run(*this, rec.slot);
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace fdgm::sim
