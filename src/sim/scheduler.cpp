#include "sim/scheduler.hpp"

namespace fdgm::sim {

Scheduler::~Scheduler() {
  // Destroy callables of events never executed nor cancelled.
  for (Slot& sl : slots_)
    if (sl.run != nullptr) sl.destroy(sl);
}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t idx) {
  Slot& sl = slots_[idx];
  sl.run = nullptr;
  sl.destroy = nullptr;
  ++sl.gen;  // stale heap records / EventIds stop matching
  sl.next_free = free_head_;
  free_head_ = idx;
}

bool Scheduler::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& sl = slots_[idx];
  if (sl.run == nullptr || sl.gen != gen) return false;
  sl.destroy(sl);
  release_slot(idx);
  --live_;
  return true;
}

void Scheduler::sift_up(std::size_t i) {
  HeapRec rec = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(rec, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = rec;
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapRec rec = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], rec)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = rec;
}

void Scheduler::heap_push(HeapRec rec) {
  heap_.push_back(rec);
  sift_up(heap_.size() - 1);
}

void Scheduler::heap_pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool Scheduler::pop_next(HeapRec& out) {
  while (!heap_.empty()) {
    const HeapRec rec = heap_.front();
    heap_pop_root();
    // A slot generation mismatch marks a cancelled (or already reused)
    // event: drop the stale record.
    if (slots_[rec.slot].run == nullptr || slots_[rec.slot].gen != rec.gen) continue;
    out = rec;
    return true;
  }
  return false;
}

bool Scheduler::step() {
  if (stopped_) return false;
  HeapRec rec;
  if (!pop_next(rec)) return false;
  assert(rec.t >= now_);
  now_ = rec.t;
  ++executed_;
  --live_;
  slots_[rec.slot].run(*this, rec.slot);
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(Time t) {
  std::uint64_t n = 0;
  HeapRec rec;
  while (!stopped_) {
    if (!pop_next(rec)) break;
    if (rec.t > t) {
      // Not due yet: put it back (preserves seq, so FIFO order holds).
      heap_push(rec);
      break;
    }
    now_ = rec.t;
    ++executed_;
    ++n;
    --live_;
    slots_[rec.slot].run(*this, rec.slot);
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace fdgm::sim
