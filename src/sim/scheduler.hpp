// Discrete-event scheduler.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// insertion order (FIFO), which makes every simulation reproducible given
// the same seed.
//
// The event core is allocation-free in steady state:
//  * the pending queue is a 4-ary min-heap of POD records (time, FIFO
//    sequence, slot, generation) over one reusable vector — shallower and
//    more cache-friendly than a binary heap, no node allocations;
//  * callbacks live in a slab of fixed slots with inline small-buffer
//    storage and a freelist; callables that fit the inline buffer (every
//    hot-path closure in the simulator) never touch the heap, oversized
//    ones fall back to a single allocation;
//  * EventIds are generation-counted slot handles, so cancel() is O(1)
//    with no hash set: it destroys the callback, bumps the slot
//    generation, and the stale heap record is skipped when popped.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace fdgm::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot generation << 32 | slot index); 0 is never returned.
using EventId = std::uint64_t;

class Scheduler {
 public:
  /// Convenience alias for callers that need to store a callback; any
  /// move-constructible callable works with schedule_at/schedule_after.
  using Callback = std::function<void()>;

  /// Callables at most this large (and no more aligned than
  /// max_align_t) are stored inline in the slab — no heap allocation.
  static constexpr std::size_t kInlineCallbackBytes = 48;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Current simulated time.  Starts at kTimeZero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `f` at absolute time `t`.  `t` must be >= now().
  template <typename F>
  EventId schedule_at(Time t, F&& f) {
    if (t < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
    const std::uint32_t slot = emplace_callback(std::forward<F>(f));
    heap_.push_back(HeapRec{t, next_seq_++, slot, slots_[slot].gen});
    sift_up(heap_.size() - 1);
    ++live_;
    return make_id(slots_[slot].gen, slot);
  }

  /// Schedule `f` `delay` time units from now.  `delay` must be >= 0.
  template <typename F>
  EventId schedule_after(Time delay, F&& f) {
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// O(1): the callback is destroyed now, the heap record lazily dropped.
  bool cancel(EventId id);

  /// Execute the next pending event, advancing time.  Returns false when
  /// the queue is empty or the scheduler was stopped.
  bool step();

  /// Run until the event queue drains, `stop()` is called, or more than
  /// `max_events` events execute (guard against runaway protocols).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`; afterwards now() == t unless the
  /// scheduler was stopped earlier.  Returns the number of events executed.
  std::uint64_t run_until(Time t);

  /// Stop a run()/run_until() in progress (from inside a callback).
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Resets the stop flag so that run() can be called again.
  void clear_stop() { stopped_ = false; }

  /// Number of events currently pending (cancelled ones excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  /// POD heap record; `seq` breaks timestamp ties FIFO.
  struct HeapRec {
    Time t{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
  };

  struct Slot;
  /// Relocates the callable out of the slot, releases the slot (so the
  /// callable may schedule into it again) and invokes.
  using RunFn = void (*)(Scheduler&, std::uint32_t slot);
  /// Destroys the callable in place (cancellation / scheduler teardown).
  using DestroyFn = void (*)(Slot&);

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineCallbackBytes];
    RunFn run = nullptr;  // null = slot free
    DestroyFn destroy = nullptr;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
  };

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  template <typename F>
  struct InlineOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      Slot& sl = s.slots_[idx];
      F f(std::move(*std::launder(reinterpret_cast<F*>(sl.storage))));
      destroy(sl);
      s.release_slot(idx);  // nested schedule_* calls may reuse it
      f();
    }
    static void destroy(Slot& sl) { std::launder(reinterpret_cast<F*>(sl.storage))->~F(); }
  };

  template <typename F>
  struct HeapOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      F* p = *std::launder(reinterpret_cast<F**>(s.slots_[idx].storage));
      s.release_slot(idx);
      (*p)();
      delete p;
    }
    static void destroy(Slot& sl) { delete *std::launder(reinterpret_cast<F**>(sl.storage)); }
  };

  template <typename F>
  std::uint32_t emplace_callback(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "Scheduler callback must be invocable");
    const std::uint32_t idx = acquire_slot();
    Slot& sl = slots_[idx];
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(sl.storage)) Fn(std::forward<F>(f));
      sl.run = &InlineOps<Fn>::run;
      sl.destroy = &InlineOps<Fn>::destroy;
    } else {
      *reinterpret_cast<Fn**>(sl.storage) = new Fn(std::forward<F>(f));
      sl.run = &HeapOps<Fn>::run;
      sl.destroy = &HeapOps<Fn>::destroy;
    }
    return idx;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  /// Heap order: earliest (t, seq) at the root.
  static bool before(const HeapRec& a, const HeapRec& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(HeapRec rec);
  void heap_pop_root();

  /// Pops the next live event into `out`; false when none remain.
  bool pop_next(HeapRec& out);

  std::vector<HeapRec> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace fdgm::sim
