// Discrete-event scheduler.
//
// Deterministic: events at equal timestamps execute in insertion order
// (FIFO), which makes every simulation reproducible given the same seed.
//
// Three interchangeable pending-queue backends produce bit-identical
// event orders (every pop returns the globally smallest (time, seq)
// record):
//
//  * kHeap — a 4-ary min-heap of POD records over one reusable vector;
//    O(log m) per schedule/fire.  The right choice for small event
//    populations (the paper's n <= 7 runs).
//  * kWheel — a hierarchical timing wheel (Varghese-Lauck): three levels
//    of 256 slots each bucket the near future at increasing granularity
//    (level 0 = one tick per slot); events beyond the top window spill
//    into the 4-ary heap as overflow and are pulled in when the cursor
//    reaches their window.  Schedule and cancel are O(1); each event is
//    touched at most `levels` times on its way to execution.  Buckets are
//    sorted by (time, seq) when drained, which restores the exact global
//    FIFO order of the heap backend.  The right choice for the large-n
//    runs, where the failure-detector layer keeps O(n^2) short-horizon
//    timers alive at once.
//  * kParallel — conservative windowed PDES across a worker pool.
//    Events are partitioned by owning process (plus one shared partition
//    for process-global events: the wire, injected faults, anything
//    scheduled from a serial context); each partition is a 4-ary heap
//    with its own callback slab.  The coordinator repeatedly picks the
//    globally earliest event; when several node partitions have events
//    inside the safe horizon — bounded by the earliest shared event, by
//    now + lookahead (the minimum cross-partition latency installed via
//    set_lookahead), and by the run_until limit — it runs one *round*:
//    workers execute their partitions' sub-horizon events concurrently,
//    giving events scheduled into their own partition provisional FIFO
//    seqs so intra-partition chains execute in-pass, and staging every
//    cross-partition operation (shared schedules, shared-resource jobs,
//    shared-timer cancels, external side effects).  The round barrier
//    then replays the per-partition execution logs in exact global
//    (time, seq) order, assigning the real FIFO seqs in the order the
//    sequential backends would have and patching the provisional ones,
//    so the observable firing order, every RNG draw, and the executed
//    event count are identical to kHeap/kWheel for any thread count.
//
// The event core is allocation-free in steady state with all backends:
//  * heap records are POD in reusable vectors (wheel buckets retain their
//    capacity across laps, like the heap's backing vector);
//  * callbacks live in a slab of fixed slots with inline small-buffer
//    storage and a freelist; callables that fit the inline buffer (every
//    hot-path closure in the simulator) never touch the heap, oversized
//    ones fall back to a single allocation;
//  * EventIds are generation-counted slot handles, so cancel() is O(1)
//    with no hash set: it destroys the callback, bumps the slot
//    generation, and the stale record is skipped when its bucket drains.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/exec_ctx.hpp"
#include "sim/time.hpp"

namespace fdgm::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot generation << 32 | slot index); 0 is never returned.
using EventId = std::uint64_t;

/// Pending-queue implementation; see the file comment.  All backends
/// produce bit-identical event orders.
enum class SchedulerBackend : std::uint8_t { kHeap, kWheel, kParallel };

[[nodiscard]] const char* scheduler_backend_name(SchedulerBackend b);

struct SchedulerConfig {
  SchedulerBackend backend = SchedulerBackend::kHeap;
  /// Width of one level-0 wheel bucket in simulated ms.  Only the wheel
  /// cursor's work per empty stretch depends on it, never correctness:
  /// buckets are re-sorted by (time, seq) when drained.  The default
  /// (1/16 ms) keeps hot protocol timers (O(1 ms) apart) in buckets of a
  /// handful of events while the 3x8-bit hierarchy still spans ~17
  /// simulated minutes before overflow.
  double wheel_tick_ms = 1.0 / 16.0;
  /// kParallel only: size of the worker pool, the coordinator thread
  /// included (so `1` runs rounds on the caller alone — still through
  /// the staging machinery, which is what the determinism tests
  /// exercise).  0 = one worker per hardware thread.  Results never
  /// depend on this value, only wall-clock time does.
  int threads = 0;
};

class Scheduler {
 public:
  /// Convenience alias for callers that need to store a callback; any
  /// move-constructible callable works with schedule_at/schedule_after.
  using Callback = std::function<void()>;

  /// Callables at most this large (and no more aligned than
  /// max_align_t) are stored inline in the slab — no heap allocation.
  static constexpr std::size_t kInlineCallbackBytes = 48;

  /// Applies one resource job to a resource object at time `at` and
  /// returns the completion time (see resource_enqueue).
  using ResourceCommitFn = Time (*)(void* resource, Time at, double service);

  Scheduler() : Scheduler(SchedulerConfig{}) {}
  explicit Scheduler(const SchedulerConfig& cfg);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  [[nodiscard]] SchedulerBackend backend() const { return cfg_.backend; }

  /// Current simulated time.  Starts at kTimeZero.  During event
  /// execution under kParallel this is the executing event's timestamp
  /// regardless of which thread asks.
  [[nodiscard]] Time now() const {
    const ExecCtx* c = exec_ctx();
    if (c != nullptr && c->sched == this) return c->now;
    return now_;
  }

  // ---------------------------------------------------------- partitions

  /// kParallel: declare the owner space (owners 0..n-1 each get a
  /// partition; kOwnerShared events stay in the shared partition 0).
  /// Must be called before anything is scheduled.  No-op for the
  /// sequential backends, which keep everything in partition 0.
  void set_partitions(int owners);

  [[nodiscard]] int partitions() const { return static_cast<int>(parts_.size()); }

  /// kParallel: install the conservative lookahead — the minimum
  /// simulated latency of any cross-partition interaction (the
  /// contention model's minimum wire latency).  Polled once per round;
  /// a missing or non-positive lookahead degrades to serial stepping.
  void set_lookahead(std::function<double()> fn) { lookahead_ = std::move(fn); }

  /// Worker-pool width a run would use (after resolving threads = 0).
  [[nodiscard]] int resolved_threads() const;

  // ---------------------------------------------------------- scheduling

  /// Schedule `f` at absolute time `t`.  `t` must be >= now().  The new
  /// event inherits the owner of the currently executing event (shared
  /// when called outside event execution).
  template <typename F>
  EventId schedule_at(Time t, F&& f) {
    const ExecCtx* c = exec_ctx();
    const int owner = (c != nullptr && c->sched == this) ? c->owner : kOwnerShared;
    return schedule_at_owned(owner, t, std::forward<F>(f));
  }

  /// Schedule `f` `delay` time units from now.  `delay` must be >= 0.
  template <typename F>
  EventId schedule_after(Time delay, F&& f) {
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_after: negative delay");
    return schedule_at(now() + delay, std::forward<F>(f));
  }

  /// Schedule `f` at `t` with an explicit owner (a process id, or
  /// kOwnerShared for events that touch cross-process state and must
  /// execute serially under kParallel).  Sequential backends ignore the
  /// owner entirely.
  template <typename F>
  EventId schedule_at_owned(int owner, Time t, F&& f) {
    ExecCtx* c = exec_ctx();
    if (c != nullptr && c->staging && c->sched == this) {
      if (t < c->now)
        throw std::invalid_argument("Scheduler::schedule_at: time in the past");
      Partition& p = *static_cast<Partition*>(c->part);
      const std::uint32_t target = partition_of(owner);
      if (target == p.index) return stage_own_schedule(p, t, std::forward<F>(f));
      // Cross-partition schedules from workers are only legal toward the
      // shared partition, at or beyond the round bound: in this model
      // they are exactly the wire jobs, whose completion lags by at
      // least the lookahead.  Direct node-to-node schedules would breach
      // the conservative horizon.
      assert(target == 0 && "worker scheduled into another node partition");
      assert(t >= round_bound_t_ && "staged shared schedule inside the round horizon");
      const std::uint32_t slot = emplace_callback_in(p, std::forward<F>(f));
      const std::uint32_t gen = slot_ref(slot).gen;
      StagedOp op{};
      op.kind = StagedOp::Kind::kSchedule;
      op.owner = owner;
      op.slot = slot;
      op.gen = gen;
      op.t = t;
      p.ops.push_back(op);
      ++p.live_delta;
      return make_id(gen, slot);
    }
    if (t < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
    Partition& p = parts_[partition_of(owner)];
    const std::uint32_t slot = emplace_callback_in(p, std::forward<F>(f));
    const std::uint32_t gen = slot_ref(slot).gen;
    serial_insert(p, HeapRec{t, next_seq_++, slot, gen});
    ++live_;
    return make_id(gen, slot);
  }

  template <typename F>
  EventId schedule_after_owned(int owner, Time delay, F&& f) {
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_after: negative delay");
    return schedule_at_owned(owner, now() + delay, std::forward<F>(f));
  }

  /// Runs one job through a resource queue (see net::Resource, which is
  /// the only caller): applies `commit` — which advances the resource's
  /// free_at and returns the completion time — and schedules `f` at that
  /// completion, owned by `owner`.  Under kParallel, workers apply jobs
  /// on their own partition's resources immediately (only their events
  /// touch those during a round) and stage jobs on shared resources for
  /// in-order replay at the barrier.
  template <typename F>
  void resource_enqueue(void* resource, ResourceCommitFn commit, int owner, double service,
                        F&& f) {
    ExecCtx* c = exec_ctx();
    if (c != nullptr && c->staging && c->sched == this) {
      Partition& p = *static_cast<Partition*>(c->part);
      const std::uint32_t target = partition_of(owner);
      if (target == p.index) {
        const Time done = commit(resource, c->now, service);
        stage_own_schedule(p, done, std::forward<F>(f));
        return;
      }
      assert(target == 0 && "worker queued a job on another node partition's resource");
      const std::uint32_t slot = emplace_callback_in(p, std::forward<F>(f));
      StagedOp op{};
      op.kind = StagedOp::Kind::kResource;
      op.owner = owner;
      op.slot = slot;
      op.gen = slot_ref(slot).gen;
      op.service = service;
      op.obj = resource;
      op.fn.commit = commit;
      p.ops.push_back(op);
      ++p.live_delta;
      return;
    }
    const Time done = commit(resource, now(), service);
    schedule_at_owned(owner, done, std::forward<F>(f));
  }

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// O(1): the callback is destroyed now, the queued record lazily dropped.
  /// Workers may cancel events of their own partition and of the shared
  /// partition (the latter is staged: shared events cannot fire inside a
  /// round, so the observable outcome is the sequential one).
  bool cancel(EventId id);

  /// Execute the next pending event, advancing time.  Returns false when
  /// the queue is empty or the scheduler was stopped.  kParallel steps
  /// serially (exact sequential semantics, no staging).
  bool step();

  /// Run until the event queue drains, `stop()` is called, or more than
  /// `max_events` events execute (guard against runaway protocols).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`; afterwards now() == t unless the
  /// scheduler was stopped earlier.  Returns the number of events
  /// executed.  This is the entry point that engages kParallel's round
  /// engine; under kParallel, stop() takes effect at event (serial) or
  /// round (parallel) granularity.
  std::uint64_t run_until(Time t);

  /// Stop a run()/run_until() in progress (from inside a callback).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  /// Resets the stop flag so that run() can be called again.
  void clear_stop() { stopped_.store(false, std::memory_order_relaxed); }

  /// Number of events currently pending (cancelled ones excluded).
  /// kParallel: only meaningful outside a round (serial points).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  /// POD queue record; `seq` breaks timestamp ties FIFO.
  struct HeapRec {
    Time t{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
  };

  struct Slot;
  /// Relocates the callable out of the slot, releases the slot (so the
  /// callable may schedule into it again) and invokes.
  using RunFn = void (*)(Scheduler&, std::uint32_t slot);
  /// Destroys the callable in place (cancellation / scheduler teardown).
  using DestroyFn = void (*)(Slot&);

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineCallbackBytes];
    RunFn run = nullptr;  // null = slot free
    DestroyFn destroy = nullptr;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
  };

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  // --------------------------------------------------------- partitions
  /// Slot indices pack (partition << kPartShift | local slot), so
  /// EventIds stay single-word and release_slot finds the owning slab
  /// without lookup.  Sequential backends use partition 0 only, which
  /// keeps their slot indices identical to the pre-partition layout.
  static constexpr unsigned kPartShift = 24;
  static constexpr std::uint32_t kLocalSlotMask = (std::uint32_t{1} << kPartShift) - 1;
  /// Provisional seqs carry the top bit: they sort after every real seq
  /// (correct, since in-pass children are scheduled after everything
  /// already pending) and are patched to real seqs at the round barrier.
  static constexpr std::uint64_t kProvBit = std::uint64_t{1} << 63;

  /// One cross-partition operation recorded by a worker, replayed
  /// serially at the barrier in exact global order.
  struct StagedOp {
    enum class Kind : std::uint8_t { kSchedule, kResource, kEffect, kCancel };
    Kind kind{};
    int owner{};           // kSchedule/kResource: owner of the new event
    std::uint32_t slot{};  // packed slot (kSchedule/kResource/kCancel)
    std::uint32_t gen{};
    Time t{};              // kSchedule: absolute fire time
    std::uint64_t prov{};  // kSchedule into own partition: provisional seq
    double service{};      // kResource
    void* obj{};           // kResource: resource; kEffect: receiver
    union Fn {
      ResourceCommitFn commit;
      EffectFn effect;
    } fn{};
    alignas(std::max_align_t) std::byte args[kMaxEffectArgBytes];  // kEffect
  };

  /// One executed event, in local order, with its staged-op range.
  struct ExecRec {
    Time t{};
    std::uint64_t seq{};  // provisional or real
    std::uint32_t ops_begin{};
    std::uint32_t ops_end{};
  };

  struct alignas(64) Partition {
    std::vector<HeapRec> heap;  // kParallel pending queue (4-ary)
    std::vector<Slot> slots;
    std::uint32_t free_head = kNoSlot;
    std::uint32_t index = 0;
    // Round-scoped worker state, consumed and cleared at the barrier.
    std::uint64_t prov_next = 0;
    std::vector<std::uint64_t> patch;  // provisional counter -> real seq
    std::vector<StagedOp> ops;
    std::vector<ExecRec> log;
    std::uint64_t round_executed = 0;
    std::int64_t live_delta = 0;
  };

  [[nodiscard]] std::uint32_t partition_of(int owner) const {
    const std::uint32_t p = static_cast<std::uint32_t>(owner + 1);
    return p < parts_.size() ? p : 0;
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t idx) {
    return parts_[idx >> kPartShift].slots[idx & kLocalSlotMask];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t idx) const {
    return parts_[idx >> kPartShift].slots[idx & kLocalSlotMask];
  }

  // ------------------------------------------------------------- wheel
  static constexpr unsigned kWheelBits = 8;
  static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
  static constexpr unsigned kWheelLevels = 3;
  static constexpr std::uint64_t kWheelSlotMask = kWheelSlots - 1;
  static constexpr std::uint32_t kNilNode = UINT32_MAX;

  /// Bucket membership is an intrusive singly-linked list over a pooled
  /// node slab (nodes_/node_free_): pushing, cascading and draining never
  /// allocate, no matter which buckets the cursor visits — per-bucket
  /// vectors would re-allocate on every fresh level-1/2 lap.
  struct WheelNode {
    Time t{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
    std::uint32_t next{};
  };

  struct WheelLevel {
    std::array<std::uint32_t, kWheelSlots> head;
    /// Occupancy bitmap: bit s set <=> head[s] != kNilNode.
    std::array<std::uint64_t, kWheelSlots / 64> occupied{};
    WheelLevel() { head.fill(kNilNode); }
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  template <typename F>
  struct InlineOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      Slot& sl = s.slot_ref(idx);
      F f(std::move(*std::launder(reinterpret_cast<F*>(sl.storage))));
      destroy(sl);
      s.release_slot(idx);  // nested schedule_* calls may reuse it
      f();
    }
    static void destroy(Slot& sl) { std::launder(reinterpret_cast<F*>(sl.storage))->~F(); }
  };

  template <typename F>
  struct HeapOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      F* p = *std::launder(reinterpret_cast<F**>(s.slot_ref(idx).storage));
      s.release_slot(idx);
      (*p)();
      delete p;
    }
    static void destroy(Slot& sl) { delete *std::launder(reinterpret_cast<F**>(sl.storage)); }
  };

  template <typename F>
  std::uint32_t emplace_callback_in(Partition& p, F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "Scheduler callback must be invocable");
    const std::uint32_t idx = acquire_slot(p);
    Slot& sl = slot_ref(idx);
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(sl.storage)) Fn(std::forward<F>(f));
      sl.run = &InlineOps<Fn>::run;
      sl.destroy = &InlineOps<Fn>::destroy;
    } else {
      *reinterpret_cast<Fn**>(sl.storage) = new Fn(std::forward<F>(f));
      sl.run = &HeapOps<Fn>::run;
      sl.destroy = &HeapOps<Fn>::destroy;
    }
    return idx;
  }

  /// Worker path: schedule into the executing worker's own partition
  /// with a provisional seq, so intra-partition chains execute in-pass.
  template <typename F>
  EventId stage_own_schedule(Partition& p, Time t, F&& f) {
    const std::uint32_t slot = emplace_callback_in(p, std::forward<F>(f));
    const std::uint32_t gen = slot_ref(slot).gen;
    StagedOp op{};
    op.kind = StagedOp::Kind::kSchedule;
    op.owner = static_cast<int>(p.index) - 1;
    op.slot = slot;
    op.gen = gen;
    op.t = t;
    op.prov = kProvBit | p.prov_next++;
    p.ops.push_back(op);
    heap_push_on(p.heap, HeapRec{t, op.prov, slot, gen});
    ++p.live_delta;
    return make_id(gen, slot);
  }

  std::uint32_t acquire_slot(Partition& p);
  void release_slot(std::uint32_t idx);

  [[nodiscard]] bool rec_live(const HeapRec& rec) const {
    const Slot& sl = slot_ref(rec.slot);
    return sl.run != nullptr && sl.gen == rec.gen;
  }

  /// Queue order: earliest (t, seq) first.
  static bool before(const HeapRec& a, const HeapRec& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  static void sift_up(std::vector<HeapRec>& h, std::size_t i);
  static void sift_down(std::vector<HeapRec>& h, std::size_t i);
  static void heap_push_on(std::vector<HeapRec>& h, HeapRec rec);
  static void heap_pop_root_on(std::vector<HeapRec>& h);

  /// Sequential insert: dispatches to the configured backend's queue and
  /// maintains the kParallel node-minimum cache.
  void serial_insert(Partition& p, const HeapRec& rec);

  /// Backend dispatch for schedule_at (sequential backends).
  void enqueue(HeapRec rec);

  /// Exposes the next live event without consuming it; false when none
  /// remain.  The wheel backend advances its cursor (cascading levels and
  /// pulling overflow) as a side effect, which is harmless: the cursor
  /// only moves over empty or drained buckets.
  bool peek_next(HeapRec& out);
  /// Consumes the record last returned by peek_next.
  void pop_peeked();

  // ------------------------------------------------- kParallel internals
  struct ParallelEngine;

  /// Drops stale roots; false when the partition queue is empty.
  bool part_peek(Partition& p, HeapRec& out);
  void recompute_node_min();
  /// Globally earliest live event: partition index into `out_part`,
  /// record into `out`; false when nothing is pending.
  bool global_min(HeapRec& out, std::uint32_t& out_part);
  /// Pops and executes one event serially with exact sequential
  /// semantics (real seqs, direct inserts).  Pre: `rec` is p's root and
  /// the global minimum.
  void exec_direct(Partition& p, const HeapRec& rec);
  std::uint64_t run_until_parallel(Time limit);
  bool step_parallel();
  /// Executes one staged round bounded by (round_bound_t_,
  /// round_bound_seq_); returns the number of events executed.
  std::uint64_t run_round();
  void run_partition_pass(Partition& p);
  void run_worker_passes(int worker);
  void worker_main(int worker);
  void merge_round();
  void replay_op(Partition& src, const StagedOp& op, Time t);
  void ensure_engine();

  friend void stage_effect_raw(EffectFn fn, void* obj, const void* args, std::size_t size);

  // Wheel internals (all no-ops under the heap backend).
  [[nodiscard]] std::uint64_t tick_of(Time t) const;
  void wheel_enqueue(HeapRec rec);
  /// Decides level/slot for `tick` relative to cur_tick_; returns false
  /// when the tick lies beyond the top window (overflow heap).
  [[nodiscard]] bool wheel_target(std::uint64_t tick, unsigned& level, std::size_t& slot) const;
  /// Places `rec` into the correct level relative to cur_tick_, or into
  /// the overflow heap.  Pre: its tick >= cur_tick_, ready bucket aside.
  void wheel_place(const HeapRec& rec, std::uint64_t tick);
  std::uint32_t node_acquire(const HeapRec& rec);
  void node_release(std::uint32_t idx);
  void wheel_link(unsigned level, std::size_t slot, std::uint32_t node);
  /// Refills ready_ with the next non-empty bucket; false when the wheel
  /// and the overflow heap are both empty.
  bool wheel_refill();
  void wheel_cascade(unsigned level, std::size_t slot);
  void wheel_pull_overflow();
  /// First occupied slot >= from at `level`, or kWheelSlots when none.
  [[nodiscard]] std::size_t wheel_scan(const WheelLevel& lvl, std::size_t from) const;
  void wheel_mark(WheelLevel& lvl, std::size_t slot) {
    lvl.occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void wheel_unmark(WheelLevel& lvl, std::size_t slot) {
    lvl.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }

  SchedulerConfig cfg_;
  double inv_tick_ = 0.0;
  bool parallel_ = false;

  /// Heap backend's queue; the wheel backend's far-future overflow.
  /// Unused under kParallel (each partition has its own heap).
  std::vector<HeapRec> heap_;

  /// Wheel state (allocated only for the wheel backend).
  std::unique_ptr<std::array<WheelLevel, kWheelLevels>> levels_;
  std::vector<WheelNode> nodes_;
  std::uint32_t node_free_ = kNilNode;
  /// Cursor: every live wheel/overflow event has tick >= cur_tick_; the
  /// bucket at cur_tick_ itself lives in ready_ while draining.
  std::uint64_t cur_tick_ = 0;
  /// Records of the bucket being drained, sorted ascending by (t, seq)
  /// and consumed front-to-back.  Events scheduled mid-drain whose tick
  /// is <= cur_tick_ are sorted into the un-consumed tail.
  std::vector<HeapRec> ready_;
  std::size_t ready_pos_ = 0;
  bool ready_active_ = false;
  /// Records parked in the wheel levels (stale ones included); excludes
  /// ready_ and the overflow heap.
  std::size_t wheel_count_ = 0;

  /// Callback slabs (+ kParallel pending queues).  Always at least one
  /// element; sequential backends use parts_[0] exclusively.
  std::vector<Partition> parts_{1};

  std::function<double()> lookahead_;
  std::unique_ptr<ParallelEngine> engine_;
  /// Exclusive key bound of the round in flight (workers read it).
  Time round_bound_t_ = kTimeZero;
  std::uint64_t round_bound_seq_ = 0;
  /// Cache of the earliest node-partition event, so serial stretches of
  /// shared events don't rescan every partition per event.  Maintained
  /// by serial_insert; invalidated by node-event execution, rounds, and
  /// cancels into the cached partition.
  bool node_min_valid_ = false;
  std::uint32_t node_min_part_ = 0;  // 0 = no node-partition events
  Time node_min_t_ = kTimeZero;
  std::uint64_t node_min_seq_ = 0;

  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace fdgm::sim
