// Discrete-event scheduler.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// insertion order (FIFO), which makes every simulation reproducible given
// the same seed.  Events are arbitrary callbacks; cancellation is O(1)
// (lazy deletion from the heap).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace fdgm::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.  Starts at kTimeZero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t`.  `t` must be >= now().
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` `delay` time units from now.  `delay` must be >= 0.
  EventId schedule_after(Time delay, Callback cb);

  /// Cancel a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Execute the next pending event, advancing time.  Returns false when
  /// the queue is empty or the scheduler was stopped.
  bool step();

  /// Run until the event queue drains, `stop()` is called, or more than
  /// `max_events` events execute (guard against runaway protocols).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`; afterwards now() == t unless the
  /// scheduler was stopped earlier.  Returns the number of events executed.
  std::uint64_t run_until(Time t);

  /// Stop a run()/run_until() in progress (from inside a callback).
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Resets the stop flag so that run() can be called again.
  void clear_stop() { stopped_ = false; }

  /// Number of events currently pending (including lazily cancelled ones
  /// not yet popped).
  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time t{};
    EventId id{};
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = kTimeZero;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace fdgm::sim
