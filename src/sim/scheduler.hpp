// Discrete-event scheduler.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// insertion order (FIFO), which makes every simulation reproducible given
// the same seed.
//
// Two interchangeable pending-queue backends produce bit-identical event
// orders (every pop returns the globally smallest (time, seq) record):
//
//  * kHeap — a 4-ary min-heap of POD records over one reusable vector;
//    O(log m) per schedule/fire.  The right choice for small event
//    populations (the paper's n <= 7 runs).
//  * kWheel — a hierarchical timing wheel (Varghese-Lauck): three levels
//    of 256 slots each bucket the near future at increasing granularity
//    (level 0 = one tick per slot); events beyond the top window spill
//    into the 4-ary heap as overflow and are pulled in when the cursor
//    reaches their window.  Schedule and cancel are O(1); each event is
//    touched at most `levels` times on its way to execution.  Buckets are
//    sorted by (time, seq) when drained, which restores the exact global
//    FIFO order of the heap backend.  The right choice for the large-n
//    runs, where the failure-detector layer keeps O(n^2) short-horizon
//    timers alive at once.
//
// The event core is allocation-free in steady state with both backends:
//  * heap records are POD in reusable vectors (wheel buckets retain their
//    capacity across laps, like the heap's backing vector);
//  * callbacks live in a slab of fixed slots with inline small-buffer
//    storage and a freelist; callables that fit the inline buffer (every
//    hot-path closure in the simulator) never touch the heap, oversized
//    ones fall back to a single allocation;
//  * EventIds are generation-counted slot handles, so cancel() is O(1)
//    with no hash set: it destroys the callback, bumps the slot
//    generation, and the stale record is skipped when its bucket drains.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace fdgm::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot generation << 32 | slot index); 0 is never returned.
using EventId = std::uint64_t;

/// Pending-queue implementation; see the file comment.  Both backends
/// produce bit-identical event orders.
enum class SchedulerBackend : std::uint8_t { kHeap, kWheel };

[[nodiscard]] const char* scheduler_backend_name(SchedulerBackend b);

struct SchedulerConfig {
  SchedulerBackend backend = SchedulerBackend::kHeap;
  /// Width of one level-0 wheel bucket in simulated ms.  Only the wheel
  /// cursor's work per empty stretch depends on it, never correctness:
  /// buckets are re-sorted by (time, seq) when drained.  The default
  /// (1/16 ms) keeps hot protocol timers (O(1 ms) apart) in buckets of a
  /// handful of events while the 3x8-bit hierarchy still spans ~17
  /// simulated minutes before overflow.
  double wheel_tick_ms = 1.0 / 16.0;
};

class Scheduler {
 public:
  /// Convenience alias for callers that need to store a callback; any
  /// move-constructible callable works with schedule_at/schedule_after.
  using Callback = std::function<void()>;

  /// Callables at most this large (and no more aligned than
  /// max_align_t) are stored inline in the slab — no heap allocation.
  static constexpr std::size_t kInlineCallbackBytes = 48;

  Scheduler() : Scheduler(SchedulerConfig{}) {}
  explicit Scheduler(const SchedulerConfig& cfg);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  [[nodiscard]] SchedulerBackend backend() const { return cfg_.backend; }

  /// Current simulated time.  Starts at kTimeZero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `f` at absolute time `t`.  `t` must be >= now().
  template <typename F>
  EventId schedule_at(Time t, F&& f) {
    if (t < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
    const std::uint32_t slot = emplace_callback(std::forward<F>(f));
    const std::uint32_t gen = slots_[slot].gen;
    enqueue(HeapRec{t, next_seq_++, slot, gen});
    ++live_;
    return make_id(gen, slot);
  }

  /// Schedule `f` `delay` time units from now.  `delay` must be >= 0.
  template <typename F>
  EventId schedule_after(Time delay, F&& f) {
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// O(1): the callback is destroyed now, the queued record lazily dropped.
  bool cancel(EventId id);

  /// Execute the next pending event, advancing time.  Returns false when
  /// the queue is empty or the scheduler was stopped.
  bool step();

  /// Run until the event queue drains, `stop()` is called, or more than
  /// `max_events` events execute (guard against runaway protocols).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= `t`; afterwards now() == t unless the
  /// scheduler was stopped earlier.  Returns the number of events executed.
  std::uint64_t run_until(Time t);

  /// Stop a run()/run_until() in progress (from inside a callback).
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Resets the stop flag so that run() can be called again.
  void clear_stop() { stopped_ = false; }

  /// Number of events currently pending (cancelled ones excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  /// POD queue record; `seq` breaks timestamp ties FIFO.
  struct HeapRec {
    Time t{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
  };

  struct Slot;
  /// Relocates the callable out of the slot, releases the slot (so the
  /// callable may schedule into it again) and invokes.
  using RunFn = void (*)(Scheduler&, std::uint32_t slot);
  /// Destroys the callable in place (cancellation / scheduler teardown).
  using DestroyFn = void (*)(Slot&);

  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineCallbackBytes];
    RunFn run = nullptr;  // null = slot free
    DestroyFn destroy = nullptr;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
  };

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  // ------------------------------------------------------------- wheel
  static constexpr unsigned kWheelBits = 8;
  static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
  static constexpr unsigned kWheelLevels = 3;
  static constexpr std::uint64_t kWheelSlotMask = kWheelSlots - 1;
  static constexpr std::uint32_t kNilNode = UINT32_MAX;

  /// Bucket membership is an intrusive singly-linked list over a pooled
  /// node slab (nodes_/node_free_): pushing, cascading and draining never
  /// allocate, no matter which buckets the cursor visits — per-bucket
  /// vectors would re-allocate on every fresh level-1/2 lap.
  struct WheelNode {
    Time t{};
    std::uint64_t seq{};
    std::uint32_t slot{};
    std::uint32_t gen{};
    std::uint32_t next{};
  };

  struct WheelLevel {
    std::array<std::uint32_t, kWheelSlots> head;
    /// Occupancy bitmap: bit s set <=> head[s] != kNilNode.
    std::array<std::uint64_t, kWheelSlots / 64> occupied{};
    WheelLevel() { head.fill(kNilNode); }
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  template <typename F>
  struct InlineOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      Slot& sl = s.slots_[idx];
      F f(std::move(*std::launder(reinterpret_cast<F*>(sl.storage))));
      destroy(sl);
      s.release_slot(idx);  // nested schedule_* calls may reuse it
      f();
    }
    static void destroy(Slot& sl) { std::launder(reinterpret_cast<F*>(sl.storage))->~F(); }
  };

  template <typename F>
  struct HeapOps {
    static void run(Scheduler& s, std::uint32_t idx) {
      F* p = *std::launder(reinterpret_cast<F**>(s.slots_[idx].storage));
      s.release_slot(idx);
      (*p)();
      delete p;
    }
    static void destroy(Slot& sl) { delete *std::launder(reinterpret_cast<F**>(sl.storage)); }
  };

  template <typename F>
  std::uint32_t emplace_callback(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "Scheduler callback must be invocable");
    const std::uint32_t idx = acquire_slot();
    Slot& sl = slots_[idx];
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(sl.storage)) Fn(std::forward<F>(f));
      sl.run = &InlineOps<Fn>::run;
      sl.destroy = &InlineOps<Fn>::destroy;
    } else {
      *reinterpret_cast<Fn**>(sl.storage) = new Fn(std::forward<F>(f));
      sl.run = &HeapOps<Fn>::run;
      sl.destroy = &HeapOps<Fn>::destroy;
    }
    return idx;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  [[nodiscard]] bool rec_live(const HeapRec& rec) const {
    const Slot& sl = slots_[rec.slot];
    return sl.run != nullptr && sl.gen == rec.gen;
  }

  /// Queue order: earliest (t, seq) first.
  static bool before(const HeapRec& a, const HeapRec& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(HeapRec rec);
  void heap_pop_root();

  /// Backend dispatch for schedule_at.
  void enqueue(HeapRec rec);

  /// Exposes the next live event without consuming it; false when none
  /// remain.  The wheel backend advances its cursor (cascading levels and
  /// pulling overflow) as a side effect, which is harmless: the cursor
  /// only moves over empty or drained buckets.
  bool peek_next(HeapRec& out);
  /// Consumes the record last returned by peek_next.
  void pop_peeked();

  // Wheel internals (all no-ops under the heap backend).
  [[nodiscard]] std::uint64_t tick_of(Time t) const;
  void wheel_enqueue(HeapRec rec);
  /// Decides level/slot for `tick` relative to cur_tick_; returns false
  /// when the tick lies beyond the top window (overflow heap).
  [[nodiscard]] bool wheel_target(std::uint64_t tick, unsigned& level, std::size_t& slot) const;
  /// Places `rec` into the correct level relative to cur_tick_, or into
  /// the overflow heap.  Pre: its tick >= cur_tick_, ready bucket aside.
  void wheel_place(const HeapRec& rec, std::uint64_t tick);
  std::uint32_t node_acquire(const HeapRec& rec);
  void node_release(std::uint32_t idx);
  void wheel_link(unsigned level, std::size_t slot, std::uint32_t node);
  /// Refills ready_ with the next non-empty bucket; false when the wheel
  /// and the overflow heap are both empty.
  bool wheel_refill();
  void wheel_cascade(unsigned level, std::size_t slot);
  void wheel_pull_overflow();
  /// First occupied slot >= from at `level`, or kWheelSlots when none.
  [[nodiscard]] std::size_t wheel_scan(const WheelLevel& lvl, std::size_t from) const;
  void wheel_mark(WheelLevel& lvl, std::size_t slot) {
    lvl.occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void wheel_unmark(WheelLevel& lvl, std::size_t slot) {
    lvl.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }

  SchedulerConfig cfg_;
  double inv_tick_ = 0.0;

  /// Heap backend's queue; the wheel backend's far-future overflow.
  std::vector<HeapRec> heap_;

  /// Wheel state (allocated only for the wheel backend).
  std::unique_ptr<std::array<WheelLevel, kWheelLevels>> levels_;
  std::vector<WheelNode> nodes_;
  std::uint32_t node_free_ = kNilNode;
  /// Cursor: every live wheel/overflow event has tick >= cur_tick_; the
  /// bucket at cur_tick_ itself lives in ready_ while draining.
  std::uint64_t cur_tick_ = 0;
  /// Records of the bucket being drained, sorted ascending by (t, seq)
  /// and consumed front-to-back.  Events scheduled mid-drain whose tick
  /// is <= cur_tick_ are sorted into the un-consumed tail.
  std::vector<HeapRec> ready_;
  std::size_t ready_pos_ = 0;
  bool ready_active_ = false;
  /// Records parked in the wheel levels (stale ones included); excludes
  /// ready_ and the overflow heap.
  std::size_t wheel_count_ = 0;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace fdgm::sim
