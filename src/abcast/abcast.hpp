// Common interface of the two uniform atomic broadcast implementations.
//
// The experiment harness interacts with both algorithms exclusively through
// this interface: a submit/credit pair on any process — a_broadcast() plus
// can_submit()/ReadySink back-pressure — and a DeliverSink that reports
// every A-delivery (process-local) with the original send time, so the
// harness can compute the paper's latency metric
//     L = (min_i deliver_time_i) - broadcast_time.
//
// Batching (BatchConfig): the base class owns the submission hot path.
// With batching disabled, a_broadcast() hands each message straight to the
// algorithm (submit_now) — bit-identical to the unbatched tree: no timers,
// no RNG draws, no extra events.  With batching enabled, submissions
// accumulate in a local queue and are flushed to the algorithm as one
// batch (flush_batch) — one ordering decision (one consensus proposal /
// one sequencer assignment round) amortized over k messages.  The batch
// target k adapts to the contention signal the network model exposes
// (wire + local CPU backlog): an idle system flushes immediately (k = 1,
// latency first), a congested one batches harder (throughput first).  A
// flush timer bounds the queueing delay of partial batches.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "net/system.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace fdgm::abcast {

/// Globally unique id of an A-broadcast message: (origin, per-origin seq).
struct MsgId {
  net::ProcessId origin = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const MsgId&, const MsgId&) = default;
  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

struct MsgIdHash {
  std::size_t operator()(const MsgId& id) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.origin)) << 40) ^ id.seq);
  }
};

/// The application-level message carried through atomic broadcast.
class AppMessage final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 1;

  AppMessage(MsgId id, sim::Time sent_at) : Payload(kProto, kKind), id(id), sent_at(sent_at) {}

  MsgId id;
  sim::Time sent_at;  // A-broadcast timestamp (for the latency metric)
};

using AppMessagePtr = const AppMessage*;

/// A flushed submission batch: k application messages that travel the
/// ordering path as one payload (one rbcast broadcast in the FD stack, one
/// DATA multicast in the GM stack) while keeping their per-message ids and
/// send timestamps — the latency metric is still per message.
class AppBatch final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 2;

  explicit AppBatch(std::vector<AppMessagePtr> msgs)
      : Payload(kProto, kKind), msgs(std::move(msgs)) {}

  std::vector<AppMessagePtr> msgs;
};

/// Submission batching + flow control knobs (SimConfig::batching).
struct BatchConfig {
  /// Off by default: every run is bit-identical to the unbatched tree.
  bool enabled = false;
  /// Hard cap on the batch size k.
  std::size_t max_batch = 32;
  /// A partial batch (queue below the adaptive target) flushes after at
  /// most this queueing delay (ms).
  double flush_delay_ms = 1.0;
  /// Backlog that buys one extra message of batch target (ms): the target
  /// is 1 + floor((wire backlog + local CPU backlog) / backlog_ref_ms),
  /// capped at max_batch.  An idle system flushes every submission
  /// immediately.
  double backlog_ref_ms = 4.0;
  /// Credit window: own messages submitted but not yet locally
  /// A-delivered before can_submit() turns false and open-loop load is
  /// shed (core::Workload) instead of queueing unboundedly.
  std::size_t credit_window = 64;
};

/// Receiver of local A-deliveries.  The same slab-friendly interface
/// pattern net::Network::Sink uses: one virtual call per delivery, no
/// std::function, so the hot path stays allocation-free.
class DeliverSink {
 public:
  /// Invoked on every local A-delivery, in delivery order.
  virtual void on_deliver(const AppMessage& m) = 0;

 protected:
  ~DeliverSink() = default;
};

/// Receiver of the back-pressure release edge: notified when a process
/// whose credit window was exhausted (can_submit() == false) regains
/// submission capacity.
class ReadySink {
 public:
  virtual void on_submit_ready(net::ProcessId p) = 0;

 protected:
  ~ReadySink() = default;
};

/// Per-process endpoint of an atomic broadcast algorithm.  The base class
/// owns the submission side (ids, batching queue, credit accounting); the
/// algorithm supplies the ordering machinery via submit_now/flush_batch
/// and reports deliveries back through deliver().
class AtomicBroadcastProcess {
 public:
  AtomicBroadcastProcess(net::System& sys, net::ProcessId self, BatchConfig batching);
  AtomicBroadcastProcess(const AtomicBroadcastProcess&) = delete;
  AtomicBroadcastProcess& operator=(const AtomicBroadcastProcess&) = delete;
  virtual ~AtomicBroadcastProcess();

  /// A-broadcast a new message from this process.  Returns its id.
  /// No-op (returns a null id with seq 0) on a crashed process.  The
  /// message is accepted even when can_submit() is false — the credit
  /// window is advisory back-pressure for the load source, not a hard
  /// admission limit.
  MsgId a_broadcast();

  /// Flow control: false while this process's credit window is exhausted
  /// (batching on and >= credit_window own messages not yet locally
  /// A-delivered).  Always true with batching off.
  [[nodiscard]] bool can_submit() const {
    return !batching_.enabled || in_flight_ < batching_.credit_window;
  }

  void set_deliver_sink(DeliverSink* sink) { deliver_sink_ = sink; }
  /// Notified when can_submit() flips back to true (see ReadySink).
  void set_ready_sink(ReadySink* sink) { ready_sink_ = sink; }

  [[nodiscard]] net::ProcessId id() const { return self_; }
  [[nodiscard]] const BatchConfig& batching() const { return batching_; }

  /// Crash-recovery hook, invoked by the fault injector right after
  /// net::System::restart(p).  The base treats the submission queue as
  /// part of stable storage (accepted submissions were already recorded
  /// by the harness) and re-flushes it; overriding algorithms reset their
  /// volatile state first, then call this.
  virtual void on_restart();

  /// Number of messages A-delivered locally (tests/debug).
  [[nodiscard]] virtual std::uint64_t delivered_count() const = 0;

  // Introspection (tests, scenarios, micro-kernels).
  [[nodiscard]] std::size_t submit_queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t batches_flushed() const { return batches_flushed_; }
  /// Current adaptive batch target k (>= 1; 1 with batching off).
  [[nodiscard]] std::size_t batch_target() const;

 protected:
  /// Unbatched submission path: exactly the pre-batching per-message hot
  /// path of the algorithm.  Also used for flushed batches of size 1.
  virtual void submit_now(AppMessagePtr msg) = 0;

  /// Batched submission path: hand k >= 2 accumulated messages to the
  /// ordering machinery as one unit.
  virtual void flush_batch(const AppMessagePtr* msgs, std::size_t count) = 0;

  /// Algorithms report every local A-delivery here: releases the credit
  /// of own messages (firing the ReadySink on the release edge) and
  /// forwards to the DeliverSink.
  void deliver(const AppMessage& m);

  /// Submission entry underneath a_broadcast: queue/flush/credit without
  /// allocating the message (micro-kernels drive this directly).
  void enqueue_submission(AppMessagePtr msg);

  /// Flush the queued submissions now (cancels a pending flush timer).
  void flush_queue();

  net::System* sys_;
  net::ProcessId self_;

 private:
  void arm_flush_timer();
  /// Barrier replay of a staged DeliverSink call (parallel backend): the
  /// sink contract is to observe only (id, sent_at) plus the current time,
  /// so an equivalent temporary AppMessage stands in for the original.
  void replay_deliver_sink(net::ProcessId origin, std::uint64_t seq, sim::Time sent_at);

  BatchConfig batching_;
  std::uint64_t next_msg_seq_ = 1;
  std::vector<AppMessagePtr> queue_;     // submissions awaiting a flush
  std::vector<AppMessagePtr> flushing_;  // scratch: swap keeps flushes re-entrant-safe
  sim::EventId flush_timer_ = 0;         // 0 = none pending
  std::size_t in_flight_ = 0;            // own messages not yet locally delivered
  std::uint64_t batches_flushed_ = 0;
  DeliverSink* deliver_sink_ = nullptr;
  ReadySink* ready_sink_ = nullptr;
};

}  // namespace fdgm::abcast
