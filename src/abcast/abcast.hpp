// Common interface of the two uniform atomic broadcast implementations.
//
// The experiment harness interacts with both algorithms exclusively through
// this interface: A-broadcast on any process, and a delivery callback that
// reports every A-delivery (process-local) with the original send time, so
// the harness can compute the paper's latency metric
//     L = (min_i deliver_time_i) - broadcast_time.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace fdgm::abcast {

/// Globally unique id of an A-broadcast message: (origin, per-origin seq).
struct MsgId {
  net::ProcessId origin = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const MsgId&, const MsgId&) = default;
  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

struct MsgIdHash {
  std::size_t operator()(const MsgId& id) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.origin)) << 40) ^ id.seq);
  }
};

/// The application-level message carried through atomic broadcast.
class AppMessage final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 1;

  AppMessage(MsgId id, sim::Time sent_at) : Payload(kProto, kKind), id(id), sent_at(sent_at) {}

  MsgId id;
  sim::Time sent_at;  // A-broadcast timestamp (for the latency metric)
};

using AppMessagePtr = const AppMessage*;

/// Per-process endpoint of an atomic broadcast algorithm.
class AtomicBroadcastProcess {
 public:
  /// Invoked on every local A-delivery, in delivery order.
  using DeliverFn = std::function<void(const AppMessage&)>;

  AtomicBroadcastProcess() = default;
  AtomicBroadcastProcess(const AtomicBroadcastProcess&) = delete;
  AtomicBroadcastProcess& operator=(const AtomicBroadcastProcess&) = delete;
  virtual ~AtomicBroadcastProcess() = default;

  /// A-broadcast a new message from this process.  Returns its id.
  /// No-op (returns a null id with seq 0) on a crashed process.
  virtual MsgId a_broadcast() = 0;

  /// Crash-recovery hook, invoked by the fault injector right after
  /// net::System::restart(p).  The process models stable storage as its
  /// A-delivery log plus its own message counter; everything else is
  /// volatile and must be discarded before rejoining (GM: via the
  /// membership JOIN/state-transfer path; FD: via a log sync with a peer).
  virtual void on_restart() {}

  virtual void set_deliver_callback(DeliverFn fn) = 0;

  [[nodiscard]] virtual net::ProcessId id() const = 0;

  /// Number of messages A-delivered locally (tests/debug).
  [[nodiscard]] virtual std::uint64_t delivered_count() const = 0;
};

}  // namespace fdgm::abcast
