// Fixed-sequencer uniform atomic broadcast on top of group membership —
// the "GM algorithm" of the paper (§4.2).
//
// Data plane (failure-free path, identical message pattern to the FD
// algorithm, Fig. 1):
//   1. A-broadcast(m): the origin multicasts DATA(m) to the view;
//   2. the sequencer (first member of the view) assigns m a sequence
//      number and multicasts SEQNUM — several assignments per message
//      under load (aggregation);
//   3. every other member acknowledges with a *cumulative* ACK once it
//      holds content + sequence number for everything up to sn;
//   4. when a majority of the view covers sn, the sequencer A-delivers and
//      multicasts a cumulative DELIVER; the others A-deliver in order.
//
// Reconfiguration is delegated to gm::GroupMembership: on a view change
// the data plane freezes, exchanges unstable messages, flushes the decided
// set U' and resumes in the next view (a new sequencer re-sequences every
// pending message).  A wrongly excluded process buffers its own
// A-broadcasts, rejoins via state transfer and then resumes.
//
// The non-uniform variant of §8 (two multicasts, no ack/deliver phase) is
// available through GmAbcastConfig::uniform = false.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "abcast/abcast.hpp"
#include "consensus/chandra_toueg.hpp"
#include "fd/failure_detector.hpp"
#include "gm/membership.hpp"
#include "gm/view.hpp"
#include "net/system.hpp"
#include "obs/causal.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::abcast {

struct GmAbcastConfig {
  /// Uniform (4-phase) or non-uniform (2-multicast) delivery rule.
  bool uniform = true;
  /// Joiner retry period for the membership JOIN message (ms).
  double join_retry = 50.0;
  /// Submission batching + flow control (see abcast::BatchConfig).
  BatchConfig batching;
};

class GmAbcastProcess final : public AtomicBroadcastProcess, public gm::MembershipClient,
                              public net::Layer {
 public:
  GmAbcastProcess(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                  GmAbcastConfig cfg = {});
  ~GmAbcastProcess() override;

  // AtomicBroadcastProcess
  void on_restart() override;
  [[nodiscard]] std::uint64_t delivered_count() const override { return log_.size(); }

  /// Delivery log (tests: total order / uniform agreement / view synchrony).
  [[nodiscard]] const std::vector<AppMessagePtr>& log() const { return log_; }

  [[nodiscard]] const gm::View& view() const { return membership_.view(); }
  [[nodiscard]] const gm::GroupMembership& membership() const { return membership_; }
  [[nodiscard]] bool is_sequencer() const {
    return member_ && view_.members.front() == self_;
  }

  /// Test/debug access to the consensus endpoint.
  [[nodiscard]] consensus::ConsensusService& consensus_dbg() { return consensus_; }

  // gm::MembershipClient
  [[nodiscard]] gm::UnstableReport unstable_messages() const override;
  void on_view_change_started() override;
  void flush(const std::vector<gm::UnstableEntry>& u, std::int64_t settled) override;
  void on_view_installed(const gm::View& v, bool member) override;
  [[nodiscard]] std::uint64_t log_length() const override { return log_.size(); }
  [[nodiscard]] net::PayloadPtr make_state(std::uint64_t from) const override;
  void apply_state(const net::PayloadPtr& state, const gm::View& v) override;

  // net::Layer — DATA / SEQNUM / ACK / DELIVER / NEED.
  void on_message(const net::Message& m) override;

 protected:
  // AtomicBroadcastProcess submission hooks: one DATA multicast per message
  // (unbatched) or one AppBatch multicast carrying k messages, which the
  // sequencer then covers with a single SEQNUM assignment round.
  void submit_now(AppMessagePtr msg) override;
  void flush_batch(const AppMessagePtr* msgs, std::size_t count) override;

 private:
  /// The causal classifier decodes the private DATA / SEQNUM payloads
  /// (which application messages a GM frame carries).
  friend void obs::classify_gm_payload(net::PayloadPtr p, obs::MsgRefList& out);

  class DataMsg;
  class SeqnumMsg;
  class AckMsg;
  class DeliverMsg;
  class NeedMsg;
  class GmState;

  void handle_data(const AppMessagePtr& msg);
  /// Dedup + record one message's content; returns false if already known
  /// or delivered.  Batch paths admit every message, then trigger the
  /// ordering step once.
  bool admit_data(const AppMessagePtr& msg);
  /// One ordering step: sequence (active sequencer) or ack (follower).
  void trigger_ordering();
  void sequence_pending();
  void try_advance_ack();
  void try_deliver_sequencer();
  void deliver_up_to(std::int64_t sn);
  void deliver_msg(AppMessagePtr msg);
  void drop_mappings_above_floor();
  void send_buffered();
  [[nodiscard]] bool active_sequencer() const { return is_sequencer() && !frozen_; }

  fd::FailureDetector* fd_;
  GmAbcastConfig cfg_;
  rbcast::ReliableBroadcast rb_;
  consensus::ConsensusService consensus_;
  gm::GroupMembership membership_;

  gm::View view_;  // data-plane copy of the current view
  bool member_ = true;
  bool frozen_ = false;

  std::unordered_map<MsgId, AppMessagePtr, MsgIdHash> msgs_;  // known content
  std::vector<MsgId> arrival_order_;                          // sequencing order
  std::unordered_map<MsgId, std::int64_t, MsgIdHash> sn_of_;
  std::map<std::int64_t, MsgId> msg_at_;
  std::unordered_set<MsgId, MsgIdHash> delivered_;
  std::vector<AppMessagePtr> log_;

  std::int64_t sn_floor_ = 0;    // everything <= floor is settled
  std::int64_t ack_sn_ = 0;      // cumulative ack point (follower)
  std::int64_t deliver_sn_ = 0;  // highest sequenced sn delivered
  std::int64_t announced_ = 0;   // highest DELIVER cum seen / sent
  std::int64_t requested_ = 0;   // NEED-repair throttle

  // Recently delivered sequenced messages, kept until known stable (all
  // members hold them): they may still be undelivered elsewhere and must
  // keep their sequence number through a view change.
  std::map<std::int64_t, AppMessagePtr> recent_delivered_;

  // Sequencer state.  Batches run in a shallow pipeline (depth 2, like
  // the FD algorithm's consensus instances): a new SEQNUM batch goes out
  // while at most one earlier batch still awaits its DELIVER.  This is
  // the aggregation mechanism (§4.2) and makes the failure-free pattern
  // per batch identical to one consensus instance of the FD algorithm.
  std::int64_t next_sn_ = 1;
  std::vector<std::int64_t> batch_ends_;  // ends of unannounced batches
  /// Cumulative ack point per process, indexed by pid (kNoAck = none this
  /// view).  Flat instead of a map: the sequencer reads all n entries on
  /// every ack, which dominates the data plane at large n.
  static constexpr std::int64_t kNoAck = -1;
  std::vector<std::int64_t> acks_;
  std::vector<std::int64_t> cover_buf_;  // scratch for try_deliver_sequencer

  std::vector<AppMessagePtr> own_buffer_;  // A-broadcasts while excluded
};

}  // namespace fdgm::abcast
