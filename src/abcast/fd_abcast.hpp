// Chandra-Toueg atomic broadcast — the "FD algorithm" of the paper (§4.1).
//
// A-broadcast(m) reliably broadcasts m to everyone.  Delivery order is
// decided by a sequence of consensus instances #1, #2, ...; the initial
// value and the decision of each instance is a set of message ids.  The
// messages of decision #k are A-delivered before those of #k+1; within a
// decision, messages are A-delivered in the deterministic order of their
// ids.  Aggregation is inherent: one consensus decides the order of every
// message pending at the proposer.
//
// Instances run in a shallow pipeline (depth W = 2): instance #k may
// start once decision #(k-W) has been processed.  Messages arriving while
// the in-flight instances are busy batch into the next one — the
// algorithm's aggregation mechanism (§4.1) — and per batch the
// failure-free message pattern is identical to the sequencer's (one
// proposal multicast, n-1 acks, one decision multicast), which is what
// lets the paper plot a single curve for both algorithms in the
// normal-steady scenario.  The shallow pipeline also lets a new message
// open its own instance while a previous one is stalled on a crashed
// coordinator, so the transient recovery after a crash costs one round,
// not one round per queued instance (Fig. 8).
//
// Re-numbering optimization (paper §7, crash-steady): each proposal is
// tagged with the proposer's id; the coordinator order of instance #k
// starts at the winning proposer of decision #(k-W), so crashed processes
// eventually stop being round-1 coordinators.  Anchoring the rotation W
// decisions back keeps it identical at every process despite the
// pipelining (anchoring on "the latest local decision" would diverge).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "abcast/abcast.hpp"
#include "consensus/chandra_toueg.hpp"
#include "fd/failure_detector.hpp"
#include "net/system.hpp"
#include "obs/causal.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::abcast {

struct FdAbcastConfig {
  /// Enables the coordinator re-numbering optimization.
  bool renumbering = true;
  /// Pipeline depth W: instance #k may start once decision #(k-W) was
  /// processed.  1 = strictly sequential instances.
  std::uint64_t pipeline = 2;
  /// Crash-recovery catch-up: period (ms) of the watchdog that re-requests
  /// a log sync from the peers while the recovered process is behind.
  double sync_retry = 100.0;
  /// Submission batching + flow control (see abcast::BatchConfig).
  BatchConfig batching;
};

/// The FD algorithm assumes crash-stop processes; crash-*recovery* is an
/// extension for the fault-injection scenarios: a restarted process keeps
/// its stable state (A-delivery log, own message counter), discards its
/// proposal marks and asks a peer for the log suffix and consensus
/// position it missed (SYNC-REQ / SYNC-RESP over the kAtomicBroadcast
/// protocol, which the FD stack does not otherwise use).  A periodic
/// watchdog repeats the request while the process is stalled, which also
/// covers decisions that were in flight during the first sync.  None of
/// this adds traffic to failure-free runs.
class FdAbcastProcess final : public AtomicBroadcastProcess, public net::Layer {
 public:
  /// Builds the full protocol stack of one process: reliable broadcast,
  /// consensus service and the atomic broadcast layer on top.
  FdAbcastProcess(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                  FdAbcastConfig cfg = {});
  ~FdAbcastProcess() override;

  // AtomicBroadcastProcess
  void on_restart() override;
  [[nodiscard]] std::uint64_t delivered_count() const override { return log_.size(); }

  // net::Layer — SYNC-REQ / SYNC-RESP (crash-recovery catch-up only).
  void on_message(const net::Message& m) override;

  /// Delivery log (tests: total order / uniform agreement checks).
  [[nodiscard]] const std::vector<AppMessagePtr>& log() const { return log_; }

  /// Consensus instances decided so far (tests: aggregation checks).
  [[nodiscard]] std::uint64_t decided_instances() const { return next_to_process_ - 1; }

  [[nodiscard]] rbcast::ReliableBroadcast& rb() { return rb_; }

  /// Test/debug access to the consensus endpoint.
  [[nodiscard]] consensus::ConsensusService& consensus_dbg() { return consensus_; }

 protected:
  // AtomicBroadcastProcess submission hooks: one rbcast broadcast per
  // message (unbatched) or per accumulated batch (one data dissemination
  // and one consensus proposal slot amortized over k messages).
  void submit_now(AppMessagePtr msg) override;
  void flush_batch(const AppMessagePtr* msgs, std::size_t count) override;

 private:
  /// The causal classifier decodes the private Proposal payload (its ids
  /// are the messages a consensus instance covers).
  friend void obs::classify_fd_payload(net::PayloadPtr p, obs::MsgRefList& out);

  /// The consensus value: a set of message ids tagged with the proposer.
  class Proposal final : public net::Payload {
   public:
    static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
    static constexpr std::uint8_t kKind = 2;
    Proposal(net::ProcessId proposer, std::vector<MsgId> ids)
        : Payload(kProto, kKind), proposer(proposer), ids(std::move(ids)) {}
    net::ProcessId proposer;
    std::vector<MsgId> ids;
  };

  class SyncReq;
  class SyncResp;

  void on_data(const rbcast::RbId& rb_id, net::PayloadPtr inner);
  /// Admits one message of an rbcast data delivery into pending_; returns
  /// false when it was already A-delivered.
  bool admit_data(const AppMessage& msg, const rbcast::RbId& rb_id);
  /// Releases one message's share of its rbcast retention (a batch's k
  /// messages share one RbId; the rbcast slot frees when the last one is
  /// delivered).
  void release_rb(const MsgId& id);
  void on_decide(const consensus::InstanceKey& key, const net::PayloadPtr& value);
  void maybe_start_next();
  void process_ready_decisions();
  void send_sync_req();
  void handle_sync_req(net::ProcessId from, const SyncReq& req);
  void apply_sync_resp(const SyncResp& resp);
  void catchup_tick(std::uint64_t epoch);
  /// Builds the proposal (all pending ids) and marks them as proposed in
  /// instance `number`.
  [[nodiscard]] consensus::StartInfo make_start_info(std::uint64_t number);
  /// May instance `number` start yet (pipeline window)?
  [[nodiscard]] bool can_start(std::uint64_t number) const {
    return number < next_to_process_ + cfg_.pipeline;
  }
  /// Coordinator rotation offset of instance `number` (identical at every
  /// process): the winner of decision #(number - pipeline), 0 early on.
  [[nodiscard]] int offset_for(std::uint64_t number) const;

  fd::FailureDetector* fd_;
  FdAbcastConfig cfg_;
  rbcast::ReliableBroadcast rb_;
  consensus::ConsensusService consensus_;

  /// R-delivered, not yet A-delivered (id-ordered for proposals).
  std::map<MsgId, AppMessagePtr> pending_;
  /// Highest instance number whose proposal included the id.  Ids without
  /// a mark trigger (and join) the next instance; marks at or below a
  /// processed decision are cleared so lost proposals are re-proposed.
  std::unordered_map<MsgId, std::uint64_t, MsgIdHash> proposed_in_;
  std::unordered_map<MsgId, rbcast::RbId, MsgIdHash> rb_ids_;
  /// Messages still retaining each rbcast slot (1 for singles, k for a
  /// batch; released as its messages are delivered).
  std::unordered_map<rbcast::RbId, std::size_t, rbcast::RbIdHash> rb_refs_;
  std::unordered_set<MsgId, MsgIdHash> delivered_ids_;
  std::vector<AppMessagePtr> log_;

  std::uint64_t next_to_process_ = 1;  // next decision to apply
  std::map<std::uint64_t, const Proposal*> ready_decisions_;
  /// Winning proposer per processed decision (pruned below the window):
  /// anchors the coordinator rotation of instance #(k + pipeline).
  std::map<std::uint64_t, net::ProcessId> winners_;

  // Crash-recovery catch-up state.
  bool syncing_ = false;           // restarted, no sync response applied yet
  std::uint64_t sync_epoch_ = 0;   // bumped per restart; stale watchdogs die
  std::uint64_t watch_log_ = 0;    // progress snapshot of the last tick
  std::uint64_t watch_next_ = 0;
};

}  // namespace fdgm::abcast
