#include "abcast/fd_abcast.hpp"

#include <algorithm>
#include <stdexcept>

namespace fdgm::abcast {

namespace {
constexpr int kDataTag = 0x41424344;        // "ABCD": data dissemination channel
constexpr std::uint32_t kAbcastContext = 0;  // consensus context of the FD algorithm
}  // namespace

FdAbcastProcess::FdAbcastProcess(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                                 FdAbcastConfig cfg)
    : sys_(&sys),
      self_(self),
      fd_(&fd),
      cfg_(cfg),
      rb_(sys, self, fd, rbcast::RbConfig{.relay_on_suspicion = false}),
      consensus_(sys, self, fd, rb_) {
  rb_.register_client(kDataTag, [this](const rbcast::RbId& id, net::ProcessId /*origin*/,
                                       const net::PayloadPtr& inner) { on_data(id, inner); });
  consensus_.register_context(
      kAbcastContext,
      consensus::ConsensusService::ContextConfig{
          .join =
              [this](const consensus::InstanceKey& key)
                  -> std::optional<consensus::StartInfo> {
                // Traffic for instances beyond the pipeline window is
                // buffered until our decisions catch up (retry_buffered is
                // called as they are processed).
                if (!can_start(key.number)) return std::nullopt;
                return make_start_info(key.number);
              },
          .on_decide = [this](const consensus::InstanceKey& key,
                              const net::PayloadPtr& value) { on_decide(key, value); },
      });
}

MsgId FdAbcastProcess::a_broadcast() {
  if (sys_->node(self_).crashed()) return MsgId{};
  const MsgId id{self_, next_msg_seq_++};
  auto msg = std::make_shared<AppMessage>(id, sys_->now());
  rb_.broadcast(kDataTag, msg);  // delivers locally too -> on_data
  return id;
}

void FdAbcastProcess::on_data(const rbcast::RbId& rb_id, const net::PayloadPtr& inner) {
  auto msg = std::dynamic_pointer_cast<const AppMessage>(inner);
  if (!msg) throw std::logic_error("FdAbcastProcess: bad data payload");
  if (delivered_ids_.contains(msg->id)) {
    rb_.release(rb_id);  // late relay of an already delivered message
    return;
  }
  pending_.emplace(msg->id, msg);
  rb_ids_.emplace(msg->id, rb_id);
  process_ready_decisions();  // a decision may have been waiting for this content
  maybe_start_next();
}

int FdAbcastProcess::offset_for(std::uint64_t number) const {
  if (!cfg_.renumbering || number <= cfg_.pipeline) return 0;
  auto it = winners_.find(number - cfg_.pipeline);
  return it == winners_.end() ? 0 : it->second;
}

consensus::StartInfo FdAbcastProcess::make_start_info(std::uint64_t number) {
  std::vector<MsgId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, msg] : pending_) {
    ids.push_back(id);
    auto [it, inserted] = proposed_in_.try_emplace(id, number);
    if (!inserted) it->second = std::max(it->second, number);
  }
  return consensus::StartInfo{
      .members = sys_->all(),
      .coordinator_offset = offset_for(number),
      .initial = std::make_shared<Proposal>(self_, std::move(ids)),
      // Recovery rounds with no locked value may batch in later arrivals.
      .refresh =
          [this, number]() -> net::PayloadPtr {
            std::vector<MsgId> fresh;
            fresh.reserve(pending_.size());
            for (const auto& [id, msg] : pending_) {
              fresh.push_back(id);
              auto [it, inserted] = proposed_in_.try_emplace(id, number);
              if (!inserted) it->second = std::max(it->second, number);
            }
            return std::make_shared<Proposal>(self_, std::move(fresh));
          },
  };
}

void FdAbcastProcess::maybe_start_next() {
  // Start the lowest startable instance when some pending message is not
  // yet covered by a proposal of ours.  Messages arriving while the
  // pipeline is full batch into a later instance (aggregation, §4.1).
  bool uncovered = false;
  for (const auto& [id, msg] : pending_) {
    if (!proposed_in_.contains(id)) {
      uncovered = true;
      break;
    }
  }
  if (!uncovered) return;
  std::uint64_t k = next_to_process_;
  while (can_start(k)) {
    const consensus::InstanceKey key{kAbcastContext, k};
    if (!consensus_.running(key) && !consensus_.decided(key)) {
      consensus_.start(key, make_start_info(k));
      return;
    }
    ++k;
  }
}

void FdAbcastProcess::on_decide(const consensus::InstanceKey& key, const net::PayloadPtr& value) {
  auto prop = std::dynamic_pointer_cast<const Proposal>(value);
  if (!prop) throw std::logic_error("FdAbcastProcess: bad decision payload");
  ready_decisions_.emplace(key.number, prop);
  process_ready_decisions();
  maybe_start_next();
}

void FdAbcastProcess::process_ready_decisions() {
  while (true) {
    auto it = ready_decisions_.find(next_to_process_);
    if (it == ready_decisions_.end()) return;
    const Proposal& prop = *it->second;
    // Deliver the decision's messages in id order.  All correct processes
    // apply the same vector, so the delivery order is identical everywhere.
    for (const MsgId& id : prop.ids) {
      if (delivered_ids_.contains(id)) continue;
      auto pit = pending_.find(id);
      if (pit == pending_.end()) return;  // content not yet R-delivered; retry on arrival
      AppMessagePtr msg = pit->second;
      pending_.erase(pit);
      proposed_in_.erase(id);
      delivered_ids_.insert(id);
      log_.push_back(msg);
      if (auto rit = rb_ids_.find(id); rit != rb_ids_.end()) {
        rb_.release(rit->second);
        rb_ids_.erase(rit);
      }
      if (deliver_cb_) deliver_cb_(*msg);
    }
    // Re-proposal: ids whose latest proposal lost (mark at or below the
    // decision just applied) become uncovered again.
    for (auto it = proposed_in_.begin(); it != proposed_in_.end();) {
      if (it->second <= next_to_process_)
        it = proposed_in_.erase(it);
      else
        ++it;
    }
    winners_.emplace(next_to_process_, prop.proposer);
    while (!winners_.empty() && winners_.begin()->first + cfg_.pipeline < next_to_process_)
      winners_.erase(winners_.begin());
    ready_decisions_.erase(it);
    ++next_to_process_;
  }
  // The window may have opened: retry joins buffered by the service and
  // any local starts we deferred.
  consensus_.retry_buffered(kAbcastContext);
  maybe_start_next();
}

}  // namespace fdgm::abcast
