#include "abcast/fd_abcast.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/observer.hpp"

namespace fdgm::abcast {

namespace {
constexpr int kDataTag = 0x41424344;        // "ABCD": data dissemination channel
constexpr std::uint32_t kAbcastContext = 0;  // consensus context of the FD algorithm
}  // namespace

// ------------------------------------------------ crash-recovery wire types
// Payload kinds on kAtomicBroadcast: the FD stack uses 0..7, the GM stack
// (gm_abcast.cpp) 8..15, so the two stacks can never mis-cast each
// other's payloads even inside one test binary.

/// "Send me everything after log position `log_len`."
class FdAbcastProcess::SyncReq final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 0;
  explicit SyncReq(std::uint64_t log_len) : Payload(kProto, kKind), log_len(log_len) {}
  std::uint64_t log_len;
};

/// A peer's snapshot: the log suffix the requester misses, the peer's
/// consensus position, its rotation anchors and its undecided contents.
class FdAbcastProcess::SyncResp final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 1;
  SyncResp() : Payload(kProto, kKind) {}
  std::uint64_t from_len = 0;                        // echo of the request
  std::vector<AppMessagePtr> suffix;                 // log_[from_len..)
  std::uint64_t next = 1;                            // peer's next_to_process_
  std::map<std::uint64_t, net::ProcessId> winners;   // rotation anchors
  std::vector<AppMessagePtr> pending;                // undecided contents
};

FdAbcastProcess::FdAbcastProcess(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                                 FdAbcastConfig cfg)
    : AtomicBroadcastProcess(sys, self, cfg.batching),
      fd_(&fd),
      cfg_(cfg),
      rb_(sys, self, fd, rbcast::RbConfig{.relay_on_suspicion = false}),
      consensus_(sys, self, fd, rb_) {
  sys.node(self).register_handler(net::ProtocolId::kAtomicBroadcast, this);
  rb_.register_client(kDataTag, [this](const rbcast::RbId& id, net::ProcessId /*origin*/,
                                       const net::PayloadPtr& inner) { on_data(id, inner); });
  consensus_.register_context(
      kAbcastContext,
      consensus::ConsensusService::ContextConfig{
          .join =
              [this](const consensus::InstanceKey& key)
                  -> std::optional<consensus::StartInfo> {
                // Traffic for instances beyond the pipeline window is
                // buffered until our decisions catch up (retry_buffered is
                // called as they are processed).
                if (!can_start(key.number)) return std::nullopt;
                return make_start_info(key.number);
              },
          .on_decide = [this](const consensus::InstanceKey& key,
                              const net::PayloadPtr& value) { on_decide(key, value); },
      });
}

FdAbcastProcess::~FdAbcastProcess() {
  sys_->node(self_).register_handler(net::ProtocolId::kAtomicBroadcast, nullptr);
}

void FdAbcastProcess::submit_now(AppMessagePtr msg) {
  rb_.broadcast(kDataTag, msg);  // delivers locally too -> on_data
}

void FdAbcastProcess::flush_batch(const AppMessagePtr* msgs, std::size_t count) {
  // One rbcast slot (and later one proposal slot) carries the whole batch;
  // receivers unpack it back into per-message pending entries, so the
  // ordering machinery below is unchanged.
  rb_.broadcast(kDataTag, sys_->arena().make<AppBatch>(
                              std::vector<AppMessagePtr>(msgs, msgs + count)));
}

// ------------------------------------------------- crash-recovery catch-up

void FdAbcastProcess::on_restart() {
  // Stable storage: log_, delivered_ids_, the message counter and the
  // submission queue (the base class re-flushes it).  Decisions and
  // message contents are objective data and stay; only this incarnation's
  // proposal marks are void (our in-flight proposals died with us), so
  // every still-pending id becomes proposable again.
  proposed_in_.clear();
  AtomicBroadcastProcess::on_restart();
  syncing_ = true;
  ++sync_epoch_;
  send_sync_req();
  watch_log_ = log_.size();
  watch_next_ = next_to_process_;
  const std::uint64_t epoch = sync_epoch_;
  sys_->scheduler().schedule_after(cfg_.sync_retry, [this, epoch] { catchup_tick(epoch); });
}

void FdAbcastProcess::send_sync_req() {
  if (sys_->n() == 1) {
    syncing_ = false;  // single-process system: nothing to catch up on
    return;
  }
  sys_->node(self_).multicast_others(sys_->all(), net::ProtocolId::kAtomicBroadcast,
                                     sys_->arena().make<SyncReq>(log_.size()));
}

void FdAbcastProcess::catchup_tick(std::uint64_t epoch) {
  if (epoch != sync_epoch_) return;   // superseded by a newer restart
  if (sys_->node(self_).crashed()) return;  // dies with us; a restart re-arms
  // Re-request while behind: either no peer answered yet, or nothing
  // progressed over a whole period although work is outstanding (a
  // decision or content we will never receive was in flight during the
  // previous sync).  A healthy process makes progress between ticks and
  // sends nothing here.
  const bool stalled = log_.size() == watch_log_ && next_to_process_ == watch_next_;
  const bool outstanding = !pending_.empty() || !ready_decisions_.empty();
  if (syncing_ || (stalled && outstanding)) send_sync_req();
  if (!syncing_ && !outstanding) return;  // caught up and quiet: the watchdog retires
  watch_log_ = log_.size();
  watch_next_ = next_to_process_;
  sys_->scheduler().schedule_after(cfg_.sync_retry, [this, epoch] { catchup_tick(epoch); });
}

void FdAbcastProcess::handle_sync_req(net::ProcessId from, const SyncReq& req) {
  // Only a peer that can cover the whole missing suffix responds, and only
  // the first such peer by id (by local suspicion knowledge) — the
  // requester ignores duplicates, this merely bounds the traffic.
  if (log_.size() < req.log_len) return;
  for (net::ProcessId q : sys_->all())
    if (q != from && q != self_ && q < self_ && !fd_->suspects(q)) return;
  SyncResp* resp = sys_->arena().make<SyncResp>();
  resp->from_len = req.log_len;
  resp->suffix.assign(log_.begin() + static_cast<std::ptrdiff_t>(req.log_len), log_.end());
  resp->next = next_to_process_;
  resp->winners = winners_;
  resp->pending.reserve(pending_.size());
  for (const auto& [id, msg] : pending_) resp->pending.push_back(msg);
  sys_->node(self_).send(from, net::ProtocolId::kAtomicBroadcast, resp);
}

void FdAbcastProcess::apply_sync_resp(const SyncResp& resp) {
  if (resp.from_len != log_.size()) return;  // stale (an earlier sync applied)
  syncing_ = false;
  for (AppMessagePtr msg : resp.suffix) {
    if (!delivered_ids_.insert(msg->id).second) continue;
    pending_.erase(msg->id);
    proposed_in_.erase(msg->id);
    release_rb(msg->id);
    log_.push_back(msg);
    deliver(*msg);
  }
  for (AppMessagePtr msg : resp.pending)
    if (!delivered_ids_.contains(msg->id)) pending_.emplace(msg->id, msg);
  if (resp.next > next_to_process_) {
    next_to_process_ = resp.next;
    for (const auto& [number, winner] : resp.winners) winners_.insert_or_assign(number, winner);
    while (!winners_.empty() && winners_.begin()->first + cfg_.pipeline < next_to_process_)
      winners_.erase(winners_.begin());
    ready_decisions_.erase(ready_decisions_.begin(),
                           ready_decisions_.lower_bound(next_to_process_));
    consensus_.close_below(kAbcastContext, next_to_process_);
  }
  process_ready_decisions();
  maybe_start_next();
}

void FdAbcastProcess::on_message(const net::Message& m) {
  if (auto req = net::payload_cast<SyncReq>(m)) {
    handle_sync_req(m.src, *req);
    return;
  }
  if (auto resp = net::payload_cast<SyncResp>(m)) {
    apply_sync_resp(*resp);
    return;
  }
  throw std::logic_error("FdAbcastProcess: foreign payload");
}

void FdAbcastProcess::on_data(const rbcast::RbId& rb_id, net::PayloadPtr inner) {
  bool admitted = false;
  if (const AppMessage* msg = net::payload_cast<AppMessage>(inner)) {
    admitted = admit_data(*msg, rb_id);
  } else if (const AppBatch* batch = net::payload_cast<AppBatch>(inner)) {
    for (AppMessagePtr m : batch->msgs) admitted |= admit_data(*m, rb_id);
  } else {
    throw std::logic_error("FdAbcastProcess: bad data payload");
  }
  if (!admitted) {
    rb_.release(rb_id);  // late relay; everything in it already delivered
    return;
  }
  process_ready_decisions();  // a decision may have been waiting for this content
  maybe_start_next();
}

bool FdAbcastProcess::admit_data(const AppMessage& msg, const rbcast::RbId& rb_id) {
  if (delivered_ids_.contains(msg.id)) return false;
  pending_.emplace(msg.id, &msg);
  if (rb_ids_.emplace(msg.id, rb_id).second) ++rb_refs_[rb_id];
  return true;
}

void FdAbcastProcess::release_rb(const MsgId& id) {
  auto rit = rb_ids_.find(id);
  if (rit == rb_ids_.end()) return;
  const rbcast::RbId rb_id = rit->second;
  rb_ids_.erase(rit);
  if (auto cit = rb_refs_.find(rb_id); cit != rb_refs_.end() && --cit->second == 0) {
    rb_refs_.erase(cit);
    rb_.release(rb_id);
  }
}

int FdAbcastProcess::offset_for(std::uint64_t number) const {
  if (!cfg_.renumbering || number <= cfg_.pipeline) return 0;
  auto it = winners_.find(number - cfg_.pipeline);
  return it == winners_.end() ? 0 : it->second;
}

consensus::StartInfo FdAbcastProcess::make_start_info(std::uint64_t number) {
  std::vector<MsgId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, msg] : pending_) {
    ids.push_back(id);
    auto [it, inserted] = proposed_in_.try_emplace(id, number);
    if (!inserted) it->second = std::max(it->second, number);
  }
  // Causal anchor: the consensus round covering these messages starts
  // here; the walker closes the interval at the decision (on_ordered).
  if (auto* o = sys_->obs(); o != nullptr && o->causal()) {
    obs::MsgRefList refs;
    for (const MsgId& id : ids) refs.add(id.origin, id.seq);
    o->trace_marker(obs::EdgeKind::kConsStart, self_, refs, sys_->now());
  }
  return consensus::StartInfo{
      .members = &sys_->all(),
      .coordinator_offset = offset_for(number),
      .initial = sys_->arena().make<Proposal>(self_, std::move(ids)),
      // Recovery rounds with no locked value may batch in later arrivals.
      .refresh =
          [this, number]() -> net::PayloadPtr {
            std::vector<MsgId> fresh;
            fresh.reserve(pending_.size());
            for (const auto& [id, msg] : pending_) {
              fresh.push_back(id);
              auto [it, inserted] = proposed_in_.try_emplace(id, number);
              if (!inserted) it->second = std::max(it->second, number);
            }
            if (auto* o = sys_->obs(); o != nullptr && o->causal()) {
              obs::MsgRefList refs;
              for (const MsgId& id : fresh) refs.add(id.origin, id.seq);
              o->trace_marker(obs::EdgeKind::kConsStart, self_, refs, sys_->now());
            }
            return sys_->arena().make<Proposal>(self_, std::move(fresh));
          },
  };
}

void FdAbcastProcess::maybe_start_next() {
  // Start the lowest startable instance when some pending message is not
  // yet covered by a proposal of ours.  Messages arriving while the
  // pipeline is full batch into a later instance (aggregation, §4.1).
  //
  // proposed_in_ only ever marks ids that are in pending_, and a mark is
  // erased no later than its message (delivery, sync and restart erase
  // both; the re-proposal sweep erases marks only), so proposed_in_ is a
  // subset of pending_ and "some pending message is uncovered" is a size
  // comparison — O(1) instead of an O(pending) scan per delivery/arrival,
  // which dominated large-n runs.
  if (proposed_in_.size() >= pending_.size()) return;
  std::uint64_t k = next_to_process_;
  while (can_start(k)) {
    const consensus::InstanceKey key{kAbcastContext, k};
    if (!consensus_.running(key) && !consensus_.decided(key)) {
      consensus_.start(key, make_start_info(k));
      return;
    }
    ++k;
  }
}

void FdAbcastProcess::on_decide(const consensus::InstanceKey& key, const net::PayloadPtr& value) {
  const Proposal* prop = net::payload_cast<Proposal>(value);
  if (prop == nullptr) throw std::logic_error("FdAbcastProcess: bad decision payload");
  // A consensus decision fixes the global order of every message it
  // covers; first-write-wins in the observer makes this the *earliest*
  // decision instant across the n processes deciding the instance.
  if (auto* o = sys_->obs()) {
    for (const MsgId& id : prop->ids) o->on_ordered(id.origin, id.seq, sys_->now(), self_);
  }
  ready_decisions_.emplace(key.number, prop);
  process_ready_decisions();
  maybe_start_next();
}

void FdAbcastProcess::process_ready_decisions() {
  bool applied = false;
  while (true) {
    auto it = ready_decisions_.find(next_to_process_);
    if (it == ready_decisions_.end()) break;
    const Proposal& prop = *it->second;
    // Deliver the decision's messages in id order.  All correct processes
    // apply the same vector, so the delivery order is identical everywhere.
    for (const MsgId& id : prop.ids) {
      if (delivered_ids_.contains(id)) continue;
      auto pit = pending_.find(id);
      if (pit == pending_.end()) return;  // content not yet R-delivered; retry on arrival
      AppMessagePtr msg = pit->second;
      pending_.erase(pit);
      proposed_in_.erase(id);
      delivered_ids_.insert(id);
      log_.push_back(msg);
      release_rb(id);
      deliver(*msg);
    }
    // Re-proposal: ids whose latest proposal lost (mark at or below the
    // decision just applied) become uncovered again.
    for (auto it = proposed_in_.begin(); it != proposed_in_.end();) {
      if (it->second <= next_to_process_)
        it = proposed_in_.erase(it);
      else
        ++it;
    }
    winners_.emplace(next_to_process_, prop.proposer);
    while (!winners_.empty() && winners_.begin()->first + cfg_.pipeline < next_to_process_)
      winners_.erase(winners_.begin());
    ready_decisions_.erase(it);
    ++next_to_process_;
    applied = true;
  }
  // The window may have opened: retry joins buffered by the service and
  // any local starts we deferred.  The window (can_start) only moves when
  // next_to_process_ advanced, so the retry is skipped — identically, not
  // just cheaply — when nothing was applied: this function runs on every
  // content arrival.
  if (!applied) return;
  consensus_.retry_buffered(kAbcastContext);
  maybe_start_next();
}

}  // namespace fdgm::abcast

namespace fdgm::obs {

// Defined here because the Proposal payload is private to the FD stack.
void classify_fd_payload(net::PayloadPtr p, MsgRefList& out) {
  using Proposal = abcast::FdAbcastProcess::Proposal;
  if (const auto* prop = net::payload_cast<Proposal>(p)) {
    for (const abcast::MsgId& id : prop->ids) out.add(id.origin, id.seq);
  }
  // SyncReq / SyncResp are recovery control traffic: no live message of
  // the steady-state critical path rides them.
}

}  // namespace fdgm::obs
