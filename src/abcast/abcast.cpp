#include "abcast/abcast.hpp"

#include "obs/observer.hpp"
#include "sim/exec_ctx.hpp"

namespace fdgm::abcast {

AtomicBroadcastProcess::AtomicBroadcastProcess(net::System& sys, net::ProcessId self,
                                               BatchConfig batching)
    : sys_(&sys), self_(self), batching_(batching) {}

AtomicBroadcastProcess::~AtomicBroadcastProcess() {
  if (flush_timer_ != 0) {
    sys_->scheduler().cancel(flush_timer_);
    flush_timer_ = 0;
  }
}

MsgId AtomicBroadcastProcess::a_broadcast() {
  if (sys_->node(self_).crashed()) return MsgId{};
  const MsgId id{self_, next_msg_seq_++};
  const AppMessage* msg = sys_->arena().make<AppMessage>(id, sys_->now());
  enqueue_submission(msg);
  return id;
}

void AtomicBroadcastProcess::enqueue_submission(AppMessagePtr msg) {
  if (auto* o = sys_->obs()) {
    o->on_submit(msg->id.origin, msg->id.seq, sys_->now());
    // Unbatched, the message enters the ordering machinery in this very
    // call: the submission-wait phase is zero by construction.
    if (!batching_.enabled) o->on_order_start(msg->id.origin, msg->id.seq, sys_->now());
    // Causal anchor: accepted while the credit window was shut — the
    // walker attributes this message's submission wait to credit, not
    // the batch timer.
    if (o->causal() && batching_.enabled && !can_submit()) {
      obs::MsgRefList refs;
      refs.add(msg->id.origin, msg->id.seq);
      o->trace_marker(obs::EdgeKind::kCreditClosed, self_, refs, sys_->now());
    }
  }
  if (!batching_.enabled) {
    // Bit-identity contract: the unbatched path is exactly the
    // pre-batching hot path — no queue, no timer, no credit accounting.
    submit_now(msg);
    return;
  }
  ++in_flight_;
  queue_.push_back(msg);
  if (queue_.size() >= batch_target())
    flush_queue();
  else
    arm_flush_timer();
}

std::size_t AtomicBroadcastProcess::batch_target() const {
  if (!batching_.enabled) return 1;
  // Adaptive k: every backlog_ref_ms of queueing horizon — time the next
  // message would wait for the shared wire plus this host's CPU anyway —
  // buys one more message of batching.  Idle system: k = 1, the flush is
  // immediate and the batch path collapses to per-message submission.
  const double backlog =
      sys_->network().wire_backlog() + sys_->network().cpu_backlog(self_);
  if (backlog <= 0.0) return 1;
  const double extra = backlog / batching_.backlog_ref_ms;
  if (extra >= static_cast<double>(batching_.max_batch - 1))
    return batching_.max_batch;
  return 1 + static_cast<std::size_t>(extra);
}

void AtomicBroadcastProcess::flush_queue() {
  if (flush_timer_ != 0) {
    sys_->scheduler().cancel(flush_timer_);
    flush_timer_ = 0;
  }
  if (queue_.empty()) return;
  ++batches_flushed_;
  // Swap into the scratch vector: flush_batch may deliver synchronously,
  // and a ReadySink can submit again from inside that delivery.  The two
  // vectors ping-pong their capacity, so steady state does not allocate.
  flushing_.clear();
  flushing_.swap(queue_);
  if (auto* o = sys_->obs()) {
    for (const AppMessagePtr m : flushing_) o->on_order_start(m->id.origin, m->id.seq, sys_->now());
    o->on_batch_flush(self_, flushing_.size(), sys_->now());
  }
  if (flushing_.size() == 1)
    submit_now(flushing_.front());
  else
    flush_batch(flushing_.data(), flushing_.size());
}

void AtomicBroadcastProcess::arm_flush_timer() {
  if (flush_timer_ != 0) return;
  flush_timer_ = sys_->scheduler().schedule_after(batching_.flush_delay_ms, [this] {
    flush_timer_ = 0;
    // The queue survives a crash (stable storage, like the message
    // counter); on_restart re-flushes it.
    if (sys_->node(self_).crashed()) return;
    flush_queue();
  });
}

void AtomicBroadcastProcess::deliver(const AppMessage& m) {
  // First-write-wins inside the observer: across the n local deliveries
  // of one message this records the *global-first* A-delivery instant.
  if (auto* o = sys_->obs()) o->on_delivered(m.id.origin, m.id.seq, sys_->now(), self_);
  if (m.id.origin == self_ && in_flight_ > 0) {
    --in_flight_;
    // Release edge: the window was exhausted and just reopened.
    if (in_flight_ + 1 == batching_.credit_window && ready_sink_ != nullptr)
      ready_sink_->on_submit_ready(self_);
  }
  // Under the parallel backend the sink (the harness's latency recorder —
  // process-global state) is invoked at the round barrier, in global
  // delivery order.  The AppMessage is not trivially copyable across the
  // staging buffer, but sinks only observe (id, sent_at, now), so the
  // replay rebuilds an equivalent temporary.
  if (deliver_sink_ != nullptr &&
      !sim::stage_effect<&AtomicBroadcastProcess::replay_deliver_sink>(this, m.id.origin,
                                                                       m.id.seq, m.sent_at))
    deliver_sink_->on_deliver(m);
}

void AtomicBroadcastProcess::replay_deliver_sink(net::ProcessId origin, std::uint64_t seq,
                                                 sim::Time sent_at) {
  const AppMessage tmp(MsgId{origin, seq}, sent_at);
  deliver_sink_->on_deliver(tmp);
}

void AtomicBroadcastProcess::on_restart() {
  if (flush_timer_ != 0) {
    sys_->scheduler().cancel(flush_timer_);
    flush_timer_ = 0;
  }
  // Accepted-but-unflushed submissions were recorded by the harness the
  // moment a_broadcast returned; dropping them would leave recorded
  // messages undeliverable forever.  Reissue them through the restarted
  // algorithm (the overrider reset its volatile state before calling us).
  flush_queue();
}

}  // namespace fdgm::abcast
