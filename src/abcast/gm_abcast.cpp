#include "abcast/gm_abcast.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/observer.hpp"

namespace fdgm::abcast {

// -------------------------------------------------------------- wire types
// Payload kinds on kAtomicBroadcast: the GM stack uses 8..15 (the FD
// stack owns 0..7 — see fd_abcast.cpp).

class GmAbcastProcess::DataMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 8;
  explicit DataMsg(AppMessagePtr msg) : Payload(kProto, kKind), msg(msg) {}
  AppMessagePtr msg;
};

class GmAbcastProcess::SeqnumMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 9;
  SeqnumMsg(std::uint64_t view_id, std::vector<std::pair<MsgId, std::int64_t>> pairs)
      : Payload(kProto, kKind), view_id(view_id), pairs(std::move(pairs)) {}
  std::uint64_t view_id;
  std::vector<std::pair<MsgId, std::int64_t>> pairs;
};

class GmAbcastProcess::AckMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 10;
  AckMsg(std::uint64_t view_id, std::int64_t cum)
      : Payload(kProto, kKind), view_id(view_id), cum(cum) {}
  std::uint64_t view_id;
  std::int64_t cum;
};

class GmAbcastProcess::DeliverMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 11;
  DeliverMsg(std::uint64_t view_id, std::int64_t cum, std::int64_t stable)
      : Payload(kProto, kKind), view_id(view_id), cum(cum), stable(stable) {}
  std::uint64_t view_id;
  std::int64_t cum;
  /// Every view member holds content+order up to here (min cumulative
  /// ack): recently-delivered retention can be pruned up to this point.
  std::int64_t stable;
};

/// Repair request: "send me sequence numbers and contents in (from, to]".
/// Needed after a rejoin, when SEQNUM multicasts may have been sent to a
/// view that did not include the joiner yet.
class GmAbcastProcess::NeedMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 12;
  NeedMsg(std::uint64_t view_id, std::int64_t from, std::int64_t to)
      : Payload(kProto, kKind), view_id(view_id), from(from), to(to) {}
  std::uint64_t view_id;
  std::int64_t from;
  std::int64_t to;
};

/// State transferred to a wrongly excluded process when it rejoins.
class GmAbcastProcess::GmState final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kAtomicBroadcast;
  static constexpr std::uint8_t kKind = 13;
  GmState() : Payload(kProto, kKind) {}
  std::vector<AppMessagePtr> log_suffix;                       // missed deliveries
  std::vector<std::pair<AppMessagePtr, std::int64_t>> known;  // undelivered (+sn or -1)
  std::int64_t sn_floor = 0;
  std::int64_t settled = 0;  // sender's deliver point (joiner's new baseline)
};

// ------------------------------------------------------------ construction

GmAbcastProcess::GmAbcastProcess(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                                 GmAbcastConfig cfg)
    : AtomicBroadcastProcess(sys, self, cfg.batching),
      fd_(&fd),
      cfg_(cfg),
      rb_(sys, self, fd, rbcast::RbConfig{.relay_on_suspicion = false}),
      consensus_(sys, self, fd, rb_),
      membership_(sys, self, fd, rb_, consensus_, *this,
                  gm::MembershipConfig{.join_retry = cfg.join_retry}) {
  view_ = membership_.view();
  acks_.assign(static_cast<std::size_t>(sys.n()), kNoAck);
  sys.node(self).register_handler(net::ProtocolId::kAtomicBroadcast, this);
}

GmAbcastProcess::~GmAbcastProcess() {
  sys_->node(self_).register_handler(net::ProtocolId::kAtomicBroadcast, nullptr);
}

// ------------------------------------------------------------- data plane

void GmAbcastProcess::submit_now(AppMessagePtr msg) {
  if (!member_) {
    // Wrongly excluded: hold the message until we rejoin.
    own_buffer_.push_back(msg);
    return;
  }
  sys_->node(self_).multicast_others(view_.members, net::ProtocolId::kAtomicBroadcast,
                                     sys_->arena().make<DataMsg>(msg));
  handle_data(msg);
}

void GmAbcastProcess::flush_batch(const AppMessagePtr* msgs, std::size_t count) {
  if (!member_) {
    own_buffer_.insert(own_buffer_.end(), msgs, msgs + count);
    return;
  }
  // One multicast carries the whole batch; the receivers (and we) admit k
  // messages and run the ordering step once, so the sequencer covers the
  // batch with a single SEQNUM assignment round.
  sys_->node(self_).multicast_others(
      view_.members, net::ProtocolId::kAtomicBroadcast,
      sys_->arena().make<AppBatch>(std::vector<AppMessagePtr>(msgs, msgs + count)));
  bool admitted = false;
  for (std::size_t i = 0; i < count; ++i) admitted |= admit_data(msgs[i]);
  if (admitted) trigger_ordering();
}

void GmAbcastProcess::on_restart() {
  // Crash-recovery: stable storage is the A-delivery log (log_, delivered_),
  // our own message counter and the buffer of accepted-but-unsent own
  // messages; every piece of in-flight coordination state belonged to the
  // dead incarnation.  In particular, stale sequence assignments of a dead
  // view must not survive — they could collide with the live view's
  // assignments after the state transfer (emplace keeps the first
  // mapping).  The floors stay: they are monotone and apply_state raises
  // them to the state sender's baseline anyway.  own_buffer_ must survive
  // the restart: the harness records an A-broadcast the moment the
  // application submits it, so dropping the buffer would leave recorded
  // messages undeliverable forever (and fail every drain check).
  msgs_.clear();
  arrival_order_.clear();
  sn_of_.clear();
  msg_at_.clear();
  recent_delivered_.clear();
  batch_ends_.clear();
  acks_.assign(static_cast<std::size_t>(sys_->n()), kNoAck);
  member_ = false;
  frozen_ = true;
  // Base class: re-route accepted-but-unflushed submissions; member_ is
  // already false, so they land in own_buffer_ and go out after the rejoin.
  AtomicBroadcastProcess::on_restart();
  membership_.rejoin();
}

void GmAbcastProcess::handle_data(const AppMessagePtr& msg) {
  if (admit_data(msg)) trigger_ordering();
}

bool GmAbcastProcess::admit_data(const AppMessagePtr& msg) {
  if (delivered_.contains(msg->id) || msgs_.contains(msg->id)) return false;
  msgs_.emplace(msg->id, msg);
  arrival_order_.push_back(msg->id);
  // Causal anchor (sequencer only): the message entered the pending queue
  // here; the walker closes the interval at the sn assignment.
  if (active_sequencer()) {
    if (auto* o = sys_->obs(); o != nullptr && o->causal()) {
      obs::MsgRefList refs;
      refs.add(msg->id.origin, msg->id.seq);
      o->trace_marker(obs::EdgeKind::kSeqEnter, self_, refs, sys_->now());
    }
  }
  return true;
}

void GmAbcastProcess::trigger_ordering() {
  if (active_sequencer())
    sequence_pending();
  else
    try_advance_ack();
}

void GmAbcastProcess::sequence_pending() {
  // Shallow batch pipeline (uniform mode): at most two batches awaiting
  // their DELIVER announcement.
  if (cfg_.uniform) {
    std::erase_if(batch_ends_, [this](std::int64_t e) { return e <= announced_; });
    if (batch_ends_.size() >= 2) return;
  }
  // Assign the next sequence numbers to every known unsequenced message.
  std::vector<std::pair<MsgId, std::int64_t>> assigned;
  for (const MsgId& id : arrival_order_) {
    if (delivered_.contains(id) || sn_of_.contains(id)) continue;
    const std::int64_t sn = next_sn_++;
    sn_of_.emplace(id, sn);
    msg_at_.emplace(sn, id);
    assigned.emplace_back(id, sn);
  }
  if (assigned.empty()) return;
  // The sequencer's sn assignment is the instant a GM message's global
  // order becomes fixed — the "ordered" point of its lifecycle span.
  if (auto* o = sys_->obs()) {
    for (const auto& [id, sn] : assigned) o->on_ordered(id.origin, id.seq, sys_->now(), self_);
  }
  batch_ends_.push_back(next_sn_ - 1);
  sys_->node(self_).multicast_others(
      view_.members, net::ProtocolId::kAtomicBroadcast,
      sys_->arena().make<SeqnumMsg>(view_.id, std::move(assigned)));
  if (cfg_.uniform) {
    try_deliver_sequencer();
  } else {
    // Non-uniform: the sequencer delivers as soon as the order is fixed.
    deliver_up_to(next_sn_ - 1);
  }
}

void GmAbcastProcess::try_advance_ack() {
  const std::int64_t before = ack_sn_;
  while (true) {
    auto it = msg_at_.find(ack_sn_ + 1);
    if (it == msg_at_.end() || !msgs_.contains(it->second)) break;
    ++ack_sn_;
  }
  if (ack_sn_ == before) return;
  if (!member_ || frozen_) return;
  if (cfg_.uniform) {
    if (!is_sequencer())
      sys_->node(self_).send(view_.members.front(), net::ProtocolId::kAtomicBroadcast,
                             sys_->arena().make<AckMsg>(view_.id, ack_sn_));
    deliver_up_to(std::min(announced_, ack_sn_));
  } else {
    // Non-uniform: deliver as soon as content + order are known.
    deliver_up_to(ack_sn_);
  }
}

void GmAbcastProcess::try_deliver_sequencer() {
  if (!cfg_.uniform || !active_sequencer()) return;
  // Cumulative ack coverage: sn is deliverable once a majority of the view
  // (the sequencer included — it holds everything it assigned) covers it.
  // cover_buf_ is reused and selected with nth_element: O(|view|) per ack
  // instead of an allocation plus a full sort.
  std::vector<std::int64_t>& cover = cover_buf_;
  cover.clear();
  cover.push_back(next_sn_ - 1);
  for (net::ProcessId p : view_.members) {
    if (p == self_) continue;
    const std::int64_t a = acks_[static_cast<std::size_t>(p)];
    cover.push_back(a == kNoAck ? sn_floor_ : a);
  }
  const auto kth = cover.begin() + static_cast<std::ptrdiff_t>(view_.majority() - 1);
  std::nth_element(cover.begin(), kth, cover.end(), std::greater<>());
  const std::int64_t deliverable = *kth;
  if (deliverable <= announced_) return;
  const std::int64_t stable = *std::min_element(cover.begin(), cover.end());
  announced_ = deliverable;
  deliver_up_to(deliverable);
  recent_delivered_.erase(recent_delivered_.begin(), recent_delivered_.upper_bound(stable));
  sys_->node(self_).multicast_others(
      view_.members, net::ProtocolId::kAtomicBroadcast,
      sys_->arena().make<DeliverMsg>(view_.id, deliverable, stable));
  // Batches may have completed: assign the next one if messages queued up.
  sequence_pending();
}

void GmAbcastProcess::deliver_up_to(std::int64_t sn) {
  while (deliver_sn_ < sn) {
    auto it = msg_at_.find(deliver_sn_ + 1);
    if (it == msg_at_.end()) break;
    auto mit = msgs_.find(it->second);
    if (mit == msgs_.end()) break;
    ++deliver_sn_;
    if (cfg_.uniform) recent_delivered_.emplace(deliver_sn_, mit->second);
    deliver_msg(mit->second);
  }
}

void GmAbcastProcess::deliver_msg(AppMessagePtr msg) {
  if (!delivered_.insert(msg->id).second) return;
  msgs_.erase(msg->id);  // content lives on in the run's arena
  log_.push_back(msg);
  deliver(*msg);
}

// ---------------------------------------------------------------- messages

void GmAbcastProcess::on_message(const net::Message& m) {
  if (const auto* d = net::payload_cast<DataMsg>(m)) {
    handle_data(d->msg);
    return;
  }
  if (const auto* b = net::payload_cast<AppBatch>(m)) {
    bool admitted = false;
    for (AppMessagePtr msg : b->msgs) admitted |= admit_data(msg);
    if (admitted) trigger_ordering();
    return;
  }
  if (const auto* s = net::payload_cast<SeqnumMsg>(m)) {
    if (s->view_id != view_.id) return;  // stale view: ignored, re-sequenced later
    for (const auto& [id, sn] : s->pairs) {
      if (sn <= sn_floor_) continue;
      sn_of_.emplace(id, sn);
      msg_at_.emplace(sn, id);
    }
    try_advance_ack();
    return;
  }
  if (const auto* a = net::payload_cast<AckMsg>(m)) {
    if (a->view_id != view_.id || !active_sequencer()) return;
    std::int64_t& cum = acks_[static_cast<std::size_t>(m.src)];
    cum = std::max(cum, a->cum);
    try_deliver_sequencer();
    return;
  }
  if (const auto* del = net::payload_cast<DeliverMsg>(m)) {
    if (del->view_id != view_.id || frozen_ || !member_) return;
    announced_ = std::max(announced_, del->cum);
    deliver_up_to(std::min(announced_, ack_sn_));
    recent_delivered_.erase(recent_delivered_.begin(),
                            recent_delivered_.upper_bound(del->stable));
    if (announced_ > ack_sn_ && announced_ > requested_) {
      // Gap repair (post-rejoin): ask the sequencer for what we miss.
      requested_ = announced_;
      sys_->node(self_).send(view_.members.front(), net::ProtocolId::kAtomicBroadcast,
                             sys_->arena().make<NeedMsg>(view_.id, ack_sn_, announced_));
    }
    return;
  }
  if (const auto* need = net::payload_cast<NeedMsg>(m)) {
    if (need->view_id != view_.id || !is_sequencer()) return;
    std::vector<std::pair<MsgId, std::int64_t>> pairs;
    const std::int64_t lo = std::max(need->from, sn_floor_);
    for (std::int64_t sn = lo + 1; sn <= std::min(need->to, next_sn_ - 1); ++sn) {
      auto it = msg_at_.find(sn);
      if (it == msg_at_.end()) continue;
      pairs.emplace_back(it->second, sn);
      AppMessagePtr content = nullptr;
      if (auto mit = msgs_.find(it->second); mit != msgs_.end()) {
        content = mit->second;
      } else {
        // Already delivered here: fetch from the log.
        for (auto lit = log_.rbegin(); lit != log_.rend(); ++lit)
          if ((*lit)->id == it->second) {
            content = *lit;
            break;
          }
      }
      if (content != nullptr)
        sys_->node(self_).send(m.src, net::ProtocolId::kAtomicBroadcast,
                               sys_->arena().make<DataMsg>(content));
    }
    if (!pairs.empty()) {
      const SeqnumMsg* reply =
          sys_->arena().make<SeqnumMsg>(view_.id, std::move(pairs));
      if (batching().enabled) {
        // Hotspot mitigation: under batched load the repair traffic
        // concentrates on the sequencer (one lost SEQNUM gaps everyone).
        // Re-multicasting the assignments answers every gapped member with
        // one reply instead of one unicast per NACK.
        sys_->node(self_).multicast_others(view_.members, net::ProtocolId::kAtomicBroadcast,
                                           reply);
      } else {
        sys_->node(self_).send(m.src, net::ProtocolId::kAtomicBroadcast, reply);
      }
    }
    return;
  }
  throw std::logic_error("GmAbcastProcess: foreign payload");
}

// --------------------------------------------------- membership client side

gm::UnstableReport GmAbcastProcess::unstable_messages() const {
  gm::UnstableReport report;
  report.watermark = deliver_sn_;
  report.entries.reserve(msgs_.size() + recent_delivered_.size());
  // Undelivered messages, sequenced or not.
  for (const MsgId& id : arrival_order_) {
    auto it = msgs_.find(id);
    if (it == msgs_.end()) continue;  // delivered
    auto sit = sn_of_.find(id);
    report.entries.push_back(
        gm::UnstableEntry{it->second, sit == sn_of_.end() ? -1 : sit->second});
  }
  // Recently delivered sequenced messages: possibly undelivered elsewhere,
  // so they must keep their sequence number through the view change.
  for (const auto& [sn, msg] : recent_delivered_)
    report.entries.push_back(gm::UnstableEntry{msg, sn});
  return report;
}

void GmAbcastProcess::on_view_change_started() { frozen_ = true; }

void GmAbcastProcess::flush(const std::vector<gm::UnstableEntry>& u, std::int64_t settled) {
  // Canonical flush order: sequenced messages by sequence number, then
  // unsequenced ones by id.  Every member applies the same decided vector,
  // so the logs stay identical.
  std::vector<gm::UnstableEntry> sequenced;
  std::vector<gm::UnstableEntry> plain;
  for (const gm::UnstableEntry& e : u)
    (e.seqnum >= 0 ? sequenced : plain).push_back(e);
  std::sort(sequenced.begin(), sequenced.end(),
            [](const auto& a, const auto& b) { return a.seqnum < b.seqnum; });
  std::sort(plain.begin(), plain.end(),
            [](const auto& a, const auto& b) { return a.msg->id < b.msg->id; });

  std::int64_t max_sn = sn_floor_;
  for (const gm::UnstableEntry& e : sequenced) {
    max_sn = std::max(max_sn, e.seqnum);
    if (!delivered_.contains(e.msg->id)) {
      msgs_.try_emplace(e.msg->id, e.msg);  // we may never have seen it
      deliver_msg(e.msg);
    }
  }
  for (const gm::UnstableEntry& e : plain)
    if (!delivered_.contains(e.msg->id)) deliver_msg(e.msg);

  // Everything up to the decided settled point is done; mappings above the
  // floor belong to the dead view and will be re-assigned.
  sn_floor_ = std::max({sn_floor_, max_sn, settled});
  ack_sn_ = std::max(ack_sn_, sn_floor_);
  deliver_sn_ = std::max(deliver_sn_, sn_floor_);
  announced_ = std::max(announced_, sn_floor_);
  requested_ = std::max(requested_, sn_floor_);
  recent_delivered_.erase(recent_delivered_.begin(),
                          recent_delivered_.upper_bound(sn_floor_));
  drop_mappings_above_floor();
}

void GmAbcastProcess::drop_mappings_above_floor() {
  for (auto it = msg_at_.begin(); it != msg_at_.end();) {
    if (it->first > sn_floor_) {
      sn_of_.erase(it->second);
      it = msg_at_.erase(it);
    } else {
      ++it;
    }
  }
}

void GmAbcastProcess::on_view_installed(const gm::View& v, bool member) {
  view_ = v;
  member_ = member;
  frozen_ = !member;
  acks_.assign(static_cast<std::size_t>(sys_->n()), kNoAck);
  if (!member) return;

  next_sn_ = sn_floor_ + 1;
  batch_ends_.clear();  // no batch in flight in the fresh view
  ack_sn_ = std::max(ack_sn_, sn_floor_);
  deliver_sn_ = std::max(deliver_sn_, sn_floor_);
  announced_ = std::max(announced_, sn_floor_);
  if (active_sequencer()) sequence_pending();
  try_advance_ack();
  send_buffered();
}

void GmAbcastProcess::send_buffered() {
  if (own_buffer_.empty()) return;
  std::vector<AppMessagePtr> buf;
  buf.swap(own_buffer_);
  for (AppMessagePtr msg : buf) {
    sys_->node(self_).multicast_others(view_.members, net::ProtocolId::kAtomicBroadcast,
                                       sys_->arena().make<DataMsg>(msg));
    handle_data(msg);
  }
}

net::PayloadPtr GmAbcastProcess::make_state(std::uint64_t from) const {
  GmState* st = sys_->arena().make<GmState>();
  for (std::size_t i = from; i < log_.size(); ++i) st->log_suffix.push_back(log_[i]);
  for (const MsgId& id : arrival_order_) {
    auto it = msgs_.find(id);
    if (it == msgs_.end()) continue;
    auto sit = sn_of_.find(id);
    st->known.emplace_back(it->second,
                           sit == sn_of_.end() ? std::int64_t{-1} : sit->second);
  }
  st->sn_floor = sn_floor_;
  st->settled = deliver_sn_;
  return st;
}

void GmAbcastProcess::apply_state(const net::PayloadPtr& state, const gm::View& v) {
  const GmState* st = net::payload_cast<GmState>(state);
  if (st == nullptr) throw std::logic_error("GmAbcastProcess: bad state payload");
  for (AppMessagePtr msg : st->log_suffix)
    if (!delivered_.contains(msg->id)) deliver_msg(msg);
  // Raise the floor first: mappings in `known` above the sender's floor are
  // live assignments of the current view and must be kept.
  sn_floor_ = std::max(sn_floor_, st->sn_floor);
  drop_mappings_above_floor();  // our own leftovers from the dead view
  recent_delivered_.erase(recent_delivered_.begin(),
                          recent_delivered_.upper_bound(sn_floor_));
  for (const auto& [msg, sn] : st->known) {
    if (delivered_.contains(msg->id)) continue;
    if (msgs_.try_emplace(msg->id, msg).second) arrival_order_.push_back(msg->id);
    if (sn > sn_floor_) {
      sn_of_.emplace(msg->id, sn);
      msg_at_.emplace(sn, msg->id);
    }
  }
  // The state sender's deliver point becomes our baseline: everything it
  // delivered is in the suffix we just applied.
  ack_sn_ = std::max(sn_floor_, st->settled);
  deliver_sn_ = ack_sn_;
  announced_ = ack_sn_;
  requested_ = ack_sn_;
  // Note: on_view_installed(v, true) follows immediately (membership layer).
  (void)v;
}

}  // namespace fdgm::abcast

namespace fdgm::obs {

// Defined here because DATA / SEQNUM are private to the GM stack.
void classify_gm_payload(net::PayloadPtr p, MsgRefList& out) {
  using DataMsg = abcast::GmAbcastProcess::DataMsg;
  using SeqnumMsg = abcast::GmAbcastProcess::SeqnumMsg;
  if (const auto* d = net::payload_cast<DataMsg>(p)) {
    out.add(d->msg->id.origin, d->msg->id.seq);
    return;
  }
  if (const auto* s = net::payload_cast<SeqnumMsg>(p)) {
    for (const auto& [id, sn] : s->pairs) out.add(id.origin, id.seq);
  }
  // ACK / DELIVER / NEED / state transfer are control traffic.
}

}  // namespace fdgm::obs
