// Retransmission transport: per-pair, sequence-numbered quasi-reliable
// channels between net::Network and the protocol stacks.
//
// The paper's stacks assume quasi-reliable channels (no loss between
// correct processes), which the contention network only provides while the
// loss fault is off.  This layer restores the assumption under sustained
// message loss so the `loss` fault event can be driven through the full
// FD- and GM-based atomic broadcast stacks:
//
//  * every remote point-to-point delivery is stamped — in the wire
//    fan-out event, via Network::FrameStage — with a sequence number in
//    the ordered (src, dst) channel plus a piggybacked cumulative ack for
//    the reverse channel (FrameHeader in net/message.hpp);
//  * receivers deliver frames to the Node in per-channel sequence order,
//    park out-of-order frames in a pooled reorder buffer and answer gaps
//    with a NACK carrying (cumulative ack, gap-triggering seq);
//  * senders keep frames that might have been dropped in a pooled
//    retransmission ring (payload handles point into the run's
//    PayloadArena) and retransmit the NACKed range immediately — the
//    channel pipeline is FIFO end to end, so a gap at the receiver is
//    *sound* loss evidence even under congestion.  Rings are pruned by
//    cumulative acks piggybacked on reverse data traffic (free);
//    an exponential-backoff timer covers what NACKs cannot see: tail
//    loss (the last frame of a conversation has no successor to reveal
//    the gap) and silent peers.  The timer never floods: it waits out
//    both the peer's observed reverse-traffic gap envelope and the
//    current wire/CPU backlog (timeouts below the queueing delay are
//    what turn load into congestion collapse), then probes with the
//    single oldest frame — if everything was in fact delivered, the
//    duplicate-triggered cumulative ACK prunes the whole ring for the
//    cost of one unicast;
//  * retransmitted frames carry a retx flag that makes the receiver
//    answer with an explicit cumulative ACK, so a sender whose peer has
//    no reverse traffic still learns the outcome and stops.
//
// Bit-identity when loss is off: the simulator knows whether the loss
// filter can drop a frame at the instant the frame is stamped (stamping
// and filtering run in the same wire-completion event, and partitions
// hold rather than drop).  A frame stamped under a loss-free filter is
// guaranteed to arrive, so it is neither buffered nor timed — stamping
// degenerates to counter arithmetic on the per-destination copy.  An
// armed transport therefore adds zero scheduler events, zero RNG draws
// and zero heap allocations to a loss-free run: delivery sequences,
// event counts and every results CSV are bit-identical to the transport-
// less tree (asserted by tests/determinism_test.cpp golden hashes).
//
// Crash semantics: the transport lives below the Node's crash line (the
// host kernel, in real-system terms).  The software-crash model keeps the
// host CPU serving jobs, so channels keep sequencing, acking and
// retransmitting across a process crash; the payload of a frame delivered
// to a crashed process is dropped at Node::deliver exactly as before, and
// the stacks' recovery protocols (GM rejoin, FD log sync) catch up.
#pragma once

#include <cstdint>
#include <vector>

#include "net/arena.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace fdgm::obs {
class Observer;
}  // namespace fdgm::obs

namespace fdgm::transport {

struct Config {
  /// Arm the transport (SimConfig::transport / fdgm_bench --transport).
  bool enabled = false;
  /// Initial retransmission timeout per channel (ms).
  double rto_ms = 50.0;
  /// RTO multiplier applied after every timer-driven retransmission round.
  double backoff = 2.0;
  /// Backoff ceiling (ms).
  double max_rto_ms = 3200.0;
  /// Base spacing between NACKs of one receiving channel (ms).  While
  /// the same gap frontier persists, the spacing doubles per re-NACK
  /// (capped at 16x) and resets when the frontier advances: re-NACKs
  /// exist to cover a *lost* NACK, so their steady rate must track the
  /// loss probability, not the arrival rate — every NACK burns a wire
  /// slot the recovery is trying to free.
  double nack_min_gap_ms = 10.0;
  /// Quiet-channel factor: the timer does not blindly retransmit an
  /// unacked frame younger than `quiet_factor` times the channel's
  /// observed reverse-gap envelope (plus the instantaneous pipeline
  /// backlog) — a piggybacked cumulative ack is still plausibly on its
  /// way, and on the paper's shared-medium network (one wire slot per
  /// message, multicast or not) blind per-destination retransmissions of
  /// delivered frames are what saturates the bus at large n.  The timer
  /// postpones instead (a pure scheduler event, no traffic); genuinely
  /// lost frames are recovered much earlier by NACKs.
  double quiet_factor = 2.0;
  /// A frame is not retransmitted again within this window of its
  /// previous transmission (ms) — long enough for an in-flight copy to
  /// land on an idle pipeline (one network RTT is 2(2λ+1) = 6 ms at the
  /// paper's λ = 1), so re-triggered NACKs don't duplicate a recovery
  /// already under way.
  double min_retx_spacing_ms = 10.0;
};

/// Aggregate counters over every channel of one system.
struct Stats {
  std::uint64_t data_frames = 0;   ///< fresh frames stamped
  std::uint64_t retransmits = 0;   ///< frame retransmissions (all triggers)
  std::uint64_t retx_nack = 0;     ///< ... triggered by a NACK (gap evidence)
  std::uint64_t retx_timer = 0;    ///< ... timer probes (tail / silent peer)
  std::uint64_t duplicates = 0;    ///< frames suppressed at receivers
  std::uint64_t buffered = 0;      ///< out-of-order frames parked
  std::uint64_t nacks = 0;         ///< NACK control frames sent
  std::uint64_t acks = 0;          ///< explicit ACK control frames sent
  std::uint64_t timer_rounds = 0;  ///< retransmission-timer firings
  std::uint64_t postponed = 0;     ///< timer rounds deferred to the peer's cadence
  std::uint64_t corrupt_dropped = 0;  ///< checksum-failed frames dropped on receive
};

/// Control frame payload (ACK / NACK), allocated from the run's arena.
/// Control frames are fire-and-forget: the loss filter may drop them; the
/// retransmission timer is the backstop.
class TransportCtrl final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kTransport;
  static constexpr std::uint8_t kKind = 0;

  enum class Kind : std::uint8_t { kAck, kNack };

  TransportCtrl(Kind kind, std::uint32_t ack, std::uint32_t hi)
      : Payload(kProto, kKind), kind(kind), ack(ack), hi(hi) {}

  Kind kind;
  /// Cumulative ack of the sender's receiving channel: every frame with
  /// seq <= ack has been received (in order).
  std::uint32_t ack;
  /// NACK only: the gap-triggering seq; the peer retransmits its unacked
  /// frames in (ack, hi).
  std::uint32_t hi;
};

class Transport final : public net::Network::FrameStage {
 public:
  /// Receiver of in-order logical messages (net::System routes them to
  /// the destination Node).
  class Sink {
   public:
    virtual void deliver_frame(const net::Message& m, net::ProcessId dst) = 0;

   protected:
    ~Sink() = default;
  };

  Transport(sim::Scheduler& sched, net::Network& net, net::PayloadArena& arena,
            int num_processes, Config cfg, Sink& sink);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // net::Network::FrameStage — sender side, wire fan-out event.
  void stamp_frame(net::Message& m, net::ProcessId dst) override;
  void frame_dropped(const net::Message& m, net::ProcessId dst) override;

  /// Receive side: every finished network delivery passes through here
  /// (control frames are consumed; data frames are released to the sink
  /// in per-channel sequence order).
  void on_frame(const net::Message& m, net::ProcessId dst);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Unacked frames currently buffered for retransmission on a -> b.
  [[nodiscard]] std::size_t outstanding(net::ProcessId a, net::ProcessId b) const;
  /// Next expected sequence number of the receiving side of a -> b.
  [[nodiscard]] std::uint32_t expected_seq(net::ProcessId a, net::ProcessId b) const;

  /// Retransmissions whose original *sender* is p (always tracked; feeds
  /// the sequencer-concentration metric of the lossy scenarios).
  [[nodiscard]] std::uint64_t retx_from(net::ProcessId p) const {
    return retx_by_src_.at(static_cast<std::size_t>(p));
  }

  /// Attach the observability layer (null = disarmed; counting only,
  /// never influences behavior).
  void set_observer(obs::Observer* o) { obs_ = o; }

 private:
  /// Ring entry: the full frame (payload handle into the arena) plus its
  /// last transmission time (suppresses NACK-driven duplicates).
  struct RingEntry {
    net::Message msg;
    sim::Time last_tx = 0.0;
  };

  /// Sender side of one ordered channel.  POD-ish; rings and buffers keep
  /// their capacity, so steady-state operation does not allocate.
  struct SendState {
    std::uint32_t next_seq = 1;
    std::uint32_t acked = 0;  ///< all seq <= acked are confirmed received
    std::vector<RingEntry> ring;
    std::size_t ring_head = 0;  ///< ring[ring_head..) are live
    sim::EventId timer = 0;     ///< 0 = no retransmission timer pending
    /// Current backoff value (0 = base RTO).  Grows with every blind
    /// timer round and resets only when *data* arrives from the peer —
    /// control frames don't count, so channels to a crashed process (its
    /// host kernel still acks) settle at the backoff ceiling instead of
    /// cycling retransmissions at the base RTO forever.
    double rto = 0.0;
    /// Reverse-traffic bookkeeping: when this sender last heard anything
    /// from the channel's peer, and a decaying *maximum* of the
    /// inter-arrival gaps (ms; a mean would be skewed low by bursts).
    /// Drives the quiet-channel postponement of the blind timer.
    sim::Time heard = -1.0;
    double rx_gap = 0.0;
  };

  /// Receiver side of one ordered channel.
  struct RecvState {
    std::uint32_t expected = 1;        ///< next in-order seq
    std::vector<net::Message> buffer;  ///< out-of-order frames, seq-sorted
    sim::Time last_nack = -1.0e300;
    double nack_gap = 0.0;  ///< current re-NACK spacing (0 = base)
  };

  [[nodiscard]] std::size_t idx(net::ProcessId a, net::ProcessId b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(b);
  }

  void handle_ctrl(const net::Message& m, net::ProcessId dst);
  /// Apply a cumulative ack to channel a -> b (prune, maybe cancel timer).
  void ack_channel(net::ProcessId a, net::ProcessId b, std::uint32_t ack);
  void arm_timer(net::ProcessId a, net::ProcessId b, SendState& s);
  void on_timer(net::ProcessId a, net::ProcessId b);
  /// Record that `self` heard a frame from `peer` (gap envelope of the
  /// reverse channel self -> peer; data contact resets the backoff).
  void note_heard(net::ProcessId self, net::ProcessId peer, bool data);
  void retransmit(net::ProcessId b, RingEntry& e);
  void send_ctrl(net::ProcessId from, net::ProcessId to, TransportCtrl::Kind kind,
                 std::uint32_t hi);

  sim::Scheduler* sched_;
  net::Network* net_;
  net::PayloadArena* arena_;
  int n_;
  Config cfg_;
  Sink* sink_;
  std::vector<SendState> send_;  ///< n*n, row = sender
  std::vector<RecvState> recv_;  ///< n*n, row = sender (channel direction)
  Stats stats_;
  std::vector<std::uint64_t> retx_by_src_;  ///< per-origin retransmission tally
  obs::Observer* obs_ = nullptr;
};

}  // namespace fdgm::transport
