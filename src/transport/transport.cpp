#include "transport/transport.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/observer.hpp"

namespace fdgm::transport {

namespace {

// Records one causal edge (stall interval or, with t0 == t1, a point
// marker) per application message the frame carries.  Callers guard on
// obs->causal().
inline void causal_edges(obs::Observer* o, obs::EdgeKind kind, net::ProcessId node,
                         const net::Message& m, double t0, double t1) {
  obs::MsgRefList refs;
  obs::classify_payload(m.payload, refs);
  if (!refs.empty()) o->trace_stall(kind, node, refs, t0, t1);
}

}  // namespace

Transport::Transport(sim::Scheduler& sched, net::Network& net, net::PayloadArena& arena,
                     int num_processes, Config cfg, Sink& sink)
    : sched_(&sched),
      net_(&net),
      arena_(&arena),
      n_(num_processes),
      cfg_(cfg),
      sink_(&sink) {
  if (num_processes <= 0) throw std::invalid_argument("Transport: need at least one process");
  if (cfg_.rto_ms <= 0 || cfg_.backoff < 1.0 || cfg_.max_rto_ms < cfg_.rto_ms)
    throw std::invalid_argument("Transport: bad retransmission timing config");
  const std::size_t pairs =
      static_cast<std::size_t>(num_processes) * static_cast<std::size_t>(num_processes);
  send_.resize(pairs);
  recv_.resize(pairs);
  retx_by_src_.assign(static_cast<std::size_t>(num_processes), 0);
}

std::size_t Transport::outstanding(net::ProcessId a, net::ProcessId b) const {
  const SendState& s = send_.at(idx(a, b));
  return s.ring.size() - s.ring_head;
}

std::uint32_t Transport::expected_seq(net::ProcessId a, net::ProcessId b) const {
  return recv_.at(idx(a, b)).expected;
}

void Transport::stamp_frame(net::Message& m, net::ProcessId dst) {
  if (m.proto == net::ProtocolId::kTransport) return;  // control frames are unsequenced
  SendState& s = send_[idx(m.src, dst)];
  if (!m.frame.stamped()) {
    if (s.next_seq > net::FrameHeader::kSeqMask)
      throw std::logic_error("Transport: channel sequence space exhausted");
    m.frame.seq = s.next_seq++;
    ++stats_.data_frames;
    // Only a frame that might fail to arrive intact needs recovery
    // machinery: a partition holds (and re-injects in order), so with
    // loss and corruption off the frame is guaranteed to arrive and the
    // no-loss path stays free of buffering, timers and — with them — any
    // deviation from the transport-less event sequence.
    if (net_->can_drop()) {
      s.ring.push_back(RingEntry{m, sched_->now()});
      arm_timer(m.src, dst, s);
    }
  }
  // Refresh the piggybacked cumulative ack of the reverse channel on
  // every transmission, retransmissions included.
  m.frame.ack = recv_[idx(dst, m.src)].expected - 1;
}

void Transport::frame_dropped(const net::Message& m, net::ProcessId dst) {
  if (m.proto == net::ProtocolId::kTransport || !m.frame.stamped()) return;
  SendState& s = send_[idx(m.src, dst)];
  const std::uint32_t seq = m.frame.seq_no();
  if (seq <= s.acked) return;  // already confirmed via an earlier copy
  // The common case — the frame was stamped inside a loss window — finds
  // its ring entry already present.  The insert path covers frames that
  // were stamped loss-free, then *held* by a (possibly asymmetric)
  // partition and dropped when the heal re-ran the filter inside a loss
  // window: without an entry the channel would deadlock on the missing
  // sequence number (NACKs would request a frame no ring holds).
  const auto it = std::lower_bound(
      s.ring.begin() + static_cast<std::ptrdiff_t>(s.ring_head), s.ring.end(), seq,
      [](const RingEntry& e, std::uint32_t v) { return e.msg.frame.seq_no() < v; });
  if (it != s.ring.end() && it->msg.frame.seq_no() == seq) return;
  net::Message f = m;
  f.frame.seq = seq;  // store the clean copy; retransmit() re-applies the retx bit
  s.ring.insert(it, RingEntry{f, sched_->now()});
  arm_timer(m.src, dst, s);
}

void Transport::note_heard(net::ProcessId self, net::ProcessId peer, bool data) {
  SendState& s = send_[idx(self, peer)];
  const sim::Time now = sched_->now();
  if (s.heard >= 0.0) {
    const double gap = now - s.heard;
    // Decaying maximum: tracks the upper envelope of the peer's sending
    // gaps (a mean would be dragged down by multicast bursts and make
    // the blind timer fire before the peer's next piggyback is due).
    s.rx_gap = std::max(gap, 0.875 * s.rx_gap);
  }
  s.heard = now;
  if (data) s.rto = 0.0;  // live peer: backoff restarts from the base RTO
}

void Transport::on_frame(const net::Message& m, net::ProcessId dst) {
  // Checksum verify first: a frame damaged in transit carries nothing
  // trustworthy — not the piggybacked ack, not even the source identity —
  // so it is dropped wholesale before any channel state is touched.  The
  // sender's ring still holds a clean copy (the corruption filter reports
  // the drop like a loss), and the NACK/timer machinery recovers it.
  if (net_->checksums_enabled() && !net::frame_checksum_ok(m)) {
    ++stats_.corrupt_dropped;
    if (obs_ != nullptr) obs_->count(dst, obs::Counter::kCorruptionDetected, sched_->now());
    return;
  }
  note_heard(dst, m.src, m.proto != net::ProtocolId::kTransport);
  if (m.proto == net::ProtocolId::kTransport) {
    handle_ctrl(m, dst);
    return;
  }
  if (!m.frame.stamped()) {  // pre-transport traffic (tests); pass through
    sink_->deliver_frame(m, dst);
    return;
  }
  // Piggybacked cumulative ack for the reverse channel, processed even on
  // duplicates — an old frame still carries fresh ack state.
  ack_channel(dst, m.src, m.frame.ack);

  RecvState& r = recv_[idx(m.src, dst)];
  const std::uint32_t seq = m.frame.seq_no();
  const bool retx = m.frame.is_retx();

  if (seq < r.expected) {  // duplicate of an already-released frame
    ++stats_.duplicates;
    if (obs_ != nullptr) obs_->count(dst, obs::Counter::kTransportDups, sched_->now());
    if (retx) send_ctrl(dst, m.src, TransportCtrl::Kind::kAck, 0);
    return;
  }
  if (seq == r.expected) {
    ++r.expected;
    r.nack_gap = 0.0;  // frontier advanced: re-NACK backoff resets
    sink_->deliver_frame(m, dst);
    // Release buffered successors now contiguous with the new frontier.
    std::size_t k = 0;
    while (k < r.buffer.size() && r.buffer[k].frame.seq_no() == r.expected) {
      ++r.expected;
      // Causal marker: this frame's reorder-buffer hold ends here (the
      // matching kReorderEnq was recorded when it was parked).
      if (obs_ != nullptr && obs_->causal()) {
        causal_edges(obs_, obs::EdgeKind::kReorderRel, dst, r.buffer[k], sched_->now(),
                     sched_->now());
      }
      sink_->deliver_frame(r.buffer[k], dst);
      ++k;
    }
    if (k > 0)
      r.buffer.erase(r.buffer.begin(), r.buffer.begin() + static_cast<std::ptrdiff_t>(k));
    // An in-order retransmission means the original was lost and the
    // sender is already backing off: confirm receipt explicitly so a
    // channel without reverse traffic still converges (tail loss).
    // First transmissions are never acked explicitly — the piggyback on
    // reverse data traffic prunes the sender's ring for free, and the
    // sender's timer waits out that cadence before retransmitting.
    if (retx) send_ctrl(dst, m.src, TransportCtrl::Kind::kAck, 0);
    return;
  }

  // Gap: park the frame (seq-sorted, duplicates suppressed) and NACK the
  // missing prefix, rate-limited per channel.
  const auto it = std::lower_bound(
      r.buffer.begin(), r.buffer.end(), seq,
      [](const net::Message& e, std::uint32_t s) { return e.frame.seq_no() < s; });
  if (it != r.buffer.end() && it->frame.seq_no() == seq) {
    ++stats_.duplicates;
    if (obs_ != nullptr) obs_->count(dst, obs::Counter::kTransportDups, sched_->now());
    if (retx) send_ctrl(dst, m.src, TransportCtrl::Kind::kAck, 0);
    return;
  }
  r.buffer.insert(it, m);
  ++stats_.buffered;
  if (obs_ != nullptr) {
    obs_->count(dst, obs::Counter::kTransportBuffered, sched_->now());
    obs_->reorder_depth(dst, r.buffer.size());
    // Causal marker: parked out of order; the hold lasts until the
    // matching kReorderRel when the gap closes.
    if (obs_->causal()) {
      causal_edges(obs_, obs::EdgeKind::kReorderEnq, dst, m, sched_->now(), sched_->now());
    }
  }
  // Re-NACK spacing: exponential per stalled frontier, and never shorter
  // than the current pipeline backlog — the requested retransmission has
  // to work its way through the same queues, and re-NACKing into a loaded
  // wire only deepens the load the recovery is waiting on.
  if (r.nack_gap == 0.0) r.nack_gap = cfg_.nack_min_gap_ms;
  const double nack_wait =
      std::max(r.nack_gap, net_->wire_backlog() + net_->cpu_backlog(dst) +
                               net_->cpu_backlog(m.src));
  if (sched_->now() - r.last_nack >= nack_wait) {
    r.last_nack = sched_->now();
    r.nack_gap = std::min(r.nack_gap * 2.0, 16.0 * cfg_.nack_min_gap_ms);
    send_ctrl(dst, m.src, TransportCtrl::Kind::kNack, r.buffer.front().frame.seq_no());
  }
  if (retx) send_ctrl(dst, m.src, TransportCtrl::Kind::kAck, 0);
}

void Transport::handle_ctrl(const net::Message& m, net::ProcessId dst) {
  const TransportCtrl* c = net::payload_cast<TransportCtrl>(m);
  if (c == nullptr) throw std::logic_error("Transport: foreign control payload");
  ack_channel(dst, m.src, c->ack);
  if (c->kind != TransportCtrl::Kind::kNack) return;
  // Retransmit the unacked frames of the missing range (ack, hi) right
  // away.  The spacing guard includes the instantaneous pipeline backlog:
  // a copy submitted into a loaded wire takes that long to arrive, and a
  // repeated NACK in the meantime is not evidence it was lost again.
  SendState& s = send_[idx(dst, m.src)];
  const double guard = cfg_.min_retx_spacing_ms + net_->wire_backlog() +
                       net_->cpu_backlog(dst) + net_->cpu_backlog(m.src);
  for (std::size_t i = s.ring_head; i < s.ring.size(); ++i) {
    RingEntry& e = s.ring[i];
    const std::uint32_t seq = e.msg.frame.seq_no();
    if (seq <= c->ack) continue;
    if (seq >= c->hi) break;  // ring is seq-sorted
    if (sched_->now() - e.last_tx < guard) continue;
    // Causal stall: this frame's content waited [last_tx, now) for a
    // NACK-triggered retransmission.
    if (obs_ != nullptr && obs_->causal()) {
      causal_edges(obs_, obs::EdgeKind::kStallNack, dst, e.msg, e.last_tx, sched_->now());
    }
    retransmit(m.src, e);
    ++stats_.retx_nack;
    if (obs_ != nullptr) obs_->count(dst, obs::Counter::kTransportRetxNack, sched_->now());
  }
}

void Transport::ack_channel(net::ProcessId a, net::ProcessId b, std::uint32_t ack) {
  SendState& s = send_[idx(a, b)];
  if (ack > s.acked) {
    s.acked = ack;
    while (s.ring_head < s.ring.size() && s.ring[s.ring_head].msg.frame.seq_no() <= ack)
      ++s.ring_head;
  }
  if (s.ring_head == s.ring.size()) {
    s.ring.clear();  // capacity retained; rto decays only via data contact
    s.ring_head = 0;
    if (s.timer != 0) {
      sched_->cancel(s.timer);
      s.timer = 0;
    }
    return;
  }
  if (s.ring_head > 64 && s.ring_head * 2 > s.ring.size()) {
    s.ring.erase(s.ring.begin(), s.ring.begin() + static_cast<std::ptrdiff_t>(s.ring_head));
    s.ring_head = 0;
  }
}

void Transport::arm_timer(net::ProcessId a, net::ProcessId b, SendState& s) {
  if (s.timer != 0) return;
  if (s.rto == 0.0) s.rto = cfg_.rto_ms;
  s.timer = sched_->schedule_after(s.rto, [this, a, b] { on_timer(a, b); });
}

void Transport::on_timer(net::ProcessId a, net::ProcessId b) {
  SendState& s = send_[idx(a, b)];
  s.timer = 0;
  ++stats_.timer_rounds;
  if (s.ring_head == s.ring.size()) {  // everything acked meanwhile
    s.rto = 0.0;
    return;
  }
  // Quiet-channel postponement: a blind retransmission is only justified
  // once (a) the oldest unacked frame is older than the peer's observed
  // reverse-gap envelope — a piggybacked ack is no longer plausibly on
  // its way — AND (b) the current pipeline backlog (wire + both host
  // CPUs) has been waited out: under congestion frames sit in FIFO
  // queues far longer than any fixed RTO, and timeout duplicates are
  // exactly what turns a loaded network into a collapsed one.  Deferral
  // is one scheduler event, no traffic, floored at a coarse quantum (the
  // postponed deadline lands exactly on age == patience, where rounding
  // can leave `age` one ulp short — an unfloored re-deferral of ~1e-13 ms
  // would not even advance simulated time, a same-instant event loop).
  const double backlog = net_->wire_backlog() + net_->cpu_backlog(a) + net_->cpu_backlog(b);
  const double patience = std::max(s.rto, cfg_.quiet_factor * s.rx_gap) + backlog;
  const double age = sched_->now() - s.ring[s.ring_head].last_tx;
  if (age + 0.125 <= patience) {
    ++stats_.postponed;
    const double wait = std::max(patience - age, 0.125);
    // Causal stall: the oldest frame's recovery is deliberately postponed
    // for [now, now + wait) on a quiet-channel judgement.
    if (obs_ != nullptr && obs_->causal()) {
      causal_edges(obs_, obs::EdgeKind::kStallBackoff, a, s.ring[s.ring_head].msg,
                   sched_->now(), sched_->now() + wait);
    }
    s.timer = sched_->schedule_after(wait, [this, a, b] { on_timer(a, b); });
    return;
  }
  // Probe with the oldest frame only: if everything was in fact delivered
  // (the peer just had nothing to piggyback on), the duplicate-triggered
  // cumulative ACK prunes the whole ring at the cost of one unicast; if
  // it was genuinely lost, its in-order arrival both repairs the channel
  // and acks everything buffered behind it.
  RingEntry& e = s.ring[s.ring_head];
  if (sched_->now() - e.last_tx >= cfg_.min_retx_spacing_ms) {
    // Causal stall: waited [last_tx, now) before a blind timer probe.
    if (obs_ != nullptr && obs_->causal()) {
      causal_edges(obs_, obs::EdgeKind::kStallTimer, a, e.msg, e.last_tx, sched_->now());
    }
    retransmit(b, e);
    ++stats_.retx_timer;
    if (obs_ != nullptr) obs_->count(a, obs::Counter::kTransportRetxTimer, sched_->now());
  }
  s.rto = std::min(std::max(s.rto, cfg_.rto_ms) * cfg_.backoff, cfg_.max_rto_ms);
  arm_timer(a, b, s);
}

void Transport::retransmit(net::ProcessId b, RingEntry& e) {
  net::Message f = e.msg;
  f.frame.seq |= net::FrameHeader::kRetxBit;
  e.last_tx = sched_->now();
  ++stats_.retransmits;
  // Attribute the retransmission to the frame's *original sender* — the
  // node whose outbound channel needed recovery.  This per-origin tally
  // is what exposes the GM sequencer as a retransmission hotspot.
  ++retx_by_src_[static_cast<std::size_t>(e.msg.src)];
  if (obs_ != nullptr) obs_->on_retransmit(e.msg.src, sched_->now());
  net_->submit(f, &b, 1, /*loopback_self=*/false);
}

void Transport::send_ctrl(net::ProcessId from, net::ProcessId to, TransportCtrl::Kind kind,
                          std::uint32_t hi) {
  const std::uint32_t ack = recv_[idx(to, from)].expected - 1;
  const TransportCtrl* c = arena_->make<TransportCtrl>(kind, ack, hi);
  if (kind == TransportCtrl::Kind::kNack) {
    ++stats_.nacks;
    if (obs_ != nullptr) obs_->count(from, obs::Counter::kTransportNacks, sched_->now());
  } else {
    ++stats_.acks;
  }
  net::Message m{from, to, net::ProtocolId::kTransport, {}, c};
  net_->submit(m, &to, 1, /*loopback_self=*/false);
}

}  // namespace fdgm::transport
