// System: the simulated distributed system — scheduler + network + nodes.
//
// Owns the discrete-event scheduler, the contention network, the optional
// retransmission transport and one Node per process, and fans crash
// notifications out to interested components (the failure-detector model,
// the experiment harness).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/arena.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "transport/transport.hpp"

namespace fdgm::obs {
class Observer;
}  // namespace fdgm::obs

namespace fdgm::net {

class System : private Network::Sink, private transport::Transport::Sink {
 public:
  System(int num_processes, NetworkConfig cfg, std::uint64_t seed,
         sim::SchedulerConfig sched_cfg = {}, transport::Config transport_cfg = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] int n() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const sim::Scheduler& scheduler() const { return sched_; }
  [[nodiscard]] Network& network() { return *network_; }
  /// The retransmission transport; null when not armed.
  [[nodiscard]] transport::Transport* transport() { return transport_.get(); }
  [[nodiscard]] const transport::Transport* transport() const { return transport_.get(); }
  [[nodiscard]] Node& node(ProcessId p) { return *nodes_.at(static_cast<std::size_t>(p)); }
  [[nodiscard]] const Node& node(ProcessId p) const {
    return *nodes_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] sim::Time now() const { return sched_.now(); }

  /// The master RNG for this run; components fork sub-streams off it.
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// The observability layer; null when disarmed (the default).  Hook
  /// sites across the stack are `if (auto* o = sys.obs())`, so a
  /// disarmed run takes no observability branches at all.
  [[nodiscard]] obs::Observer* obs() const { return obs_; }
  /// Attach (or detach, with null) the observer.  The System does not
  /// own it; the SimRun does.  Propagates to the network and transport.
  void set_observer(obs::Observer* o);

  /// The run's payload arena: every payload sent through this system is
  /// allocated here and lives until the System is destroyed.
  [[nodiscard]] PayloadArena& arena() { return arena_; }

  /// All process ids, 0..n-1.
  [[nodiscard]] const std::vector<ProcessId>& all() const { return all_; }

  /// Ids of processes that have not crashed yet.
  [[nodiscard]] std::vector<ProcessId> alive() const;

  /// Crash process p now (software crash).  Notifies crash listeners.
  void crash(ProcessId p);

  /// Schedule a crash of p at absolute time t.
  void crash_at(ProcessId p, sim::Time t);

  /// Restart a crashed process now (no-op when p is alive).  Notifies
  /// recovery listeners; the protocol stacks' catch-up is triggered
  /// separately (fault::Injector calls AtomicBroadcastProcess::on_restart).
  void restart(ProcessId p);

  /// Schedule a restart of p at absolute time t.
  void restart_at(ProcessId p, sim::Time t);

  /// Listener invoked with (process, crash time) whenever a crash occurs.
  void add_crash_listener(std::function<void(ProcessId, sim::Time)> fn) {
    crash_listeners_.push_back(std::move(fn));
  }

  /// Listener invoked with (process, restart time) whenever a crashed
  /// process restarts.
  void add_recovery_listener(std::function<void(ProcessId, sim::Time)> fn) {
    recovery_listeners_.push_back(std::move(fn));
  }

 private:
  // Network::Sink — finished deliveries pass through the transport's
  // receive side when it is armed (sequencing / dedup / control frames),
  // and go straight to the target Node otherwise.
  void deliver_message(const Message& m, ProcessId dst) override {
    if (transport_ != nullptr)
      transport_->on_frame(m, dst);
    else
      node(dst).deliver(m);
  }

  // transport::Transport::Sink — in-order logical messages.
  void deliver_frame(const Message& m, ProcessId dst) override { node(dst).deliver(m); }

  sim::Scheduler sched_;
  sim::Rng rng_;
  PayloadArena arena_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<transport::Transport> transport_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<ProcessId> all_;
  obs::Observer* obs_ = nullptr;
  std::vector<std::function<void(ProcessId, sim::Time)>> crash_listeners_;
  std::vector<std::function<void(ProcessId, sim::Time)>> recovery_listeners_;
};

}  // namespace fdgm::net
