#include "net/network.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace fdgm::net {

Network::Network(sim::Scheduler& sched, int num_processes, NetworkConfig cfg, DeliverFn deliver)
    : sched_(&sched), cfg_(cfg), wire_(sched, "network"), deliver_(std::move(deliver)) {
  if (num_processes <= 0) throw std::invalid_argument("Network: need at least one process");
  if (cfg_.lambda < 0) throw std::invalid_argument("Network: negative lambda");
  if (cfg_.network_time <= 0) throw std::invalid_argument("Network: network_time must be > 0");
  cpus_.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i)
    cpus_.push_back(std::make_unique<Resource>(sched, "cpu" + std::to_string(i)));
}

void Network::submit(const Message& m, const std::vector<ProcessId>& dsts) {
  bool self = false;
  std::vector<ProcessId> remote;
  remote.reserve(dsts.size());
  for (ProcessId d : dsts) {
    if (d < 0 || d >= num_processes()) throw std::out_of_range("Network::submit: bad destination");
    if (d == m.src)
      self = true;
    else
      remote.push_back(d);
  }
  if (m.src < 0 || m.src >= num_processes()) throw std::out_of_range("Network::submit: bad source");

  // Stage 1: send-side CPU processing.
  cpus_[static_cast<std::size_t>(m.src)]->enqueue(cfg_.lambda, [this, m, remote = std::move(remote), self] {
    if (self) {
      // Local loopback: no network, no extra CPU job.
      Message copy = m;
      copy.dst = m.src;
      ++delivered_;
      if (tap_) tap_(copy, m.src);
      deliver_(copy, m.src);
    }
    if (!remote.empty()) {
      // Stage 2: one slot on the shared medium regardless of fan-out.
      wire_.enqueue(cfg_.network_time, [this, m, remote] { on_wire_done(m, remote); });
    }
  });
}

void Network::on_wire_done(const Message& m, const std::vector<ProcessId>& remote) {
  // Stage 3: receive-side CPU processing, one job per destination host.
  for (ProcessId d : remote) {
    cpus_[static_cast<std::size_t>(d)]->enqueue(cfg_.lambda, [this, m, d] {
      Message copy = m;
      copy.dst = d;
      ++delivered_;
      if (tap_) tap_(copy, d);
      deliver_(copy, d);
    });
  }
}

}  // namespace fdgm::net
