#include "net/network.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/observer.hpp"
#include "sim/exec_ctx.hpp"

namespace fdgm::net {

namespace {

// Classifies the frame payload and records one causal hop marker per
// application message it carries.  Callers guard on obs->causal() so the
// classifier never runs on non-causal hot paths.
inline void causal_mark(obs::Observer* o, obs::EdgeKind kind, ProcessId node, const Message& m,
                        double now) {
  obs::MsgRefList refs;
  obs::classify_payload(m.payload, refs);
  if (!refs.empty()) o->trace_marker(kind, node, refs, now);
}

}  // namespace

Network::Network(sim::Scheduler& sched, int num_processes, NetworkConfig cfg, Sink& sink)
    : sched_(&sched), cfg_(cfg), wire_(sched, "network"), sink_(&sink) {
  if (num_processes <= 0) throw std::invalid_argument("Network: need at least one process");
  if (cfg_.lambda < 0) throw std::invalid_argument("Network: negative lambda");
  if (cfg_.network_time <= 0) throw std::invalid_argument("Network: network_time must be > 0");
  cpus_.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    cpus_.push_back(std::make_unique<Resource>(sched, "cpu" + std::to_string(i)));
    // A host CPU's completions belong to its process: under the parallel
    // backend they execute on that partition's worker.  Ignored (shared
    // behavior) by the sequential backends.  The wire keeps the default
    // shared owner — its completions are serial.
    cpus_.back()->set_owner(i);
  }
}

std::uint32_t Network::acquire_list() {
  // Workers draw from their own partition's pool (see set_list_pools);
  // serial contexts use pool 0.
  const sim::ExecCtx* c = sim::exec_ctx();
  std::uint32_t pool = 0;
  if (c != nullptr && c->sched == sched_ && c->owner >= 0) {
    const auto idx = static_cast<std::uint32_t>(c->owner + 1);
    if (idx < list_pools_.size()) pool = idx;
    assert(!c->staging || idx < list_pools_.size());
  }
  ListPool& lp = list_pools_[pool];
  if (lp.free_head != kNoList) {
    const std::uint32_t idx = lp.free_head;
    DstList& l = lp.lists[idx & kLocalListMask];
    lp.free_head = l.next_free;
    l.dsts.clear();
    return idx;
  }
  lp.lists.emplace_back();
  return (pool << kPoolShift) | static_cast<std::uint32_t>(lp.lists.size() - 1);
}

void Network::release_list(std::uint32_t idx) {
  ListPool& lp = list_pools_[idx >> kPoolShift];
  list_ref(idx).next_free = lp.free_head;
  lp.free_head = idx;
}

bool Network::submit(const Message& m, const ProcessId* dsts, std::size_t count,
                     bool loopback_self) {
  if (m.src < 0 || m.src >= num_processes()) throw std::out_of_range("Network::submit: bad source");
  bool self = false;
  std::uint32_t list = kNoList;
  for (std::size_t i = 0; i < count; ++i) {
    const ProcessId d = dsts[i];
    if (d < 0 || d >= num_processes()) {
      if (list != kNoList) release_list(list);
      throw std::out_of_range("Network::submit: bad destination");
    }
    if (d == m.src) {
      self = self || loopback_self;
      continue;
    }
    if (list == kNoList) list = acquire_list();
    list_ref(list).dsts.push_back(d);
  }
  if (!self && list == kNoList) return false;  // no effective destination

  if (obs_ != nullptr && obs_->causal()) {
    causal_mark(obs_, obs::EdgeKind::kSendEnq, m.src, m, sched_->now());
  }
  // Stage 1: send-side CPU processing.
  cpus_[static_cast<std::size_t>(m.src)]->enqueue(
      cfg_.lambda, [this, m, list, self] { on_send_done(m, list, self); });
  return true;
}

void Network::on_send_done(const Message& m, std::uint32_t list, bool self) {
  if (obs_ != nullptr && obs_->causal()) {
    const double now = sched_->now();
    causal_mark(obs_, obs::EdgeKind::kSendDone, m.src, m, now);
    if (list != kNoList) causal_mark(obs_, obs::EdgeKind::kWireEnq, m.src, m, now);
  }
  if (self) {
    // Local loopback: no network, no extra CPU job.
    Message copy = m;
    copy.dst = m.src;
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (tap_ && !sim::stage_effect<&Network::invoke_tap>(this, copy, m.src)) tap_(copy, m.src);
    sink_->deliver_message(copy, m.src);
  }
  if (list != kNoList) {
    // Stage 2: one slot on the shared medium regardless of fan-out.
    wire_.enqueue(cfg_.network_time * delay_factor_,
                  [this, m, list] { on_wire_done(m, list); });
  }
}

void Network::on_wire_done(const Message& m, std::uint32_t list) {
  if (obs_ != nullptr && obs_->causal()) {
    causal_mark(obs_, obs::EdgeKind::kWireDone, m.src, m, sched_->now());
  }
  // Fault filter, then stage 3: receive-side CPU processing, one job per
  // destination host.  filter_or_deliver only enqueues (no user callbacks
  // run synchronously), so the pooled list stays stable while we iterate.
  // The transport's frame stage stamps a per-destination copy first (the
  // sequence number lives in the ordered-pair channel, so it cannot be
  // shared across the fan-out).
  for (ProcessId d : list_ref(list).dsts) {
    if (frame_stage_ != nullptr || checksums_enabled_) {
      Message f = m;
      if (frame_stage_ != nullptr) frame_stage_->stamp_frame(f, d);
      // Digest-stamp after the transport assigned the sequence number so
      // the checksum covers it; only runs when a corrupt event armed
      // checksums for this run.
      if (checksums_enabled_) f.frame.check = frame_digest(f);
      filter_or_deliver(f, d);
    } else {
      filter_or_deliver(m, d);
    }
  }
  release_list(list);
}

/// The fault-filter stage proper: hold across a partition (symmetric,
/// directed, or flapped down), drop with the loss probability, corrupt
/// with the corruption probability, else enqueue the receive-side CPU
/// job.  Also applied to messages re-injected by a heal, so a heal inside
/// a loss or corruption window does not bypass those models.
void Network::filter_or_deliver(const Message& m, ProcessId d) {
  if (partitioned(m.src, d) || asym_cut(m.src, d) || flap_blocked(m.src, d)) {
    held_.emplace_back(m, d);
    ++held_total_;
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_ != nullptr && loss_rng_->uniform() < loss_rate_) {
    ++lost_;
    if (frame_stage_ != nullptr) frame_stage_->frame_dropped(m, d);
    return;
  }
  if (corrupt_active() && corrupt_match(m.src, d) && corrupt_rng_->uniform() < corrupt_rate_) {
    // Damage the frame in transit: the checksum no longer matches, so the
    // receiver detects and drops it.  The transport must learn it needs a
    // retransmittable copy (the frame may have been stamped before the
    // corruption window opened, hence never ring-buffered) — report the
    // *clean* frame as dropped, exactly like the loss path.
    Message damaged = m;
    damaged.frame.check ^= 0xA5;
    ++corrupted_;
    if (frame_stage_ != nullptr) frame_stage_->frame_dropped(m, d);
    deliver_via_cpu(damaged, d);
    return;
  }
  deliver_via_cpu(m, d);
}

void Network::deliver_via_cpu(const Message& m, ProcessId d) {
  // Once lossy-transport operation has been latched, receive completions
  // execute on the serial shared partition (the transport's receive path
  // mutates per-pair channel state and emits control frames); otherwise
  // they run on the destination's own partition.
  if (obs_ != nullptr && obs_->causal()) {
    causal_mark(obs_, obs::EdgeKind::kRecvEnq, d, m, sched_->now());
  }
  Resource& cpu = *cpus_[static_cast<std::size_t>(d)];
  cpu.enqueue_as(serialize_deliveries_ ? sim::kOwnerShared : d, cfg_.lambda,
                 [this, m, d] { finish_delivery(m, d); });
}

void Network::finish_delivery(Message m, ProcessId d) {
  m.dst = d;
  if (obs_ != nullptr && obs_->causal()) {
    causal_mark(obs_, obs::EdgeKind::kRecvDone, d, m, sched_->now());
  }
  // Checksum verify for the transport-less configuration: the receive
  // stack has no repair path, so a damaged frame is simply detected,
  // counted and dropped (the delivery is lost — protocols see it like
  // message loss, but the corruption never reaches them silently).  With
  // a transport armed, verification lives in its receive path instead,
  // where the NACK machinery recovers the frame.
  if (checksums_enabled_ && frame_stage_ == nullptr && !frame_checksum_ok(m)) {
    corrupt_detected_.fetch_add(1, std::memory_order_relaxed);
    if (obs_ != nullptr) obs_->count(d, obs::Counter::kCorruptionDetected, sched_->now());
    return;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (tap_ && !sim::stage_effect<&Network::invoke_tap>(this, m, d)) tap_(m, d);
  sink_->deliver_message(m, d);
}

void Network::set_partition(const std::vector<std::vector<ProcessId>>& groups) {
  // Build and validate the new matrix before touching any state: a bad id
  // must not leave a half-applied partition or drop held messages.
  std::vector<int> new_groups(cpus_.size(), -1);
  int g = 0;
  for (; g < static_cast<int>(groups.size()); ++g) {
    for (ProcessId p : groups[static_cast<std::size_t>(g)]) {
      if (p < 0 || p >= num_processes())
        throw std::out_of_range("Network::set_partition: bad process id");
      new_groups[static_cast<std::size_t>(p)] = g;
    }
  }
  // Unlisted processes form one extra implicit group.
  for (int& grp : new_groups)
    if (grp < 0) grp = g;
  group_of_ = std::move(new_groups);
  // A replaced partition releases messages held across boundaries that no
  // longer exist; flushing through the new matrix keeps this simple and
  // deterministic (re-held if still unreachable).
  refilter_held();
}

void Network::heal_partition() {
  group_of_.clear();
  refilter_held();
}

void Network::set_asym_partition(const std::vector<ProcessId>& from,
                                 const std::vector<ProcessId>& to) {
  // Validate before touching state (same discipline as set_partition).
  for (ProcessId p : from)
    if (p < 0 || p >= num_processes())
      throw std::out_of_range("Network::set_asym_partition: bad process id");
  for (ProcessId p : to)
    if (p < 0 || p >= num_processes())
      throw std::out_of_range("Network::set_asym_partition: bad process id");
  const std::size_t n = cpus_.size();
  asym_blocked_.assign(n * n, 0);
  for (ProcessId a : from)
    for (ProcessId b : to)
      if (a != b) asym_blocked_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] = 1;
  // Re-filter held messages through the new cut: deliveries held by a cut
  // that no longer exists are released (re-held if still unreachable).
  refilter_held();
}

void Network::heal_asym_partition() {
  asym_blocked_.clear();
  refilter_held();
}

/// Re-runs every held delivery through the current filter state, in
/// arrival order (re-held if still unreachable, subject to the loss model
/// if a loss window is active — a heal does not bypass it).
void Network::refilter_held() {
  std::vector<std::pair<Message, ProcessId>> pending;
  pending.swap(held_);
  for (auto& [m, d] : pending) filter_or_deliver(m, d);
}

bool Network::partitioned(ProcessId a, ProcessId b) const {
  if (group_of_.empty()) return false;
  return group_of_.at(static_cast<std::size_t>(a)) != group_of_.at(static_cast<std::size_t>(b));
}

void Network::set_loss(double rate, sim::Rng* rng) {
  if (rate < 0.0 || rate > 1.0) throw std::invalid_argument("Network::set_loss: bad rate");
  loss_rate_ = rate;
  loss_rng_ = rate > 0.0 ? rng : nullptr;
  if (loss_active() && frame_stage_ != nullptr) serialize_deliveries_ = true;
}

void Network::set_delay_factor(double factor) {
  if (factor <= 0.0) throw std::invalid_argument("Network::set_delay_factor: factor must be > 0");
  delay_factor_ = factor;
}

void Network::set_cpu_limp(ProcessId p, double factor) {
  if (p < 0 || p >= num_processes())
    throw std::out_of_range("Network::set_cpu_limp: bad process id");
  cpus_[static_cast<std::size_t>(p)]->set_stretch(factor);
}

void Network::set_flap_down(const std::vector<ProcessId>& from,
                            const std::vector<ProcessId>& to) {
  for (ProcessId p : from)
    if (p < 0 || p >= num_processes())
      throw std::out_of_range("Network::set_flap_down: bad process id");
  for (ProcessId p : to)
    if (p < 0 || p >= num_processes())
      throw std::out_of_range("Network::set_flap_down: bad process id");
  const std::size_t n = cpus_.size();
  if (flap_down_.empty()) flap_down_.assign(n * n, 0);
  for (ProcessId a : from)
    for (ProcessId b : to)
      if (a != b) ++flap_down_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
}

void Network::set_flap_up(const std::vector<ProcessId>& from,
                          const std::vector<ProcessId>& to) {
  if (flap_down_.empty()) return;
  const std::size_t n = cpus_.size();
  for (ProcessId a : from) {
    if (a < 0 || a >= num_processes())
      throw std::out_of_range("Network::set_flap_up: bad process id");
    for (ProcessId b : to) {
      if (b < 0 || b >= num_processes())
        throw std::out_of_range("Network::set_flap_up: bad process id");
      std::uint16_t& down = flap_down_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
      if (a != b && down > 0) --down;
    }
  }
  // Links that just came up release their held messages (re-held if a
  // partition or another flap window still blocks them).
  refilter_held();
}

void Network::set_corrupt(double rate, sim::Rng* rng,
                          const std::vector<std::vector<ProcessId>>& link) {
  if (rate < 0.0 || rate > 1.0) throw std::invalid_argument("Network::set_corrupt: bad rate");
  if (!link.empty() && link.size() != 2)
    throw std::invalid_argument("Network::set_corrupt: link wants {senders, destinations}");
  corrupt_link_.clear();
  if (!link.empty()) {
    const std::size_t n = cpus_.size();
    corrupt_link_.assign(n * n, 0);
    for (ProcessId a : link[0])
      for (ProcessId b : link[1]) {
        if (a < 0 || a >= num_processes() || b < 0 || b >= num_processes())
          throw std::out_of_range("Network::set_corrupt: bad process id");
        if (a != b)
          corrupt_link_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] = 1;
      }
  }
  corrupt_rate_ = rate;
  corrupt_rng_ = rate > 0.0 ? rng : nullptr;
  if (corrupt_active() && frame_stage_ != nullptr) serialize_deliveries_ = true;
}

void Network::clear_corrupt() {
  corrupt_rate_ = 0.0;
  corrupt_rng_ = nullptr;
  corrupt_link_.clear();
}

}  // namespace fdgm::net
