// Message and addressing primitives shared by all protocol layers.
//
// A message carries an immutable payload allocated from the owning
// System's PayloadArena (see net/arena.hpp): payloads are plain pointers,
// shared by every receiver of a multicast (zero-copy fan-out, no refcount
// traffic) and freed wholesale when the run's arena is destroyed.
//
// Payload dispatch is static: every payload type carries a (protocol,
// kind) tag — the protocol that owns it plus a protocol-private kind
// enum value — and payload_cast<T> checks the tag and static_casts.  No
// virtual dispatch, no RTTI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdgm::net {

/// Dense process identifier: 0 .. n-1.
using ProcessId = int;

/// Pseudo-destination meaning "all processes" (multicast).
inline constexpr ProcessId kBroadcast = -1;

/// Identifies the protocol layer a message belongs to.  Each Node routes
/// incoming messages to the handler registered for the message's protocol.
enum class ProtocolId : std::uint8_t {
  kApplication = 0,
  kReliableBroadcast,
  kConsensus,
  kAtomicBroadcast,
  kMembership,
  kStateTransfer,
  kWorkload,
  /// Transport control frames (ACK / NACK).  Consumed by the transport
  /// layer below the Node, never routed to a protocol handler.
  kTransport,
  kCount,
};

inline constexpr std::size_t kProtocolCount = static_cast<std::size_t>(ProtocolId::kCount);

/// Base class for protocol payloads.  Non-virtual: the concrete type is
/// identified by the (protocol, kind) tag set at construction.  Each
/// concrete payload type declares
///     static constexpr ProtocolId kProto = ...;
///     static constexpr std::uint8_t kKind = ...;
/// with a kind unique within its protocol (kinds >= 32 are reserved for
/// test-local payloads).  Payloads are immutable once sent and shared
/// between all receivers of a multicast.
class Payload {
 public:
  [[nodiscard]] ProtocolId payload_proto() const { return proto_; }
  [[nodiscard]] std::uint8_t payload_kind() const { return kind_; }

 protected:
  constexpr Payload(ProtocolId proto, std::uint8_t kind) : proto_(proto), kind_(kind) {}
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  ~Payload() = default;  // never destroyed through the base

 private:
  ProtocolId proto_;
  std::uint8_t kind_;
};

using PayloadPtr = const Payload*;

/// Concrete payload for callers that only need an opaque token (tests,
/// benches, examples).
class BlankPayload final : public Payload {
 public:
  static constexpr ProtocolId kProto = ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 0;
  BlankPayload() : Payload(kProto, kKind) {}
};

/// Per-pair transport framing carried by every point-to-point delivery
/// when the retransmission transport is armed (transport::Transport).
/// `seq` holds the frame's sequence number in the ordered (src, dst)
/// channel in its low 31 bits — 0 means "not a sequenced frame" — and a
/// retransmission flag in the top bit; `ack` piggybacks the sender's
/// cumulative ack for the reverse channel; `check` carries the frame
/// digest stamped in the wire fan-out event whenever the corruption
/// fault can fire (Network::checksums_enabled) — the `corrupt` gray
/// fault damages it in transit and receivers that re-derive the digest
/// detect the mismatch and drop the frame.  Kept to 12 bytes so a
/// Message stays at 32 and still fits the scheduler slab's inline
/// callback buffer when captured by value.
struct FrameHeader {
  static constexpr std::uint32_t kRetxBit = 0x80000000u;
  static constexpr std::uint32_t kSeqMask = 0x7fffffffu;

  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t check = 0;

  [[nodiscard]] std::uint32_t seq_no() const { return seq & kSeqMask; }
  [[nodiscard]] bool is_retx() const { return (seq & kRetxBit) != 0; }
  [[nodiscard]] bool stamped() const { return seq_no() != 0; }
};

struct Message {
  ProcessId src = 0;
  ProcessId dst = 0;  // kBroadcast for multicast
  ProtocolId proto = ProtocolId::kApplication;
  FrameHeader frame;
  PayloadPtr payload = nullptr;
};

/// Digest of the fields that are invariant from stamping (wire fan-out)
/// to verification (transport receive / final delivery): source, protocol,
/// payload tag and channel sequence number — everything that identifies
/// the frame's content in this simulation, excluding the mutable header
/// bits (retx flag, piggybacked ack, destination).  One multiply-xor
/// round per field; any single-field change flips the result.
[[nodiscard]] inline std::uint8_t frame_digest(const Message& m) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.src)));
  mix(static_cast<std::uint64_t>(m.proto));
  mix(m.payload != nullptr ? static_cast<std::uint64_t>(m.payload->payload_kind()) + 1 : 0);
  mix(m.frame.seq_no());
  h ^= h >> 33;
  return static_cast<std::uint8_t>(h ^ (h >> 8) ^ (h >> 16) ^ (h >> 24));
}

/// Does the frame's stamped digest match its content?  Only meaningful
/// when checksums are armed — stamping happens in the same wire event
/// that filters the delivery, so every frame that reaches a receiver
/// while the corruption machinery is armed carries a digest.
[[nodiscard]] inline bool frame_checksum_ok(const Message& m) {
  return m.frame.check == frame_digest(m);
}

/// Tag-checked downcast: returns nullptr when the payload has a different
/// (protocol, kind) tag.
template <typename T>
const T* payload_cast(PayloadPtr p) {
  return p != nullptr && p->payload_proto() == T::kProto && p->payload_kind() == T::kKind
             ? static_cast<const T*>(p)
             : nullptr;
}

template <typename T>
const T* payload_cast(const Message& m) {
  return payload_cast<T>(m.payload);
}

}  // namespace fdgm::net
