// Message and addressing primitives shared by all protocol layers.
//
// A message carries an immutable payload allocated from the owning
// System's PayloadArena (see net/arena.hpp): payloads are plain pointers,
// shared by every receiver of a multicast (zero-copy fan-out, no refcount
// traffic) and freed wholesale when the run's arena is destroyed.
//
// Payload dispatch is static: every payload type carries a (protocol,
// kind) tag — the protocol that owns it plus a protocol-private kind
// enum value — and payload_cast<T> checks the tag and static_casts.  No
// virtual dispatch, no RTTI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdgm::net {

/// Dense process identifier: 0 .. n-1.
using ProcessId = int;

/// Pseudo-destination meaning "all processes" (multicast).
inline constexpr ProcessId kBroadcast = -1;

/// Identifies the protocol layer a message belongs to.  Each Node routes
/// incoming messages to the handler registered for the message's protocol.
enum class ProtocolId : std::uint8_t {
  kApplication = 0,
  kReliableBroadcast,
  kConsensus,
  kAtomicBroadcast,
  kMembership,
  kStateTransfer,
  kWorkload,
  /// Transport control frames (ACK / NACK).  Consumed by the transport
  /// layer below the Node, never routed to a protocol handler.
  kTransport,
  kCount,
};

inline constexpr std::size_t kProtocolCount = static_cast<std::size_t>(ProtocolId::kCount);

/// Base class for protocol payloads.  Non-virtual: the concrete type is
/// identified by the (protocol, kind) tag set at construction.  Each
/// concrete payload type declares
///     static constexpr ProtocolId kProto = ...;
///     static constexpr std::uint8_t kKind = ...;
/// with a kind unique within its protocol (kinds >= 32 are reserved for
/// test-local payloads).  Payloads are immutable once sent and shared
/// between all receivers of a multicast.
class Payload {
 public:
  [[nodiscard]] ProtocolId payload_proto() const { return proto_; }
  [[nodiscard]] std::uint8_t payload_kind() const { return kind_; }

 protected:
  constexpr Payload(ProtocolId proto, std::uint8_t kind) : proto_(proto), kind_(kind) {}
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  ~Payload() = default;  // never destroyed through the base

 private:
  ProtocolId proto_;
  std::uint8_t kind_;
};

using PayloadPtr = const Payload*;

/// Concrete payload for callers that only need an opaque token (tests,
/// benches, examples).
class BlankPayload final : public Payload {
 public:
  static constexpr ProtocolId kProto = ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 0;
  BlankPayload() : Payload(kProto, kKind) {}
};

/// Per-pair transport framing carried by every point-to-point delivery
/// when the retransmission transport is armed (transport::Transport).
/// `seq` holds the frame's sequence number in the ordered (src, dst)
/// channel in its low 31 bits — 0 means "not a sequenced frame" — and a
/// retransmission flag in the top bit; `ack` piggybacks the sender's
/// cumulative ack for the reverse channel.  Kept to two words so Messages
/// captured in scheduler-slab callbacks still fit the inline buffer.
struct FrameHeader {
  static constexpr std::uint32_t kRetxBit = 0x80000000u;
  static constexpr std::uint32_t kSeqMask = 0x7fffffffu;

  std::uint32_t seq = 0;
  std::uint32_t ack = 0;

  [[nodiscard]] std::uint32_t seq_no() const { return seq & kSeqMask; }
  [[nodiscard]] bool is_retx() const { return (seq & kRetxBit) != 0; }
  [[nodiscard]] bool stamped() const { return seq_no() != 0; }
};

struct Message {
  ProcessId src = 0;
  ProcessId dst = 0;  // kBroadcast for multicast
  ProtocolId proto = ProtocolId::kApplication;
  PayloadPtr payload = nullptr;
  FrameHeader frame;
};

/// Tag-checked downcast: returns nullptr when the payload has a different
/// (protocol, kind) tag.
template <typename T>
const T* payload_cast(PayloadPtr p) {
  return p != nullptr && p->payload_proto() == T::kProto && p->payload_kind() == T::kKind
             ? static_cast<const T*>(p)
             : nullptr;
}

template <typename T>
const T* payload_cast(const Message& m) {
  return payload_cast<T>(m.payload);
}

}  // namespace fdgm::net
