// Message and addressing primitives shared by all protocol layers.
//
// A message carries an immutable, shared payload.  Layers dispatch on the
// protocol id; the payload's dynamic type is protocol-private.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace fdgm::net {

/// Dense process identifier: 0 .. n-1.
using ProcessId = int;

/// Pseudo-destination meaning "all processes" (multicast).
inline constexpr ProcessId kBroadcast = -1;

/// Identifies the protocol layer a message belongs to.  Each Node routes
/// incoming messages to the handler registered for the message's protocol.
enum class ProtocolId : std::uint8_t {
  kApplication = 0,
  kReliableBroadcast,
  kConsensus,
  kAtomicBroadcast,
  kMembership,
  kStateTransfer,
  kWorkload,
  kCount,
};

inline constexpr std::size_t kProtocolCount = static_cast<std::size_t>(ProtocolId::kCount);

/// Base class for protocol payloads.  Payloads are immutable once sent and
/// shared between all receivers of a multicast (zero-copy fan-out).
class Payload {
 public:
  Payload() = default;
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

struct Message {
  ProcessId src = 0;
  ProcessId dst = 0;  // kBroadcast for multicast
  ProtocolId proto = ProtocolId::kApplication;
  PayloadPtr payload;
};

/// Downcast helper: returns nullptr when the payload has a different type.
template <typename T>
const T* payload_cast(const Message& m) {
  return dynamic_cast<const T*>(m.payload.get());
}

}  // namespace fdgm::net
