// Contention-aware network model (paper §6.1, after Urbán et al. IC3N'00).
//
// Transmitting a message from pi to pj uses, in order:
//   1. CPU_i for λ time units   (send-side processing),
//   2. the shared network for 1 time unit,
//   3. CPU_j for λ time units   (receive-side processing),
// with FIFO queueing in front of each resource.  A multicast occupies the
// sender CPU and the network once, then every destination CPU in parallel
// (Ethernet-style broadcast medium).  Self-destined copies bypass the
// network: they are delivered when the send-side CPU processing completes.
//
// Steady-state transmission is allocation-free: pipeline stages capture
// the POD Message by value in slab-stored scheduler callbacks, the remote
// destination set lives in a pooled, capacity-reusing list, and finished
// deliveries go to a direct Sink interface pointer (no std::function).
//
// Crash semantics (software crash): jobs already accepted by a CPU or
// queued behind it complete normally; the Node stops submitting new sends
// and stops receiving deliveries (see Node::crash).
//
// Fault filter stage (driven by fault::Injector): before the receive-side
// CPU job of a destination is enqueued, the message passes a filter:
//   * partition — a reachability matrix over process groups.  Messages
//     crossing group boundaries are *held* (the channel stays
//     quasi-reliable, as the protocol stacks assume: a real transport
//     retransmits across an outage) and re-injected, in arrival order,
//     when the partition heals;
//   * asymmetric partition — a directed cut: messages from the `from` set
//     to the `to` set are held while the reverse direction flows normally
//     (one-way link failures);
//   * flap — a time-varying directed cut: links cycled down by a flap
//     schedule hold messages exactly like an asymmetric partition and
//     release them at the next up transition (deterministic, no RNG —
//     the up/down pattern is fully determined by the schedule);
//   * loss — each remaining delivery is dropped independently with a
//     configurable probability (the "partial multicast loss" model
//     variant; protocols tolerate it only via their repair paths);
//   * corrupt — each remaining delivery on a matching link is silently
//     damaged in transit with a configurable probability: its frame
//     checksum no longer matches its content, so the receiver (the
//     transport's verify, or final delivery when no transport is armed)
//     detects the mismatch and drops the frame;
//   * delay spike — the shared medium's service time is multiplied by a
//     factor while the spike is active.
// Self-destined loopback copies bypass the filter (a process can always
// reach itself).
//
// Frame checksums are armed once per run (enable_checksums, latched by
// the Injector when the schedule contains any corrupt event): every
// remote per-destination copy is digest-stamped in the wire-completion
// event, after the transport's frame stage assigned its sequence number.
// With no corrupt event scheduled the stamping code never runs, so the
// gray machinery is invisible to the determinism goldens.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/resource.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace fdgm::obs {
class Observer;
}

namespace fdgm::net {

struct NetworkConfig {
  /// Relative CPU cost of sending/receiving one message (paper's λ).
  double lambda = 1.0;
  /// Network service time per message (the paper's time unit, 1 ms).
  double network_time = 1.0;
};

class Network {
 public:
  /// Receiver of finished deliveries: invoked when a message reaches a
  /// destination process (after its receive-side CPU processing).  The
  /// callee decides whether the process is still alive.
  class Sink {
   public:
    virtual void deliver_message(const Message& m, ProcessId dst) = 0;

   protected:
    ~Sink() = default;
  };

  /// Transport hook: invoked once per remote destination, after the shared
  /// medium finished and before the fault filter, on a per-destination
  /// copy of the message.  The retransmission transport uses it to assign
  /// per-pair sequence numbers and piggyback cumulative acks; stamping
  /// runs in the wire-completion event (no extra scheduler events), so an
  /// armed transport leaves loss-free runs bit-identical.
  class FrameStage {
   public:
    virtual void stamp_frame(Message& m, ProcessId dst) = 0;

    /// The loss filter dropped a stamped frame.  Closes the
    /// held-then-healed race: a frame stamped under a loss-free filter is
    /// not ring-buffered, but if a partition holds it and the heal lands
    /// inside a later loss window, the re-injection runs the loss filter
    /// again — the transport must learn about the drop or the channel
    /// deadlocks on the missing sequence number.  Only invoked on actual
    /// drops, so loss-free runs see no extra work.
    virtual void frame_dropped(const Message& m, ProcessId dst) = 0;

   protected:
    ~FrameStage() = default;
  };

  Network(sim::Scheduler& sched, int num_processes, NetworkConfig cfg, Sink& sink);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Submit a message for transmission to an explicit destination list.
  /// Destinations equal to `m.src` are served via local loopback when
  /// `loopback_self` is true and skipped entirely otherwise (for protocol
  /// layers that deliver their own copy locally).  Returns true when at
  /// least one destination was accepted — i.e. a send-side CPU job was
  /// enqueued.
  bool submit(const Message& m, const ProcessId* dsts, std::size_t count,
              bool loopback_self = true);
  bool submit(const Message& m, const std::vector<ProcessId>& dsts, bool loopback_self = true) {
    return submit(m, dsts.data(), dsts.size(), loopback_self);
  }

  [[nodiscard]] int num_processes() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

  /// Shared medium statistics (used by tests to count "network slots").
  [[nodiscard]] std::uint64_t network_uses() const { return wire_.jobs(); }
  [[nodiscard]] double network_busy_time() const { return wire_.busy_time(); }
  [[nodiscard]] std::uint64_t cpu_uses(ProcessId p) const { return cpus_.at(p)->jobs(); }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Minimum latency of any cross-process path: one slot on the shared
  /// medium.  The parallel scheduler backend uses this as its conservative
  /// lookahead — a message submitted at t cannot affect another process
  /// before t + min_wire_latency() (send-side CPU and FIFO queueing only
  /// push the completion later).  Tracks delay spikes, which only ever
  /// raise it while active.
  [[nodiscard]] double min_wire_latency() const { return cfg_.network_time * delay_factor_; }

  /// Size the pooled destination-list freelists, one per scheduler
  /// partition (owners + 1), so workers building multicast fan-out lists
  /// concurrently never share a pool.  Call before the run starts when the
  /// parallel backend is active; the default single pool serves the
  /// sequential backends.
  void set_list_pools(std::size_t count) {
    if (count > list_pools_.size()) list_pools_.resize(count);
  }

  /// Current queueing horizons (ms until the resource drains), used by the
  /// retransmission transport to keep its timeout patience above the
  /// pipeline's instantaneous delay — the simulation-level equivalent of a
  /// real transport's RTT estimator, and what prevents timeout
  /// retransmissions from feeding a congestion collapse.
  [[nodiscard]] double wire_backlog() const { return wire_.busy_until() - sched_->now(); }
  [[nodiscard]] double cpu_backlog(ProcessId p) const {
    return cpus_.at(static_cast<std::size_t>(p))->busy_until() - sched_->now();
  }

  /// Optional tap observing every point-to-point delivery (tracing).
  void set_delivery_tap(std::function<void(const Message&, ProcessId)> tap) {
    tap_ = std::move(tap);
  }

  // --- fault filter stage (driven by fault::Injector) ---

  /// Split the system into the given groups.  Processes not listed in any
  /// group form one extra implicit group.  Replaces any earlier partition.
  void set_partition(const std::vector<std::vector<ProcessId>>& groups);

  /// Remove the partition and re-inject every held cross-partition message
  /// (receive-side CPU jobs enqueued now, in original arrival order).
  void heal_partition();

  /// Are a and b currently on different sides of a partition?
  [[nodiscard]] bool partitioned(ProcessId a, ProcessId b) const;

  /// Cut every directed link from a process in `from` to a process in
  /// `to`: such deliveries are held (and re-injected at the heal) while
  /// the reverse direction keeps flowing.  Replaces any earlier
  /// asymmetric cut; held messages are re-filtered through the new cut.
  void set_asym_partition(const std::vector<ProcessId>& from, const std::vector<ProcessId>& to);

  /// Remove the directed cut and re-inject every held delivery.
  void heal_asym_partition();

  /// Is the directed link a -> b currently cut?
  [[nodiscard]] bool asym_cut(ProcessId a, ProcessId b) const {
    return !asym_blocked_.empty() &&
           asym_blocked_[static_cast<std::size_t>(a) * cpus_.size() +
                         static_cast<std::size_t>(b)] != 0;
  }

  /// Drop each remote delivery with probability `rate`, drawing from `rng`
  /// (owned by the caller, typically the Injector's private sub-stream).
  void set_loss(double rate, sim::Rng* rng);
  void clear_loss() { loss_rate_ = 0.0; loss_rng_ = nullptr; }

  /// Is the loss filter currently able to drop deliveries?  The
  /// retransmission transport consults this at stamp time: a frame that
  /// passes a loss-free filter cannot be dropped (partitions hold, they do
  /// not lose), so it needs neither buffering nor a retransmission timer.
  [[nodiscard]] bool loss_active() const { return loss_rate_ > 0.0 && loss_rng_ != nullptr; }

  /// Can a frame submitted now fail to arrive intact?  True while either
  /// the loss filter can drop it or the corruption filter can damage it
  /// (a corrupted frame is dropped by the receiver's checksum verify) —
  /// the transport's stamp-time predicate for ring-buffering frames.
  [[nodiscard]] bool can_drop() const { return loss_active() || corrupt_active(); }

  // --- gray failures ---

  /// Stretch process `p`'s CPU service times by `factor` (the "limp" gray
  /// failure; 1.0 restores nominal speed and is exactly neutral).
  void set_cpu_limp(ProcessId p, double factor);
  [[nodiscard]] double cpu_limp(ProcessId p) const {
    return cpus_.at(static_cast<std::size_t>(p))->stretch();
  }

  /// Take every directed link in `from` × `to` down (messages held, like
  /// an asymmetric cut) / bring it back up (held messages re-injected).
  /// Down states nest: overlapping flap windows on the same link keep it
  /// down until every window has brought it up again.
  void set_flap_down(const std::vector<ProcessId>& from, const std::vector<ProcessId>& to);
  void set_flap_up(const std::vector<ProcessId>& from, const std::vector<ProcessId>& to);

  /// Is the directed link a -> b currently flapped down?
  [[nodiscard]] bool flap_blocked(ProcessId a, ProcessId b) const {
    return !flap_down_.empty() &&
           flap_down_[static_cast<std::size_t>(a) * cpus_.size() +
                      static_cast<std::size_t>(b)] != 0;
  }

  /// Corrupt each remote delivery with probability `rate`, drawing from
  /// `rng` (the Injector's private sub-stream).  `link` restricts the
  /// window to the directed links link[0] × link[1]; empty means every
  /// link.  Replaces any earlier corruption window.
  void set_corrupt(double rate, sim::Rng* rng,
                   const std::vector<std::vector<ProcessId>>& link = {});
  void clear_corrupt();
  [[nodiscard]] bool corrupt_active() const {
    return corrupt_rate_ > 0.0 && corrupt_rng_ != nullptr;
  }

  /// Arm frame checksums for the whole run: every remote per-destination
  /// copy gets its digest stamped in the wire-completion event and
  /// verified at the receiver.  Latched once (by Injector::arm when the
  /// schedule contains a corrupt event) — never disarmed mid-run, so
  /// every in-flight frame a receiver verifies carries a digest.
  void enable_checksums() { checksums_enabled_ = true; }
  [[nodiscard]] bool checksums_enabled() const { return checksums_enabled_; }

  /// Observer for the no-transport corruption-detection path (may be
  /// nullptr; counts obs::Counter::kCorruptionDetected per destination).
  void set_observer(obs::Observer* observer) { obs_ = observer; }

  /// Deliveries damaged in transit / detected-and-dropped at final
  /// delivery (the latter only counts the no-transport path: with a
  /// transport armed, detection happens in its receive path and is
  /// reported by transport::Transport::stats).
  [[nodiscard]] std::uint64_t corrupted_deliveries() const { return corrupted_; }
  [[nodiscard]] std::uint64_t corruption_detected() const {
    return corrupt_detected_.load(std::memory_order_relaxed);
  }

  /// Arm (or disarm, with nullptr) the transport's frame-stamping stage.
  void set_frame_stage(FrameStage* stage) {
    frame_stage_ = stage;
    if (stage != nullptr && can_drop()) serialize_deliveries_ = true;
  }

  /// Multiply the shared medium's service time by `factor` (1 = normal).
  void set_delay_factor(double factor);
  [[nodiscard]] double delay_factor() const { return delay_factor_; }

  /// Deliveries dropped by the loss filter / held back by a partition so
  /// far (held messages count even after being re-injected by a heal).
  [[nodiscard]] std::uint64_t lost_deliveries() const { return lost_; }
  [[nodiscard]] std::uint64_t held_deliveries() const { return held_total_; }

 private:
  static constexpr std::uint32_t kNoList = UINT32_MAX;
  static constexpr std::uint32_t kPoolShift = 24;
  static constexpr std::uint32_t kLocalListMask = (1u << kPoolShift) - 1;

  /// Pooled remote-destination list: the capacity is reused across
  /// transmissions, so steady-state multicasts never allocate.  A list's
  /// packed handle encodes its home pool (pool << kPoolShift | local); it
  /// is always released back to that pool.
  struct DstList {
    std::vector<ProcessId> dsts;
    std::uint32_t next_free = 0;
  };
  struct alignas(64) ListPool {
    std::vector<DstList> lists;
    std::uint32_t free_head = kNoList;
  };

  /// Does the active corruption window cover the directed link a -> b?
  [[nodiscard]] bool corrupt_match(ProcessId a, ProcessId b) const {
    return corrupt_link_.empty() ||
           corrupt_link_[static_cast<std::size_t>(a) * cpus_.size() +
                         static_cast<std::size_t>(b)] != 0;
  }

  void on_send_done(const Message& m, std::uint32_t list, bool self);
  void refilter_held();
  void on_wire_done(const Message& m, std::uint32_t list);
  void filter_or_deliver(const Message& m, ProcessId d);
  void deliver_via_cpu(const Message& m, ProcessId d);
  void finish_delivery(Message m, ProcessId d);
  void invoke_tap(Message m, ProcessId d) { tap_(m, d); }
  [[nodiscard]] DstList& list_ref(std::uint32_t idx) {
    return list_pools_[idx >> kPoolShift].lists[idx & kLocalListMask];
  }
  std::uint32_t acquire_list();
  void release_list(std::uint32_t idx);

  sim::Scheduler* sched_;
  NetworkConfig cfg_;
  Resource wire_;
  std::vector<std::unique_ptr<Resource>> cpus_;
  Sink* sink_;
  FrameStage* frame_stage_ = nullptr;
  obs::Observer* obs_ = nullptr;
  std::function<void(const Message&, ProcessId)> tap_;
  std::atomic<std::uint64_t> delivered_{0};

  std::vector<ListPool> list_pools_ = std::vector<ListPool>(1);
  /// Once a loss window has ever been armed while the retransmission
  /// transport is stamping frames, receive-side CPU completions are forced
  /// onto the serial shared partition so every transport receive path
  /// (gap detection, NACKs, cumulative acks) runs at serial points.
  /// Latched for the rest of the run: repair traffic outlives the window.
  bool serialize_deliveries_ = false;

  /// Partition group of each process; empty when no partition is active.
  std::vector<int> group_of_;
  /// Directed-cut matrix (row-major n*n); empty when no asymmetric
  /// partition is active.
  std::vector<std::uint8_t> asym_blocked_;
  /// Cross-partition / cut-link messages awaiting a heal, in arrival order.
  std::vector<std::pair<Message, ProcessId>> held_;
  double loss_rate_ = 0.0;
  sim::Rng* loss_rng_ = nullptr;
  double delay_factor_ = 1.0;
  std::uint64_t lost_ = 0;
  std::uint64_t held_total_ = 0;

  /// Flap down-counter per directed link (row-major n*n); empty until the
  /// first flap transition.  Counters rather than flags so overlapping
  /// flap windows on the same link nest correctly.
  std::vector<std::uint16_t> flap_down_;
  /// Corruption window state: probability, RNG (the Injector's private
  /// sub-stream), and an optional link matrix (empty = every link).
  double corrupt_rate_ = 0.0;
  sim::Rng* corrupt_rng_ = nullptr;
  std::vector<std::uint8_t> corrupt_link_;
  bool checksums_enabled_ = false;
  std::uint64_t corrupted_ = 0;
  /// Detected at final delivery (no-transport path) — written from the
  /// destination's partition under the parallel backend, hence atomic.
  std::atomic<std::uint64_t> corrupt_detected_{0};
};

}  // namespace fdgm::net
