// Contention-aware network model (paper §6.1, after Urbán et al. IC3N'00).
//
// Transmitting a message from pi to pj uses, in order:
//   1. CPU_i for λ time units   (send-side processing),
//   2. the shared network for 1 time unit,
//   3. CPU_j for λ time units   (receive-side processing),
// with FIFO queueing in front of each resource.  A multicast occupies the
// sender CPU and the network once, then every destination CPU in parallel
// (Ethernet-style broadcast medium).  Self-destined copies bypass the
// network: they are delivered when the send-side CPU processing completes.
//
// Crash semantics (software crash): jobs already accepted by a CPU or
// queued behind it complete normally; the Node stops submitting new sends
// and stops receiving deliveries (see Node::crash).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/resource.hpp"
#include "sim/scheduler.hpp"

namespace fdgm::net {

struct NetworkConfig {
  /// Relative CPU cost of sending/receiving one message (paper's λ).
  double lambda = 1.0;
  /// Network service time per message (the paper's time unit, 1 ms).
  double network_time = 1.0;
};

class Network {
 public:
  /// `deliver` is invoked when a message reaches a destination process
  /// (after its receive-side CPU processing).  The callee decides whether
  /// the process is still alive.
  using DeliverFn = std::function<void(const Message&, ProcessId dst)>;

  Network(sim::Scheduler& sched, int num_processes, NetworkConfig cfg, DeliverFn deliver);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Submit a message for transmission to an explicit destination list.
  /// Destinations equal to `m.src` are served via local loopback.
  void submit(const Message& m, const std::vector<ProcessId>& dsts);

  [[nodiscard]] int num_processes() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

  /// Shared medium statistics (used by tests to count "network slots").
  [[nodiscard]] std::uint64_t network_uses() const { return wire_.jobs(); }
  [[nodiscard]] double network_busy_time() const { return wire_.busy_time(); }
  [[nodiscard]] std::uint64_t cpu_uses(ProcessId p) const { return cpus_.at(p)->jobs(); }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

  /// Optional tap observing every point-to-point delivery (tracing).
  void set_delivery_tap(std::function<void(const Message&, ProcessId)> tap) {
    tap_ = std::move(tap);
  }

 private:
  void on_wire_done(const Message& m, const std::vector<ProcessId>& remote);

  sim::Scheduler* sched_;
  NetworkConfig cfg_;
  Resource wire_;
  std::vector<std::unique_ptr<Resource>> cpus_;
  DeliverFn deliver_;
  std::function<void(const Message&, ProcessId)> tap_;
  std::uint64_t delivered_ = 0;
};

}  // namespace fdgm::net
