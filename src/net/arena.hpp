// Bump-pointer arena owning every payload of one simulated run.
//
// Payloads are allocated once, shared by reference for as long as any
// layer retains them (delivery logs, relay buffers, held messages) and
// freed wholesale when the run — the owning net::System — is destroyed.
// This removes the per-receiver shared_ptr refcount traffic of the old
// payload model from the hot path; the cost is that a run's payload
// memory is not reclaimed until the run ends, which is bounded by the
// run length and tiny for every scenario in this repository.
//
// Non-trivially-destructible payloads (those holding vectors/maps) are
// registered in a finalizer list and destroyed in reverse allocation
// order at teardown.
//
// Under the parallel scheduler backend the arena is sharded: each
// scheduler partition bumps its own block list (selected through the
// thread-local execution context), so workers allocating payloads
// concurrently never share a bump pointer.  Payload *addresses* are not
// an observable of the simulation, so sharding cannot perturb results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/exec_ctx.hpp"

namespace fdgm::net {

class PayloadArena {
 public:
  PayloadArena() : shards_(1) {}
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  ~PayloadArena() {
    for (Shard& s : shards_)
      for (auto it = s.finalizers.rbegin(); it != s.finalizers.rend(); ++it) it->fn(it->obj);
  }

  /// One shard per scheduler partition (owners + 1).  Call before the
  /// run starts; pre-existing allocations stay in shard 0.
  void set_shards(std::size_t count) {
    if (count > shards_.size()) shards_.resize(count);
  }

  /// Construct a T in the arena.  The pointer stays valid for the arena's
  /// lifetime; callers typically pass it on as a const payload pointer.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    Shard& s = current_shard();
    void* mem = allocate(s, sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      s.finalizers.push_back(Finalizer{[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    ++s.objects;
    return obj;
  }

  /// Totals across shards; only meaningful at serial points.
  [[nodiscard]] std::uint64_t objects() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += s.objects;
    return n;
  }
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.bytes_reserved;
    return n;
  }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  struct Finalizer {
    void (*fn)(void*);
    void* obj;
  };
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t used = 0;
    std::size_t cap = 0;
  };
  struct alignas(64) Shard {
    std::vector<Block> blocks;
    std::vector<Finalizer> finalizers;
    std::uint64_t objects = 0;
    std::size_t bytes_reserved = 0;
  };

  [[nodiscard]] Shard& current_shard() {
    const sim::ExecCtx* c = sim::exec_ctx();
    if (c == nullptr) return shards_[0];
    const auto idx = static_cast<std::size_t>(c->owner + 1);
    return idx < shards_.size() ? shards_[idx] : shards_[0];
  }

  static void* allocate(Shard& s, std::size_t size, std::size_t align) {
    if (s.blocks.empty()) grow(s, size + align);
    std::size_t off = aligned_used(s, align);
    if (off + size > s.blocks.back().cap) {
      grow(s, size + align);
      off = aligned_used(s, align);
    }
    Block& b = s.blocks.back();
    void* p = b.mem.get() + off;
    b.used = off + size;
    return p;
  }

  [[nodiscard]] static std::size_t aligned_used(const Shard& s, std::size_t align) {
    const std::size_t used = s.blocks.back().used;
    return (used + align - 1) & ~(align - 1);
  }

  static void grow(Shard& s, std::size_t at_least) {
    const std::size_t cap = at_least > kBlockBytes ? at_least : kBlockBytes;
    s.blocks.push_back(Block{std::make_unique<std::byte[]>(cap), 0, cap});
    s.bytes_reserved += cap;
  }

  std::vector<Shard> shards_;
};

}  // namespace fdgm::net
