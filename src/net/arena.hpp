// Bump-pointer arena owning every payload of one simulated run.
//
// Payloads are allocated once, shared by reference for as long as any
// layer retains them (delivery logs, relay buffers, held messages) and
// freed wholesale when the run — the owning net::System — is destroyed.
// This removes the per-receiver shared_ptr refcount traffic of the old
// payload model from the hot path; the cost is that a run's payload
// memory is not reclaimed until the run ends, which is bounded by the
// run length and tiny for every scenario in this repository.
//
// Non-trivially-destructible payloads (those holding vectors/maps) are
// registered in a finalizer list and destroyed in reverse allocation
// order at teardown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace fdgm::net {

class PayloadArena {
 public:
  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  ~PayloadArena() {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) it->fn(it->obj);
  }

  /// Construct a T in the arena.  The pointer stays valid for the arena's
  /// lifetime; callers typically pass it on as a const payload pointer.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      finalizers_.push_back(Finalizer{[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    ++objects_;
    return obj;
  }

  [[nodiscard]] std::uint64_t objects() const { return objects_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  struct Finalizer {
    void (*fn)(void*);
    void* obj;
  };
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t used = 0;
    std::size_t cap = 0;
  };

  void* allocate(std::size_t size, std::size_t align) {
    if (blocks_.empty()) grow(size + align);
    std::size_t off = aligned_used(align);
    if (off + size > blocks_.back().cap) {
      grow(size + align);
      off = aligned_used(align);
    }
    Block& b = blocks_.back();
    void* p = b.mem.get() + off;
    b.used = off + size;
    return p;
  }

  [[nodiscard]] std::size_t aligned_used(std::size_t align) const {
    const std::size_t used = blocks_.back().used;
    return (used + align - 1) & ~(align - 1);
  }

  void grow(std::size_t at_least) {
    const std::size_t cap = at_least > kBlockBytes ? at_least : kBlockBytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(cap), 0, cap});
    bytes_reserved_ += cap;
  }

  std::vector<Block> blocks_;
  std::vector<Finalizer> finalizers_;
  std::uint64_t objects_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace fdgm::net
