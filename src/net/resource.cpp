#include "net/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fdgm::net {

void Resource::enqueue(double service_time, std::function<void()> on_done) {
  if (service_time < 0) throw std::invalid_argument("Resource::enqueue: negative service time");
  const sim::Time start = std::max(sched_->now(), free_at_);
  free_at_ = start + service_time;
  busy_time_ += service_time;
  ++jobs_;
  sched_->schedule_at(free_at_, std::move(on_done));
}

sim::Time Resource::busy_until() const { return std::max(sched_->now(), free_at_); }

}  // namespace fdgm::net
