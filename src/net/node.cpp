#include "net/node.hpp"

#include <stdexcept>

#include "net/system.hpp"

namespace fdgm::net {

void Node::register_handler(ProtocolId proto, Layer* layer) {
  handlers_.at(static_cast<std::size_t>(proto)) = layer;
}

void Node::send(ProcessId dst, ProtocolId proto, PayloadPtr payload) {
  if (crashed_) return;
  Message m{id_, dst, proto, {}, payload};
  ++sent_;
  sys_->network().submit(m, &dst, 1);
}

void Node::multicast(const std::vector<ProcessId>& dsts, ProtocolId proto, PayloadPtr payload) {
  if (crashed_) return;
  if (dsts.empty()) return;
  Message m{id_, kBroadcast, proto, {}, payload};
  ++sent_;
  sys_->network().submit(m, dsts);
}

void Node::multicast_others(const std::vector<ProcessId>& dsts, ProtocolId proto,
                            PayloadPtr payload) {
  if (crashed_) return;
  if (dsts.empty()) return;
  Message m{id_, kBroadcast, proto, {}, payload};
  if (sys_->network().submit(m, dsts, /*loopback_self=*/false)) ++sent_;
}

void Node::multicast_all(ProtocolId proto, PayloadPtr payload) {
  multicast(sys_->all(), proto, payload);
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  crash_time_ = sys_->now();
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  crash_time_ = -1.0;
  ++incarnation_;
}

void Node::deliver(const Message& m) {
  if (crashed_) return;  // the host CPU processed it, the dead process never sees it
  ++received_;
  Layer* h = handlers_.at(static_cast<std::size_t>(m.proto));
  if (h == nullptr) throw std::logic_error("Node::deliver: no handler for protocol");
  h->on_message(m);
}

}  // namespace fdgm::net
