#include "net/system.hpp"

#include <stdexcept>

#include "obs/observer.hpp"

namespace fdgm::net {

System::System(int num_processes, NetworkConfig cfg, std::uint64_t seed,
               sim::SchedulerConfig sched_cfg, transport::Config transport_cfg)
    : sched_(sched_cfg), rng_(seed) {
  if (num_processes <= 0) throw std::invalid_argument("System: need at least one process");
  // Plain new: the System& -> Network::Sink& conversion is only
  // accessible inside System (private base), not from std::make_unique.
  network_.reset(new Network(sched_, num_processes, cfg, *this));
  if (sched_cfg.backend == sim::SchedulerBackend::kParallel) {
    // One scheduler partition per process plus the shared partition;
    // conservative lookahead = one slot on the shared medium (tracks
    // delay-spike factors through the callback).  The arena and the
    // network's destination-list pools shard the same way.
    sched_.set_partitions(num_processes);
    sched_.set_lookahead([net = network_.get()] { return net->min_wire_latency(); });
    arena_.set_shards(static_cast<std::size_t>(num_processes) + 1);
    network_->set_list_pools(static_cast<std::size_t>(num_processes) + 1);
  }
  if (transport_cfg.enabled) {
    transport_.reset(new transport::Transport(sched_, *network_, arena_, num_processes,
                                              transport_cfg, *this));
    network_->set_frame_stage(transport_.get());
  }
  nodes_.reserve(static_cast<std::size_t>(num_processes));
  all_.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, *this));
    all_.push_back(i);
  }
}

void System::set_observer(obs::Observer* o) {
  obs_ = o;
  network_->set_observer(o);
  if (transport_ != nullptr) transport_->set_observer(o);
}

std::vector<ProcessId> System::alive() const {
  std::vector<ProcessId> out;
  out.reserve(nodes_.size());
  for (const auto& nd : nodes_)
    if (!nd->crashed()) out.push_back(nd->id());
  return out;
}

void System::crash(ProcessId p) {
  Node& nd = node(p);
  if (nd.crashed()) return;
  nd.crash();
  // Ground truth for the observer's empirical FD QoS meter: measured T_D
  // counts from this instant to each monitor's first suspicion.
  if (obs_ != nullptr) obs_->on_crash(p, sched_.now());
  for (auto& fn : crash_listeners_) fn(p, sched_.now());
}

void System::crash_at(ProcessId p, sim::Time t) {
  sched_.schedule_at(t, [this, p] { crash(p); });
}

void System::restart(ProcessId p) {
  Node& nd = node(p);
  if (!nd.crashed()) return;
  nd.restart();
  if (obs_ != nullptr) obs_->on_recover(p, sched_.now());
  for (auto& fn : recovery_listeners_) fn(p, sched_.now());
}

void System::restart_at(ProcessId p, sim::Time t) {
  sched_.schedule_at(t, [this, p] { restart(p); });
}

}  // namespace fdgm::net
