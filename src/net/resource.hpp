// Single-server FIFO resource with deterministic service times — the
// building block of the contention model of Urbán/Défago/Schiper (IC3N'00)
// that the paper uses: one shared "network" resource plus one "CPU"
// resource per host.
//
// A job that arrives while the server is busy waits in FIFO order.  Because
// jobs are enqueued at their physical arrival instant (the simulation
// schedules an event per pipeline stage), a busy-until accumulator gives
// exact FIFO queueing semantics.
//
// enqueue() forwards the completion callable straight into the scheduler's
// callback slab (no std::function wrapper), so a pipeline stage costs no
// heap allocation.
//
// Each resource carries an owner tag for the parallel scheduler backend:
// a host CPU is owned by its process (its completions execute on that
// partition's worker), the wire is shared (its completions execute
// serially between rounds).  The scheduler's resource_enqueue applies the
// job either immediately (serial contexts, or a worker queueing on its
// own partition's CPU — only its events touch that resource inside a
// round) or as a staged op replayed in global order at the round barrier
// (workers queueing on the shared wire).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"

namespace fdgm::net {

class Resource {
 public:
  Resource(sim::Scheduler& sched, std::string name)
      : sched_(&sched), name_(std::move(name)) {}

  /// Owner of completion events (a process id, or sim::kOwnerShared).
  void set_owner(int owner) { owner_ = owner; }
  [[nodiscard]] int owner() const { return owner_; }

  /// Occupy the resource for `service_time` units, starting as soon as all
  /// previously enqueued jobs finish; `on_done` fires at completion.
  /// A zero service time completes at the current busy-until frontier
  /// (still serialized after earlier jobs).
  template <typename F>
  void enqueue(double service_time, F&& on_done) {
    enqueue_as(owner_, service_time, std::forward<F>(on_done));
  }

  /// enqueue() with an explicit completion owner, overriding the
  /// resource's tag for this one job (e.g. forcing lossy-path deliveries
  /// onto the serial shared partition).
  template <typename F>
  void enqueue_as(int owner, double service_time, F&& on_done) {
    if (service_time < 0) throw std::invalid_argument("Resource::enqueue: negative service time");
    sched_->resource_enqueue(this, &Resource::commit_thunk, owner, service_time,
                             std::forward<F>(on_done));
  }

  /// Time at which the resource next becomes idle (== now when idle).
  [[nodiscard]] sim::Time busy_until() const { return std::max(sched_->now(), free_at_); }

  /// Cumulative busy time, for utilization accounting in tests/benches.
  [[nodiscard]] double busy_time() const { return busy_time_; }

  /// Number of jobs served (or started).
  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Service-rate degradation: every job's service time is multiplied by
  /// `stretch` at commit time (the gray-failure "limp" — a CPU running at
  /// 1/stretch of its nominal rate).  The default 1.0 is exactly neutral:
  /// `t * 1.0 == t` bit-for-bit, so an armed-but-idle limp window cannot
  /// perturb the determinism goldens.  Jobs already committed keep their
  /// original completion times; only jobs committed inside the window
  /// are stretched.
  void set_stretch(double stretch) {
    if (!(stretch > 0)) throw std::invalid_argument("Resource::set_stretch: factor must be > 0");
    stretch_ = stretch;
  }
  [[nodiscard]] double stretch() const { return stretch_; }

 private:
  /// Applies one job at arrival time `at`; returns the completion time.
  /// Called by the scheduler either inline or during barrier replay.
  sim::Time commit_job(sim::Time at, double service_time) {
    const double stretched = service_time * stretch_;
    const sim::Time start = std::max(at, free_at_);
    free_at_ = start + stretched;
    busy_time_ += stretched;
    ++jobs_;
    return free_at_;
  }

  static sim::Time commit_thunk(void* self, sim::Time at, double service_time) {
    return static_cast<Resource*>(self)->commit_job(at, service_time);
  }

  sim::Scheduler* sched_;
  std::string name_;
  int owner_ = sim::kOwnerShared;
  double stretch_ = 1.0;
  sim::Time free_at_ = 0.0;
  double busy_time_ = 0.0;
  std::uint64_t jobs_ = 0;
};

}  // namespace fdgm::net
