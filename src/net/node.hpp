// A simulated process: hosts a stack of protocol layers (Neko-style) and
// implements the software-crash semantics of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace fdgm::net {

class System;

/// Interface implemented by every protocol layer living on a Node.
class Layer {
 public:
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  virtual ~Layer() = default;

  /// Called when a message addressed to this layer's protocol arrives.
  virtual void on_message(const Message& m) = 0;
};

class Node {
 public:
  Node(ProcessId id, System& sys) : id_(id), sys_(&sys) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] sim::Time crash_time() const { return crash_time_; }
  [[nodiscard]] System& system() { return *sys_; }

  /// Route messages of `proto` to `layer`.  Passing nullptr unregisters.
  void register_handler(ProtocolId proto, Layer* layer);

  /// Point-to-point send.  Silently dropped if this process has crashed
  /// (a dead process submits no new work to its CPU).
  void send(ProcessId dst, ProtocolId proto, PayloadPtr payload);

  /// Multicast to an explicit destination set (may include self; the self
  /// copy is served via local loopback).
  void multicast(const std::vector<ProcessId>& dsts, ProtocolId proto, PayloadPtr payload);

  /// Multicast to every listed destination except this process, with no
  /// loopback copy — for protocol layers that deliver locally themselves.
  /// Lets callers pass a stable membership vector directly instead of
  /// building a self-excluding copy per send.  A no-op (not even a
  /// send-side CPU job) when no destination other than self remains.
  void multicast_others(const std::vector<ProcessId>& dsts, ProtocolId proto, PayloadPtr payload);

  /// Multicast to every process in the system, including self.
  void multicast_all(ProtocolId proto, PayloadPtr payload);

  /// Software crash: no message passes between the process and its CPU
  /// from now on.  In-flight CPU/network jobs complete normally.
  void crash();

  /// Restart after a crash: the process resumes sending and receiving.
  /// Protocol-level catch-up (GM rejoin, FD log sync) is the stacks'
  /// business — see AtomicBroadcastProcess::on_restart.
  void restart();

  /// Bumped on every restart; lets delayed callbacks detect that the
  /// process they targeted crashed (or re-crashed) in the meantime.
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }

  /// Entry point used by the Network after receive-side CPU processing.
  void deliver(const Message& m);

  /// Messages this node handed to the network / received, for tests.
  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t received_count() const { return received_; }

 private:
  ProcessId id_;
  System* sys_;
  std::array<Layer*, kProtocolCount> handlers_{};
  bool crashed_ = false;
  sim::Time crash_time_ = -1.0;
  std::uint64_t incarnation_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace fdgm::net
