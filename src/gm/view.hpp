// Views of the process group (paper §4.3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace fdgm::gm {

struct View {
  std::uint64_t id = 0;
  /// Members in view order: survivors keep their relative order across
  /// view changes and joiners are appended at the end, so the sequencer
  /// (the first member) stays stable as long as it is not excluded.
  std::vector<net::ProcessId> members;

  [[nodiscard]] bool contains(net::ProcessId p) const {
    return std::find(members.begin(), members.end(), p) != members.end();
  }

  /// The sequencer is the first process of the current view (paper §4.2).
  [[nodiscard]] net::ProcessId sequencer() const { return members.front(); }

  [[nodiscard]] std::size_t size() const { return members.size(); }
  [[nodiscard]] std::size_t majority() const { return members.size() / 2 + 1; }

  friend bool operator==(const View&, const View&) = default;
};

}  // namespace fdgm::gm
