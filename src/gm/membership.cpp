#include "gm/membership.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/observer.hpp"

namespace fdgm::gm {

namespace {
constexpr std::uint32_t kMembershipContext = 1;

/// Coordinator rotation for view-change consensus: the plain rotation of
/// the underlying consensus (round 1 is coordinated by the lowest-id
/// member).  When the crashed process is the sequencer this costs an
/// extra round — part of why the paper finds the view change more
/// expensive than the FD algorithm's recovery (§4.4, Fig. 8).
int vc_offset(const View& v) {
  (void)v;
  return 0;
}
}  // namespace

// ------------------------------------------------------------ wire payloads

/// The view-change signal the initiating process multicasts (paper §4.3,
/// step 1 of the five-step view change).
class GroupMembership::VcSignalPayload final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kMembership;
  static constexpr std::uint8_t kKind = 0;
  explicit VcSignalPayload(std::uint64_t view_id) : Payload(kProto, kKind), view_id(view_id) {}
  std::uint64_t view_id;
};

/// Unstable-message announcement (step 2).
class GroupMembership::UnstableMsgPayload final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kMembership;
  static constexpr std::uint8_t kKind = 1;
  UnstableMsgPayload(std::uint64_t view_id, UnstableReport report, std::vector<Joiner> joiners)
      : Payload(kProto, kKind),
        view_id(view_id),
        report(std::move(report)),
        joiners(std::move(joiners)) {}
  std::uint64_t view_id;
  UnstableReport report;
  std::vector<Joiner> joiners;
};

class GroupMembership::JoinPayload final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kMembership;
  static constexpr std::uint8_t kKind = 2;
  JoinPayload(std::uint64_t log_len, std::uint64_t view_hint)
      : Payload(kProto, kKind), log_len(log_len), view_hint(view_hint) {}
  std::uint64_t log_len;
  /// Most recent view id the joiner knows of; lets a member distinguish a
  /// stale retry (hint older than its installed view — the joiner has
  /// been readmitted since) from fresh restart evidence.
  std::uint64_t view_hint;
};

class GroupMembership::StatePayload final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kMembership;
  static constexpr std::uint8_t kKind = 3;
  StatePayload(View view, net::PayloadPtr state)
      : Payload(kProto, kKind), view(std::move(view)), state(state) {}
  View view;
  net::PayloadPtr state;
};

/// Consensus value of a view change: (P, U, J) plus the settled watermark.
class GroupMembership::MembershipProposal final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kMembership;
  static constexpr std::uint8_t kKind = 4;
  MembershipProposal(std::vector<net::ProcessId> members, std::vector<UnstableEntry> unstable,
                     std::vector<Joiner> joiners, std::int64_t settled)
      : Payload(kProto, kKind),
        members(std::move(members)),
        unstable(std::move(unstable)),
        joiners(std::move(joiners)),
        settled(settled) {}
  std::vector<net::ProcessId> members;  // P
  std::vector<UnstableEntry> unstable;  // U
  std::vector<Joiner> joiners;          // J
  std::int64_t settled;                 // max delivery watermark / sn in U
};

// ------------------------------------------------------------ construction

GroupMembership::GroupMembership(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                                 rbcast::ReliableBroadcast& rb,
                                 consensus::ConsensusService& consensus,
                                 MembershipClient& client, MembershipConfig cfg)
    : sys_(&sys),
      self_(self),
      fd_(&fd),
      rb_(&rb),
      consensus_(&consensus),
      client_(&client),
      cfg_(cfg) {
  view_ = View{0, sys.all()};
  sys.node(self).register_handler(net::ProtocolId::kMembership, this);
  fd.add_listener(this);
  consensus.register_context(
      kMembershipContext,
      consensus::ConsensusService::ContextConfig{
          // Never join eagerly: the paper's protocol enters consensus only
          // once the unstable messages of every unsuspected member are in.
          // Early consensus traffic is buffered by the service; if we are
          // a member that has not yet noticed the view change, enter it.
          .join =
              [this](const consensus::InstanceKey& key) -> std::optional<consensus::StartInfo> {
                if (key.number == view_.id && status_ == Status::kMember) {
                  sys_->scheduler().schedule_after(0, [this, vid = key.number] {
                    if (status_ == Status::kMember && view_.id == vid)
                      start_view_change(/*initiator=*/false);
                  });
                }
                return std::nullopt;
              },
          .on_decide = [this](const consensus::InstanceKey& key,
                              const net::PayloadPtr& value) { on_decide(key, value); },
      });
}

GroupMembership::~GroupMembership() {
  fd_->remove_listener(this);
  sys_->node(self_).register_handler(net::ProtocolId::kMembership, nullptr);
}

// -------------------------------------------------------------- suspicions

void GroupMembership::on_suspect(net::ProcessId p) {
  if (p == self_) return;
  switch (status_) {
    case Status::kMember:
      if (view_.contains(p)) start_view_change(/*initiator=*/true);
      break;
    case Status::kViewChange:
      // The snapshot of this attempt grows: we stop waiting for p and our
      // proposal will not include it.
      if (view_.contains(p)) vc_suspected_.insert(p);
      maybe_start_consensus();
      break;
    case Status::kExcluded:
    case Status::kJoining:
      break;  // not our view change
  }
}

void GroupMembership::on_trust(net::ProcessId p) {
  (void)p;
  // The snapshot is sticky (a point mistake still excludes), but the end
  // of a suspicion can unblock a *refreshed* attempt: re-evaluate.
  if (status_ == Status::kViewChange) maybe_start_consensus();
}

// -------------------------------------------------------------- view change

void GroupMembership::start_view_change(bool initiator) {
  if (status_ != Status::kMember) return;
  status_ = Status::kViewChange;
  consensus_started_ = false;
  unstable_received_.clear();
  client_->on_view_change_started();

  // Snapshot the suspect set of this attempt (paper: the proposal is made
  // of "all processes it does not suspect").
  vc_suspected_.clear();
  for (net::ProcessId p : view_.members)
    if (p != self_ && fd_->suspects(p)) vc_suspected_.insert(p);

  // Step 1 (initiator only): the view-change signal.
  if (initiator)
    sys_->node(self_).multicast_others(view_.members, net::ProtocolId::kMembership,
                                       sys_->arena().make<VcSignalPayload>(view_.id));

  // Step 2: announce our unstable messages.
  unstable_received_[self_] = client_->unstable_messages();
  std::vector<Joiner> js(joiners_.begin(), joiners_.end());
  sys_->node(self_).multicast_others(
      view_.members, net::ProtocolId::kMembership,
      sys_->arena().make<UnstableMsgPayload>(view_.id, unstable_received_[self_],
                                             std::move(js)));
  maybe_start_consensus();
}

void GroupMembership::maybe_start_consensus() {
  if (status_ != Status::kViewChange || consensus_started_) return;
  // Proceed once we hold the unstable messages of every member not in the
  // attempt's suspicion snapshot — and they form at least a majority
  // (otherwise the next view could not make progress).  The waiting check
  // runs first, allocation-free with an early exit: it is re-evaluated on
  // every report/suspicion/restart event of the view change, which makes
  // it O(n^2) per view change at large n if it builds state eagerly.
  const auto excluded = [&](net::ProcessId q) {
    return (vc_suspected_.contains(q) || restart_pending_.contains(q)) && q != self_;
  };
  for (net::ProcessId q : view_.members)
    if (!unstable_received_.contains(q) && !excluded(q)) return;  // waiting
  std::vector<net::ProcessId> p_set;
  p_set.reserve(view_.members.size());
  for (net::ProcessId q : view_.members)
    if (unstable_received_.contains(q) && !excluded(q)) p_set.push_back(q);
  if (p_set.size() < view_.majority()) {
    // Too many members in the snapshot: this attempt cannot form a valid
    // view.  Refresh the snapshot shortly — with short mistakes (small
    // TM) the next attempt proceeds; with long ones the view change
    // stalls for ~TM, which is the GM algorithm's TM sensitivity (Fig 7).
    schedule_attempt_refresh();
    return;
  }

  // U = union of all received unstable sets; a message sequenced anywhere
  // keeps its sequence number.  The settled watermark is the max of the
  // contributors' delivery watermarks and of the sequence numbers in U.
  std::map<abcast::MsgId, UnstableEntry> u;
  std::int64_t settled = 0;
  for (const auto& [q, report] : unstable_received_) {
    settled = std::max(settled, report.watermark);
    for (const UnstableEntry& e : report.entries) {
      auto [it, inserted] = u.try_emplace(e.msg->id, e);
      if (!inserted && e.seqnum >= 0) it->second.seqnum = e.seqnum;
      settled = std::max(settled, e.seqnum);
    }
  }
  std::vector<UnstableEntry> u_vec;
  u_vec.reserve(u.size());
  for (auto& [id, e] : u) u_vec.push_back(e);

  // J = known joiners that are not already members.
  std::vector<Joiner> j_vec;
  for (const Joiner& j : joiners_)
    if (!view_.contains(j.p)) j_vec.push_back(j);

  consensus_started_ = true;
  consensus_->start(
      consensus::InstanceKey{kMembershipContext, view_.id},
      consensus::StartInfo{
          .members = &view_.members,
          .coordinator_offset = vc_offset(view_),
          .initial = sys_->arena().make<MembershipProposal>(std::move(p_set), std::move(u_vec),
                                                            std::move(j_vec), settled),
      });
}

void GroupMembership::schedule_attempt_refresh() {
  if (refresh_scheduled_) return;
  refresh_scheduled_ = true;
  sys_->scheduler().schedule_after(1.0, [this] {
    refresh_scheduled_ = false;
    if (status_ != Status::kViewChange || consensus_started_) return;
    vc_suspected_.clear();
    for (net::ProcessId p : view_.members)
      if (p != self_ && fd_->suspects(p)) vc_suspected_.insert(p);
    maybe_start_consensus();
  });
}

// ----------------------------------------------------------------- decision

void GroupMembership::on_decide(const consensus::InstanceKey& key, const net::PayloadPtr& value) {
  if (key.number != view_.id) return;  // stale (relayed) or future decision
  if (status_ == Status::kExcluded || status_ == Status::kJoining) return;
  const MembershipProposal* d = net::payload_cast<MembershipProposal>(value);
  if (d == nullptr) throw std::logic_error("GroupMembership: bad decision payload");
  process_decision(*d);
}

void GroupMembership::process_decision(const MembershipProposal& d) {
  if (getenv("FDGM_TRACE_VC")) {
    std::fprintf(stderr, "[%.2f] p%d decision view%llu: P'={", sys_->now(), self_,
                 (unsigned long long)view_.id);
    for (auto p : d.members) std::fprintf(stderr, "%d,", p);
    std::fprintf(stderr, "} J'=%zu U'=%zu\n", d.joiners.size(), d.unstable.size());
  }
  if (status_ == Status::kMember) {
    // The decision overtook the unstable announcements: freeze now.
    status_ = Status::kViewChange;
    client_->on_view_change_started();
  }
  client_->flush(d.unstable, d.settled);

  // Survivors keep view order; joiners are appended (View doc).
  View nv;
  nv.id = view_.id + 1;
  nv.members = d.members;
  for (const Joiner& j : d.joiners)
    if (!nv.contains(j.p)) nv.members.push_back(j.p);

  // Reset view-change state; drop joiners that are members of the new
  // view (whether via this decision's J or an earlier readmission).
  unstable_received_.clear();
  consensus_started_ = false;
  for (auto it = joiners_.begin(); it != joiners_.end();)
    it = nv.contains(it->p) ? joiners_.erase(it) : std::next(it);
  // A restart announcement is settled once the decision no longer carries
  // the stale incarnation as a survivor (excluded, and usually readmitted
  // fresh through J); one that overtook a running consensus stays pending
  // and triggers the next view change after installation.
  for (auto it = restart_pending_.begin(); it != restart_pending_.end();) {
    const bool survivor =
        std::find(d.members.begin(), d.members.end(), *it) != d.members.end();
    it = survivor ? std::next(it) : restart_pending_.erase(it);
  }

  if (nv.contains(self_)) {
    install_view(nv);
    // State transfer: the lowest-id member that is not itself a joiner
    // sends each joiner the log suffix it missed.
    std::vector<net::ProcessId> joiner_ids;
    for (const Joiner& j : d.joiners) joiner_ids.push_back(j.p);
    net::ProcessId responsible = -1;
    for (net::ProcessId p : nv.members) {
      if (std::find(joiner_ids.begin(), joiner_ids.end(), p) == joiner_ids.end()) {
        responsible = p;
        break;
      }
    }
    if (responsible == self_) {
      for (const Joiner& j : d.joiners) {
        const StatePayload* state =
            sys_->arena().make<StatePayload>(nv, client_->make_state(j.log_len));
        sys_->node(self_).send(j.p, net::ProtocolId::kMembership, state);
      }
    }
  } else {
    become_excluded(nv);
  }
}

void GroupMembership::install_view(View v) {
  view_ = std::move(v);
  status_ = Status::kMember;
  if (auto* o = sys_->obs()) o->count(self_, obs::Counter::kViewChanges, sys_->now());
  ++views_installed_;
  client_->on_view_installed(view_, true);
  replay_future(view_.id);
  check_pending_suspicions();
}

void GroupMembership::check_pending_suspicions() {
  if (status_ != Status::kMember) return;
  // Level-triggered re-check: a suspicion that outlived the view change
  // (long TM), or a join request not yet admitted, starts the next one.
  bool trigger = false;
  for (const Joiner& j : joiners_)
    if (!view_.contains(j.p)) trigger = true;
  for (net::ProcessId p : view_.members)
    if (p != self_ && (fd_->suspects(p) || restart_pending_.contains(p))) trigger = true;
  if (trigger) start_view_change(/*initiator=*/true);
}

void GroupMembership::replay_future(std::uint64_t view_id) {
  auto it = future_.find(view_id);
  if (it == future_.end()) return;
  auto msgs = std::move(it->second);
  future_.erase(it);
  for (const net::Message& m : msgs) on_message(m);
  // Drop anything older than the current view.
  while (!future_.empty() && future_.begin()->first < view_.id) future_.erase(future_.begin());
}

// ----------------------------------------------------------------- exclusion

void GroupMembership::become_excluded(const View& new_view) {
  view_ = new_view;  // remember whom to ask for readmission
  status_ = Status::kJoining;
  join_view_hint_ = new_view.id;
  join_targets_ = new_view.members;
  client_->on_view_installed(new_view, false);
  send_join();
}

void GroupMembership::rejoin() {
  // Crash-recovery: every view-change negotiation this incarnation may
  // have been part of is void; fall back to the joiner protocol.  JOINs go
  // to every process — we cannot know the current membership — and only
  // actual members act on them.
  const bool chain_armed = status_ == Status::kJoining;
  status_ = Status::kJoining;
  consensus_started_ = false;
  unstable_received_.clear();
  joiners_.clear();
  restart_pending_.clear();
  vc_suspected_.clear();
  future_.clear();
  join_view_hint_ = view_.id;
  join_targets_.clear();
  for (net::ProcessId p : sys_->all())
    if (p != self_) join_targets_.push_back(p);
  if (!chain_armed) send_join();  // else the periodic JOIN retry is already running
}

void GroupMembership::send_join() {
  if (status_ != Status::kJoining) return;
  sys_->node(self_).multicast(join_targets_, net::ProtocolId::kMembership,
                              sys_->arena().make<JoinPayload>(client_->log_length(),
                                                              join_view_hint_));
  sys_->scheduler().schedule_after(cfg_.join_retry, [this] { send_join(); });
}

// ----------------------------------------------------------------- messages

void GroupMembership::on_message(const net::Message& m) {
  if (const auto* sig = net::payload_cast<VcSignalPayload>(m)) {
    if (sig->view_id < view_.id) return;  // stale
    if (sig->view_id > view_.id) {
      future_[sig->view_id].push_back(m);
      return;
    }
    if (status_ == Status::kMember) start_view_change(/*initiator=*/false);
    return;
  }
  if (const auto* u = net::payload_cast<UnstableMsgPayload>(m)) {
    if (u->view_id < view_.id) return;  // stale
    if (u->view_id > view_.id) {
      future_[u->view_id].push_back(m);
      return;
    }
    if (status_ == Status::kExcluded || status_ == Status::kJoining) return;
    for (const Joiner& j : u->joiners) joiners_.insert(j);
    if (status_ == Status::kMember) start_view_change(/*initiator=*/false);  // just learned
    unstable_received_[m.src] = u->report;
    maybe_start_consensus();
    return;
  }
  if (const auto* j = net::payload_cast<JoinPayload>(m)) {
    if (status_ == Status::kExcluded || status_ == Status::kJoining) return;
    // Never admit a process the local failure detector still suspects: a
    // recovered process is readmitted only once its recovery is detected
    // (it keeps retrying JOIN until then).  Without this guard, admission
    // and the lingering suspicion race into an exclusion/readmission loop.
    if (fd_->suspects(m.src)) return;
    if (view_.contains(m.src)) {
      // A retry the joiner sent just before we installed the view that
      // readmitted it: its hint predates our view, so this is no restart.
      if (j->view_hint < view_.id) return;
      // A JOIN from a current member means it crashed and restarted: the
      // incarnation that held our state is gone.  Exclude the stale
      // incarnation and readmit the new one (with a state transfer) at
      // the next view change.  (A restart whose hint lags our view can
      // only be dropped here while the crash itself goes undetected; the
      // heartbeat-gap suspicion at crash + TD excludes it regardless.)
      joiners_.insert(Joiner{m.src, j->log_len});
      if (restart_pending_.insert(m.src).second) {
        if (status_ == Status::kMember)
          start_view_change(/*initiator=*/true);
        else if (status_ == Status::kViewChange)
          maybe_start_consensus();  // stop waiting for the dead incarnation
        // Liveness of the view change does not depend on this JOIN: the
        // monitors observed the crash's heartbeat gap and will suspect
        // the restarted process from crash + TD until recovery + TD (see
        // QosFailureDetectorModel::on_crash), letting the view-change
        // consensus rotate past it while it is joining and silent.
      }
      return;
    }
    joiners_.insert(Joiner{m.src, j->log_len});
    if (status_ == Status::kMember)
      start_view_change(/*initiator=*/true);
    // If a view change is already running, the joiner is picked up either
    // by this round's proposal (if not yet proposed) or by the re-check
    // after installation.
    return;
  }
  if (const auto* s = net::payload_cast<StatePayload>(m)) {
    if (status_ != Status::kJoining) return;
    if (s->view.id < join_view_hint_) return;  // stale state
    client_->apply_state(s->state, s->view);
    view_ = s->view;
    status_ = Status::kMember;
    if (auto* o = sys_->obs()) o->count(self_, obs::Counter::kViewChanges, sys_->now());
    ++views_installed_;
    client_->on_view_installed(view_, true);
    replay_future(view_.id);
    check_pending_suspicions();
    return;
  }
  throw std::logic_error("GroupMembership: foreign payload");
}

}  // namespace fdgm::gm
