// Group membership service (paper §4.3, after Malloth & Schiper).
//
// Guarantees provided to the client (the fixed-sequencer atomic broadcast):
// all member processes see the same sequence of views (primary-partition),
// View Synchrony and Same View Delivery: at a view change, members agree —
// via consensus — on the pair (next membership P', unstable messages U'),
// flush U' before installing the next view, and only then resume.
//
// Protocol outline:
//  * a member that suspects another member (or receives a join request)
//    starts a view change: it multicasts its unstable messages to the view;
//  * a member learning of a view change (by receiving such an UNSTABLE
//    message) does the same;
//  * once a process has the unstable messages of every member it does not
//    suspect — at least a majority — it proposes (P, U, J) to consensus
//    instance #view-id, run among the members of the current view;
//  * the decision (P', U', J') is processed by every member: flush U',
//    install view (id+1, P' ∪ J');
//  * a member not in P' is wrongly excluded (or crashed).  A correct
//    excluded process learns its exclusion from the decision and rejoins:
//    it sends JOIN to the new members (with periodic retry), a member
//    triggers a view change carrying the joiner, and after the view
//    installs, one member transfers the state the joiner missed (§4.3,
//    "State transfer").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "abcast/abcast.hpp"
#include "consensus/chandra_toueg.hpp"
#include "fd/failure_detector.hpp"
#include "gm/view.hpp"
#include "net/system.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::gm {

/// One message the data plane considers unstable at a view change: content
/// plus its sequence number if it has one (-1 when unsequenced).
struct UnstableEntry {
  abcast::AppMessagePtr msg = nullptr;
  std::int64_t seqnum = -1;
};

/// A process's contribution to a view change: its unstable messages (not
/// yet known stable — including recently delivered sequenced messages that
/// may be undelivered elsewhere) plus its delivery watermark.  The decided
/// watermark (max over contributors) settles the sequence-number space so
/// every member of the next view resumes from the same point.
struct UnstableReport {
  std::vector<UnstableEntry> entries;
  std::int64_t watermark = 0;  // highest sequenced sn delivered locally
};

/// Interface the data plane (gm atomic broadcast) implements for the
/// membership service.
class MembershipClient {
 public:
  MembershipClient() = default;
  MembershipClient(const MembershipClient&) = delete;
  MembershipClient& operator=(const MembershipClient&) = delete;
  virtual ~MembershipClient() = default;

  /// Messages not yet known stable plus the local delivery watermark.
  [[nodiscard]] virtual UnstableReport unstable_messages() const = 0;

  /// A view change began: freeze sequencing and delivery announcements.
  virtual void on_view_change_started() = 0;

  /// Flush phase: A-deliver every not-yet-delivered message of `u`, in
  /// canonical order (sequenced by seqnum, then unsequenced by id), and
  /// settle the sequence-number space up to `settled`.
  virtual void flush(const std::vector<UnstableEntry>& u, std::int64_t settled) = 0;

  /// A new view was installed; `member` says whether this process is in it.
  virtual void on_view_installed(const View& v, bool member) = 0;

  /// Length of the local A-delivery log (state transfer baseline).
  [[nodiscard]] virtual std::uint64_t log_length() const = 0;

  /// Build the state a joiner with log length `from` is missing.
  [[nodiscard]] virtual net::PayloadPtr make_state(std::uint64_t from) const = 0;

  /// Joiner side: apply a state snapshot, then behave as a member of `v`.
  virtual void apply_state(const net::PayloadPtr& state, const View& v) = 0;
};

struct MembershipConfig {
  /// Joiner retry period for JOIN requests (ms).
  double join_retry = 50.0;
};

class GroupMembership final : public net::Layer, public fd::SuspicionListener {
 public:
  GroupMembership(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                  rbcast::ReliableBroadcast& rb, consensus::ConsensusService& consensus,
                  MembershipClient& client, MembershipConfig cfg = {});
  ~GroupMembership() override;

  /// Current view at this process.
  [[nodiscard]] const View& view() const { return view_; }

  [[nodiscard]] bool is_member() const { return status_ == Status::kMember; }
  [[nodiscard]] bool in_view_change() const { return status_ == Status::kViewChange; }
  [[nodiscard]] bool is_excluded() const {
    return status_ == Status::kExcluded || status_ == Status::kJoining;
  }

  /// Number of view changes this process has gone through (tests).
  [[nodiscard]] std::uint64_t views_installed() const { return views_installed_; }

  /// Crash-recovery entry point: forget any in-progress view change and
  /// rejoin the group through the JOIN/state-transfer path, exactly like a
  /// wrongly excluded process.  The caller (the data plane's on_restart)
  /// must have discarded its volatile protocol state first.  Members that
  /// receive a JOIN from a process still in their view treat it as
  /// evidence of a restart: the next view change excludes and immediately
  /// readmits it with a state transfer.
  void rejoin();

  /// Debug/tests: who we hold unstable reports from, and whether the view
  /// change consensus was started.
  [[nodiscard]] std::vector<net::ProcessId> debug_unstable_from() const {
    std::vector<net::ProcessId> out;
    for (const auto& [q, r] : unstable_received_) out.push_back(q);
    return out;
  }
  [[nodiscard]] bool debug_consensus_started() const { return consensus_started_; }

  // net::Layer — UNSTABLE / JOIN / STATE messages.
  void on_message(const net::Message& m) override;

  // fd::SuspicionListener
  void on_suspect(net::ProcessId p) override;
  void on_trust(net::ProcessId p) override;

 private:
  enum class Status { kMember, kViewChange, kExcluded, kJoining };

  struct Joiner {
    net::ProcessId p;
    std::uint64_t log_len;
    friend bool operator<(const Joiner& a, const Joiner& b) { return a.p < b.p; }
    friend bool operator==(const Joiner& a, const Joiner& b) { return a.p == b.p; }
  };

  class VcSignalPayload;
  class UnstableMsgPayload;
  class JoinPayload;
  class StatePayload;
  class MembershipProposal;

  /// Enter the view-change protocol.  The process that *initiates* (on a
  /// suspicion or a join request) first multicasts the VIEW-CHANGE signal
  /// (paper §4.3 step 1); processes that learn of the change skip it and
  /// only multicast their unstable messages (step 2).
  void start_view_change(bool initiator);
  void maybe_start_consensus();
  /// Blocked attempt (|P| below majority and nothing left to wait for):
  /// refresh the suspicion snapshot and retry shortly.
  void schedule_attempt_refresh();
  void on_decide(const consensus::InstanceKey& key, const net::PayloadPtr& value);
  void process_decision(const MembershipProposal& d);
  void install_view(View v);
  void become_excluded(const View& new_view);
  void send_join();
  void check_pending_suspicions();
  void replay_future(std::uint64_t view_id);

  net::System* sys_;
  net::ProcessId self_;
  fd::FailureDetector* fd_;
  rbcast::ReliableBroadcast* rb_;
  consensus::ConsensusService* consensus_;
  MembershipClient* client_;
  MembershipConfig cfg_;

  View view_;
  Status status_ = Status::kMember;
  std::uint64_t views_installed_ = 0;

  // View-change state (valid while status_ == kViewChange).
  std::map<net::ProcessId, UnstableReport> unstable_received_;
  std::set<Joiner> joiners_;
  bool consensus_started_ = false;
  /// Suspicion snapshot of this view-change attempt: a member suspected at
  /// the start of the attempt, or while it runs, stays out of our proposal
  /// even if the failure detector trusts it again (the paper's point
  /// mistakes, TM = 0, must still cause exclusions — Fig. 6).
  std::set<net::ProcessId> vc_suspected_;
  /// Members that announced a restart (JOIN received while still in the
  /// view): excluded from our proposals like suspects — their pre-crash
  /// incarnation is gone and must not be waited for — and readmitted as
  /// joiners with a state transfer.
  std::set<net::ProcessId> restart_pending_;
  bool refresh_scheduled_ = false;

  // Joiner state.
  std::uint64_t join_view_hint_ = 0;  // most recent view id we were told of
  std::vector<net::ProcessId> join_targets_;

  // Messages for views we have not reached yet.
  std::map<std::uint64_t, std::vector<net::Message>> future_;
};

}  // namespace fdgm::gm
