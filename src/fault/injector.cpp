#include "fault/injector.hpp"

namespace fdgm::fault {

Injector::Injector(net::System& sys, fd::QosFailureDetectorModel* fd_model,
                   FaultSchedule schedule, RestartHook on_restart)
    : sys_(&sys),
      fd_model_(fd_model),
      schedule_(std::move(schedule)),
      restart_hook_(std::move(on_restart)),
      rng_(sys.rng().fork("fault-injector")) {}

void Injector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const FaultEvent& e : schedule_.events())
    sys_->scheduler().schedule_at(e.at, [this, &e] { fire(e); });
}

void Injector::fire(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      sys_->crash(e.process);
      break;

    case FaultKind::kRecover: {
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      // Recovering an alive process is a no-op, but the event still counts
      // as fired — fired() + skipped() must account for every event.
      if (sys_->node(e.process).crashed()) {
        sys_->restart(e.process);
        if (restart_hook_) restart_hook_(e.process);
      }
      break;
    }

    case FaultKind::kPartition: {
      for (const auto& group : e.groups)
        for (net::ProcessId p : group)
          if (!valid_pid(p)) {
            ++skipped_;
            return;
          }
      sys_->network().set_partition(e.groups);
      const std::uint64_t gen = ++partition_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == partition_gen_) sys_->network().heal_partition();
      });
      break;
    }

    case FaultKind::kAsymPartition: {
      for (const auto& group : e.groups)
        for (net::ProcessId p : group)
          if (!valid_pid(p)) {
            ++skipped_;
            return;
          }
      sys_->network().set_asym_partition(e.groups.at(0), e.groups.at(1));
      const std::uint64_t gen = ++apartition_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == apartition_gen_) sys_->network().heal_asym_partition();
      });
      break;
    }

    case FaultKind::kLoss: {
      sys_->network().set_loss(e.rate, &rng_);
      const std::uint64_t gen = ++loss_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == loss_gen_) sys_->network().clear_loss();
      });
      break;
    }

    case FaultKind::kDelaySpike: {
      sys_->network().set_delay_factor(e.factor);
      const std::uint64_t gen = ++delay_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == delay_gen_) sys_->network().set_delay_factor(1.0);
      });
      break;
    }

    case FaultKind::kSuspicionStorm: {
      for (net::ProcessId p : e.accused)
        if (!valid_pid(p)) {
          ++skipped_;
          return;
        }
      if (fd_model_ == nullptr) {
        ++skipped_;
        return;
      }
      for (net::ProcessId p : e.accused)
        for (net::ProcessId q : sys_->all())
          if (q != p && !sys_->node(q).crashed()) fd_model_->inject_suspicion(q, p, e.until);
      break;
    }
  }
  ++fired_;
}

}  // namespace fdgm::fault
