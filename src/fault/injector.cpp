#include "fault/injector.hpp"

#include <algorithm>

#include "obs/observer.hpp"

namespace fdgm::fault {

Injector::Injector(net::System& sys, fd::QosFailureDetectorModel* fd_model,
                   FaultSchedule schedule, RestartHook on_restart)
    : sys_(&sys),
      fd_model_(fd_model),
      schedule_(std::move(schedule)),
      restart_hook_(std::move(on_restart)),
      rng_(sys.rng().fork("fault-injector")),
      limp_gen_(static_cast<std::size_t>(sys.n()), 0),
      drift_gen_(static_cast<std::size_t>(sys.n()), 0) {}

void Injector::arm() {
  if (armed_) return;
  armed_ = true;
  // Corruption needs the digest on *every* frame in flight when its
  // window opens, so checksums are latched for the whole run up front —
  // schedules without a corrupt event never stamp and stay bit-identical
  // to a build without the machinery.
  for (const FaultEvent& e : schedule_.events())
    if (e.kind == FaultKind::kCorrupt) {
      sys_->network().enable_checksums();
      break;
    }
  for (const FaultEvent& e : schedule_.events())
    sys_->scheduler().schedule_at(e.at, [this, &e] { fire(e); });
}

void Injector::fire(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      sys_->crash(e.process);
      break;

    case FaultKind::kRecover: {
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      // Recovering an alive process is a no-op, but the event still counts
      // as fired — fired() + skipped() must account for every event.
      if (sys_->node(e.process).crashed()) {
        sys_->restart(e.process);
        if (restart_hook_) restart_hook_(e.process);
      }
      break;
    }

    case FaultKind::kPartition: {
      for (const auto& group : e.groups)
        for (net::ProcessId p : group)
          if (!valid_pid(p)) {
            ++skipped_;
            return;
          }
      sys_->network().set_partition(e.groups);
      const std::uint64_t gen = ++partition_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == partition_gen_) sys_->network().heal_partition();
      });
      break;
    }

    case FaultKind::kAsymPartition: {
      for (const auto& group : e.groups)
        for (net::ProcessId p : group)
          if (!valid_pid(p)) {
            ++skipped_;
            return;
          }
      sys_->network().set_asym_partition(e.groups.at(0), e.groups.at(1));
      const std::uint64_t gen = ++apartition_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == apartition_gen_) sys_->network().heal_asym_partition();
      });
      break;
    }

    case FaultKind::kLoss: {
      sys_->network().set_loss(e.rate, &rng_);
      const std::uint64_t gen = ++loss_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == loss_gen_) sys_->network().clear_loss();
      });
      break;
    }

    case FaultKind::kDelaySpike: {
      sys_->network().set_delay_factor(e.factor);
      const std::uint64_t gen = ++delay_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == delay_gen_) sys_->network().set_delay_factor(1.0);
      });
      break;
    }

    case FaultKind::kSuspicionStorm: {
      for (net::ProcessId p : e.accused)
        if (!valid_pid(p)) {
          ++skipped_;
          return;
        }
      if (fd_model_ == nullptr) {
        ++skipped_;
        return;
      }
      for (net::ProcessId p : e.accused)
        for (net::ProcessId q : sys_->all())
          if (q != p && !sys_->node(q).crashed()) fd_model_->inject_suspicion(q, p, e.until);
      break;
    }

    case FaultKind::kLimp: {
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      // Both faces of a limping node: its CPU serves every job slower
      // (protocol processing, send/receive pipeline stages) and — when an
      // FD model is attached — its heartbeat handling degrades the QoS
      // parameters of every pair involving it.
      sys_->network().set_cpu_limp(e.process, e.factor);
      if (fd_model_ != nullptr) fd_model_->set_limp_factor(e.process, e.factor);
      if (auto* o = sys_->obs()) o->count(e.process, obs::Counter::kLimpWindows, sys_->now());
      const std::uint64_t gen = ++limp_gen_[static_cast<std::size_t>(e.process)];
      sys_->scheduler().schedule_at(e.until, [this, p = e.process, gen] {
        if (gen != limp_gen_[static_cast<std::size_t>(p)]) return;
        sys_->network().set_cpu_limp(p, 1.0);
        if (fd_model_ != nullptr) fd_model_->set_limp_factor(p, 1.0);
      });
      break;
    }

    case FaultKind::kDrift: {
      if (!valid_pid(e.process)) {
        ++skipped_;
        return;
      }
      // Clock drift only skews timer behavior, which lives in the FD
      // model; a network-only simulation has no clocks to skew.
      if (fd_model_ == nullptr) {
        ++skipped_;
        return;
      }
      fd_model_->set_clock_rate(e.process, e.factor);
      if (auto* o = sys_->obs()) o->count(e.process, obs::Counter::kDriftWindows, sys_->now());
      const std::uint64_t gen = ++drift_gen_[static_cast<std::size_t>(e.process)];
      sys_->scheduler().schedule_at(e.until, [this, p = e.process, gen] {
        if (gen != drift_gen_[static_cast<std::size_t>(p)]) return;
        fd_model_->set_clock_rate(p, 1.0);
      });
      break;
    }

    case FaultKind::kFlap: {
      for (const auto& group : e.groups)
        for (net::ProcessId p : group)
          if (!valid_pid(p)) {
            ++skipped_;
            return;
          }
      // duty >= 1 means the link never goes down: schedule nothing, so a
      // degenerate flap adds zero transitions (and zero events beyond
      // this one).  Each cycle starts with its up phase; the first down
      // transition lands at at + duty * period.
      if (e.duty < 1.0) {
        const sim::Time first_down = e.at + e.duty * e.period;
        if (first_down < e.until)
          sys_->scheduler().schedule_at(first_down, [this, &e] { flap_down_step(e, 0); });
      }
      break;
    }

    case FaultKind::kCorrupt: {
      if (!e.groups.empty())
        for (const auto& group : e.groups)
          for (net::ProcessId p : group)
            if (!valid_pid(p)) {
              ++skipped_;
              return;
            }
      sys_->network().set_corrupt(e.rate, &rng_, e.groups);
      const std::uint64_t gen = ++corrupt_gen_;
      sys_->scheduler().schedule_at(e.until, [this, gen] {
        if (gen == corrupt_gen_) sys_->network().clear_corrupt();
      });
      break;
    }
  }
  ++fired_;
}

void Injector::flap_down_step(const FaultEvent& e, std::uint64_t cycle) {
  sys_->network().set_flap_down(e.groups.at(0), e.groups.at(1));
  if (auto* o = sys_->obs())
    o->count(e.groups[0].front(), obs::Counter::kFlapTransitions, sys_->now());
  // The down phase ends at the next cycle boundary, clipped to the
  // window's end — a flap window never leaves a link down behind.
  const sim::Time up =
      std::min(e.at + static_cast<double>(cycle + 1) * e.period, e.until);
  sys_->scheduler().schedule_at(up, [this, &e, cycle] { flap_up_step(e, cycle); });
}

void Injector::flap_up_step(const FaultEvent& e, std::uint64_t cycle) {
  sys_->network().set_flap_up(e.groups.at(0), e.groups.at(1));
  if (auto* o = sys_->obs())
    o->count(e.groups[0].front(), obs::Counter::kFlapTransitions, sys_->now());
  const sim::Time next_down =
      e.at + static_cast<double>(cycle + 1) * e.period + e.duty * e.period;
  if (next_down < e.until)
    sys_->scheduler().schedule_at(next_down, [this, &e, c = cycle + 1] { flap_down_step(e, c); });
}

}  // namespace fdgm::fault
