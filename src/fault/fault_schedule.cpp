#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <set>
#include <stdexcept>
#include <system_error>

namespace fdgm::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kAsymPartition:
      return "apartition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kDelaySpike:
      return "delay";
    case FaultKind::kSuspicionStorm:
      return "storm";
    case FaultKind::kLimp:
      return "limp";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kDrift:
      return "drift";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

namespace {

/// A token plus its offset in the full schedule string, so diagnostics can
/// point at the exact spot: `--faults` / `--faults-file` input is written
/// by hand and "column 37" beats re-reading the whole schedule.
struct Tok {
  std::string text;
  std::size_t pos = std::string::npos;
};

constexpr std::size_t kNoPos = std::string::npos;

[[noreturn]] void fail(const std::string& what, std::string_view event_text,
                       std::size_t pos = kNoPos, std::string_view tok = {}) {
  std::string msg = "FaultSchedule: " + what;
  if (!tok.empty()) msg += " at token '" + std::string(tok) + "'";
  if (pos != kNoPos) msg += " (offset " + std::to_string(pos) + ")";
  msg += " in \"" + std::string(event_text) + "\"";
  throw std::invalid_argument(msg);
}

/// Splits an event body into whitespace-separated tokens, keeping a
/// brace-delimited group list ("{0,1|2}") together as one token even if it
/// contains spaces.  `base` is the event's offset in the full schedule
/// string; each token records its absolute offset for diagnostics.
std::vector<Tok> tokenize(std::string_view text, std::size_t base) {
  std::vector<Tok> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    if (text[i] == '{') {
      while (j < text.size() && text[j] != '}') ++j;
      if (j == text.size()) fail("unterminated '{'", text, base + i);
      ++j;  // include '}'
    } else {
      while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    }
    out.push_back(Tok{std::string(text.substr(i, j - i)), base + i});
    i = j;
  }
  return out;
}

double parse_number(const Tok& tok, std::string_view event_text) {
  double v = 0.0;
  std::size_t used = 0;
  try {
    v = std::stod(tok.text, &used);
  } catch (const std::invalid_argument&) {
    fail("expected a number", event_text, tok.pos, tok.text);
  } catch (const std::out_of_range&) {
    fail("number out of range", event_text, tok.pos, tok.text);
  }
  // Validate outside the try block so these diagnostics are not swallowed
  // by the catch clauses above (fail throws std::invalid_argument too).
  if (used != tok.text.size()) fail("trailing characters after number", event_text, tok.pos, tok.text);
  // Non-finite values would corrupt the scheduler (NaN breaks the event
  // heap's ordering, inf never completes): reject at the source.
  if (!std::isfinite(v)) fail("non-finite number", event_text, tok.pos, tok.text);
  return v;
}

/// Re-tags a slice of a token (e.g. "x4" minus the 'x') as its own token,
/// keeping the absolute offset aligned with the slice's start.
Tok sub_tok(const Tok& tok, std::size_t from, std::size_t count = std::string::npos) {
  return Tok{tok.text.substr(from, count), tok.pos == kNoPos ? kNoPos : tok.pos + from};
}

/// "@500" -> 500.0
sim::Time parse_at(const Tok& tok, std::string_view event_text) {
  if (tok.text.empty() || tok.text[0] != '@')
    fail("expected '@<time>'", event_text, tok.pos, tok.text);
  const double t = parse_number(sub_tok(tok, 1), event_text);
  if (t < 0) fail("negative event time", event_text, tok.pos, tok.text);
  return t;
}

/// "p3" -> 3
net::ProcessId parse_pid(const Tok& tok, std::string_view event_text) {
  if (tok.text.size() < 2 || tok.text[0] != 'p')
    fail("expected 'p<id>'", event_text, tok.pos, tok.text);
  const double v = parse_number(sub_tok(tok, 1), event_text);
  // Range-check before converting: a float-to-int cast of an
  // out-of-range value is undefined behavior, not a detectable error.
  if (!(v >= 0.0 && v < 2147483648.0) || v != std::trunc(v))
    fail("bad process id", event_text, tok.pos, tok.text);
  return static_cast<net::ProcessId>(v);
}

/// "p1,p2" or "1,2" -> {1, 2}
std::vector<net::ProcessId> parse_pid_list(const Tok& tok, std::string_view event_text) {
  std::vector<net::ProcessId> out;
  std::size_t start = 0;
  while (start <= tok.text.size()) {
    std::size_t comma = tok.text.find(',', start);
    if (comma == std::string::npos) comma = tok.text.size();
    Tok item = sub_tok(tok, start, comma - start);
    if (item.text.empty()) fail("empty process id in list", event_text, tok.pos, tok.text);
    if (item.text[0] != 'p') item.text = "p" + item.text;
    out.push_back(parse_pid(item, event_text));
    if (comma == tok.text.size()) break;
    start = comma + 1;
  }
  if (out.empty()) fail("empty process list", event_text, tok.pos, tok.text);
  return out;
}

/// "{0,1|2,3}" -> {{0,1},{2,3}}
std::vector<std::vector<net::ProcessId>> parse_groups(const Tok& tok,
                                                      std::string_view event_text) {
  if (tok.text.size() < 2 || tok.text.front() != '{' || tok.text.back() != '}')
    fail("expected '{ids|ids|...}'", event_text, tok.pos, tok.text);
  std::vector<std::vector<net::ProcessId>> groups;
  const Tok body = sub_tok(tok, 1, tok.text.size() - 2);
  std::size_t start = 0;
  while (start <= body.text.size()) {
    std::size_t bar = body.text.find('|', start);
    if (bar == std::string::npos) bar = body.text.size();
    groups.push_back(parse_pid_list(sub_tok(body, start, bar - start), event_text));
    if (bar == body.text.size()) break;
    start = bar + 1;
  }
  if (groups.size() < 2) fail("a partition needs at least two groups", event_text, tok.pos);
  // A process in two groups is ambiguous — reject rather than silently
  // keeping the last listing.
  std::set<net::ProcessId> seen;
  for (const auto& g : groups)
    for (net::ProcessId p : g)
      if (!seen.insert(p).second)
        fail("process p" + std::to_string(p) + " listed in more than one group", event_text,
             tok.pos);
  return groups;
}

/// "pA,..->pB,.." -> {{senders}, {destinations}} (a directed link set).
std::vector<std::vector<net::ProcessId>> parse_link(const Tok& tok,
                                                    std::string_view event_text) {
  const std::size_t arrow = tok.text.find("->");
  if (arrow == std::string::npos || arrow == 0 || arrow + 2 >= tok.text.size())
    fail("expected '<senders>-><destinations>'", event_text, tok.pos, tok.text);
  std::vector<std::vector<net::ProcessId>> groups;
  groups.push_back(parse_pid_list(sub_tok(tok, 0, arrow), event_text));
  groups.push_back(parse_pid_list(sub_tok(tok, arrow + 2), event_text));
  return groups;
}

/// Window suffix shared by loss / delay / storm / the gray kinds:
/// "@<t> for <dur>".
void parse_window(const std::vector<Tok>& toks, std::size_t from, FaultEvent& e,
                  std::string_view event_text) {
  if (toks.size() != from + 3 || toks[from + 1].text != "for")
    fail("expected '@<time> for <duration>'", event_text,
         toks.size() > from ? toks[from].pos : kNoPos);
  e.at = parse_at(toks[from], event_text);
  const double dur = parse_number(toks[from + 2], event_text);
  if (dur < 0) fail("negative duration", event_text, toks[from + 2].pos, toks[from + 2].text);
  e.until = e.at + dur;
}

/// "x4" -> 4.0 (a multiplier token).
double parse_factor(const Tok& tok, std::string_view event_text) {
  if (tok.text.empty() || tok.text[0] != 'x')
    fail("expected 'x<factor>'", event_text, tok.pos, tok.text);
  return parse_number(sub_tok(tok, 1), event_text);
}

std::string format_number(double v) {
  // Shortest representation that round-trips exactly — the header
  // guarantees parse(to_string()) == *this for every schedule.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("0");
}

std::string format_pid_list(const std::vector<net::ProcessId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ',';
    out += 'p';
    out += std::to_string(ids[i]);
  }
  return out;
}

FaultEvent parse_event(std::string_view event_text, std::size_t base) {
  const std::vector<Tok> toks = tokenize(event_text, base);
  if (toks.empty()) fail("empty event", event_text, base);
  FaultEvent e;
  const std::string& verb = toks[0].text;
  if (verb == "crash" || verb == "recover") {
    e.kind = verb == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
    if (toks.size() != 3)
      fail("expected '" + verb + " p<id> @<time>'", event_text, toks[0].pos);
    e.process = parse_pid(toks[1], event_text);
    e.at = parse_at(toks[2], event_text);
    return e;
  }
  if (verb == "partition") {
    e.kind = FaultKind::kPartition;
    if (toks.size() != 5 || toks[3].text != "heal")
      fail("expected 'partition {ids|ids} @<time> heal @<time>'", event_text, toks[0].pos);
    e.groups = parse_groups(toks[1], event_text);
    e.at = parse_at(toks[2], event_text);
    e.until = parse_at(toks[4], event_text);
    if (e.until < e.at) fail("heal time precedes the partition", event_text, toks[4].pos);
    return e;
  }
  if (verb == "apartition") {
    e.kind = FaultKind::kAsymPartition;
    if (toks.size() != 5 || toks[3].text != "heal")
      fail("expected 'apartition p<i>,..->p<j>,.. @<time> heal @<time>'", event_text,
           toks[0].pos);
    e.groups = parse_link(toks[1], event_text);
    e.at = parse_at(toks[2], event_text);
    e.until = parse_at(toks[4], event_text);
    if (e.until < e.at) fail("heal time precedes the cut", event_text, toks[4].pos);
    return e;
  }
  if (verb == "loss") {
    e.kind = FaultKind::kLoss;
    if (toks.size() != 5)
      fail("expected 'loss <rate> @<time> for <duration>'", event_text, toks[0].pos);
    e.rate = parse_number(toks[1], event_text);
    if (e.rate < 0.0 || e.rate > 1.0)
      fail("loss rate must be in [0, 1]", event_text, toks[1].pos, toks[1].text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  if (verb == "delay") {
    e.kind = FaultKind::kDelaySpike;
    if (toks.size() != 5)
      fail("expected 'delay x<factor> @<time> for <duration>'", event_text, toks[0].pos);
    e.factor = parse_factor(toks[1], event_text);
    if (e.factor <= 0)
      fail("delay factor must be positive", event_text, toks[1].pos, toks[1].text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  if (verb == "storm") {
    e.kind = FaultKind::kSuspicionStorm;
    if (toks.size() != 5)
      fail("expected 'storm p<id>,... @<time> for <duration>'", event_text, toks[0].pos);
    e.accused = parse_pid_list(toks[1], event_text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  if (verb == "limp" || verb == "drift") {
    e.kind = verb == "limp" ? FaultKind::kLimp : FaultKind::kDrift;
    if (toks.size() != 6)
      fail("expected '" + verb + " p<id> x<factor> @<time> for <duration>'", event_text,
           toks[0].pos);
    e.process = parse_pid(toks[1], event_text);
    e.factor = parse_factor(toks[2], event_text);
    if (e.factor <= 0)
      fail(verb + " factor must be positive", event_text, toks[2].pos, toks[2].text);
    parse_window(toks, 3, e, event_text);
    return e;
  }
  if (verb == "flap") {
    e.kind = FaultKind::kFlap;
    if (toks.size() != 9 || toks[2].text != "period" || toks[4].text != "duty")
      fail(
          "expected 'flap p<i>,..->p<j>,.. period <len> duty <frac> @<time> for "
          "<duration>'",
          event_text, toks[0].pos);
    e.groups = parse_link(toks[1], event_text);
    e.period = parse_number(toks[3], event_text);
    if (e.period <= 0) fail("flap period must be positive", event_text, toks[3].pos, toks[3].text);
    e.duty = parse_number(toks[5], event_text);
    if (e.duty < 0.0 || e.duty > 1.0)
      fail("flap duty must be in [0, 1]", event_text, toks[5].pos, toks[5].text);
    parse_window(toks, 6, e, event_text);
    return e;
  }
  if (verb == "corrupt") {
    e.kind = FaultKind::kCorrupt;
    // Optional directed-link restriction between the rate and the window.
    if (toks.size() != 5 && toks.size() != 6)
      fail("expected 'corrupt <rate> [p<i>,..->p<j>,..] @<time> for <duration>'", event_text,
           toks[0].pos);
    e.rate = parse_number(toks[1], event_text);
    if (e.rate < 0.0 || e.rate > 1.0)
      fail("corruption rate must be in [0, 1]", event_text, toks[1].pos, toks[1].text);
    std::size_t from = 2;
    if (toks.size() == 6) {
      e.groups = parse_link(toks[2], event_text);
      from = 3;
    }
    parse_window(toks, from, e, event_text);
    return e;
  }
  fail("unknown fault kind", event_text, toks[0].pos, toks[0].text);
}

}  // namespace

FaultSchedule FaultSchedule::parse(std::string_view text) {
  FaultSchedule s;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string_view::npos) semi = text.size();
    const std::string_view event_text = text.substr(start, semi - start);
    const bool blank = event_text.find_first_not_of(" \t\r\n") == std::string_view::npos;
    if (!blank) s.add(parse_event(event_text, start));
    if (semi == text.size()) break;
    start = semi + 1;
  }
  return s;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    if (!out.empty()) out += "; ";
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        out += fault_kind_name(e.kind);
        out += " p" + std::to_string(e.process) + " @" + format_number(e.at);
        break;
      case FaultKind::kPartition: {
        out += "partition {";
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g) out += '|';
          for (std::size_t i = 0; i < e.groups[g].size(); ++i) {
            if (i) out += ',';
            out += "p" + std::to_string(e.groups[g][i]);
          }
        }
        out += "} @" + format_number(e.at) + " heal @" + format_number(e.until);
        break;
      }
      case FaultKind::kAsymPartition:
        out += "apartition " + format_pid_list(e.groups.at(0)) + "->" +
               format_pid_list(e.groups.at(1)) + " @" + format_number(e.at) + " heal @" +
               format_number(e.until);
        break;
      case FaultKind::kLoss:
        out += "loss " + format_number(e.rate) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kDelaySpike:
        out += "delay x" + format_number(e.factor) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kSuspicionStorm:
        out += "storm " + format_pid_list(e.accused) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kLimp:
      case FaultKind::kDrift:
        out += fault_kind_name(e.kind);
        out += " p" + std::to_string(e.process) + " x" + format_number(e.factor) + " @" +
               format_number(e.at) + " for " + format_number(e.until - e.at);
        break;
      case FaultKind::kFlap:
        out += "flap " + format_pid_list(e.groups.at(0)) + "->" +
               format_pid_list(e.groups.at(1)) + " period " + format_number(e.period) +
               " duty " + format_number(e.duty) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kCorrupt:
        out += "corrupt " + format_number(e.rate);
        if (!e.groups.empty())
          out += " " + format_pid_list(e.groups.at(0)) + "->" + format_pid_list(e.groups.at(1));
        out += " @" + format_number(e.at) + " for " + format_number(e.until - e.at);
        break;
    }
  }
  return out;
}

void FaultSchedule::add(FaultEvent e) {
  auto it = std::upper_bound(events_.begin(), events_.end(), e.at,
                             [](sim::Time t, const FaultEvent& ev) { return t < ev.at; });
  events_.insert(it, std::move(e));
}

void FaultSchedule::merge(const FaultSchedule& other) {
  for (const FaultEvent& e : other.events_) add(e);
}

}  // namespace fdgm::fault
