#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <set>
#include <stdexcept>
#include <system_error>

namespace fdgm::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kAsymPartition:
      return "apartition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kDelaySpike:
      return "delay";
    case FaultKind::kSuspicionStorm:
      return "storm";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& what, std::string_view event_text) {
  throw std::invalid_argument("FaultSchedule: " + what + " in \"" + std::string(event_text) +
                              "\"");
}

/// Splits an event body into whitespace-separated tokens, keeping a
/// brace-delimited group list ("{0,1|2}") together as one token even if it
/// contains spaces.
std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    if (text[i] == '{') {
      while (j < text.size() && text[j] != '}') ++j;
      if (j == text.size()) fail("unterminated '{'", text);
      ++j;  // include '}'
    } else {
      while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    }
    out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

double parse_number(const std::string& tok, std::string_view event_text) {
  double v = 0.0;
  std::size_t used = 0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::invalid_argument&) {
    fail("expected a number, got '" + tok + "'", event_text);
  } catch (const std::out_of_range&) {
    fail("number out of range: '" + tok + "'", event_text);
  }
  // Validate outside the try block so these diagnostics are not swallowed
  // by the catch clauses above (fail throws std::invalid_argument too).
  if (used != tok.size()) fail("trailing characters after number '" + tok + "'", event_text);
  // Non-finite values would corrupt the scheduler (NaN breaks the event
  // heap's ordering, inf never completes): reject at the source.
  if (!std::isfinite(v)) fail("non-finite number '" + tok + "'", event_text);
  return v;
}

/// "@500" -> 500.0
sim::Time parse_at(const std::string& tok, std::string_view event_text) {
  if (tok.empty() || tok[0] != '@') fail("expected '@<time>', got '" + tok + "'", event_text);
  const double t = parse_number(tok.substr(1), event_text);
  if (t < 0) fail("negative event time", event_text);
  return t;
}

/// "p3" -> 3
net::ProcessId parse_pid(const std::string& tok, std::string_view event_text) {
  if (tok.size() < 2 || tok[0] != 'p')
    fail("expected 'p<id>', got '" + tok + "'", event_text);
  const double v = parse_number(tok.substr(1), event_text);
  // Range-check before converting: a float-to-int cast of an
  // out-of-range value is undefined behavior, not a detectable error.
  if (!(v >= 0.0 && v < 2147483648.0) || v != std::trunc(v))
    fail("bad process id '" + tok + "'", event_text);
  return static_cast<net::ProcessId>(v);
}

/// "p1,p2" or "1,2" -> {1, 2}
std::vector<net::ProcessId> parse_pid_list(const std::string& tok,
                                           std::string_view event_text) {
  std::vector<net::ProcessId> out;
  std::size_t start = 0;
  while (start <= tok.size()) {
    std::size_t comma = tok.find(',', start);
    if (comma == std::string::npos) comma = tok.size();
    std::string item = tok.substr(start, comma - start);
    if (item.empty()) fail("empty process id in list '" + tok + "'", event_text);
    if (item[0] != 'p') item = "p" + item;
    out.push_back(parse_pid(item, event_text));
    if (comma == tok.size()) break;
    start = comma + 1;
  }
  if (out.empty()) fail("empty process list", event_text);
  return out;
}

/// "{0,1|2,3}" -> {{0,1},{2,3}}
std::vector<std::vector<net::ProcessId>> parse_groups(const std::string& tok,
                                                      std::string_view event_text) {
  if (tok.size() < 2 || tok.front() != '{' || tok.back() != '}')
    fail("expected '{ids|ids|...}', got '" + tok + "'", event_text);
  std::vector<std::vector<net::ProcessId>> groups;
  const std::string body = tok.substr(1, tok.size() - 2);
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t bar = body.find('|', start);
    if (bar == std::string::npos) bar = body.size();
    groups.push_back(parse_pid_list(body.substr(start, bar - start), event_text));
    if (bar == body.size()) break;
    start = bar + 1;
  }
  if (groups.size() < 2) fail("a partition needs at least two groups", event_text);
  // A process in two groups is ambiguous — reject rather than silently
  // keeping the last listing.
  std::set<net::ProcessId> seen;
  for (const auto& g : groups)
    for (net::ProcessId p : g)
      if (!seen.insert(p).second)
        fail("process p" + std::to_string(p) + " listed in more than one group", event_text);
  return groups;
}

/// Window suffix shared by loss / delay / storm: "@<t> for <dur>".
void parse_window(const std::vector<std::string>& toks, std::size_t from, FaultEvent& e,
                  std::string_view event_text) {
  if (toks.size() != from + 3 || toks[from + 1] != "for")
    fail("expected '@<time> for <duration>'", event_text);
  e.at = parse_at(toks[from], event_text);
  const double dur = parse_number(toks[from + 2], event_text);
  if (dur < 0) fail("negative duration", event_text);
  e.until = e.at + dur;
}

std::string format_number(double v) {
  // Shortest representation that round-trips exactly — the header
  // guarantees parse(to_string()) == *this for every schedule.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("0");
}

std::string format_pid_list(const std::vector<net::ProcessId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ',';
    out += 'p';
    out += std::to_string(ids[i]);
  }
  return out;
}

FaultEvent parse_event(std::string_view event_text) {
  const std::vector<std::string> toks = tokenize(event_text);
  if (toks.empty()) fail("empty event", event_text);
  FaultEvent e;
  const std::string& verb = toks[0];
  if (verb == "crash" || verb == "recover") {
    e.kind = verb == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
    if (toks.size() != 3) fail("expected '" + verb + " p<id> @<time>'", event_text);
    e.process = parse_pid(toks[1], event_text);
    e.at = parse_at(toks[2], event_text);
    return e;
  }
  if (verb == "partition") {
    e.kind = FaultKind::kPartition;
    if (toks.size() != 5 || toks[3] != "heal")
      fail("expected 'partition {ids|ids} @<time> heal @<time>'", event_text);
    e.groups = parse_groups(toks[1], event_text);
    e.at = parse_at(toks[2], event_text);
    e.until = parse_at(toks[4], event_text);
    if (e.until < e.at) fail("heal time precedes the partition", event_text);
    return e;
  }
  if (verb == "apartition") {
    e.kind = FaultKind::kAsymPartition;
    if (toks.size() != 5 || toks[3] != "heal")
      fail("expected 'apartition p<i>,..->p<j>,.. @<time> heal @<time>'", event_text);
    const std::string& link = toks[1];
    const std::size_t arrow = link.find("->");
    if (arrow == std::string::npos || arrow == 0 || arrow + 2 >= link.size())
      fail("expected '<senders>-><destinations>', got '" + link + "'", event_text);
    e.groups.push_back(parse_pid_list(link.substr(0, arrow), event_text));
    e.groups.push_back(parse_pid_list(link.substr(arrow + 2), event_text));
    e.at = parse_at(toks[2], event_text);
    e.until = parse_at(toks[4], event_text);
    if (e.until < e.at) fail("heal time precedes the cut", event_text);
    return e;
  }
  if (verb == "loss") {
    e.kind = FaultKind::kLoss;
    if (toks.size() != 5) fail("expected 'loss <rate> @<time> for <duration>'", event_text);
    e.rate = parse_number(toks[1], event_text);
    if (e.rate < 0.0 || e.rate > 1.0) fail("loss rate must be in [0, 1]", event_text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  if (verb == "delay") {
    e.kind = FaultKind::kDelaySpike;
    if (toks.size() != 5 || toks[1].empty() || toks[1][0] != 'x')
      fail("expected 'delay x<factor> @<time> for <duration>'", event_text);
    e.factor = parse_number(toks[1].substr(1), event_text);
    if (e.factor <= 0) fail("delay factor must be positive", event_text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  if (verb == "storm") {
    e.kind = FaultKind::kSuspicionStorm;
    if (toks.size() != 5) fail("expected 'storm p<id>,... @<time> for <duration>'", event_text);
    e.accused = parse_pid_list(toks[1], event_text);
    parse_window(toks, 2, e, event_text);
    return e;
  }
  fail("unknown fault kind '" + verb + "'", event_text);
}

}  // namespace

FaultSchedule FaultSchedule::parse(std::string_view text) {
  FaultSchedule s;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string_view::npos) semi = text.size();
    const std::string_view event_text = text.substr(start, semi - start);
    const bool blank = event_text.find_first_not_of(" \t\r\n") == std::string_view::npos;
    if (!blank) s.add(parse_event(event_text));
    if (semi == text.size()) break;
    start = semi + 1;
  }
  return s;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    if (!out.empty()) out += "; ";
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        out += fault_kind_name(e.kind);
        out += " p" + std::to_string(e.process) + " @" + format_number(e.at);
        break;
      case FaultKind::kPartition: {
        out += "partition {";
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g) out += '|';
          for (std::size_t i = 0; i < e.groups[g].size(); ++i) {
            if (i) out += ',';
            out += "p" + std::to_string(e.groups[g][i]);
          }
        }
        out += "} @" + format_number(e.at) + " heal @" + format_number(e.until);
        break;
      }
      case FaultKind::kAsymPartition:
        out += "apartition " + format_pid_list(e.groups.at(0)) + "->" +
               format_pid_list(e.groups.at(1)) + " @" + format_number(e.at) + " heal @" +
               format_number(e.until);
        break;
      case FaultKind::kLoss:
        out += "loss " + format_number(e.rate) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kDelaySpike:
        out += "delay x" + format_number(e.factor) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
      case FaultKind::kSuspicionStorm:
        out += "storm " + format_pid_list(e.accused) + " @" + format_number(e.at) + " for " +
               format_number(e.until - e.at);
        break;
    }
  }
  return out;
}

void FaultSchedule::add(FaultEvent e) {
  auto it = std::upper_bound(events_.begin(), events_.end(), e.at,
                             [](sim::Time t, const FaultEvent& ev) { return t < ev.at; });
  events_.insert(it, std::move(e));
}

void FaultSchedule::merge(const FaultSchedule& other) {
  for (const FaultEvent& e : other.events_) add(e);
}

}  // namespace fdgm::fault
