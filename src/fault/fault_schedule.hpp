// Declarative fault schedules: a time-ordered list of typed fault events
// (crash, recovery, partition, message loss, delay spike, suspicion storm)
// that an Injector arms on the discrete-event scheduler.
//
// Schedules are plain data: they can be built programmatically by a bench
// scenario or parsed from the compact text grammar used by the fdgm_bench
// `--faults` flag:
//
//   crash p0 @500                 crash process 0 at t = 500 ms
//   recover p0 @1500              restart process 0 (GM: rejoin via JOIN)
//   partition {0,1|2} @1000 heal @3000
//                                 split the system into groups {0,1} and
//                                 {2}; processes not listed form one extra
//                                 implicit group; cross-group messages are
//                                 held and delivered at the heal time
//   apartition p0,p1->p2 @1000 heal @3000
//                                 cut the directed links p0->p2 and
//                                 p1->p2 (messages held until the heal);
//                                 the reverse direction keeps flowing
//   loss 0.2 @1000 for 2000       drop 20% of point-to-point deliveries
//                                 in [1000, 3000)
//   delay x4 @1000 for 2000       multiply the network service time by 4
//                                 in [1000, 3000)
//   storm p1,p2 @1000 for 50      every alive process wrongly suspects
//                                 p1 and p2 in [1000, 1050)
//
// Gray failures (degraded-but-alive, the regime where FD-driven and
// GM-driven ordering react differently):
//
//   limp p3 x4 @1000 for 2000     p3's CPU service times are stretched
//                                 ×4 in [1000, 3000) — the process is
//                                 alive and replying, just slowly
//   flap p0->p2 period 40 duty 0.5 @1000 for 2000
//                                 the directed link p0->p2 cycles
//                                 up/down deterministically: each 40 ms
//                                 period starts with 20 ms up (duty
//                                 0.5), then holds messages until the
//                                 next up phase (or the window's end)
//   drift p1 x0.8 @1000 for 2000  p1's local clock runs at 0.8× real
//                                 rate in [1000, 3000): its heartbeats
//                                 and FD renewal timers fire late
//   corrupt 0.01 @1000 for 2000   1% of point-to-point deliveries are
//                                 silently corrupted in transit; frame
//                                 checksums detect and drop them (the
//                                 transport's NACK path recovers)
//   corrupt 0.05 p0,p1->p2 @1000 for 2000
//                                 same, restricted to the listed
//                                 directed links
//
// Events are separated by ';'.  `to_string()` emits the canonical form of
// the same grammar, so schedules round-trip through parse().
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace fdgm::fault {

enum class FaultKind {
  kCrash,           // crash `process` at `at`
  kRecover,         // restart `process` at `at` (rejoin via the GM join path)
  kPartition,       // split into `groups` at `at`, heal at `until`
  kAsymPartition,   // cut directed links groups[0] -> groups[1] in [at, until)
  kLoss,            // drop each delivery with probability `rate` in [at, until)
  kDelaySpike,      // multiply the network service time by `factor` in [at, until)
  kSuspicionStorm,  // force every alive monitor to suspect `accused` in [at, until)
  kLimp,            // stretch `process`'s CPU service times by `factor` in [at, until)
  kFlap,            // cycle links groups[0] -> groups[1] up/down (period, duty) in [at, until)
  kDrift,           // run `process`'s local clock at `factor`× real rate in [at, until)
  kCorrupt,         // corrupt each matching delivery with probability `rate` in [at, until)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  sim::Time at = 0.0;
  /// End of the event's window: heal time (partition) or end of the loss /
  /// delay / storm window.  Unused for crash and recover.
  sim::Time until = 0.0;
  /// Target of a crash / recover.
  net::ProcessId process = -1;
  /// Partition groups; processes of the system not listed in any group
  /// form one extra implicit group.  An asymmetric partition stores
  /// exactly two groups: groups[0] = senders whose links are cut,
  /// groups[1] = the unreachable destinations.
  std::vector<std::vector<net::ProcessId>> groups;
  /// Per-delivery drop probability in [0, 1] (loss), or per-delivery
  /// corruption probability (corrupt).
  double rate = 0.0;
  /// Network service-time multiplier (delay spike), CPU service-time
  /// stretch (limp), or local clock rate (drift) — all > 0.
  double factor = 1.0;
  /// Flap cycle length in sim time (> 0) and the up fraction of each
  /// cycle in [0, 1]; duty >= 1 means the link never goes down.
  double period = 0.0;
  double duty = 1.0;
  /// Processes wrongly suspected by every alive monitor (storm).
  std::vector<net::ProcessId> accused;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  /// Parses the textual grammar documented above.  Throws
  /// std::invalid_argument with a descriptive message on malformed input.
  [[nodiscard]] static FaultSchedule parse(std::string_view text);

  /// Canonical textual form; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;

  /// Insert an event, keeping the list ordered by start time (stable for
  /// equal times: later insertions go after earlier ones).
  void add(FaultEvent e);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// Append every event of `other` (each re-sorted into time order).
  void merge(const FaultSchedule& other);

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace fdgm::fault
