// Arms a FaultSchedule on a System's discrete-event scheduler and drives
// the existing fault hooks:
//
//   Crash          -> net::System::crash
//   Recover        -> net::System::restart + the per-process restart hook
//                     (SimRun wires it to AtomicBroadcastProcess::on_restart,
//                     i.e. the GM rejoin / FD log-sync catch-up paths)
//   Partition      -> net::Network::set_partition / heal_partition
//   AsymPartition  -> net::Network::set_asym_partition / heal_asym_partition
//                     (directed link cuts; the reverse direction flows)
//   MessageLoss    -> net::Network::set_loss, drawing from the injector's
//                     private RNG sub-stream (forked from the system master
//                     seed, so a schedule never perturbs the workload or
//                     failure-detector streams and replicas stay
//                     bit-identical for any --jobs value)
//   DelaySpike     -> net::Network::set_delay_factor
//
// When the retransmission transport is armed (SimConfig::transport), the
// loss stage drops *transport frames* rather than logical messages: the
// transport's NACK/timer machinery recovers every dropped frame, so the
// stacks keep their quasi-reliable channels even under sustained loss.
//   SuspicionStorm -> fd::QosFailureDetectorModel::inject_suspicion for
//                     every alive (monitor, accused) pair
//
// Events that reference a process id outside 0..n-1 are skipped (and
// counted), so one schedule can be applied across sweeps with varying n —
// the fdgm_bench --faults flag relies on this.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/fault_schedule.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "sim/rng.hpp"

namespace fdgm::fault {

class Injector {
 public:
  /// Invoked right after a Recover event restarted a crashed process.
  using RestartHook = std::function<void(net::ProcessId)>;

  /// `fd_model` may be null (network-only simulations): storms are then
  /// skipped.  The hook may be empty: recovery then restarts the node
  /// without protocol-level catch-up.
  Injector(net::System& sys, fd::QosFailureDetectorModel* fd_model, FaultSchedule schedule,
           RestartHook on_restart = {});

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule every event.  Call once, before running the simulation.
  void arm();

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// Events fired / skipped (bad process id) so far, for tests.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

 private:
  void fire(const FaultEvent& e);
  [[nodiscard]] bool valid_pid(net::ProcessId p) const {
    return p >= 0 && p < sys_->n();
  }

  net::System* sys_;
  fd::QosFailureDetectorModel* fd_model_;
  FaultSchedule schedule_;
  RestartHook restart_hook_;
  sim::Rng rng_;
  bool armed_ = false;
  std::uint64_t fired_ = 0;
  std::uint64_t skipped_ = 0;
  /// Generation counters: the end-of-window action of a partition / loss /
  /// delay event only applies when no later event of the same kind
  /// replaced the setting (last writer wins).
  std::uint64_t partition_gen_ = 0;
  std::uint64_t apartition_gen_ = 0;
  std::uint64_t loss_gen_ = 0;
  std::uint64_t delay_gen_ = 0;
};

}  // namespace fdgm::fault
