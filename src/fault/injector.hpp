// Arms a FaultSchedule on a System's discrete-event scheduler and drives
// the existing fault hooks:
//
//   Crash          -> net::System::crash
//   Recover        -> net::System::restart + the per-process restart hook
//                     (SimRun wires it to AtomicBroadcastProcess::on_restart,
//                     i.e. the GM rejoin / FD log-sync catch-up paths)
//   Partition      -> net::Network::set_partition / heal_partition
//   AsymPartition  -> net::Network::set_asym_partition / heal_asym_partition
//                     (directed link cuts; the reverse direction flows)
//   MessageLoss    -> net::Network::set_loss, drawing from the injector's
//                     private RNG sub-stream (forked from the system master
//                     seed, so a schedule never perturbs the workload or
//                     failure-detector streams and replicas stay
//                     bit-identical for any --jobs value)
//   DelaySpike     -> net::Network::set_delay_factor
//
// When the retransmission transport is armed (SimConfig::transport), the
// loss stage drops *transport frames* rather than logical messages: the
// transport's NACK/timer machinery recovers every dropped frame, so the
// stacks keep their quasi-reliable channels even under sustained loss.
//   SuspicionStorm -> fd::QosFailureDetectorModel::inject_suspicion for
//                     every alive (monitor, accused) pair
//
// Gray failures (degraded-but-alive):
//
//   Limp           -> net::Network::set_cpu_limp (CPU service stretch) +
//                     fd::QosFailureDetectorModel::set_limp_factor (late
//                     heartbeat processing); both reset at the window end
//   Flap           -> a deterministic chain of link down/up transitions
//                     (net::Network::set_flap_down/up) computed from the
//                     event's period and duty cycle — no RNG, so the
//                     up/down pattern is identical across backends and
//                     job counts.  duty >= 1 schedules nothing.
//   Drift          -> fd::QosFailureDetectorModel::set_clock_rate (the
//                     node's heartbeat/renewal timers run fast or slow);
//                     reset at the window end
//   Corrupt        -> net::Network::set_corrupt, drawing from the same
//                     private RNG sub-stream as loss.  arm() pre-scans
//                     the schedule: any corrupt event latches frame
//                     checksums on for the whole run, so every in-flight
//                     frame a receiver verifies carries a digest.
//
// Events that reference a process id outside 0..n-1 are skipped (and
// counted), so one schedule can be applied across sweeps with varying n —
// the fdgm_bench --faults flag relies on this.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "sim/rng.hpp"

namespace fdgm::fault {

class Injector {
 public:
  /// Invoked right after a Recover event restarted a crashed process.
  using RestartHook = std::function<void(net::ProcessId)>;

  /// `fd_model` may be null (network-only simulations): storms are then
  /// skipped.  The hook may be empty: recovery then restarts the node
  /// without protocol-level catch-up.
  Injector(net::System& sys, fd::QosFailureDetectorModel* fd_model, FaultSchedule schedule,
           RestartHook on_restart = {});

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedule every event.  Call once, before running the simulation.
  void arm();

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// Events fired / skipped (bad process id) so far, for tests.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

 private:
  void fire(const FaultEvent& e);
  /// One down / up transition of a flap event's deterministic chain;
  /// `cycle` counts full periods since the window opened.
  void flap_down_step(const FaultEvent& e, std::uint64_t cycle);
  void flap_up_step(const FaultEvent& e, std::uint64_t cycle);
  [[nodiscard]] bool valid_pid(net::ProcessId p) const {
    return p >= 0 && p < sys_->n();
  }

  net::System* sys_;
  fd::QosFailureDetectorModel* fd_model_;
  FaultSchedule schedule_;
  RestartHook restart_hook_;
  sim::Rng rng_;
  bool armed_ = false;
  std::uint64_t fired_ = 0;
  std::uint64_t skipped_ = 0;
  /// Generation counters: the end-of-window action of a partition / loss /
  /// delay event only applies when no later event of the same kind
  /// replaced the setting (last writer wins).
  std::uint64_t partition_gen_ = 0;
  std::uint64_t apartition_gen_ = 0;
  std::uint64_t loss_gen_ = 0;
  std::uint64_t delay_gen_ = 0;
  std::uint64_t corrupt_gen_ = 0;
  /// Per-node generations for the windowed per-node gray kinds (limp,
  /// drift): overlapping windows on the *same* node are last-writer-wins,
  /// windows on different nodes are independent.
  std::vector<std::uint64_t> limp_gen_;
  std::vector<std::uint64_t> drift_gen_;
};

}  // namespace fdgm::fault
