#include "rbcast/reliable_broadcast.hpp"

#include <stdexcept>
#include <utility>

namespace fdgm::rbcast {

ReliableBroadcast::ReliableBroadcast(net::System& sys, net::ProcessId self,
                                     fd::FailureDetector& fd, RbConfig cfg)
    : sys_(&sys), self_(self), fd_(&fd), cfg_(cfg) {
  sys.node(self).register_handler(net::ProtocolId::kReliableBroadcast, this);
  fd.add_listener(this);
}

ReliableBroadcast::~ReliableBroadcast() {
  fd_->remove_listener(this);
  sys_->node(self_).register_handler(net::ProtocolId::kReliableBroadcast, nullptr);
}

void ReliableBroadcast::register_client(int tag, DeliverFn fn) {
  if (!clients_.emplace(tag, std::move(fn)).second)
    throw std::logic_error("ReliableBroadcast: duplicate client tag");
}

void ReliableBroadcast::broadcast(int tag, net::PayloadPtr inner) {
  broadcast_group(tag, {}, inner);
}

void ReliableBroadcast::broadcast_group(int tag, const std::vector<net::ProcessId>& group,
                                        net::PayloadPtr inner) {
  const RbPayload* p =
      sys_->arena().make<RbPayload>(RbId{self_, next_seq_++}, tag, inner, group);
  // Deliver locally first (counts as the self copy of the multicast), then
  // put one multicast on the wire.  handle() is idempotent, so the self
  // copy delivered by the network later is ignored.
  const std::vector<net::ProcessId>& dsts = p->group.empty() ? sys_->all() : p->group;
  sys_->node(self_).multicast(dsts, net::ProtocolId::kReliableBroadcast, p);
  handle(p);
}

void ReliableBroadcast::on_message(const net::Message& m) {
  const RbPayload* p = net::payload_cast<RbPayload>(m);
  if (p == nullptr) throw std::logic_error("ReliableBroadcast: foreign payload");
  handle(p);
}

void ReliableBroadcast::release(const RbId& id) {
  auto it = seen_.find(id);
  if (it == seen_.end()) return;
  if (it->second.payload != nullptr) {
    it->second.payload = nullptr;
    --retained_;
  }
  // Without the relay path, the duplicate-suppression marker only guards
  // against the origin's own loopback copy: once that was absorbed (or
  // when we are not the origin, so no duplicate can ever arrive), the
  // entry can go.  This keeps seen_ bounded by the release backlog
  // instead of the run's whole history — at large n the historical map
  // dominated both memory and cache traffic.
  if (!cfg_.relay_on_suspicion && (id.origin != self_ || it->second.loopback_absorbed))
    seen_.erase(it);
}

void ReliableBroadcast::handle(const RbPayload* p) {
  auto [it, inserted] = seen_.try_emplace(p->id, Seen{p, false});
  if (!inserted) {  // duplicate (relay or self copy)
    if (!cfg_.relay_on_suspicion && p->id.origin == self_) {
      it->second.loopback_absorbed = true;
      // Already released: the entry was only waiting for this duplicate.
      if (it->second.payload == nullptr) seen_.erase(it);
    }
    return;
  }
  ++retained_;
  auto cit = clients_.find(p->client_tag);
  if (cit == clients_.end()) throw std::logic_error("ReliableBroadcast: unknown client tag");
  cit->second(p->id, p->id.origin, p->inner);
  // If the origin is *already* suspected when the message first arrives,
  // relay immediately: the suspicion edge will not fire again.
  if (cfg_.relay_on_suspicion && fd_->suspects(p->id.origin)) on_suspect(p->id.origin);
}

void ReliableBroadcast::on_suspect(net::ProcessId s) {
  if (!cfg_.relay_on_suspicion) return;
  // Relay every message of origin s that we have and have not relayed yet.
  for (auto& [id, entry] : seen_) {
    if (id.origin != s || entry.relayed || entry.payload == nullptr) continue;
    entry.relayed = true;
    ++relays_;
    const std::vector<net::ProcessId>& dsts =
        entry.payload->group.empty() ? sys_->all() : entry.payload->group;
    sys_->node(self_).multicast(dsts, net::ProtocolId::kReliableBroadcast, entry.payload);
  }
}

}  // namespace fdgm::rbcast
