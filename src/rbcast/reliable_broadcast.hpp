// Reliable broadcast (paper §4.1, footnote 3: one broadcast message in the
// common case, after Frolund & Pedone, "Revisiting reliable broadcast").
//
// Failure-free path: the sender multicasts once and everyone R-delivers on
// first receipt.  Fault tolerance: every process buffers the messages it
// has R-delivered; when its failure detector starts suspecting a process s,
// it re-multicasts the messages originated by s that it has seen (at most
// once per message per relay).  Under the quasi-reliable network and the
// software-crash model this guarantees that if any correct process
// R-delivers m, all correct processes do, while costing no extra message
// when nobody is suspected.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fd/failure_detector.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "net/system.hpp"

namespace fdgm::rbcast {

/// Globally unique id of an R-broadcast: (origin, per-origin sequence).
struct RbId {
  net::ProcessId origin = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const RbId&, const RbId&) = default;
};

struct RbIdHash {
  std::size_t operator()(const RbId& id) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.origin)) << 40) ^ id.seq);
  }
};

/// Wire payload: the application payload wrapped with the R-broadcast id
/// and a tag distinguishing which upper-layer client sent it.
class RbPayload final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kReliableBroadcast;
  static constexpr std::uint8_t kKind = 0;

  RbPayload(RbId id, int client_tag, net::PayloadPtr inner, std::vector<net::ProcessId> group)
      : Payload(kProto, kKind),
        id(id),
        client_tag(client_tag),
        inner(inner),
        group(std::move(group)) {}

  RbId id;
  int client_tag;
  net::PayloadPtr inner;
  /// Destination/relay group; empty means "all processes in the system".
  std::vector<net::ProcessId> group;
};

/// Reliable broadcast layer for one process.
///
/// Several clients (the FD-abcast data dissemination, consensus decision
/// dissemination, ...) can share one instance; each registers a delivery
/// callback under a distinct tag.
struct RbConfig {
  /// Relay a suspected origin's messages (the Frolund-Pedone fault
  /// tolerance path).  In the paper's contention model a multicast is
  /// atomic — it reaches every destination once the sender's CPU accepted
  /// it, and is lost for everyone otherwise — so relays can never be the
  /// only source of a message.  The protocol stacks therefore disable the
  /// relay path (it would only add traffic a real system does not need);
  /// it remains available and tested for model variants with partial
  /// multicast loss.
  bool relay_on_suspicion = true;
};

class ReliableBroadcast final : public net::Layer, public fd::SuspicionListener {
 public:
  using DeliverFn =
      std::function<void(const RbId& id, net::ProcessId origin, net::PayloadPtr inner)>;

  ReliableBroadcast(net::System& sys, net::ProcessId self, fd::FailureDetector& fd,
                    RbConfig cfg = {});
  ~ReliableBroadcast() override;

  /// Register the delivery callback for a client tag.
  void register_client(int tag, DeliverFn fn);

  /// R-broadcast `inner` to every process in the system (including self)
  /// on behalf of client `tag`.
  void broadcast(int tag, net::PayloadPtr inner);

  /// R-broadcast to an explicit destination group (used by the membership
  /// service, which talks to view members only).  The relay set equals the
  /// destination group.
  void broadcast_group(int tag, const std::vector<net::ProcessId>& group, net::PayloadPtr inner);

  // net::Layer
  void on_message(const net::Message& m) override;

  // fd::SuspicionListener
  void on_suspect(net::ProcessId p) override;

  /// Number of relay multicasts performed (tests: 0 in failure-free runs).
  [[nodiscard]] std::uint64_t relays() const { return relays_; }

  /// Garbage collection: the upper layer declares the message stable (it
  /// no longer needs to be relayed on suspicion).  Duplicate suppression
  /// is preserved; only the retained payload reference is dropped (the
  /// payload itself lives in the run's arena until the run ends).
  void release(const RbId& id);

  /// Number of payloads currently retained for potential relay.
  [[nodiscard]] std::size_t retained() const { return retained_; }

 private:
  struct Seen {
    const RbPayload* payload = nullptr;  // kept for relaying
    bool relayed = false;
    /// The origin's own loopback copy of the multicast came back (the
    /// only duplicate that can exist when the relay path is off).
    bool loopback_absorbed = false;
  };

  void handle(const RbPayload* p);

  net::System* sys_;
  net::ProcessId self_;
  fd::FailureDetector* fd_;
  RbConfig cfg_;
  std::unordered_map<int, DeliverFn> clients_;
  std::unordered_map<RbId, Seen, RbIdHash> seen_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t relays_ = 0;
  std::size_t retained_ = 0;
};

}  // namespace fdgm::rbcast
