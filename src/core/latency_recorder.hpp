// Latency bookkeeping for the paper's metric (§5.1):
//   L(m) = earliest A-deliver(m) across all processes - A-broadcast(m).
//
// The recorder also tracks the undelivered backlog, which the scenario
// runner uses to detect saturation (points the paper leaves off its
// graphs because the algorithm "does not work" there).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "abcast/abcast.hpp"
#include "net/message.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace fdgm::core {

class LatencyRecorder {
 public:
  /// Record an A-broadcast event.
  void on_broadcast(const abcast::MsgId& id, sim::Time t);

  /// Record an A-delivery at some process; only the earliest one counts.
  void on_deliver(const abcast::AppMessage& msg, sim::Time t);

  /// Latency samples of all messages broadcast in [from, to) that have
  /// been delivered somewhere.
  [[nodiscard]] util::RunningStats window_stats(sim::Time from, sim::Time to) const;

  /// Latency of one message; negative if not yet delivered anywhere.
  [[nodiscard]] double latency_of(const abcast::MsgId& id) const;

  /// Messages broadcast in [from, to).
  [[nodiscard]] std::size_t broadcast_in_window(sim::Time from, sim::Time to) const;

  /// Messages broadcast in [from, to) not yet delivered anywhere.
  [[nodiscard]] std::size_t undelivered_in_window(sim::Time from, sim::Time to) const;

  /// Messages not yet delivered anywhere that were broadcast more than
  /// `age` ago (saturation signal).
  [[nodiscard]] std::size_t stale_undelivered(sim::Time now, double age) const;

  [[nodiscard]] std::size_t total_broadcast() const { return entries_.size(); }
  [[nodiscard]] std::size_t total_delivered() const { return delivered_; }

 private:
  struct Entry {
    sim::Time sent = 0;
    sim::Time first_delivery = -1;  // <0: not delivered yet
  };

  std::unordered_map<abcast::MsgId, Entry, abcast::MsgIdHash> entries_;
  std::size_t delivered_ = 0;
};

}  // namespace fdgm::core
