#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/parallel.hpp"

namespace fdgm::core {

namespace {
std::atomic<std::uint64_t> g_events_executed{0};
}  // namespace

std::uint64_t total_events_executed() {
  return g_events_executed.load(std::memory_order_relaxed);
}

SimRun::~SimRun() {
  g_events_executed.fetch_add(sys_->scheduler().executed(), std::memory_order_relaxed);
}

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kFd:
      return "FD";
    case Algorithm::kGm:
      return "GM";
    case Algorithm::kGmNonUniform:
      return "GM-nonuniform";
  }
  return "?";
}

SimRun::SimRun(const SimConfig& cfg, WorkloadConfig wl) : cfg_(cfg) {
  if (cfg.n < 1) throw std::invalid_argument("SimRun: n must be >= 1");
  net::NetworkConfig net_cfg;
  net_cfg.lambda = cfg.lambda;
  sim::SchedulerConfig sched_cfg = cfg.scheduler;
  if (sched_cfg.backend == sim::SchedulerBackend::kParallel && sched_cfg.threads <= 0) {
    // Auto worker count ("threads 0"): intra-run workers x replica jobs
    // must not oversubscribe the machine, so a replica running inside a
    // --jobs pool divides the hardware-thread budget by the pool width.
    // An explicit positive request is honored literally (deliberate
    // oversubscription is a valid benchmark).  Results never depend on
    // the thread count, only wall-clock time does.
    const std::size_t hw = effective_jobs(0);
    sched_cfg.threads =
        static_cast<int>(std::max<std::size_t>(1, hw / current_pool_width()));
  }
  cfg_.scheduler = sched_cfg;
  sys_ = std::make_unique<net::System>(cfg.n, net_cfg, cfg.seed, sched_cfg, cfg.transport);
  if (cfg.obs.enabled) {
    observer_ = std::make_unique<obs::Observer>(cfg.n, cfg.obs);
    sys_->set_observer(observer_.get());
  }
  fd_model_ = std::make_unique<fd::QosFailureDetectorModel>(*sys_, cfg.fd_params);

  procs_.reserve(static_cast<std::size_t>(cfg.n));
  for (int p = 0; p < cfg.n; ++p) {
    std::unique_ptr<abcast::AtomicBroadcastProcess> proc;
    switch (cfg.algorithm) {
      case Algorithm::kFd:
        proc = std::make_unique<abcast::FdAbcastProcess>(
            *sys_, p, fd_model_->at(p),
            abcast::FdAbcastConfig{.renumbering = cfg.fd_renumbering,
                                   .batching = cfg.batching});
        break;
      case Algorithm::kGm:
        proc = std::make_unique<abcast::GmAbcastProcess>(
            *sys_, p, fd_model_->at(p),
            abcast::GmAbcastConfig{.uniform = true, .join_retry = cfg.gm_join_retry,
                                   .batching = cfg.batching});
        break;
      case Algorithm::kGmNonUniform:
        proc = std::make_unique<abcast::GmAbcastProcess>(
            *sys_, p, fd_model_->at(p),
            abcast::GmAbcastConfig{.uniform = false, .join_retry = cfg.gm_join_retry,
                                   .batching = cfg.batching});
        break;
    }
    proc->set_deliver_sink(this);
    procs_.push_back(std::move(proc));
  }

  std::vector<abcast::AtomicBroadcastProcess*> handles;
  for (auto& p : procs_) handles.push_back(p.get());
  workload_ = std::make_unique<Workload>(*sys_, std::move(handles), recorder_, wl);

  if (!cfg.faults.empty()) {
    injector_ = std::make_unique<fault::Injector>(
        *sys_, fd_model_.get(), cfg.faults,
        [this](net::ProcessId p) { procs_[static_cast<std::size_t>(p)]->on_restart(); });
  }
}

void SimRun::start() {
  fd_model_->start();
  workload_->start();
  if (injector_) injector_->arm();
}

}  // namespace fdgm::core
