#include "core/workload.hpp"

#include <stdexcept>

#include "obs/observer.hpp"

namespace fdgm::core {

Workload::Workload(net::System& sys, std::vector<abcast::AtomicBroadcastProcess*> procs,
                   LatencyRecorder& recorder, WorkloadConfig cfg)
    : sys_(&sys), procs_(std::move(procs)), recorder_(&recorder) {
  if (procs_.empty()) throw std::invalid_argument("Workload: no processes");
  if (cfg.throughput <= 0) throw std::invalid_argument("Workload: throughput must be positive");
  // T is per second; the simulation's unit is 1 ms.
  const double per_process_rate_per_ms =
      cfg.throughput / 1000.0 / static_cast<double>(procs_.size());
  per_process_mean_gap_ms_ = 1.0 / per_process_rate_per_ms;
  sim::Rng base = sys.rng().fork("workload");
  for (std::size_t i = 0; i < procs_.size(); ++i) rngs_.push_back(base.fork(i));
  chain_alive_.assign(procs_.size(), 0);
  sys.add_recovery_listener([this](net::ProcessId p, sim::Time) {
    const auto idx = static_cast<std::size_t>(p);
    if (started_ && !stopped_ && chain_alive_[idx] == 0) schedule_next(idx);
  });
}

void Workload::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < procs_.size(); ++i) schedule_next(i);
}

void Workload::schedule_next(std::size_t idx) {
  chain_alive_[idx] = 1;
  const double gap = rngs_[idx].exponential(per_process_mean_gap_ms_);
  // Each arrival chain belongs to its process's partition (the tick only
  // touches per-process state: its RNG, its endpoint, its chain flag) —
  // except with batching on, where the submission path mutates the
  // endpoint's queue and flush timer, which the delivery side also
  // touches; those chains run on the serial shared partition.
  const int owner =
      procs_[idx]->batching().enabled ? sim::kOwnerShared : static_cast<int>(idx);
  sys_->scheduler().schedule_after_owned(owner, gap, [this, idx] {
    if (stopped_) return;
    auto pid = static_cast<net::ProcessId>(idx);
    if (sys_->node(pid).crashed()) {
      // The chain dies with the process; a recovery restarts it.
      chain_alive_[idx] = 0;
      return;
    }
    if (!procs_[idx]->can_submit()) {
      // Back-pressure: shed this arrival, keep the chain running.
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (auto* o = sys_->obs())
        o->count(static_cast<int>(idx), obs::Counter::kCreditSheds, sys_->now());
      schedule_next(idx);
      return;
    }
    const abcast::MsgId id = procs_[idx]->a_broadcast();
    recorder_->on_broadcast(id, sys_->now());
    generated_.fetch_add(1, std::memory_order_relaxed);
    schedule_next(idx);
  });
}

}  // namespace fdgm::core
