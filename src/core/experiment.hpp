// One fully wired simulated system: scheduler + network + failure-detector
// model + one atomic-broadcast stack per process + workload + recorder.
//
// This is the object the scenario runner (and the examples) build once per
// replica run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "abcast/abcast.hpp"
#include "abcast/fd_abcast.hpp"
#include "abcast/gm_abcast.hpp"
#include "core/latency_recorder.hpp"
#include "core/workload.hpp"
#include "fault/injector.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "obs/observer.hpp"

namespace fdgm::core {

enum class Algorithm {
  kFd,            // Chandra-Toueg atomic broadcast (failure detectors)
  kGm,            // fixed sequencer + group membership, uniform
  kGmNonUniform,  // §8 extension: non-uniform fixed sequencer
};

[[nodiscard]] const char* algorithm_name(Algorithm a);

struct SimConfig {
  Algorithm algorithm = Algorithm::kFd;
  int n = 3;
  double lambda = 1.0;
  fd::QosParams fd_params;
  std::uint64_t seed = 1;
  /// Pending-queue backend of the discrete-event scheduler.  Both
  /// backends produce bit-identical runs; the wheel is faster once the
  /// timer population grows with n^2 (large groups), the heap at the
  /// paper's n <= 7 sizes.
  sim::SchedulerConfig scheduler;
  /// FD-algorithm coordinator re-numbering optimization (paper §7).
  bool fd_renumbering = true;
  /// GM joiner retry period (ms).
  double gm_join_retry = 50.0;
  /// Scripted fault schedule, armed when the run starts.  Each replica
  /// arms the same schedule against its own seeded system (the injector's
  /// RNG is a fork of the replica master seed), so replicas stay
  /// independent and results are bit-identical for any job count.
  fault::FaultSchedule faults;
  /// Retransmission transport (src/transport/): when enabled, every
  /// point-to-point delivery travels a sequence-numbered per-pair channel
  /// that survives message loss (NACK + backoff-timer recovery).  With
  /// loss off the armed transport is bit-identical to running without it.
  transport::Config transport;
  /// Submission batching + adaptive flow control (both stacks).  Disabled
  /// by default: runs are bit-identical to the unbatched tree.
  abcast::BatchConfig batching;
  /// Observability (src/obs/): lifecycle spans, counter registry, phase
  /// decomposition.  Disarmed by default; armed it is passive (no events,
  /// no RNG draws), so even armed runs are bit-identical.
  obs::Config obs;
};

/// Process-wide count of scheduler events executed by completed (i.e.
/// destroyed) SimRuns, across all worker threads.  `fdgm_bench --profile`
/// reads the delta around a scenario to report its events/sec.
[[nodiscard]] std::uint64_t total_events_executed();

class SimRun : private abcast::DeliverSink {
 public:
  explicit SimRun(const SimConfig& cfg, WorkloadConfig wl = {});
  ~SimRun();

  SimRun(const SimRun&) = delete;
  SimRun& operator=(const SimRun&) = delete;

  [[nodiscard]] net::System& system() { return *sys_; }
  [[nodiscard]] fd::QosFailureDetectorModel& fd_model() { return *fd_model_; }
  [[nodiscard]] abcast::AtomicBroadcastProcess& proc(net::ProcessId p) {
    return *procs_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] LatencyRecorder& recorder() { return recorder_; }
  [[nodiscard]] Workload& workload() { return *workload_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  /// Null when the config carries no fault schedule.
  [[nodiscard]] fault::Injector* injector() { return injector_.get(); }
  /// Null when observability is disarmed.
  [[nodiscard]] obs::Observer* observer() { return observer_.get(); }

  /// Starts the failure-detector renewal processes, the workload and the
  /// fault injector (if a schedule was configured).
  void start();

  /// Convenience: run until simulated time t.
  void run_until(sim::Time t) { sys_->scheduler().run_until(t); }

 private:
  // abcast::DeliverSink — every process's local A-deliveries feed the
  // latency recorder.
  void on_deliver(const abcast::AppMessage& m) override {
    recorder_.on_deliver(m, sys_->now());
  }

  SimConfig cfg_;
  std::unique_ptr<net::System> sys_;
  // Declared directly after sys_: the observer outlives every component
  // whose hooks reach it, and its destructor (which flushes a claimed
  // --trace/--metrics export) runs while the system is still intact.
  std::unique_ptr<obs::Observer> observer_;
  std::unique_ptr<fd::QosFailureDetectorModel> fd_model_;
  std::vector<std::unique_ptr<abcast::AtomicBroadcastProcess>> procs_;
  LatencyRecorder recorder_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<fault::Injector> injector_;
};

}  // namespace fdgm::core
