#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace fdgm::core {

std::size_t effective_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {
thread_local std::size_t t_pool_width = 1;
}  // namespace

std::size_t current_pool_width() { return t_pool_width; }

ThreadPool::ThreadPool(std::size_t workers) {
  workers = std::max<std::size_t>(1, workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, workers] {
      t_pool_width = workers;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Shared fan-out body: `tasks` workers pull indices from one counter —
/// cheap and balanced even when replica runtimes differ widely.  Waits via
/// `wait` (pool-specific) and rethrows the first captured exception.
void pull_indices(ThreadPool& pool, std::size_t tasks, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (std::size_t w = 0; w < tasks; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  jobs = std::min(effective_jobs(jobs), count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs);
  pull_indices(pool, jobs, count, fn);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t tasks = std::min(pool.workers(), count);
  if (tasks <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pull_indices(pool, tasks, count, fn);
}

}  // namespace fdgm::core
