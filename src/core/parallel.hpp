// Parallel experiment engine: a small thread pool plus index-space fan-out
// helpers used by the scenario runner to execute independent replica
// simulations concurrently.
//
// Replicas are embarrassingly parallel (each SimRun owns its scheduler,
// network and RNG streams; there is no shared mutable state), so the only
// requirement is that aggregation stays deterministic: `parallel_map`
// returns results indexed by replica, and callers reduce them in index
// order.  A run with jobs=1 and a run with jobs=N therefore produce
// bit-identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdgm::core {

/// Resolves a job-count request: 0 means "one per hardware thread",
/// anything else is taken literally.  Always returns >= 1.
[[nodiscard]] std::size_t effective_jobs(std::size_t jobs);

/// Width of the ThreadPool whose worker is executing the calling thread;
/// 1 on any thread outside a pool (the main thread included).  The
/// parallel scheduler backend divides its worker budget by this, so
/// replica-level fan-out (`--jobs`) times intra-run parallelism
/// (`--threads`) never oversubscribes the machine.
[[nodiscard]] std::size_t current_pool_width();

/// A fixed-size worker pool executing queued tasks FIFO.  Tasks must not
/// throw across the pool boundary; the fan-out helpers below capture
/// exceptions per index and rethrow the first one on the calling thread.
class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1; pass effective_jobs(...) for "auto").
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Must not be called after shutdown began.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for every i in [0, count) across up to `jobs` workers
/// (sequentially when jobs <= 1 or count <= 1 — no threads spawned).
/// Blocks until all indices completed; rethrows the first exception.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// Same fan-out on an existing pool: no per-call thread spawn/join.  The
/// call owns the pool for its duration (callers must not share one pool
/// across concurrent parallel_for calls); completion is tracked per call,
/// so sequential calls reuse the same workers — this is what the bench
/// driver does across all points of all scenarios.  Falls back to the
/// sequential path when count <= 1 or the pool has a single worker.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Maps [0, count) through `fn` and returns the results in index order,
/// regardless of the execution interleaving.  R must be default
/// constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t count, std::size_t jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(count);
  parallel_for(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// parallel_map on an existing pool (see parallel_for above): identical
/// results for any worker count, no pool construction per call.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace fdgm::core
