#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/parallel.hpp"

namespace fdgm::core {

namespace {

/// One steady-state replica; returns (mean latency, stable, samples).
struct ReplicaOutcome {
  double mean = 0.0;
  bool stable = false;
  std::size_t samples = 0;
  std::uint64_t events = 0;
  double sim_ms = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t generated = 0;
  std::uint64_t shed = 0;
  std::uint64_t retx_origin0 = 0;
  obs::PhaseTotals phases;
  obs::CauseTotals causes;
  obs::QosMeasured qos;
  /// End-to-end latency histogram copy (armed observer only); optional
  /// because Histogram has no default binning.
  std::optional<util::Histogram> e2e;
};

/// Copies the transport and workload counters (and the simulated horizon)
/// out of a finished replica.
void capture_run_stats(SimRun& run, ReplicaOutcome& o) {
  o.sim_ms = run.system().now();
  o.generated = run.workload().generated();
  o.shed = run.workload().shed();
  if (const transport::Transport* t = run.system().transport()) {
    o.retransmits = t->stats().retransmits;
    o.dup_suppressed = t->stats().duplicates;
    o.retx_origin0 = t->retx_from(0);
  }
}

/// Phase-latency decomposition over the measurement window [t0, t_end);
/// zeros when observability is disarmed.
void capture_phases(SimRun& run, ReplicaOutcome& o, sim::Time t0, sim::Time t_end) {
  if (obs::Observer* ob = run.observer()) {
    o.phases = ob->phase_totals(t0, t_end);
    o.qos = ob->qos_measured();
    o.e2e = ob->e2e_hist();
    if (ob->causal()) o.causes = ob->cause_totals(t0, t_end);
  }
}

ReplicaOutcome steady_replica(SimConfig cfg, const SteadyConfig& sc,
                              const std::vector<net::ProcessId>& initial_crashes,
                              std::uint64_t seed) {
  cfg.seed = seed;
  SimRun run(cfg, WorkloadConfig{.throughput = sc.throughput});
  for (net::ProcessId p : initial_crashes) run.system().crash_at(p, 0.0);
  run.start();

  auto& sched = run.system().scheduler();
  const sim::Time t0 = sc.warmup_ms;

  // Phase 1: run until `samples` messages were broadcast inside the
  // measurement window and the minimum window length has elapsed.
  sim::Time t_end = t0;
  const double step = 250.0;
  ReplicaOutcome out;
  while (true) {
    sched.run_until(sched.now() + step);
    t_end = sched.now();
    if (run.recorder().stale_undelivered(sched.now(), sc.stale_age_ms) > sc.unstable_backlog) {
      out.events = sched.executed();
      capture_run_stats(run, out);
      return out;
    }
    if (sched.now() > sc.max_time_ms) break;
    const bool enough_samples =
        run.recorder().broadcast_in_window(t0, t_end) >= sc.samples;
    // The window must also be long enough for the stale-backlog check to
    // see saturation (otherwise an overloaded run could "finish" before
    // anything is old enough to count as stuck).
    const bool window_long_enough =
        (t_end - t0) >= std::max(sc.min_window_ms, sc.stale_age_ms);
    if (enough_samples && window_long_enough) break;
  }
  run.workload().stop();

  // Phase 2: drain — let every message of the window get delivered.
  const sim::Time drain_deadline = sched.now() + 4.0 * sc.stale_age_ms;
  while (run.recorder().undelivered_in_window(t0, t_end) > 0) {
    sched.run_until(sched.now() + step);
    if (sched.now() > drain_deadline) {
      out.events = sched.executed();
      capture_run_stats(run, out);
      return out;
    }
  }

  out.events = sched.executed();
  capture_run_stats(run, out);
  capture_phases(run, out, t0, t_end);
  const util::RunningStats stats = run.recorder().window_stats(t0, t_end);
  if (stats.count() == 0) return out;
  out.mean = stats.mean();
  out.stable = true;
  out.samples = stats.count();
  return out;
}

/// One crash-transient replica; returns the probe latency, < 0 on failure.
double transient_replica(const SimConfig& cfg, const TransientConfig& tc,
                         std::uint64_t seed) {
  SimConfig c = cfg;
  c.seed = seed;
  SimRun run(c, WorkloadConfig{.throughput = tc.throughput});
  run.start();
  run.run_until(tc.warmup_ms);

  // At tc: crash p and have q A-broadcast the probe message.
  run.system().crash(tc.crash);
  const abcast::MsgId probe = run.proc(tc.sender).a_broadcast();
  run.recorder().on_broadcast(probe, run.system().now());

  auto& sched = run.system().scheduler();
  const sim::Time deadline = sched.now() + tc.probe_timeout_ms;
  while (run.recorder().latency_of(probe) < 0 && sched.now() < deadline)
    sched.run_until(sched.now() + 50.0);
  return run.recorder().latency_of(probe);
}

}  // namespace

PointResult run_steady(const SimConfig& cfg, const SteadyConfig& sc,
                       const std::vector<net::ProcessId>& initial_crashes) {
  // Fan the replicas out; results come back indexed by replica, so the
  // reduction below is identical for any job count.
  const std::vector<ReplicaOutcome> outcomes =
      parallel_map(sc.replicas, sc.jobs, [&](std::size_t r) {
        return steady_replica(cfg, sc, initial_crashes, cfg.seed + r);
      });

  std::vector<double> means;
  PointResult out;
  std::optional<util::Histogram> e2e;
  for (const ReplicaOutcome& o : outcomes) {
    out.events += o.events;
    out.sim_ms += o.sim_ms;
    out.retransmits += o.retransmits;
    out.dup_suppressed += o.dup_suppressed;
    out.generated += o.generated;
    out.shed += o.shed;
    out.retx_origin0 += o.retx_origin0;
    out.phase_count += o.phases.count;
    out.phase_submit_ms += o.phases.submit_wait_ms;
    out.phase_order_ms += o.phases.ordering_ms;
    out.phase_deliver_ms += o.phases.delivery_ms;
    out.cause_count += o.causes.count;
    for (std::size_t c = 0; c < obs::kCauseCount; ++c) out.cause_ms[c] += o.causes.sums[c];
    out.qos += o.qos;
    if (!o.stable) {
      out.stable = false;
      continue;
    }
    // All replicas share SimConfig::obs binning, so the histograms merge.
    if (o.e2e.has_value()) {
      if (e2e.has_value())
        e2e->merge(*o.e2e);
      else
        e2e = o.e2e;
    }
    means.push_back(o.mean);
    out.total_samples += o.samples;
  }
  if (e2e.has_value() && e2e->count() > 0) {
    out.lat_p50 = e2e->quantile(0.5);
    out.lat_p99 = e2e->quantile(0.99);
  }
  // A point is reported only when a clear majority of replicas converged;
  // this mirrors the paper leaving unusable settings off the graphs.
  if (means.size() * 2 <= sc.replicas) {
    out.stable = false;
    out.latency = util::MeanCi{std::nan(""), 0.0, means.size()};
    return out;
  }
  out.latency = util::mean_ci_95(means);
  return out;
}

TransientResult run_transient(const SimConfig& cfg, const TransientConfig& tc) {
  const std::vector<double> raw = parallel_map(
      tc.replicas, tc.jobs,
      [&](std::size_t r) { return transient_replica(cfg, tc, cfg.seed + r); });

  std::vector<double> lats;
  for (double L : raw) {
    if (L < 0) return TransientResult{util::MeanCi{std::nan(""), 0.0, 0}, false};
    lats.push_back(L);
  }
  return TransientResult{util::mean_ci_95(lats), true};
}

namespace {

/// One windowed replica: per-window latency means plus the replica's
/// failure-information counters (zero when the observer is disarmed).
struct WindowedReplica {
  std::vector<double> means;  // empty = failed to drain / empty window
  std::uint64_t suspicions = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t corruption_detected = 0;
  obs::QosMeasured qos;
};

WindowedReplica windowed_replica(SimConfig cfg, const WindowedConfig& wc,
                                 std::uint64_t seed) {
  cfg.seed = seed;
  SimRun run(cfg, WorkloadConfig{.throughput = wc.throughput});
  run.start();

  auto& sched = run.system().scheduler();
  const double step = 250.0;
  sched.run_until(wc.t_end);
  run.workload().stop();

  WindowedReplica out;
  // Drain: every message of the horizon must be delivered somewhere.
  const sim::Time drain_deadline = wc.t_end + wc.drain_ms;
  while (run.recorder().undelivered_in_window(0.0, wc.t_end) > 0) {
    if (sched.now() > drain_deadline) return out;
    sched.run_until(sched.now() + step);
  }

  out.means.reserve(wc.windows.size());
  for (const auto& [from, to] : wc.windows) {
    const util::RunningStats stats = run.recorder().window_stats(from, to);
    if (stats.count() == 0) {
      out.means.clear();
      return out;  // empty window: nothing to report
    }
    out.means.push_back(stats.mean());
  }
  if (obs::Observer* o = run.observer()) {
    out.suspicions = o->total(obs::Counter::kSuspicions);
    out.view_changes = o->total(obs::Counter::kViewChanges);
    out.corruption_detected = o->total(obs::Counter::kCorruptionDetected);
    out.qos = o->qos_measured();
  }
  return out;
}

}  // namespace

WindowedResult run_windowed(const SimConfig& cfg, const WindowedConfig& wc) {
  const std::vector<WindowedReplica> outcomes =
      parallel_map(wc.replicas, wc.jobs, [&](std::size_t r) {
        return windowed_replica(cfg, wc, cfg.seed + r);
      });

  WindowedResult out;
  std::vector<std::vector<double>> per_window(wc.windows.size());
  for (const auto& rep : outcomes) {
    const auto& means = rep.means;
    if (means.empty()) {
      out.stable = false;
      continue;
    }
    out.suspicions += rep.suspicions;
    out.view_changes += rep.view_changes;
    out.corruption_detected += rep.corruption_detected;
    out.qos += rep.qos;
    for (std::size_t w = 0; w < means.size(); ++w) per_window[w].push_back(means[w]);
  }
  // Same reporting rule as run_steady: a clear majority of replicas must
  // have converged.
  if (per_window.empty() || per_window.front().size() * 2 <= wc.replicas) {
    out.stable = false;
    out.windows.assign(wc.windows.size(), util::MeanCi{std::nan(""), 0.0, 0});
    return out;
  }
  out.windows.reserve(per_window.size());
  for (const auto& samples : per_window) out.windows.push_back(util::mean_ci_95(samples));
  return out;
}

TransientResult run_transient_worst_sender(const SimConfig& cfg, TransientConfig tc) {
  // Flatten the (sender, replica) grid into one index space so a single
  // fan-out keeps all workers busy across sender boundaries.
  std::vector<net::ProcessId> senders;
  for (net::ProcessId q = 0; q < cfg.n; ++q)
    if (q != tc.crash) senders.push_back(q);

  const std::size_t grid = senders.size() * tc.replicas;
  const std::vector<double> raw = parallel_map(grid, tc.jobs, [&](std::size_t i) {
    TransientConfig per = tc;
    per.sender = senders[i / tc.replicas];
    return transient_replica(cfg, per, cfg.seed + i % tc.replicas);
  });

  // Reduce per sender, in sender order — exactly the sequential semantics.
  TransientResult worst{util::MeanCi{}, true};
  bool first = true;
  for (std::size_t s = 0; s < senders.size(); ++s) {
    std::vector<double> lats;
    for (std::size_t r = 0; r < tc.replicas; ++r) {
      const double L = raw[s * tc.replicas + r];
      if (L < 0) return TransientResult{util::MeanCi{std::nan(""), 0.0, 0}, false};
      lats.push_back(L);
    }
    const TransientResult res{util::mean_ci_95(lats), true};
    if (first || res.latency.mean > worst.latency.mean) {
      worst = res;
      first = false;
    }
  }
  return worst;
}

}  // namespace fdgm::core
