// Poisson workload (paper §5.1): every process A-broadcasts at the same
// constant mean rate; the A-broadcast events of each process form an
// independent Poisson process; the sum of the per-process rates is the
// nominal throughput T.  Crashed processes stop broadcasting (which is why
// the crash-steady scenario sees a lighter effective load); a process that
// recovers (fault injection) resumes its arrival stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "abcast/abcast.hpp"
#include "core/latency_recorder.hpp"
#include "net/system.hpp"
#include "sim/rng.hpp"

namespace fdgm::core {

struct WorkloadConfig {
  /// Overall throughput T in messages per second (split across senders).
  double throughput = 100.0;
};

class Workload {
 public:
  /// `procs[i]` must be the endpoint of process i.
  Workload(net::System& sys, std::vector<abcast::AtomicBroadcastProcess*> procs,
           LatencyRecorder& recorder, WorkloadConfig cfg);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Start generating arrivals (call once, before running the simulation).
  void start();

  /// Stop generating (existing scheduled arrivals become no-ops).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t generated() const {
    return generated_.load(std::memory_order_relaxed);
  }
  /// Arrivals dropped by flow control: the process's credit window was
  /// exhausted (can_submit() false) when the tick fired.  Open-loop load
  /// sheds deterministically instead of queueing unboundedly — the arrival
  /// chain keeps its RNG sequence, the message is simply never submitted
  /// or recorded.  Always 0 with batching off.
  [[nodiscard]] std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  void schedule_next(std::size_t idx);

  net::System* sys_;
  std::vector<abcast::AtomicBroadcastProcess*> procs_;
  LatencyRecorder* recorder_;
  double per_process_mean_gap_ms_;  // mean inter-arrival per process
  std::vector<sim::Rng> rngs_;
  /// Whether process i's arrival chain has an event pending.  A chain dies
  /// when its tick finds the process crashed; the recovery listener
  /// restarts it exactly once (the flag prevents a doubled arrival rate
  /// when the process recovered before the next tick).  One byte per
  /// chain, not vector<bool>: under the parallel backend each chain's
  /// flag is written by its own partition's worker, and distinct bytes
  /// are distinct memory locations while packed bits are not.
  std::vector<std::uint8_t> chain_alive_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> generated_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace fdgm::core
