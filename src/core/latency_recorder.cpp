#include "core/latency_recorder.hpp"

#include "sim/exec_ctx.hpp"

namespace fdgm::core {

void LatencyRecorder::on_broadcast(const abcast::MsgId& id, sim::Time t) {
  // Arrival chains run on their process's partition under the parallel
  // backend; the recorder is run-global, so the registration replays at
  // the round barrier in global event order.
  if (sim::stage_effect<&LatencyRecorder::on_broadcast>(this, id, t)) return;
  entries_.try_emplace(id, Entry{t, -1});
}

void LatencyRecorder::on_deliver(const abcast::AppMessage& msg, sim::Time t) {
  auto it = entries_.find(msg.id);
  if (it == entries_.end()) {
    // Delivery of a message the workload did not register (e.g. probe
    // messages injected directly): register it from the payload stamp.
    it = entries_.try_emplace(msg.id, Entry{msg.sent_at, -1}).first;
  }
  if (it->second.first_delivery < 0) {
    it->second.first_delivery = t;
    ++delivered_;
  }
}

util::RunningStats LatencyRecorder::window_stats(sim::Time from, sim::Time to) const {
  util::RunningStats s;
  for (const auto& [id, e] : entries_) {
    if (e.sent < from || e.sent >= to || e.first_delivery < 0) continue;
    s.add(e.first_delivery - e.sent);
  }
  return s;
}

double LatencyRecorder::latency_of(const abcast::MsgId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.first_delivery < 0) return -1.0;
  return it->second.first_delivery - it->second.sent;
}

std::size_t LatencyRecorder::broadcast_in_window(sim::Time from, sim::Time to) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_)
    if (e.sent >= from && e.sent < to) ++n;
  return n;
}

std::size_t LatencyRecorder::undelivered_in_window(sim::Time from, sim::Time to) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_)
    if (e.sent >= from && e.sent < to && e.first_delivery < 0) ++n;
  return n;
}

std::size_t LatencyRecorder::stale_undelivered(sim::Time now, double age) const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_)
    if (e.first_delivery < 0 && now - e.sent > age) ++n;
  return n;
}

}  // namespace fdgm::core
