// Scenario runner: executes the paper's four benchmark scenarios (§5.2)
// over replica runs and aggregates the latency statistics with 95%
// confidence intervals, exactly the way the paper's graphs report them.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/observer.hpp"
#include "util/stats.hpp"

namespace fdgm::core {

struct SteadyConfig {
  double throughput = 100.0;  // T, messages per second
  double warmup_ms = 2000.0;
  /// Target number of measured messages per replica.
  std::size_t samples = 600;
  /// Minimum measurement window (ms) — lets rare failure-detector mistakes
  /// show up at large TMR even when `samples` are collected quickly.
  double min_window_ms = 0.0;
  /// Hard cap on simulated time per replica (ms).
  double max_time_ms = 120000.0;
  /// Declare the run unstable when this many messages sit undelivered for
  /// more than `stale_age_ms`.
  std::size_t unstable_backlog = 400;
  double stale_age_ms = 4000.0;
  /// Independent replica runs (seeds seed, seed+1, ...).
  std::size_t replicas = 5;
  /// Worker threads fanning the replicas out (0 = one per hardware
  /// thread).  Replica seeding and aggregation order are independent of
  /// the job count, so any value produces bit-identical results.
  std::size_t jobs = 1;
};

struct PointResult {
  util::MeanCi latency;  // over replica means, ms
  bool stable = true;    // false: saturated / did not converge
  std::size_t total_samples = 0;
  /// Scheduler events executed, summed over every replica (unstable ones
  /// included — they cost wall-clock too).  Dividing by the point's wall
  /// time gives the events/sec throughput of the simulator itself, which
  /// is what the scale_throughput scenarios and --profile report.
  std::uint64_t events = 0;
  /// Simulated milliseconds, summed over every replica — the denominator
  /// for "per simulated second" rates (retransmissions/sec).
  double sim_ms = 0.0;
  /// Retransmission-transport counters summed over the replicas; all zero
  /// when SimConfig::transport is off (or the run saw no loss).
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  /// Workload counters summed over the replicas: arrivals submitted and
  /// arrivals shed by flow control (can_submit() false; always 0 with
  /// batching off).  shed / (generated + shed) is the goodput loss of an
  /// overloaded point.
  std::uint64_t generated = 0;
  std::uint64_t shed = 0;
  /// Retransmissions whose original sender is process 0 — the GM
  /// sequencer in a steady run.  retx_origin0 / retransmits is the
  /// sequencer-concentration metric of the lossy scenarios.  Tracked by
  /// the transport itself, so it needs no armed observer.
  std::uint64_t retx_origin0 = 0;
  /// Phase-latency decomposition summed over the replicas' measurement
  /// windows; all zero unless SimConfig::obs is armed.  Dividing each sum
  /// by phase_count gives the per-message mean of that phase, and the
  /// three means add up to the end-to-end delivery latency.
  std::size_t phase_count = 0;
  double phase_submit_ms = 0.0;
  double phase_order_ms = 0.0;
  double phase_deliver_ms = 0.0;
  /// End-to-end latency quantiles over every delivery the armed observer
  /// saw across the converged replicas; NaN unless SimConfig::obs is
  /// armed (the per-replica histograms share binning, so they merge).
  double lat_p50 = std::nan("");
  double lat_p99 = std::nan("");
  /// Per-cause critical-path sums (ms) over the messages of the
  /// measurement windows; all zero unless SimConfig::obs.causal is on.
  /// cause_ms[c] / cause_count is the mean per-message time attributed to
  /// cause c, and the per-cause means add up to the end-to-end mean.
  std::size_t cause_count = 0;
  std::array<double, obs::kCauseCount> cause_ms{};
  /// Empirical FD QoS aggregates summed over the replicas (zero unless
  /// SimConfig::obs is armed); see obs::QosMeasured for the means.
  obs::QosMeasured qos;
};

/// Steady-state scenarios.  `initial_crashes` are crashed at t=0 (use
/// fd_params.detection_time = 0 to model "crashed a long time ago").
PointResult run_steady(const SimConfig& cfg, const SteadyConfig& sc,
                       const std::vector<net::ProcessId>& initial_crashes = {});

struct TransientConfig {
  double throughput = 100.0;
  double warmup_ms = 1000.0;
  net::ProcessId crash = 0;   // p: process crashed at tc (coordinator/sequencer)
  net::ProcessId sender = 1;  // q: process that A-broadcasts m at tc
  double probe_timeout_ms = 30000.0;
  std::size_t replicas = 10;
  /// Worker threads fanning the replicas (and, for the worst-sender
  /// variant, the sender grid) out; 0 = one per hardware thread.
  std::size_t jobs = 1;
};

struct TransientResult {
  util::MeanCi latency;  // of the probe message, ms
  bool stable = true;
};

/// Crash-transient scenario: p crashes at tc and q A-broadcasts m at tc;
/// reports the mean latency of m over the replicas.
TransientResult run_transient(const SimConfig& cfg, const TransientConfig& tc);

/// Max over senders q != crash of run_transient, the paper's L_crash
/// definition restricted to a fixed crashed process.
TransientResult run_transient_worst_sender(const SimConfig& cfg, TransientConfig tc);

/// Windowed scenario runner for faulted workloads (partitions, churn,
/// storms): runs the workload to a fixed horizon, drains, and reports the
/// latency of the messages *broadcast* within each window separately —
/// e.g. before / during / after a partition.  Unlike run_steady there is
/// no mid-run backlog bailout: a fault is supposed to build a backlog; the
/// run only counts as unstable when it fails to drain afterwards (some
/// message was never delivered anywhere) or a window ends up empty.
struct WindowedConfig {
  double throughput = 100.0;
  /// Workload generation stops here (measurement horizon).
  double t_end = 10000.0;
  /// [from, to) per window, in broadcast time.
  std::vector<std::pair<double, double>> windows;
  /// Extra simulated time allowed for the post-horizon drain.
  double drain_ms = 20000.0;
  /// Independent replica runs (seeds seed, seed+1, ...).
  std::size_t replicas = 5;
  /// Worker threads fanning the replicas out; bit-identical results for
  /// any value (see run_steady).
  std::size_t jobs = 1;
};

struct WindowedResult {
  /// One entry per window, aggregated over replica means (95% CI).
  std::vector<util::MeanCi> windows;
  bool stable = true;
  /// Empirical FD QoS aggregates summed over the converged replicas; all
  /// zero unless SimConfig::obs is armed.  The qos_accuracy scenario
  /// divides these into measured T_D / T_M / T_MR and compares them to
  /// the configured Chen-Toueg targets.
  obs::QosMeasured qos;
  /// Failure-information counters summed over the converged replicas; all
  /// zero unless SimConfig::obs is armed.  The gray-failure scenarios
  /// read these to decompose *why* the two stacks react differently to a
  /// degraded-but-alive process: FD pays in suspicion churn, GM pays in
  /// membership view changes.
  std::uint64_t suspicions = 0;
  std::uint64_t view_changes = 0;
  /// Checksum-failed frames dropped at receivers, summed over converged
  /// replicas (transport verify + final-delivery verify paths).
  std::uint64_t corruption_detected = 0;
};

WindowedResult run_windowed(const SimConfig& cfg, const WindowedConfig& wc);

}  // namespace fdgm::core
