// Statistics helpers used by the experiment harness: running mean/variance
// (Welford), sample summaries, and Student-t 95% confidence intervals over
// independent replicas — the estimator the paper plots error bars with.
#pragma once

#include <cstddef>
#include <vector>

namespace fdgm::util {

/// Numerically stable running mean / variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Standard error of the mean; 0 for n < 2.
  [[nodiscard]] double std_error() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value at 95% confidence for `df` degrees of
/// freedom (df >= 1; large df falls back to the normal quantile 1.96).
double t_critical_95(std::size_t df);

/// Mean and 95% confidence half-width of a set of replica means.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
};

/// Computes a Student-t 95% CI from independent samples (e.g. one mean
/// latency per replica run).  With fewer than 2 samples the half-width is 0.
MeanCi mean_ci_95(const std::vector<double>& samples);

/// p-th percentile (0..100) by linear interpolation; input need not be
/// sorted.  Returns 0 for an empty vector.
double percentile(std::vector<double> values, double p);

}  // namespace fdgm::util
