#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fdgm::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);  // guard fp rounding at hi_
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample in the cumulative walk (0-based).
  const double target = q * static_cast<double>(total_ - 1);
  double cum = static_cast<double>(underflow_);
  if (target < cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (c > 0.0 && target < cum + c) {
      // Interpolate within the bucket: samples are assumed uniform on it.
      const double frac = (target - cum + 0.5) / c;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum += c;
  }
  return hi_;  // target falls in the saturated overflow bucket
}

double Histogram::bin_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar =
        peak ? static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) / static_cast<double>(peak)))
             : 0;
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") " << std::string(bar, '#') << ' '
       << counts_[i] << '\n';
  }
  if (underflow_ != 0) os << "underflow " << underflow_ << '\n';
  if (overflow_ != 0) os << "overflow " << overflow_ << '\n';
  return os.str();
}

}  // namespace fdgm::util
