#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fdgm::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double t_critical_95(std::size_t df) {
  // Two-sided 0.05 critical values; standard table.
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < std::size(kTable)) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

MeanCi mean_ci_95(const std::vector<double>& samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  MeanCi out;
  out.mean = s.mean();
  out.n = s.count();
  if (s.count() >= 2) out.half_width = t_critical_95(s.count() - 1) * s.std_error();
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace fdgm::util
