// Minimal CSV/table writer used by the benchmark harness to emit both a
// human-readable aligned table (stdout, as the paper's figures' data series)
// and machine-readable CSV rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fdgm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Appends a column holding the same value in every existing row —
  /// used for per-table annotations (fdgm_bench --profile writes the
  /// scenario's wall-clock, events/sec and peak-RSS columns this way).
  void add_column(const std::string& name, const std::string& value);

  /// Convenience: formats doubles with fixed precision; NaN renders as "-".
  static std::string cell(double v, int precision = 2);
  static std::string cell(const std::string& v) { return v; }

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV rendering.
  void print_csv(std::ostream& os) const;

  /// JSON rendering: an array of objects keyed by the header.  Cells that
  /// parse as finite numbers are emitted as numbers, everything else as
  /// strings.
  void print_json(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fdgm::util
