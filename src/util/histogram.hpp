// Fixed-width histogram used for latency distributions in the examples and
// for sanity-checking the exponential QoS metrics in tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fdgm::util {

class Histogram {
 public:
  /// Buckets of width (hi - lo) / bins over [lo, hi); values outside the
  /// range land in saturated end buckets that are tracked separately.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// Fraction of samples in bucket i (0 if empty histogram).
  [[nodiscard]] double bin_fraction(std::size_t i) const;

  /// Merge another histogram's counts into this one.  Requires identical
  /// binning (same lo, hi, bin count); throws std::invalid_argument on a
  /// mismatch — silently re-binning would fabricate data.
  void merge(const Histogram& other);

  /// q-quantile (0..1) estimated by linear interpolation inside the
  /// owning bucket.  Underflow samples count as lo, overflow samples as
  /// hi (the saturated ends carry no position information).  Returns 0
  /// for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// Simple ASCII rendering (one line per non-empty bucket).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace fdgm::util
