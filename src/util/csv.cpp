#include "util/csv.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fdgm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  if (std::isnan(v)) return "-";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::setw(static_cast<int>(w[c])) << r[c];
      os << (c + 1 == r.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << csv_escape(r[c]);
      os << (c + 1 == r.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace fdgm::util
