#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fdgm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_column(const std::string& name, const std::string& value) {
  header_.push_back(name);
  for (auto& r : rows_) r.push_back(value);
}

std::string Table::cell(double v, int precision) {
  if (std::isnan(v)) return "-";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::setw(static_cast<int>(w[c])) << r[c];
      os << (c + 1 == r.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << csv_escape(r[c]);
      os << (c + 1 == r.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A cell is emitted as a bare JSON number only when the whole string is a
/// valid JSON numeric literal ("-", "unstable", "+5", "0x1f" stay strings).
bool is_plain_number(const std::string& s) {
  // strtod accepts more than JSON does (hex, inf, leading '+', ".5", "1.");
  // restrict to JSON's grammar: -?digits(.digits)?([eE][+-]?digits)?
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  const std::size_t int_start = i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i == int_start) return false;
  if (s[int_start] == '0' && i - int_start > 1) return false;  // no leading zeros
  if (i < s.size() && s[i] == '.') {
    const std::size_t frac_start = ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == frac_start) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    const std::size_t exp_start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == exp_start) return false;
  }
  return i == s.size();
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << '"' << json_escape(header_[c]) << "\": ";
      if (is_plain_number(rows_[r][c]))
        os << rows_[r][c];
      else
        os << '"' << json_escape(rows_[r][c]) << '"';
      if (c + 1 < header_.size()) os << ", ";
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

}  // namespace fdgm::util
