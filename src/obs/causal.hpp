// Causal critical-path tracing: cause taxonomy, edge records and the
// payload classifier of the observability subsystem.
//
// The protocol/network hook sites record *markers* — point events at a
// resource-enqueue or completion instant — and *stall intervals* (the
// transport's loss-recovery waits) per message into per-origin edge
// slabs owned by the Observer.  A cold-path walker (causal.cpp)
// backtracks from each global-first A-delivery to its submit and
// attributes every millisecond of the span to exactly one cause bucket,
// so the per-cause sums of a message add up to its end-to-end latency.
//
// The design honors the PR-7 observability contract:
//  * armed-invisible — recording an edge never schedules an event,
//    draws randomness or touches protocol state; under the parallel
//    backend the hook stages itself to the round barrier exactly like
//    every other Observer hook, so armed-causal runs reproduce the
//    golden delivery hashes and executed-event counts bit for bit;
//  * allocation-free steady state — edge slabs are reserved up front
//    and overflow drops are counted (flight-recorder semantics);
//  * the classifier is a pure read of immutable payloads: it decodes
//    which application messages a frame carries (batches, consensus
//    proposals, GM seqnum announcements) without mutating anything.
//
// Why markers instead of capturing interval state in the pipeline
// lambdas: the scheduler's inline callback slab is 48 bytes and the
// network pipeline stages already use 44-45 of them, so hop callbacks
// cannot grow a capture; and a resource's busy_until() is not a
// deterministic read from a parallel-backend worker.  Point markers at
// the enqueue and the completion event use only `now`, and the walker
// pairs them FIFO per (kind, node) to reconstruct the hop intervals.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/message.hpp"

namespace fdgm::obs {

/// Cause buckets of the critical-path attribution.  Every millisecond of
/// a delivered message's span lands in exactly one bucket.
enum class Cause : std::uint8_t {
  kCreditWait = 0,   // submission blocked by a closed credit window
  kBatchWait,        // queued behind the batch flush timer / target
  kCpuQueue,         // send- or receive-CPU queueing + service (λ model)
  kWire,             // shared-wire queueing + transmission
  kLossNack,         // loss-recovery stall ended by a NACK retransmission
  kLossTimer,        // loss-recovery stall ended by a blind timer probe
  kLossBackoff,      // backoff-timer postponement on a quiet channel
  kSeqQueue,         // GM sequencer pending queue (admit to seq-assign)
  kConsensusRound,   // FD consensus rounds (round start to decision)
  kReorderHold,      // transport reorder-buffer hold at the deliverer
  kCount
};

inline constexpr std::size_t kCauseCount = static_cast<std::size_t>(Cause::kCount);

/// Stable snake_case bucket name (critical-path CSV column header).
[[nodiscard]] const char* cause_name(Cause c);

/// Edge record kinds.  The k*Enq/k*Done pairs are point markers the
/// walker pairs FIFO per (kind, node); kStall* carry a real [t0, t1)
/// interval; the remaining kinds are single anchoring instants.
enum class EdgeKind : std::uint8_t {
  kSendEnq = 0,    // frame entered the sender-CPU queue
  kSendDone,       // sender CPU finished serving it
  kWireEnq,        // frame entered the shared wire queue
  kWireDone,       // wire transmission completed (fan-out instant)
  kRecvEnq,        // per-destination receive-CPU enqueue
  kRecvDone,       // receive CPU handed the frame up
  kReorderEnq,     // frame parked out-of-order in the transport buffer
  kReorderRel,     // in-order release from the reorder buffer
  kSeqEnter,       // message admitted to the GM sequencer pending queue
  kConsStart,      // consensus proposal covering the message was built
  kCreditClosed,   // submission accepted while the credit window was shut
  kStallNack,      // [last_tx, nack-retx): wait ended by a NACK
  kStallTimer,     // [last_tx, probe): wait ended by a blind timer probe
  kStallBackoff,   // [now, deadline): probe postponed on a quiet channel
  kCount
};

/// One causal edge in a per-origin slab (24 bytes).  Markers carry
/// t0 == t1; stall records carry the full interval.
struct Edge {
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint32_t seq = 0;      // per-origin message sequence number
  std::int16_t node = -1;     // resource/process the edge anchors to
  EdgeKind kind = EdgeKind::kCount;
};

/// Packs (origin, kind, node) into the single 32-bit key the staged
/// on_edge hook carries (origin < 4096, node in [-1, 4094]).
[[nodiscard]] inline std::uint32_t edge_key(int origin, EdgeKind kind, int node) {
  return (static_cast<std::uint32_t>(origin) << 20) |
         ((static_cast<std::uint32_t>(node + 1) & 0xfffu) << 8) |
         static_cast<std::uint32_t>(kind);
}

/// One application message referenced by a frame payload.
struct MsgRef {
  int origin = 0;
  std::uint64_t seq = 0;
};

/// Fixed-capacity classifier output: the set of application messages a
/// frame payload covers.  Lives on the hook-site stack — no allocation on
/// the hot path; past capacity refs are dropped and counted (the walker
/// tolerates missing edges, they only soften the attribution).
class MsgRefList {
 public:
  static constexpr std::size_t kMax = 256;

  void add(int origin, std::uint64_t seq) {
    if (size_ < kMax) {
      refs_[size_] = MsgRef{origin, seq};
      ++size_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] const MsgRef& operator[](std::size_t i) const { return refs_[i]; }

 private:
  std::array<MsgRef, kMax> refs_{};
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
};

/// Decodes which application messages `p` carries: application payloads
/// and batches directly, reliable-broadcast and consensus wrappers by
/// recursion, and the two protocol stacks' private payloads through the
/// per-stack classifiers below.  Control-only payloads (acks, sync,
/// membership) contribute nothing.  Pure read; safe on any thread.
void classify_payload(net::PayloadPtr p, MsgRefList& out);

/// Per-stack classifiers, defined next to the private payload types they
/// decode (fd_abcast.cpp / gm_abcast.cpp).  Both handle only their own
/// kAtomicBroadcast kind range and ignore everything else.
void classify_fd_payload(net::PayloadPtr p, MsgRefList& out);
void classify_gm_payload(net::PayloadPtr p, MsgRefList& out);

/// Per-message critical-path attribution (walker output).
struct MsgCausal {
  int origin = 0;
  std::uint64_t seq = 0;
  double submit = 0.0;
  double delivered = 0.0;
  std::array<double, kCauseCount> ms{};  // sums to delivered - submit
};

/// Aggregated per-cause sums over a set of walked messages.
struct CauseTotals {
  std::size_t count = 0;
  std::array<double, kCauseCount> sums{};
};

}  // namespace fdgm::obs
