// Cold-path side of the causal tracing layer: the generic payload
// classifier and the critical-path walker (see causal.hpp for the edge
// model and obs/observer.hpp for the hot-path recording).
//
// Walker algorithm: for each delivered message the lifecycle span gives
// three phase windows — submission wait [submit, order_start), ordering
// [order_start, ordered) and delivery [ordered, delivered).  The
// message's recorded edges become candidate intervals (stalls carry
// their own interval; hop markers are paired FIFO per (kind, node);
// kSeqEnter / kConsStart anchor intervals that close at the ordering
// instant).  Within each phase the candidates claim time greedily in
// priority order — loss-recovery stalls first, then protocol queues,
// then CPU/wire hops — over a disjoint-interval sweep, so overlapping
// evidence (a frame retransmitted three times, ten hops of the same
// batch) never double-counts a millisecond.  Whatever no candidate
// explains falls into the phase's default bucket; the per-cause sums of
// a message therefore add up to its end-to-end latency exactly.
#include "obs/causal.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "abcast/abcast.hpp"
#include "consensus/types.hpp"
#include "obs/observer.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kCreditWait: return "credit_wait";
    case Cause::kBatchWait: return "batch_wait";
    case Cause::kCpuQueue: return "cpu_queue";
    case Cause::kWire: return "wire";
    case Cause::kLossNack: return "loss_nack";
    case Cause::kLossTimer: return "loss_timer";
    case Cause::kLossBackoff: return "loss_backoff";
    case Cause::kSeqQueue: return "seq_queue";
    case Cause::kConsensusRound: return "consensus_round";
    case Cause::kReorderHold: return "reorder_hold";
    case Cause::kCount: break;
  }
  return "unknown";
}

void classify_payload(net::PayloadPtr p, MsgRefList& out) {
  if (p == nullptr) return;
  switch (p->payload_proto()) {
    case net::ProtocolId::kApplication:
      if (const auto* m = net::payload_cast<abcast::AppMessage>(p)) {
        out.add(m->id.origin, m->id.seq);
      } else if (const auto* b = net::payload_cast<abcast::AppBatch>(p)) {
        for (abcast::AppMessagePtr msg : b->msgs) out.add(msg->id.origin, msg->id.seq);
      }
      return;
    case net::ProtocolId::kReliableBroadcast:
      if (const auto* rb = net::payload_cast<rbcast::RbPayload>(p)) {
        classify_payload(rb->inner, out);
      }
      return;
    case net::ProtocolId::kConsensus:
      // ESTIMATE / PROPOSE / DECIDE carry the candidate decision value (a
      // Proposal of message ids); ACK / NACK carry nothing.
      if (const auto* c = net::payload_cast<consensus::ConsensusMsg>(p)) {
        classify_payload(c->value, out);
      }
      return;
    case net::ProtocolId::kAtomicBroadcast:
      // Kind split per the stacks' convention: FD owns 0..7, GM 8..15.
      if (p->payload_kind() < 8)
        classify_fd_payload(p, out);
      else
        classify_gm_payload(p, out);
      return;
    default:
      // Membership / state transfer / workload / transport control frames
      // carry no live application message.
      return;
  }
}

namespace {

/// One candidate interval with its cause bucket.
struct Cand {
  double t0;
  double t1;
  Cause cause;
};

/// Disjoint claimed-interval list (sorted, non-overlapping).  claim()
/// returns the measure of [t0, t1) not yet covered and inserts it.
class ClaimSet {
 public:
  double claim(double t0, double t1) {
    if (t1 <= t0) return 0.0;
    double gained = t1 - t0;
    // Subtract overlaps with existing intervals; gather the merge range.
    std::size_t first = 0;
    while (first < iv_.size() && iv_[first].second < t0) ++first;
    std::size_t last = first;
    double lo = t0;
    double hi = t1;
    while (last < iv_.size() && iv_[last].first <= t1) {
      const double o0 = std::max(t0, iv_[last].first);
      const double o1 = std::min(t1, iv_[last].second);
      if (o1 > o0) gained -= o1 - o0;
      lo = std::min(lo, iv_[last].first);
      hi = std::max(hi, iv_[last].second);
      ++last;
    }
    iv_.erase(iv_.begin() + static_cast<std::ptrdiff_t>(first),
              iv_.begin() + static_cast<std::ptrdiff_t>(last));
    iv_.insert(iv_.begin() + static_cast<std::ptrdiff_t>(first), {lo, hi});
    return std::max(gained, 0.0);
  }

  void reset() { iv_.clear(); }

 private:
  std::vector<std::pair<double, double>> iv_;
};

/// FIFO pairing key for hop markers: (kind, node).
struct PairKey {
  EdgeKind kind;
  std::int16_t node;
  friend bool operator==(const PairKey&, const PairKey&) = default;
};
struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    return (static_cast<std::size_t>(k.kind) << 16) ^
           static_cast<std::size_t>(static_cast<std::uint16_t>(k.node));
  }
};

[[nodiscard]] constexpr EdgeKind open_of(EdgeKind done) {
  switch (done) {
    case EdgeKind::kSendDone: return EdgeKind::kSendEnq;
    case EdgeKind::kWireDone: return EdgeKind::kWireEnq;
    case EdgeKind::kRecvDone: return EdgeKind::kRecvEnq;
    case EdgeKind::kReorderRel: return EdgeKind::kReorderEnq;
    default: return EdgeKind::kCount;
  }
}

[[nodiscard]] constexpr Cause hop_cause(EdgeKind done) {
  switch (done) {
    case EdgeKind::kSendDone:
    case EdgeKind::kRecvDone: return Cause::kCpuQueue;
    case EdgeKind::kWireDone: return Cause::kWire;
    case EdgeKind::kReorderRel: return Cause::kReorderHold;
    default: return Cause::kCount;
  }
}

[[nodiscard]] constexpr Cause stall_cause(EdgeKind k) {
  switch (k) {
    case EdgeKind::kStallNack: return Cause::kLossNack;
    case EdgeKind::kStallTimer: return Cause::kLossTimer;
    case EdgeKind::kStallBackoff: return Cause::kLossBackoff;
    default: return Cause::kCount;
  }
}

}  // namespace

std::vector<MsgCausal> Observer::critical_paths(double from, double to) const {
  std::vector<MsgCausal> out;
  if (edges_.empty() && spans_.empty()) return out;

  // Bucket each origin's edges by message sequence number once (cold
  // path; the slabs are in chronological recording order, which the
  // FIFO hop pairing below relies on).
  for (int origin = 0; origin < n_; ++origin) {
    const auto& spans = spans_[static_cast<std::size_t>(origin)];
    std::unordered_map<std::uint32_t, std::vector<const Edge*>> by_seq;
    if (static_cast<std::size_t>(origin) < edges_.size()) {
      for (const Edge& e : edges_[static_cast<std::size_t>(origin)]) by_seq[e.seq].push_back(&e);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const Span& s = spans[i];
      if (s.submit < from || s.submit >= to || s.submit < 0.0 || s.delivered < 0.0) continue;
      const double sub = s.submit;
      const double os = s.order_start < 0.0 ? sub : s.order_start;
      const double od = s.ordered < 0.0 ? s.delivered : s.ordered;
      const double del = s.delivered;

      MsgCausal mc;
      mc.origin = origin;
      mc.seq = static_cast<std::uint64_t>(i) + 1;
      mc.submit = sub;
      mc.delivered = del;

      // ---- candidate intervals from this message's edges ----
      std::vector<Cand> cands;
      bool credit_closed = false;
      bool seq_entered = false;
      const auto it = by_seq.find(static_cast<std::uint32_t>(mc.seq));
      if (it != by_seq.end()) {
        std::unordered_map<PairKey, std::vector<double>, PairKeyHash> open;
        std::unordered_map<PairKey, std::size_t, PairKeyHash> head;
        for (const Edge* e : it->second) {
          if (const Cause sc = stall_cause(e->kind); sc != Cause::kCount) {
            cands.push_back({e->t0, e->t1, sc});
            continue;
          }
          switch (e->kind) {
            case EdgeKind::kSendEnq:
            case EdgeKind::kWireEnq:
            case EdgeKind::kRecvEnq:
            case EdgeKind::kReorderEnq:
              open[PairKey{e->kind, e->node}].push_back(e->t0);
              break;
            case EdgeKind::kSendDone:
            case EdgeKind::kWireDone:
            case EdgeKind::kRecvDone:
            case EdgeKind::kReorderRel: {
              const PairKey k{open_of(e->kind), e->node};
              auto oit = open.find(k);
              std::size_t& h = head[k];
              if (oit != open.end() && h < oit->second.size()) {
                cands.push_back({oit->second[h], e->t0, hop_cause(e->kind)});
                ++h;
              }
              break;
            }
            case EdgeKind::kSeqEnter:
              seq_entered = true;
              cands.push_back({e->t0, od, Cause::kSeqQueue});
              break;
            case EdgeKind::kConsStart:
              cands.push_back({e->t0, od, Cause::kConsensusRound});
              break;
            case EdgeKind::kCreditClosed:
              credit_closed = true;
              break;
            default:
              break;
          }
        }
      }
      // Priority order of the greedy claim: loss-recovery stalls explain
      // time before protocol queues, which explain it before generic
      // CPU/wire hops (the hops of the recovering frame overlap its
      // stall; the stall is the *reason*).
      std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        auto rank = [](Cause c) {
          switch (c) {
            case Cause::kLossNack: return 0;
            case Cause::kLossTimer: return 1;
            case Cause::kLossBackoff: return 2;
            case Cause::kSeqQueue: return 3;
            case Cause::kConsensusRound: return 4;
            case Cause::kReorderHold: return 5;
            case Cause::kCpuQueue: return 6;
            default: return 7;  // kWire and anything else
          }
        };
        return rank(a.cause) < rank(b.cause);
      });

      // ---- per-phase claim sweep; residual goes to the phase default ----
      struct Phase {
        double lo, hi;
        Cause fallback;
      };
      const Phase phases[3] = {
          {sub, os, credit_closed ? Cause::kCreditWait : Cause::kBatchWait},
          {os, od, seq_entered ? Cause::kSeqQueue : Cause::kConsensusRound},
          {od, del, Cause::kWire},
      };
      ClaimSet claims;
      for (const Phase& ph : phases) {
        if (ph.hi <= ph.lo) continue;
        claims.reset();
        double claimed = 0.0;
        for (const Cand& c : cands) {
          const double t0 = std::max(c.t0, ph.lo);
          const double t1 = std::min(c.t1, ph.hi);
          if (t1 <= t0) continue;
          const double got = claims.claim(t0, t1);
          mc.ms[static_cast<std::size_t>(c.cause)] += got;
          claimed += got;
        }
        // Exact-sum residual: the phase's unexplained remainder.
        const double residual = (ph.hi - ph.lo) - claimed;
        if (residual > 0.0) mc.ms[static_cast<std::size_t>(ph.fallback)] += residual;
      }
      out.push_back(mc);
    }
  }
  return out;
}

CauseTotals Observer::cause_totals(double from, double to) const {
  CauseTotals t;
  for (const MsgCausal& m : critical_paths(from, to)) {
    ++t.count;
    for (std::size_t c = 0; c < kCauseCount; ++c) t.sums[c] += m.ms[c];
  }
  return t;
}

void Observer::write_critical_path_csv(std::ostream& os) const {
  os << std::setprecision(17);
  os << "origin,seq,submit_ms,delivered_ms,latency_ms";
  for (std::size_t c = 0; c < kCauseCount; ++c) os << ',' << cause_name(static_cast<Cause>(c));
  os << '\n';
  const auto paths = critical_paths(0.0, std::numeric_limits<double>::infinity());
  std::array<std::vector<double>, kCauseCount> per_cause;
  for (const MsgCausal& m : paths) {
    os << m.origin << ',' << m.seq << ',' << m.submit << ',' << m.delivered << ','
       << m.delivered - m.submit;
    for (std::size_t c = 0; c < kCauseCount; ++c) {
      os << ',' << m.ms[c];
      per_cause[c].push_back(m.ms[c]);
    }
    os << '\n';
  }
  // Aggregate footer (comment lines, so the per-message block stays a
  // plain CSV): per-cause sum and p50/p99 across messages.
  auto quant = [](std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    const auto k = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
    return v[k];
  };
  os << "# cause,sum_ms,p50_ms,p99_ms over " << paths.size() << " messages\n";
  for (std::size_t c = 0; c < kCauseCount; ++c) {
    double sum = 0.0;
    for (double v : per_cause[c]) sum += v;
    os << "# " << cause_name(static_cast<Cause>(c)) << ',' << sum << ','
       << quant(per_cause[c], 0.5) << ',' << quant(per_cause[c], 0.99) << '\n';
  }
}

}  // namespace fdgm::obs
