// Per-node, per-layer counter registry of the observability subsystem.
//
// Counters are dense enum-indexed slots: every node owns one fixed-size
// row, so counting is two array indexings and an increment — cheap enough
// to leave compiled into the hot paths behind a null-pointer guard, and
// allocation-free once the Observer is constructed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fdgm::obs {

enum class Counter : std::uint8_t {
  // transport layer
  kTransportRetx = 0,    // retransmissions originated (timer + NACK)
  kTransportRetxNack,    // ... of which NACK-triggered
  kTransportRetxTimer,   // ... of which blind-timer probes
  kTransportNacks,       // NACK control frames sent
  kTransportDups,        // duplicate frames suppressed at the receiver
  kTransportBuffered,    // out-of-order frames parked in the reorder buffer
  // consensus layer (FD stack)
  kConsensusRounds,      // rounds entered (round 1 of every instance included)
  kConsensusRoundFails,  // rounds a coordinator resolved as failed (any NACK)
  // failure-detector / membership layers
  kSuspicions,           // suspicion edges raised at a monitor
  kViewChanges,          // views installed (GM stack)
  // submission layer
  kBatchesFlushed,       // submission batches handed to the ordering machinery
  kCreditSheds,          // open-loop arrivals shed by the credit window
  // gray-failure fault model
  kCorruptionDetected,   // checksum-failed frames dropped at the receiver
  kFlapTransitions,      // link up/down transitions executed by flap windows
  kLimpWindows,          // limp windows opened at a node
  kDriftWindows,         // clock-drift windows opened at a node
  kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// Short machine-readable name (metrics CSV column header).
[[nodiscard]] const char* counter_name(Counter c);

}  // namespace fdgm::obs
