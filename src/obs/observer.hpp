// Deterministic simulation-time observability: per-message lifecycle
// spans, the per-node counter registry and phase-latency decomposition.
//
// Design contract (mirrors the transport's PR-5 discipline):
//
//  * Disarmed (the default) the subsystem is a null pointer — every hook
//    site is `if (auto* o = sys->obs())`, so runs are bit-identical to a
//    build without it: no events, no RNG draws, no allocations.
//  * Armed it is *passive*: the Observer never schedules events, never
//    draws randomness and never touches protocol state.  Metrics windows
//    roll lazily off the timestamps the hooks already carry.  An armed
//    run therefore reproduces the same golden delivery hashes and
//    executed-event counts as a disarmed one (asserted by the
//    determinism tests), which is a stronger property than "off is
//    free": tracing a run cannot perturb it.
//  * Armed steady state is allocation-free: span slabs are dense
//    per-origin vectors reserved up front, counters are fixed arrays,
//    metrics snapshots live in a pre-reserved ring.  When a slab fills,
//    new spans are dropped and counted (flight-recorder semantics)
//    instead of growing.  perf-smoke asserts allocs_per_event == 0 on
//    the armed kernels.
//
// Lifecycle model (one Span per A-broadcast message, timestamps in
// simulated ms, first-write-wins so the *global* first transition is
// recorded):
//
//    submit       a_broadcast accepted the message at its origin
//    order_start  it left the submission queue into the ordering
//                 machinery (== submit when batching is off)
//    ordered      its global order was fixed (FD: first consensus
//                 decision covering it; GM: sequencer seq-assignment)
//    delivered    first A-delivery anywhere
//
// The phase decomposition reported by the runner and the lossy
// decomposition scenario is the differences of those timestamps:
// submission-wait, ordering, and delivery (under loss: dominated by
// transport recovery of the decision / SEQNUM / content frames).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/counters.hpp"
#include "util/histogram.hpp"

namespace fdgm::obs {

/// Arming + sizing knobs (core::SimConfig::obs).
struct Config {
  /// Off by default: the observer is never constructed and every hook
  /// collapses to a null-pointer test.
  bool enabled = false;
  /// Causal edge recording (hop markers, recovery stalls, sequencer /
  /// consensus anchors) for critical-path extraction.  Off by default:
  /// no edge slabs are reserved and every trace_marker/trace_stall site
  /// short-circuits on causal().
  bool causal = false;
  /// Metrics snapshot cadence (simulated ms).  Windows roll lazily at
  /// hook invocations — no timer events are ever scheduled.
  double metrics_window_ms = 100.0;
  /// Lifecycle span slots per origin process.  Message seq numbers are
  /// dense per origin, so this bounds the traceable messages per sender;
  /// beyond it spans are dropped and counted.
  std::size_t span_capacity = 8192;
  /// Causal edge slots per origin process (flight recorder like the span
  /// slabs: a full slab drops and counts instead of growing).
  std::size_t edge_capacity = 65536;
  /// Metrics snapshot rows kept (flight recorder: drops are counted).
  std::size_t snapshot_capacity = 8192;
  /// Also keep per-node counter rows at every metrics window (the
  /// --metrics-per-node export); off by default, the aggregate snapshot
  /// ring alone is kept.
  bool per_node_metrics = false;
  /// Range/bin count of the per-phase latency histograms (ms).
  double histogram_max_ms = 5000.0;
  std::size_t histogram_bins = 250;
};

/// One message's lifecycle (timestamps in simulated ms; -1 = not seen).
struct Span {
  double submit = -1.0;
  double order_start = -1.0;
  double ordered = -1.0;
  double delivered = -1.0;
  /// Node where the global order was fixed (FD: deciding process whose
  /// decision was first; GM: the sequencer); -1 when unreported.
  std::int16_t ordered_node = -1;
  /// Node of the global-first A-delivery; -1 when unreported.
  std::int16_t deliver_node = -1;
};

/// Aggregated phase decomposition over a set of completed spans.
struct PhaseTotals {
  std::size_t count = 0;       // delivered messages covered
  double submit_wait_ms = 0.0;  // sum over messages: order_start - submit
  double ordering_ms = 0.0;     // sum: ordered - order_start
  double delivery_ms = 0.0;     // sum: delivered - ordered
};

/// Empirical Chen-Toueg-Aguilera QoS aggregates of the armed failure
/// detector, measured from the per-pair suspect/trust transitions against
/// the ground-truth crash state the Injector / System reports.  Raw sums
/// and counts so replica results add; divide for the per-sample means:
///   T_D   = td_sum_ms / detections      (crash to first suspicion)
///   T_M   = tm_sum_ms / tm_count        (wrong-suspicion duration)
///   T_MR  = tmr_sum_ms / tmr_count      (gap between mistake starts)
struct QosMeasured {
  std::uint64_t transitions = 0;  // suspect/trust edges observed
  std::uint64_t detections = 0;   // first suspicion per (monitor, crash)
  double td_sum_ms = 0.0;
  std::uint64_t mistakes = 0;     // suspicions of an alive process
  std::uint64_t tm_count = 0;     // completed mistake durations
  double tm_sum_ms = 0.0;
  std::uint64_t tmr_count = 0;    // consecutive mistake-start gaps
  double tmr_sum_ms = 0.0;

  QosMeasured& operator+=(const QosMeasured& o) {
    transitions += o.transitions;
    detections += o.detections;
    td_sum_ms += o.td_sum_ms;
    mistakes += o.mistakes;
    tm_count += o.tm_count;
    tm_sum_ms += o.tm_sum_ms;
    tmr_count += o.tmr_count;
    tmr_sum_ms += o.tmr_sum_ms;
    return *this;
  }
};

class Observer {
 public:
  Observer(int num_processes, Config cfg);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;
  ~Observer();

  // ---- lifecycle hooks (hot path; allocation-free, first-write-wins) ----
  void on_submit(int origin, std::uint64_t seq, double now);
  void on_order_start(int origin, std::uint64_t seq, double now);
  /// `node` is where the order was fixed / the delivery happened; -1 for
  /// callers that have no node to report (tests, legacy sites).
  void on_ordered(int origin, std::uint64_t seq, double now, int node = -1);
  void on_delivered(int origin, std::uint64_t seq, double now, int node = -1);

  // ---- causal edges (hot path iff causal(); allocation-free) ----
  [[nodiscard]] bool causal() const { return cfg_.enabled && cfg_.causal; }
  /// Records one edge into the origin's slab.  `key` packs (origin,
  /// kind, node) — see edge_key(); markers carry t0 == t1.  Stages
  /// itself under the parallel backend like every other hook.
  void on_edge(std::uint32_t key, std::uint64_t seq, double t0, double t1);
  /// Records a point marker (kind, node, now) for every message in
  /// `refs`.  No-op unless causal() — callers may skip classify by
  /// guarding on causal() themselves.
  void trace_marker(EdgeKind kind, int node, const MsgRefList& refs, double now);
  /// Records a stall interval [t0, t1) for every message in `refs`.
  void trace_stall(EdgeKind kind, int node, const MsgRefList& refs, double t0, double t1);

  // ---- empirical FD QoS meter (hot path; armed observer, any config) ----
  /// Ground-truth crash state transitions (net::System::crash/restart).
  void on_crash(int p, double now);
  void on_recover(int p, double now);
  /// One suspect/trust edge at `monitor` about `target`.  flags bit 0 =
  /// suspected now, bit 1 = target actually crashed at this instant.
  /// Callers report only real transitions (the prior state differed).
  void on_fd_transition(int monitor, int target, int flags, double now);

  // ---- counters / gauges (hot path) ----
  void count(int node, Counter c, double now, std::uint64_t delta = 1);
  /// kTransportRetx at `origin` plus the per-origin retx tally the
  /// sequencer-concentration metric reads.
  void on_retransmit(int origin, double now);
  /// kBatchesFlushed at `node` plus the batch-size histogram.
  void on_batch_flush(int node, std::size_t batch_size, double now);
  /// Tracks the peak reorder-buffer depth seen at `node`.
  void reorder_depth(int node, std::size_t depth);

  // ---- introspection (cold; tests, runner aggregation) ----
  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t total(Counter c) const;
  [[nodiscard]] std::uint64_t node_total(int node, Counter c) const;
  [[nodiscard]] std::uint64_t retx_origin(int node) const;
  [[nodiscard]] std::size_t reorder_peak(int node) const;
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  [[nodiscard]] std::uint64_t snapshots_dropped() const { return snapshots_dropped_; }
  [[nodiscard]] std::uint64_t edges_dropped() const { return edges_dropped_; }
  [[nodiscard]] std::size_t edges_recorded() const;
  [[nodiscard]] const QosMeasured& qos_measured() const { return qos_; }
  [[nodiscard]] const util::Histogram& e2e_hist() const { return e2e_hist_; }
  /// Null when (origin, seq) was never recorded.
  [[nodiscard]] const Span* span(int origin, std::uint64_t seq) const;
  [[nodiscard]] std::size_t spans_recorded() const;
  /// Phase sums over messages *submitted* in [from, to) and delivered.
  [[nodiscard]] PhaseTotals phase_totals(double from, double to) const;
  [[nodiscard]] const util::Histogram& submit_wait_hist() const { return submit_wait_hist_; }
  [[nodiscard]] const util::Histogram& ordering_hist() const { return ordering_hist_; }
  [[nodiscard]] const util::Histogram& delivery_hist() const { return delivery_hist_; }
  [[nodiscard]] const util::Histogram& batch_hist() const { return batch_hist_; }
  [[nodiscard]] std::size_t snapshot_count() const { return snapshots_.size(); }

  // ---- exports (cold; allocate freely) ----
  /// Chrome trace-event JSON (open in Perfetto / chrome://tracing): one
  /// pid per origin node, one tid per message, three "X" phase spans.
  void write_trace_json(std::ostream& os) const;
  /// Windowed time-series CSV: t_ms + the cumulative counter registry
  /// aggregated across nodes.
  void write_metrics_csv(std::ostream& os) const;
  /// Windowed per-node CSV: t_ms, node + the counter registry, one row
  /// per node per window (requires cfg.per_node_metrics).
  void write_metrics_per_node_csv(std::ostream& os) const;

  // ---- critical-path walker (cold; allocate freely) ----
  /// Walks every message submitted in [from, to) and delivered, pairing
  /// the recorded causal edges into the per-cause decomposition.  The
  /// per-cause sums of each row add up exactly to its end-to-end span.
  [[nodiscard]] std::vector<MsgCausal> critical_paths(double from, double to) const;
  [[nodiscard]] CauseTotals cause_totals(double from, double to) const;
  /// Per-message rows followed by an aggregate per-cause summary block.
  void write_critical_path_csv(std::ostream& os) const;

  // ---- process-global export claiming (fdgm_bench --trace/--metrics) ----
  /// Arms the claim: the next armed Observer constructed in this process
  /// becomes the exporter and writes the files when it is destroyed.
  /// Empty path = that export is off.  The bench driver forces --jobs 1
  /// alongside, so the claimant is deterministically the first replica of
  /// the first point of the first selected scenario.
  static void set_export_paths(std::string trace_path, std::string metrics_path,
                               std::string metrics_per_node_path = "",
                               std::string critical_path_path = "");
  [[nodiscard]] bool claimed_export() const {
    return !trace_path_.empty() || !metrics_path_.empty() ||
           !metrics_per_node_path_.empty() || !critical_path_path_.empty();
  }

 private:
  [[nodiscard]] Span* find(int origin, std::uint64_t seq);
  void roll_window(double now);
  void flush_export() const;

  int n_;
  Config cfg_;
  std::vector<std::vector<Span>> spans_;  // [origin][seq - 1]
  std::vector<std::uint64_t> counters_;   // [node * kCounterCount + c]
  std::vector<std::uint64_t> retx_origin_;
  std::vector<std::size_t> reorder_peak_;
  std::uint64_t spans_dropped_ = 0;
  util::Histogram submit_wait_hist_;
  util::Histogram ordering_hist_;
  util::Histogram delivery_hist_;
  util::Histogram batch_hist_;
  util::Histogram e2e_hist_;

  // Causal edge slabs, [origin] -> flight-recorder vector (reserved only
  // when cfg.causal; empty and never touched otherwise).
  std::vector<std::vector<Edge>> edges_;
  std::uint64_t edges_dropped_ = 0;

  // ---- FD QoS meter state ----
  struct QosPair {               // [monitor * n + target]
    bool suspected = false;
    std::uint32_t seen_epoch = 0;    // crash epoch already credited with T_D
    double last_mistake_start = -1.0;
    double mistake_open = -1.0;      // >= 0: wrong suspicion in progress
  };
  struct QosTarget {             // [target]
    bool crashed = false;
    std::uint32_t crash_epoch = 0;
    double crash_time = -1.0;
  };
  std::vector<QosPair> qos_pairs_;
  std::vector<QosTarget> qos_targets_;
  QosMeasured qos_;

  struct Snapshot {
    double t = 0.0;
    std::array<std::uint64_t, kCounterCount> agg{};
  };
  std::vector<Snapshot> snapshots_;
  // Per-node rows ride the aggregate ring: rows [i*n_, (i+1)*n_) hold the
  // per-node counter copies of snapshots_[i] (cfg.per_node_metrics only).
  std::vector<std::array<std::uint64_t, kCounterCount>> node_snapshots_;
  std::uint64_t snapshots_dropped_ = 0;
  double next_window_;

  std::string trace_path_;    // non-empty: this observer exports on destruction
  std::string metrics_path_;
  std::string metrics_per_node_path_;
  std::string critical_path_path_;
};

}  // namespace fdgm::obs
