// Deterministic simulation-time observability: per-message lifecycle
// spans, the per-node counter registry and phase-latency decomposition.
//
// Design contract (mirrors the transport's PR-5 discipline):
//
//  * Disarmed (the default) the subsystem is a null pointer — every hook
//    site is `if (auto* o = sys->obs())`, so runs are bit-identical to a
//    build without it: no events, no RNG draws, no allocations.
//  * Armed it is *passive*: the Observer never schedules events, never
//    draws randomness and never touches protocol state.  Metrics windows
//    roll lazily off the timestamps the hooks already carry.  An armed
//    run therefore reproduces the same golden delivery hashes and
//    executed-event counts as a disarmed one (asserted by the
//    determinism tests), which is a stronger property than "off is
//    free": tracing a run cannot perturb it.
//  * Armed steady state is allocation-free: span slabs are dense
//    per-origin vectors reserved up front, counters are fixed arrays,
//    metrics snapshots live in a pre-reserved ring.  When a slab fills,
//    new spans are dropped and counted (flight-recorder semantics)
//    instead of growing.  perf-smoke asserts allocs_per_event == 0 on
//    the armed kernels.
//
// Lifecycle model (one Span per A-broadcast message, timestamps in
// simulated ms, first-write-wins so the *global* first transition is
// recorded):
//
//    submit       a_broadcast accepted the message at its origin
//    order_start  it left the submission queue into the ordering
//                 machinery (== submit when batching is off)
//    ordered      its global order was fixed (FD: first consensus
//                 decision covering it; GM: sequencer seq-assignment)
//    delivered    first A-delivery anywhere
//
// The phase decomposition reported by the runner and the lossy
// decomposition scenario is the differences of those timestamps:
// submission-wait, ordering, and delivery (under loss: dominated by
// transport recovery of the decision / SEQNUM / content frames).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "util/histogram.hpp"

namespace fdgm::obs {

/// Arming + sizing knobs (core::SimConfig::obs).
struct Config {
  /// Off by default: the observer is never constructed and every hook
  /// collapses to a null-pointer test.
  bool enabled = false;
  /// Metrics snapshot cadence (simulated ms).  Windows roll lazily at
  /// hook invocations — no timer events are ever scheduled.
  double metrics_window_ms = 100.0;
  /// Lifecycle span slots per origin process.  Message seq numbers are
  /// dense per origin, so this bounds the traceable messages per sender;
  /// beyond it spans are dropped and counted.
  std::size_t span_capacity = 8192;
  /// Metrics snapshot rows kept (flight recorder: drops are counted).
  std::size_t snapshot_capacity = 8192;
  /// Range/bin count of the per-phase latency histograms (ms).
  double histogram_max_ms = 5000.0;
  std::size_t histogram_bins = 250;
};

/// One message's lifecycle (timestamps in simulated ms; -1 = not seen).
struct Span {
  double submit = -1.0;
  double order_start = -1.0;
  double ordered = -1.0;
  double delivered = -1.0;
};

/// Aggregated phase decomposition over a set of completed spans.
struct PhaseTotals {
  std::size_t count = 0;       // delivered messages covered
  double submit_wait_ms = 0.0;  // sum over messages: order_start - submit
  double ordering_ms = 0.0;     // sum: ordered - order_start
  double delivery_ms = 0.0;     // sum: delivered - ordered
};

class Observer {
 public:
  Observer(int num_processes, Config cfg);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;
  ~Observer();

  // ---- lifecycle hooks (hot path; allocation-free, first-write-wins) ----
  void on_submit(int origin, std::uint64_t seq, double now);
  void on_order_start(int origin, std::uint64_t seq, double now);
  void on_ordered(int origin, std::uint64_t seq, double now);
  void on_delivered(int origin, std::uint64_t seq, double now);

  // ---- counters / gauges (hot path) ----
  void count(int node, Counter c, double now, std::uint64_t delta = 1);
  /// kTransportRetx at `origin` plus the per-origin retx tally the
  /// sequencer-concentration metric reads.
  void on_retransmit(int origin, double now);
  /// kBatchesFlushed at `node` plus the batch-size histogram.
  void on_batch_flush(int node, std::size_t batch_size, double now);
  /// Tracks the peak reorder-buffer depth seen at `node`.
  void reorder_depth(int node, std::size_t depth);

  // ---- introspection (cold; tests, runner aggregation) ----
  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t total(Counter c) const;
  [[nodiscard]] std::uint64_t node_total(int node, Counter c) const;
  [[nodiscard]] std::uint64_t retx_origin(int node) const;
  [[nodiscard]] std::size_t reorder_peak(int node) const;
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  [[nodiscard]] std::uint64_t snapshots_dropped() const { return snapshots_dropped_; }
  /// Null when (origin, seq) was never recorded.
  [[nodiscard]] const Span* span(int origin, std::uint64_t seq) const;
  [[nodiscard]] std::size_t spans_recorded() const;
  /// Phase sums over messages *submitted* in [from, to) and delivered.
  [[nodiscard]] PhaseTotals phase_totals(double from, double to) const;
  [[nodiscard]] const util::Histogram& submit_wait_hist() const { return submit_wait_hist_; }
  [[nodiscard]] const util::Histogram& ordering_hist() const { return ordering_hist_; }
  [[nodiscard]] const util::Histogram& delivery_hist() const { return delivery_hist_; }
  [[nodiscard]] const util::Histogram& batch_hist() const { return batch_hist_; }
  [[nodiscard]] std::size_t snapshot_count() const { return snapshots_.size(); }

  // ---- exports (cold; allocate freely) ----
  /// Chrome trace-event JSON (open in Perfetto / chrome://tracing): one
  /// pid per origin node, one tid per message, three "X" phase spans.
  void write_trace_json(std::ostream& os) const;
  /// Windowed time-series CSV: t_ms + the cumulative counter registry
  /// aggregated across nodes.
  void write_metrics_csv(std::ostream& os) const;

  // ---- process-global export claiming (fdgm_bench --trace/--metrics) ----
  /// Arms the claim: the next armed Observer constructed in this process
  /// becomes the exporter and writes the files when it is destroyed.
  /// Empty path = that export is off.  The bench driver forces --jobs 1
  /// alongside, so the claimant is deterministically the first replica of
  /// the first point of the first selected scenario.
  static void set_export_paths(std::string trace_path, std::string metrics_path);
  [[nodiscard]] bool claimed_export() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }

 private:
  [[nodiscard]] Span* find(int origin, std::uint64_t seq);
  void roll_window(double now);
  void flush_export() const;

  int n_;
  Config cfg_;
  std::vector<std::vector<Span>> spans_;  // [origin][seq - 1]
  std::vector<std::uint64_t> counters_;   // [node * kCounterCount + c]
  std::vector<std::uint64_t> retx_origin_;
  std::vector<std::size_t> reorder_peak_;
  std::uint64_t spans_dropped_ = 0;
  util::Histogram submit_wait_hist_;
  util::Histogram ordering_hist_;
  util::Histogram delivery_hist_;
  util::Histogram batch_hist_;

  struct Snapshot {
    double t = 0.0;
    std::array<std::uint64_t, kCounterCount> agg{};
  };
  std::vector<Snapshot> snapshots_;
  std::uint64_t snapshots_dropped_ = 0;
  double next_window_;

  std::string trace_path_;    // non-empty: this observer exports on destruction
  std::string metrics_path_;
};

}  // namespace fdgm::obs
