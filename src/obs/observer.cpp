#include "obs/observer.hpp"

#include "sim/exec_ctx.hpp"

#include <cmath>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <ostream>

namespace fdgm::obs {

namespace {

// Process-global export claim (see Observer::set_export_paths).  The bench
// driver forces --jobs 1 when exports are requested, so no worker thread
// races the first armed Observer for the claim; the mutex is belt and
// braces for embedders that arm exports with parallel replicas anyway.
std::mutex g_export_mu;
std::string g_trace_path;             // NOLINT(runtime/string)
std::string g_metrics_path;           // NOLINT(runtime/string)
std::string g_metrics_per_node_path;  // NOLINT(runtime/string)
std::string g_critical_path_path;     // NOLINT(runtime/string)

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTransportRetx: return "transport_retx";
    case Counter::kTransportRetxNack: return "transport_retx_nack";
    case Counter::kTransportRetxTimer: return "transport_retx_timer";
    case Counter::kTransportNacks: return "transport_nacks";
    case Counter::kTransportDups: return "transport_dups";
    case Counter::kTransportBuffered: return "transport_buffered";
    case Counter::kConsensusRounds: return "consensus_rounds";
    case Counter::kConsensusRoundFails: return "consensus_round_fails";
    case Counter::kSuspicions: return "suspicions";
    case Counter::kViewChanges: return "view_changes";
    case Counter::kBatchesFlushed: return "batches_flushed";
    case Counter::kCreditSheds: return "credit_sheds";
    case Counter::kCorruptionDetected: return "corruption_detected";
    case Counter::kFlapTransitions: return "flap_transitions";
    case Counter::kLimpWindows: return "limp_windows";
    case Counter::kDriftWindows: return "drift_windows";
    case Counter::kCount: break;
  }
  return "unknown";
}

Observer::Observer(int num_processes, Config cfg)
    : n_(num_processes),
      cfg_(cfg),
      submit_wait_hist_(0.0, cfg.histogram_max_ms, cfg.histogram_bins),
      ordering_hist_(0.0, cfg.histogram_max_ms, cfg.histogram_bins),
      delivery_hist_(0.0, cfg.histogram_max_ms, cfg.histogram_bins),
      batch_hist_(0.0, 256.0, 64),
      e2e_hist_(0.0, cfg.histogram_max_ms, cfg.histogram_bins),
      next_window_(cfg.metrics_window_ms) {
  spans_.resize(static_cast<std::size_t>(n_));
  for (auto& slab : spans_) slab.reserve(cfg_.span_capacity);
  counters_.assign(static_cast<std::size_t>(n_) * kCounterCount, 0);
  retx_origin_.assign(static_cast<std::size_t>(n_), 0);
  reorder_peak_.assign(static_cast<std::size_t>(n_), 0);
  snapshots_.reserve(cfg_.snapshot_capacity);
  if (cfg_.causal) {
    edges_.resize(static_cast<std::size_t>(n_));
    for (auto& slab : edges_) slab.reserve(cfg_.edge_capacity);
  }
  if (cfg_.per_node_metrics) {
    node_snapshots_.reserve(cfg_.snapshot_capacity * static_cast<std::size_t>(n_));
  }
  qos_pairs_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), QosPair{});
  qos_targets_.assign(static_cast<std::size_t>(n_), QosTarget{});
  std::lock_guard<std::mutex> lock(g_export_mu);
  if (!g_trace_path.empty() || !g_metrics_path.empty() || !g_metrics_per_node_path.empty() ||
      !g_critical_path_path.empty()) {
    trace_path_ = std::move(g_trace_path);
    metrics_path_ = std::move(g_metrics_path);
    metrics_per_node_path_ = std::move(g_metrics_per_node_path);
    critical_path_path_ = std::move(g_critical_path_path);
    g_trace_path.clear();
    g_metrics_path.clear();
    g_metrics_per_node_path.clear();
    g_critical_path_path.clear();
  }
}

Observer::~Observer() {
  if (claimed_export()) flush_export();
}

void Observer::set_export_paths(std::string trace_path, std::string metrics_path,
                                std::string metrics_per_node_path,
                                std::string critical_path_path) {
  std::lock_guard<std::mutex> lock(g_export_mu);
  g_trace_path = std::move(trace_path);
  g_metrics_path = std::move(metrics_path);
  g_metrics_per_node_path = std::move(metrics_per_node_path);
  g_critical_path_path = std::move(critical_path_path);
}

// ---------------------------------------------------------------- lifecycle

Span* Observer::find(int origin, std::uint64_t seq) {
  if (origin < 0 || origin >= n_ || seq == 0) return nullptr;
  auto& slab = spans_[static_cast<std::size_t>(origin)];
  const std::uint64_t idx = seq - 1;
  if (idx < slab.size()) return &slab[idx];
  return nullptr;
}

// Every hot-path hook defers itself to the round barrier when invoked
// from a parallel-backend staging worker (the Observer is process-global
// state): the replay re-enters the same public method with a null
// execution context and runs the body, in exact global event order — so
// an armed parallel run records byte-identical traces and counters.

void Observer::on_submit(int origin, std::uint64_t seq, double now) {
  if (sim::stage_effect<&Observer::on_submit>(this, origin, seq, now)) return;
  if (now >= next_window_) roll_window(now);
  if (origin < 0 || origin >= n_ || seq == 0) return;
  auto& slab = spans_[static_cast<std::size_t>(origin)];
  const std::uint64_t idx = seq - 1;
  if (idx == slab.size() && slab.size() < cfg_.span_capacity) {
    // push_back never reallocates: the slab is reserved to capacity up
    // front, keeping the armed hot path allocation-free.
    slab.emplace_back();
    slab.back().submit = now;
    return;
  }
  if (idx < slab.size()) {
    if (slab[idx].submit < 0.0) slab[idx].submit = now;
    return;
  }
  ++spans_dropped_;
}

void Observer::on_order_start(int origin, std::uint64_t seq, double now) {
  if (sim::stage_effect<&Observer::on_order_start>(this, origin, seq, now)) return;
  if (now >= next_window_) roll_window(now);
  if (Span* s = find(origin, seq); s && s->order_start < 0.0) s->order_start = now;
}

void Observer::on_ordered(int origin, std::uint64_t seq, double now, int node) {
  if (sim::stage_effect<&Observer::on_ordered>(this, origin, seq, now, node)) return;
  if (now >= next_window_) roll_window(now);
  if (Span* s = find(origin, seq); s && s->ordered < 0.0) {
    s->ordered = now;
    s->ordered_node = static_cast<std::int16_t>(node);
  }
}

void Observer::on_delivered(int origin, std::uint64_t seq, double now, int node) {
  if (sim::stage_effect<&Observer::on_delivered>(this, origin, seq, now, node)) return;
  if (now >= next_window_) roll_window(now);
  Span* s = find(origin, seq);
  if (s == nullptr || s->delivered >= 0.0) return;
  s->delivered = now;
  s->deliver_node = static_cast<std::int16_t>(node);
  // Paths that deliver without an explicit ordering instant (e.g. the GM
  // view-change flush) collapse the ordering phase onto delivery.
  if (s->ordered < 0.0) s->ordered = now;
  if (s->order_start < 0.0) s->order_start = s->submit;
  if (s->submit < 0.0) return;  // untracked origin; nothing to decompose
  submit_wait_hist_.add(s->order_start - s->submit);
  ordering_hist_.add(s->ordered - s->order_start);
  delivery_hist_.add(s->delivered - s->ordered);
  e2e_hist_.add(s->delivered - s->submit);
}

// ------------------------------------------------------------- causal edges

void Observer::on_edge(std::uint32_t key, std::uint64_t seq, double t0, double t1) {
  if (sim::stage_effect<&Observer::on_edge>(this, key, seq, t0, t1)) return;
  // Deliberately does NOT roll metrics windows: edge recording must not
  // change the --metrics snapshot timeline between an armed-causal run
  // and an armed-only one.
  const int origin = static_cast<int>(key >> 20);
  if (origin < 0 || origin >= n_ || seq == 0) return;
  auto& slab = edges_[static_cast<std::size_t>(origin)];
  if (slab.size() >= cfg_.edge_capacity) {
    ++edges_dropped_;
    return;
  }
  Edge e;
  e.t0 = t0;
  e.t1 = t1;
  e.seq = static_cast<std::uint32_t>(seq);
  e.node = static_cast<std::int16_t>(static_cast<int>((key >> 8) & 0xfffu) - 1);
  e.kind = static_cast<EdgeKind>(key & 0xffu);
  slab.push_back(e);  // reserved to capacity: never reallocates
}

void Observer::trace_marker(EdgeKind kind, int node, const MsgRefList& refs, double now) {
  if (!causal()) return;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    on_edge(edge_key(refs[i].origin, kind, node), refs[i].seq, now, now);
  }
}

void Observer::trace_stall(EdgeKind kind, int node, const MsgRefList& refs, double t0,
                           double t1) {
  if (!causal()) return;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    on_edge(edge_key(refs[i].origin, kind, node), refs[i].seq, t0, t1);
  }
}

std::size_t Observer::edges_recorded() const {
  std::size_t sum = 0;
  for (const auto& slab : edges_) sum += slab.size();
  return sum;
}

// ------------------------------------------------------------- FD QoS meter

void Observer::on_crash(int p, double now) {
  if (sim::stage_effect<&Observer::on_crash>(this, p, now)) return;
  if (p < 0 || p >= n_) return;
  auto& t = qos_targets_[static_cast<std::size_t>(p)];
  if (t.crashed) return;
  t.crashed = true;
  ++t.crash_epoch;
  t.crash_time = now;
  // Monitors already (wrongly) suspecting p become instantly correct:
  // close the in-flight mistake at the crash instant and credit T_D = 0.
  for (int m = 0; m < n_; ++m) {
    auto& pair = qos_pairs_[static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
                            static_cast<std::size_t>(p)];
    if (pair.suspected) {
      if (pair.mistake_open >= 0.0) {
        ++qos_.tm_count;
        qos_.tm_sum_ms += now - pair.mistake_open;
        pair.mistake_open = -1.0;
      }
      if (pair.seen_epoch != t.crash_epoch) {
        pair.seen_epoch = t.crash_epoch;
        ++qos_.detections;  // td_sum_ms += 0
      }
    }
  }
}

void Observer::on_recover(int p, double now) {
  if (sim::stage_effect<&Observer::on_recover>(this, p, now)) return;
  if (p < 0 || p >= n_) return;
  auto& t = qos_targets_[static_cast<std::size_t>(p)];
  t.crashed = false;
  t.crash_time = -1.0;
  (void)now;
}

void Observer::on_fd_transition(int monitor, int target, int flags, double now) {
  if (sim::stage_effect<&Observer::on_fd_transition>(this, monitor, target, flags, now)) return;
  if (monitor < 0 || monitor >= n_ || target < 0 || target >= n_) return;
  const bool suspected = (flags & 1) != 0;
  auto& pair = qos_pairs_[static_cast<std::size_t>(monitor) * static_cast<std::size_t>(n_) +
                          static_cast<std::size_t>(target)];
  if (pair.suspected == suspected) return;
  pair.suspected = suspected;
  ++qos_.transitions;
  const auto& t = qos_targets_[static_cast<std::size_t>(target)];
  if (suspected) {
    if (t.crashed) {
      if (pair.seen_epoch != t.crash_epoch) {
        pair.seen_epoch = t.crash_epoch;
        ++qos_.detections;
        qos_.td_sum_ms += now - t.crash_time;
      }
    } else {
      // Wrong suspicion: a new mistake starts.  T_MR is the gap between
      // consecutive mistake *starts* at this pair (Chen-Toueg).
      ++qos_.mistakes;
      if (pair.last_mistake_start >= 0.0) {
        ++qos_.tmr_count;
        qos_.tmr_sum_ms += now - pair.last_mistake_start;
      }
      pair.last_mistake_start = now;
      pair.mistake_open = now;
    }
  } else if (pair.mistake_open >= 0.0) {
    // Trust restored while the target is alive closes the mistake.
    ++qos_.tm_count;
    qos_.tm_sum_ms += now - pair.mistake_open;
    pair.mistake_open = -1.0;
  }
}

// ----------------------------------------------------------- counters/gauges

void Observer::count(int node, Counter c, double now, std::uint64_t delta) {
  if (sim::stage_effect<&Observer::count>(this, node, c, now, delta)) return;
  if (now >= next_window_) roll_window(now);
  if (node < 0 || node >= n_) return;
  counters_[static_cast<std::size_t>(node) * kCounterCount + static_cast<std::size_t>(c)] +=
      delta;
}

void Observer::on_retransmit(int origin, double now) {
  if (sim::stage_effect<&Observer::on_retransmit>(this, origin, now)) return;
  count(origin, Counter::kTransportRetx, now);
  if (origin >= 0 && origin < n_) ++retx_origin_[static_cast<std::size_t>(origin)];
}

void Observer::on_batch_flush(int node, std::size_t batch_size, double now) {
  if (sim::stage_effect<&Observer::on_batch_flush>(this, node, batch_size, now)) return;
  count(node, Counter::kBatchesFlushed, now);
  batch_hist_.add(static_cast<double>(batch_size));
}

void Observer::reorder_depth(int node, std::size_t depth) {
  if (sim::stage_effect<&Observer::reorder_depth>(this, node, depth)) return;
  if (node < 0 || node >= n_) return;
  auto& peak = reorder_peak_[static_cast<std::size_t>(node)];
  if (depth > peak) peak = depth;
}

void Observer::roll_window(double now) {
  // One row per crossing, stamped at the boundary that was crossed; after
  // a quiet gap the next row simply covers the whole gap (cumulative
  // counters make the rows self-describing).
  if (snapshots_.size() < cfg_.snapshot_capacity) {
    Snapshot snap;
    snap.t = next_window_;
    for (int node = 0; node < n_; ++node) {
      for (std::size_t c = 0; c < kCounterCount; ++c) {
        snap.agg[c] += counters_[static_cast<std::size_t>(node) * kCounterCount + c];
      }
    }
    snapshots_.push_back(snap);
    if (cfg_.per_node_metrics) {
      // Per-node rows ride the aggregate ring one-for-one, so both CSVs
      // share the same capacity bound and drop count.
      for (int node = 0; node < n_; ++node) {
        std::array<std::uint64_t, kCounterCount> row{};
        for (std::size_t c = 0; c < kCounterCount; ++c) {
          row[c] = counters_[static_cast<std::size_t>(node) * kCounterCount + c];
        }
        node_snapshots_.push_back(row);
      }
    }
  } else {
    ++snapshots_dropped_;
  }
  const double w = cfg_.metrics_window_ms;
  next_window_ = (std::floor(now / w) + 1.0) * w;
}

// ------------------------------------------------------------- introspection

std::uint64_t Observer::total(Counter c) const {
  std::uint64_t sum = 0;
  for (int node = 0; node < n_; ++node) sum += node_total(node, c);
  return sum;
}

std::uint64_t Observer::node_total(int node, Counter c) const {
  if (node < 0 || node >= n_) return 0;
  return counters_[static_cast<std::size_t>(node) * kCounterCount + static_cast<std::size_t>(c)];
}

std::uint64_t Observer::retx_origin(int node) const {
  if (node < 0 || node >= n_) return 0;
  return retx_origin_[static_cast<std::size_t>(node)];
}

std::size_t Observer::reorder_peak(int node) const {
  if (node < 0 || node >= n_) return 0;
  return reorder_peak_[static_cast<std::size_t>(node)];
}

const Span* Observer::span(int origin, std::uint64_t seq) const {
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): lookup only
  return const_cast<Observer*>(this)->find(origin, seq);
}

std::size_t Observer::spans_recorded() const {
  std::size_t sum = 0;
  for (const auto& slab : spans_) sum += slab.size();
  return sum;
}

PhaseTotals Observer::phase_totals(double from, double to) const {
  PhaseTotals t;
  for (const auto& slab : spans_) {
    for (const auto& s : slab) {
      if (s.submit < from || s.submit >= to || s.delivered < 0.0) continue;
      const double os = s.order_start < 0.0 ? s.submit : s.order_start;
      const double od = s.ordered < 0.0 ? s.delivered : s.ordered;
      ++t.count;
      t.submit_wait_ms += os - s.submit;
      t.ordering_ms += od - os;
      t.delivery_ms += s.delivered - od;
    }
  }
  return t;
}

// ------------------------------------------------------------------ exports

void Observer::write_trace_json(std::ostream& os) const {
  // Timestamps reach ~1e6 us of simulated time; the default 6-significant-
  // digit float formatting would round them to whole us and make tracks
  // look non-monotone.  17 digits round-trips a double exactly.
  os << std::setprecision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (int node = 0; node < n_; ++node) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << node
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"node " << node << "\"}}";
  }
  // One track per message: pid = origin node, tid = the message's dense
  // per-origin sequence number; three complete ("X") events per delivered
  // message, timestamps in microseconds of simulated time.
  auto emit = [&](int pid, std::uint64_t tid, const char* name, double t0_ms, double t1_ms) {
    sep();
    os << "{\"ph\":\"X\",\"cat\":\"abcast\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << name << "\",\"ts\":" << t0_ms * 1000.0
       << ",\"dur\":" << (t1_ms > t0_ms ? (t1_ms - t0_ms) * 1000.0 : 0.0) << "}";
  };
  for (int origin = 0; origin < n_; ++origin) {
    const auto& slab = spans_[static_cast<std::size_t>(origin)];
    for (std::size_t i = 0; i < slab.size(); ++i) {
      const Span& s = slab[i];
      if (s.submit < 0.0) continue;
      const std::uint64_t seq = static_cast<std::uint64_t>(i) + 1;
      const double os_t = s.order_start < 0.0 ? s.submit : s.order_start;
      emit(origin, seq, "submit-wait", s.submit, os_t);
      if (s.ordered >= 0.0) {
        emit(origin, seq, "ordering", os_t, s.ordered);
        if (s.delivered >= 0.0) emit(origin, seq, "delivery", s.ordered, s.delivered);
      }
    }
  }
  if (causal()) {
    // Flow events connect each message's submit at its origin to its
    // global-first delivery at the delivering node, annotated with the
    // walker's dominant cause.  Gated on causal() so plain --trace output
    // is unchanged (and its CI validation stays strict).
    const auto paths = critical_paths(0.0, std::numeric_limits<double>::infinity());
    for (const auto& m : paths) {
      const Span* s = span(m.origin, m.seq);
      if (s == nullptr || s->delivered < 0.0) continue;
      std::size_t dom = 0;
      for (std::size_t c = 1; c < kCauseCount; ++c) {
        if (m.ms[c] > m.ms[dom]) dom = c;
      }
      const std::uint64_t id =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.origin)) << 32) | m.seq;
      const int dst = s->deliver_node >= 0 ? s->deliver_node : m.origin;
      sep();
      os << "{\"ph\":\"s\",\"cat\":\"causal\",\"pid\":" << m.origin << ",\"tid\":" << m.seq
         << ",\"name\":\"msg\",\"id\":" << id << ",\"ts\":" << m.submit * 1000.0 << "}";
      sep();
      os << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"causal\",\"pid\":" << dst
         << ",\"tid\":" << m.seq << ",\"name\":\"msg\",\"id\":" << id
         << ",\"ts\":" << m.delivered * 1000.0 << ",\"args\":{\"dominant_cause\":\""
         << cause_name(static_cast<Cause>(dom)) << "\"}}";
    }
  }
  os << "\n]}\n";
}

void Observer::write_metrics_csv(std::ostream& os) const {
  os << "t_ms";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    os << ',' << counter_name(static_cast<Counter>(c));
  }
  os << '\n';
  for (const auto& snap : snapshots_) {
    os << snap.t;
    for (std::size_t c = 0; c < kCounterCount; ++c) os << ',' << snap.agg[c];
    os << '\n';
  }
}

void Observer::write_metrics_per_node_csv(std::ostream& os) const {
  os << "t_ms,node";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    os << ',' << counter_name(static_cast<Counter>(c));
  }
  os << '\n';
  // node_snapshots_ rows [i*n, (i+1)*n) belong to snapshots_[i]; the two
  // rings fill in lockstep (roll_window appends both or neither).
  const std::size_t rows = node_snapshots_.size() / static_cast<std::size_t>(n_);
  for (std::size_t i = 0; i < rows && i < snapshots_.size(); ++i) {
    for (int node = 0; node < n_; ++node) {
      const auto& row = node_snapshots_[i * static_cast<std::size_t>(n_) +
                                        static_cast<std::size_t>(node)];
      os << snapshots_[i].t << ',' << node;
      for (std::size_t c = 0; c < kCounterCount; ++c) os << ',' << row[c];
      os << '\n';
    }
  }
}

void Observer::flush_export() const {
  auto open = [](const std::string& path) -> std::ofstream {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
      if (ec) {
        std::cerr << "obs: cannot create directory " << parent.string() << ": " << ec.message()
                  << '\n';
      }
    }
    std::ofstream file(path);
    if (!file) std::cerr << "obs: cannot write " << path << '\n';
    return file;
  };
  if (!trace_path_.empty()) {
    if (auto file = open(trace_path_)) write_trace_json(file);
  }
  if (!metrics_path_.empty()) {
    if (auto file = open(metrics_path_)) write_metrics_csv(file);
  }
  if (!metrics_per_node_path_.empty()) {
    if (auto file = open(metrics_per_node_path_)) write_metrics_per_node_csv(file);
  }
  if (!critical_path_path_.empty()) {
    if (auto file = open(critical_path_path_)) write_critical_path_csv(file);
  }
}

}  // namespace fdgm::obs
