// Tests of the experiment engine: Poisson workload statistics, the latency
// recorder, SimRun wiring and determinism.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/latency_recorder.hpp"
#include "core/workload.hpp"
#include "util/stats.hpp"

namespace fdgm::core {
namespace {

TEST(LatencyRecorder, FirstDeliveryWins) {
  LatencyRecorder r;
  const abcast::MsgId id{0, 1};
  r.on_broadcast(id, 10.0);
  abcast::AppMessage m(id, 10.0);
  r.on_deliver(m, 25.0);
  r.on_deliver(m, 20.0);  // later receiver callback, earlier time is kept? no: first call wins
  EXPECT_DOUBLE_EQ(r.latency_of(id), 15.0);
  EXPECT_EQ(r.total_delivered(), 1u);
}

TEST(LatencyRecorder, UnknownDeliveryRegistersFromPayload) {
  LatencyRecorder r;
  const abcast::MsgId id{2, 7};
  abcast::AppMessage m(id, 5.0);
  r.on_deliver(m, 12.0);
  EXPECT_DOUBLE_EQ(r.latency_of(id), 7.0);
}

TEST(LatencyRecorder, WindowStatsFilterBySendTime) {
  LatencyRecorder r;
  for (int i = 0; i < 10; ++i) {
    const abcast::MsgId id{0, static_cast<std::uint64_t>(i + 1)};
    const double sent = i * 10.0;
    r.on_broadcast(id, sent);
    abcast::AppMessage m(id, sent);
    r.on_deliver(m, sent + 5.0);
  }
  const auto stats = r.window_stats(20.0, 60.0);  // sends at 20,30,40,50
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

TEST(LatencyRecorder, BacklogTracking) {
  LatencyRecorder r;
  r.on_broadcast({0, 1}, 0.0);
  r.on_broadcast({0, 2}, 50.0);
  abcast::AppMessage m({0, 1}, 0.0);
  r.on_deliver(m, 60.0);
  EXPECT_EQ(r.undelivered_in_window(0.0, 100.0), 1u);
  EXPECT_EQ(r.stale_undelivered(100.0, 40.0), 1u);   // msg 2 is 50ms old
  EXPECT_EQ(r.stale_undelivered(100.0, 60.0), 0u);
}

TEST(LatencyRecorder, NegativeLatencyForUndelivered) {
  LatencyRecorder r;
  r.on_broadcast({0, 1}, 0.0);
  EXPECT_LT(r.latency_of({0, 1}), 0.0);
  EXPECT_LT(r.latency_of({9, 9}), 0.0);
}

TEST(Workload, PoissonRateMatchesThroughput) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.seed = 5;
  SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
  run.start();
  run.run_until(20000.0);  // 20 s at 200/s -> ~4000 messages
  const double generated = static_cast<double>(run.workload().generated());
  EXPECT_NEAR(generated, 4000.0, 4000.0 * 0.08);
}

TEST(Workload, CrashedProcessStopsBroadcasting) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  SimRun run(cfg, WorkloadConfig{.throughput = 100.0});
  run.system().crash_at(0, 0.0);
  run.start();
  run.run_until(10000.0);
  // Only p1 broadcasts: ~500 instead of ~1000.
  const double generated = static_cast<double>(run.workload().generated());
  EXPECT_NEAR(generated, 500.0, 500.0 * 0.15);
}

TEST(Workload, StopHaltsGeneration) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  SimRun run(cfg, WorkloadConfig{.throughput = 1000.0});
  run.start();
  run.run_until(1000.0);
  run.workload().stop();
  const auto before = run.workload().generated();
  run.run_until(3000.0);
  EXPECT_EQ(run.workload().generated(), before);
}

TEST(Workload, RejectsBadConfig) {
  SimConfig cfg;
  cfg.n = 2;
  SimRun run(cfg);  // default workload is fine
  EXPECT_THROW(
      {
        SimRun bad(cfg, WorkloadConfig{.throughput = 0.0});
      },
      std::invalid_argument);
}

TEST(SimRun, DeliveriesReachRecorder) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 2;
  SimRun run(cfg, WorkloadConfig{.throughput = 100.0});
  run.start();
  run.run_until(2000.0);
  EXPECT_GT(run.recorder().total_delivered(), 100u);
  const auto stats = run.recorder().window_stats(0.0, 1500.0);
  EXPECT_GT(stats.mean(), 3.0);   // at least one network round-trip
  EXPECT_LT(stats.mean(), 50.0);  // and far from saturation at T=100
}

TEST(SimRun, DeterministicAcrossIdenticalConfigs) {
  auto once = [] {
    SimConfig cfg;
    cfg.n = 3;
    cfg.seed = 77;
    SimRun run(cfg, WorkloadConfig{.throughput = 150.0});
    run.start();
    run.run_until(3000.0);
    return run.recorder().window_stats(0.0, 3000.0).mean();
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(SimRun, DifferentSeedsDiffer) {
  auto once = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.n = 3;
    cfg.seed = seed;
    SimRun run(cfg, WorkloadConfig{.throughput = 150.0});
    run.start();
    run.run_until(3000.0);
    return run.recorder().window_stats(0.0, 3000.0).mean();
  };
  EXPECT_NE(once(1), once(2));
}

TEST(SimRun, AlgorithmNames) {
  EXPECT_STREQ(algorithm_name(Algorithm::kFd), "FD");
  EXPECT_STREQ(algorithm_name(Algorithm::kGm), "GM");
  EXPECT_STREQ(algorithm_name(Algorithm::kGmNonUniform), "GM-nonuniform");
}

}  // namespace
}  // namespace fdgm::core
