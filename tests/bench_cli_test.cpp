// Bench-driver CLI behavior, exercised by shelling out to the fdgm_bench
// binary next to the test (built in the same tree; the tests skip
// gracefully when the bench target was not built).
//
// The contract under test: --trace/--metrics/--critical-path silently
// force --jobs 1 (the export claimant must be deterministic), and the
// stderr warning appears ONLY when the user explicitly passed a
// conflicting --jobs N — an implicit default must not warn.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

const char* bench_path() { return "./fdgm_bench"; }

bool bench_available() { return std::filesystem::exists(bench_path()); }

struct CliResult {
  int status = -1;
  std::string out;
  std::string err;
};

std::string slurp(const std::filesystem::path& p) {
  std::ifstream f(p);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

CliResult run_bench(const std::string& args) {
  // ctest runs each TEST as its own process, possibly concurrently; keep
  // the redirect files (and nothing else) unique per process.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const auto out = dir / ("fdgm_bench_cli_out_" + tag + ".txt");
  const auto err = dir / ("fdgm_bench_cli_err_" + tag + ".txt");
  const std::string cmd = std::string(bench_path()) + " " + args + " >" + out.string() +
                          " 2>" + err.string();
  CliResult r;
  r.status = std::system(cmd.c_str());
  r.out = slurp(out);
  r.err = slurp(err);
  std::filesystem::remove(out);
  std::filesystem::remove(err);
  return r;
}

TEST(BenchCli, ExplicitJobsWithExportWarnsAndOverrides) {
  if (!bench_available()) GTEST_SKIP() << "fdgm_bench not built";
  const auto trace = std::filesystem::temp_directory_path() / "cli_trace.json";
  const CliResult r = run_bench("critical_path --set quick=1 --jobs 4 --trace " +
                                trace.string());
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.err.find("force --jobs 1"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("--jobs 4"), std::string::npos) << r.err;
  EXPECT_TRUE(std::filesystem::exists(trace));
  std::filesystem::remove(trace);
}

TEST(BenchCli, DefaultJobsWithExportStaysSilent) {
  if (!bench_available()) GTEST_SKIP() << "fdgm_bench not built";
  const auto trace = std::filesystem::temp_directory_path() / "cli_trace_silent.json";
  const CliResult r = run_bench("critical_path --set quick=1 --trace " + trace.string());
  EXPECT_EQ(r.status, 0);
  EXPECT_EQ(r.err.find("force --jobs 1"), std::string::npos) << r.err;
  EXPECT_TRUE(std::filesystem::exists(trace));
  std::filesystem::remove(trace);
}

TEST(BenchCli, ExplicitJobsOneWithExportStaysSilent) {
  if (!bench_available()) GTEST_SKIP() << "fdgm_bench not built";
  const auto metrics = std::filesystem::temp_directory_path() / "cli_metrics.csv";
  const CliResult r = run_bench("critical_path --set quick=1 --jobs 1 --metrics " +
                                metrics.string());
  EXPECT_EQ(r.status, 0);
  EXPECT_EQ(r.err.find("force --jobs 1"), std::string::npos) << r.err;
  std::filesystem::remove(metrics);
}

TEST(BenchCli, CriticalPathExportHasCauseColumnsAndFooter) {
  if (!bench_available()) GTEST_SKIP() << "fdgm_bench not built";
  const auto csv = std::filesystem::temp_directory_path() / "cli_critical.csv";
  const CliResult r = run_bench("critical_path --set quick=1 --critical-path " +
                                csv.string());
  EXPECT_EQ(r.status, 0);
  const std::string content = slurp(csv);
  EXPECT_EQ(content.rfind("origin,seq,submit_ms,delivered_ms,latency_ms,", 0), 0u);
  EXPECT_NE(content.find("loss_nack"), std::string::npos);
  EXPECT_NE(content.find("# cause,sum_ms,p50_ms,p99_ms"), std::string::npos);
  std::filesystem::remove(csv);
}

TEST(BenchCli, MetricsPerNodeExportHasNodeColumn) {
  if (!bench_available()) GTEST_SKIP() << "fdgm_bench not built";
  const auto csv = std::filesystem::temp_directory_path() / "cli_per_node.csv";
  const CliResult r = run_bench("critical_path --set quick=1 --metrics-per-node " +
                                csv.string());
  EXPECT_EQ(r.status, 0);
  const std::string content = slurp(csv);
  EXPECT_EQ(content.rfind("t_ms,node,", 0), 0u);
  std::filesystem::remove(csv);
}

}  // namespace
