// Tests of the deterministic RNG streams: reproducibility, independence of
// forks, and distribution properties of the variates the simulation uses.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "util/stats.hpp"

namespace fdgm::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.fork(42);
  Rng fb = b.fork(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksWithDifferentTagsAreIndependent) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (f1.next_u64() == f2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkByLabelMatchesRepeatedCall) {
  Rng base(9);
  Rng f1 = base.fork("workload");
  Rng f2 = base.fork("workload");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork(99);  // forking must not consume parent state
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(5.0, 10.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 10.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    saw_lo |= (x == 0);
    saw_hi |= (x == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  util::RunningStats s;
  const double mean = 25.0;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(mean));
  EXPECT_NEAR(s.mean(), mean, mean * 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), mean, mean * 0.1);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  Rng r(1);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, ExponentialIsMemoryless) {
  // P(X > a+b | X > a) == P(X > b): compare tail fractions.
  Rng r(13);
  const double mean = 10.0;
  int over_a = 0;
  int over_ab = 0;
  int over_b = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(mean);
    if (x > 5.0) ++over_a;
    if (x > 12.0) ++over_ab;
    if (x > 7.0) ++over_b;
  }
  const double cond = static_cast<double>(over_ab) / over_a;
  const double uncond = static_cast<double>(over_b) / n;
  EXPECT_NEAR(cond, uncond, 0.02);
}

}  // namespace
}  // namespace fdgm::sim
