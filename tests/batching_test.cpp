// Submission batching + adaptive flow control (abcast::BatchConfig).
//
// The unbatched bit-identity contract is covered by determinism_test (the
// pre-batching golden hashes must keep passing with the batching machinery
// compiled in).  This file covers the armed side: the credit window and
// its ReadySink release edge, adaptive batch amortization under load,
// deterministic open-loop shedding, and a 5%-loss fuzz showing both stacks
// keep atomic-broadcast safety when submissions travel in batches.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "fault/fault_schedule.hpp"

namespace fdgm::core {
namespace {

abcast::BatchConfig armed(std::size_t credit_window = 64) {
  abcast::BatchConfig b;
  b.enabled = true;
  b.credit_window = credit_window;
  return b;
}

struct ReadyCounter final : abcast::ReadySink {
  int fired = 0;
  net::ProcessId last = -1;
  void on_submit_ready(net::ProcessId p) override {
    ++fired;
    last = p;
  }
};

TEST(Batching, CreditWindowExhaustsAndReadySinkFiresOnRelease) {
  SimConfig cfg;
  cfg.algorithm = Algorithm::kFd;
  cfg.n = 3;
  cfg.seed = 11;
  cfg.batching = armed(/*credit_window=*/4);
  SimRun run(cfg, WorkloadConfig{.throughput = 100.0});

  ReadyCounter ready;
  auto& p0 = run.proc(0);
  p0.set_ready_sink(&ready);

  EXPECT_TRUE(p0.can_submit());
  for (int i = 0; i < 4; ++i) p0.a_broadcast();
  EXPECT_EQ(p0.in_flight(), 4u);
  EXPECT_FALSE(p0.can_submit());
  EXPECT_EQ(ready.fired, 0);

  // Deliveries release credits; the sink fires exactly once, on the edge
  // where the exhausted window reopens.
  run.system().scheduler().run();
  EXPECT_EQ(p0.in_flight(), 0u);
  EXPECT_TRUE(p0.can_submit());
  EXPECT_EQ(ready.fired, 1);
  EXPECT_EQ(ready.last, 0);
}

TEST(Batching, AdaptiveTargetAmortizesOrderingUnderLoad) {
  for (Algorithm algo : {Algorithm::kFd, Algorithm::kGm}) {
    SCOPED_TRACE(algorithm_name(algo));
    SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 5;
    cfg.seed = 21;
    cfg.batching = armed();
    SimRun run(cfg, WorkloadConfig{.throughput = 3000.0});
    run.start();
    run.run_until(2000.0);
    run.workload().stop();
    run.run_until(6000.0);

    // Everything submitted was delivered (flow control shed the rest
    // before it was ever recorded)...
    EXPECT_EQ(run.recorder().undelivered_in_window(0.0, 2000.0), 0u);
    EXPECT_GT(run.workload().generated(), 0u);

    // ...and the ordering work was amortized: fewer flushes than
    // submissions means batches of size > 1 actually formed.
    std::uint64_t flushes = 0;
    for (int p = 0; p < cfg.n; ++p) flushes += run.proc(p).batches_flushed();
    EXPECT_GT(flushes, 0u);
    EXPECT_LT(flushes, run.workload().generated());

    // All processes agree on what was delivered.
    for (int p = 1; p < cfg.n; ++p)
      EXPECT_EQ(run.proc(p).delivered_count(), run.proc(0).delivered_count());
  }
}

TEST(Batching, OpenLoopLoadShedsDeterministically) {
  auto shed_of = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.algorithm = Algorithm::kGm;
    cfg.n = 3;
    cfg.seed = seed;
    cfg.batching = armed(/*credit_window=*/2);
    SimRun run(cfg, WorkloadConfig{.throughput = 4000.0});
    run.start();
    run.run_until(1000.0);
    return std::pair{run.workload().generated(), run.workload().shed()};
  };
  const auto [generated, shed] = shed_of(31);
  EXPECT_GT(generated, 0u);
  EXPECT_GT(shed, 0u);  // a 2-message window cannot absorb 4000 msgs/s
  // Same seed, same counters: shedding is part of the deterministic run.
  EXPECT_EQ(shed_of(31), std::pair(generated, shed));
}

TEST(Batching, ShedIsZeroWithBatchingOff) {
  SimConfig cfg;
  cfg.algorithm = Algorithm::kFd;
  cfg.n = 3;
  cfg.seed = 41;
  SimRun run(cfg, WorkloadConfig{.throughput = 4000.0});
  run.start();
  run.run_until(500.0);
  EXPECT_EQ(run.workload().shed(), 0u);
}

/// Delivery order of one process (5%-loss fuzz below).  Keeps feeding the
/// run's latency recorder, which this sink displaces.
struct Orders final : abcast::DeliverSink {
  SimRun* run = nullptr;
  std::vector<abcast::MsgId> order;
  void on_deliver(const abcast::AppMessage& m) override {
    order.push_back(m.id);
    run->recorder().on_deliver(m, run->system().now());
  }
};

TEST(Batching, LossFuzzKeepsAgreementAndFifoWithBatchesOnTheWire) {
  for (Algorithm algo : {Algorithm::kFd, Algorithm::kGm}) {
    SCOPED_TRACE(algorithm_name(algo));
    SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 3;
    cfg.seed = 777;
    cfg.transport.enabled = true;
    cfg.batching = armed();
    cfg.fd_params.detection_time = 30.0;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLoss;
    e.rate = 0.05;
    e.at = 0.0;
    e.until = 1.0e9;
    cfg.faults.add(e);

    SimRun run(cfg, WorkloadConfig{.throughput = 500.0});
    std::vector<Orders> sinks(3);
    for (int p = 0; p < 3; ++p) {
      sinks[static_cast<std::size_t>(p)].run = &run;
      run.proc(p).set_deliver_sink(&sinks[static_cast<std::size_t>(p)]);
    }
    run.start();
    run.run_until(3000.0);
    run.workload().stop();
    run.run_until(20000.0);

    // Drained: every accepted submission was delivered despite the loss.
    EXPECT_EQ(run.recorder().undelivered_in_window(0.0, 3000.0), 0u);
    ASSERT_FALSE(sinks[0].order.empty());

    // Agreement: all replicas delivered the same total order (same set
    // included).
    EXPECT_EQ(sinks[0].order, sinks[1].order);
    EXPECT_EQ(sinks[0].order, sinks[2].order);

    // Per-origin FIFO survived the batch packing.
    std::vector<std::uint64_t> last_seq(3, 0);
    for (const abcast::MsgId& id : sinks[0].order) {
      auto& last = last_seq[static_cast<std::size_t>(id.origin)];
      EXPECT_LT(last, id.seq);
      last = id.seq;
    }
  }
}

}  // namespace
}  // namespace fdgm::core
