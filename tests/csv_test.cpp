// Tests of the table writer used by the bench driver: aligned text, CSV
// escaping, and the JSON rendering added for machine-readable output.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace fdgm::util {
namespace {

Table sample() {
  Table t({"n", "T [1/s]", "FD [ms]"});
  t.add_row({"3", "100", "12.34"});
  t.add_row({"7", "500", "unstable"});
  return t;
}

TEST(Table, RejectsEmptyHeaderAndRaggedRows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, AddColumnAnnotatesEveryRow) {
  // add_column backs the --profile per-scenario annotations: one value
  // repeated in every existing row, and new rows must match the wider
  // header afterwards.
  Table t = sample();
  t.add_column("Mev/s", "1.23");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "n,T [1/s],FD [ms],Mev/s\n"
            "3,100,12.34,1.23\n"
            "7,500,unstable,1.23\n");
  EXPECT_THROW(t.add_row({"9", "100", "1.0"}), std::invalid_argument);
  t.add_row({"9", "100", "1.0", "2.34"});
  EXPECT_EQ(t.rows(), 3u);
}

TEST(Table, CellFormatsDoubles) {
  EXPECT_EQ(Table::cell(1.2345), "1.23");
  EXPECT_EQ(Table::cell(10.0, 0), "10");
  EXPECT_EQ(Table::cell(std::nan("")), "-");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Table, CsvRoundTripsSample) {
  std::ostringstream os;
  sample().print_csv(os);
  EXPECT_EQ(os.str(), "n,T [1/s],FD [ms]\n3,100,12.34\n7,500,unstable\n");
}

TEST(Table, JsonEmitsNumbersAndStrings) {
  std::ostringstream os;
  sample().print_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"n\": 3, \"T [1/s]\": 100, \"FD [ms]\": 12.34},\n"
            "  {\"n\": 7, \"T [1/s]\": 500, \"FD [ms]\": \"unstable\"}\n"
            "]\n");
}

TEST(Table, JsonEscapesQuotesAndBackslashes) {
  Table t({"k\"ey"});
  t.add_row({"a\\b\nc"});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(), "[\n  {\"k\\\"ey\": \"a\\\\b\\nc\"}\n]\n");
}

TEST(Table, JsonOnlyEmitsStrictJsonNumbersBare) {
  // strtod-isms that are not JSON numbers must stay quoted strings.
  Table t({"a", "b", "c", "d", "e", "f"});
  t.add_row({"+5", "0x1f", ".5", "1.", "007", "-2.5e3"});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"a\": \"+5\", \"b\": \"0x1f\", \"c\": \".5\", \"d\": \"1.\", "
            "\"e\": \"007\", \"f\": -2.5e3}\n"
            "]\n");
}

TEST(Table, JsonEscapesControlCharacters) {
  Table t({"k"});
  t.add_row({std::string("a\rb\x01") + "c"});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(), "[\n  {\"k\": \"a\\u000db\\u0001c\"}\n]\n");
}

TEST(Table, JsonEmptyTableIsEmptyArray) {
  Table t({"a"});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

}  // namespace
}  // namespace fdgm::util
