// Tests of the group-membership based (GM) atomic broadcast: fixed
// sequencer data plane, view changes on crash, view synchrony, wrongly
// excluded processes rejoining via state transfer, the non-uniform
// variant, and property sweeps under random fault schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "abcast/gm_abcast.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"

namespace fdgm::abcast {
namespace {

struct Fixture {
  explicit Fixture(int n, fd::QosParams qp = {}, std::uint64_t seed = 1,
                   GmAbcastConfig cfg = {})
      : sys(n, {}, seed), fd(sys, qp) {
    for (int i = 0; i < n; ++i)
      procs.push_back(std::make_unique<GmAbcastProcess>(sys, i, fd.at(i), cfg));
    fd.start();
  }

  void check_safety(const std::vector<MsgId>& must_deliver = {}) {
    for (const auto& p : procs) {
      std::vector<MsgId> seen;
      for (const auto& m : p->log()) seen.push_back(m->id);
      std::sort(seen.begin(), seen.end());
      EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
          << "duplicate delivery at " << p->id();
    }
    for (std::size_t a = 0; a < procs.size(); ++a) {
      for (std::size_t b = a + 1; b < procs.size(); ++b) {
        const auto& la = procs[a]->log();
        const auto& lb = procs[b]->log();
        const std::size_t k = std::min(la.size(), lb.size());
        for (std::size_t i = 0; i < k; ++i)
          ASSERT_EQ(la[i]->id, lb[i]->id)
              << "order divergence at " << i << " between " << a << " and " << b;
      }
    }
    for (const MsgId& id : must_deliver) {
      for (const auto& p : procs) {
        if (sys.node(p->id()).crashed()) continue;
        const auto& log = p->log();
        EXPECT_TRUE(std::any_of(log.begin(), log.end(),
                                [&](const AppMessagePtr& m) { return m->id == id; }))
            << "message not delivered at correct process " << p->id();
      }
    }
  }

  net::System sys;
  fd::QosFailureDetectorModel fd;
  std::vector<std::unique_ptr<GmAbcastProcess>> procs;
};

TEST(GmAbcast, SingleMessageDeliveredEverywhere) {
  Fixture f(3);
  const MsgId id = f.procs[1]->a_broadcast();
  f.sys.scheduler().run();
  f.check_safety({id});
  for (const auto& p : f.procs) EXPECT_EQ(p->delivered_count(), 1u);
}

TEST(GmAbcast, FailureFreeMessagePatternMatchesFdAlgorithm) {
  // Fig. 1: data + seqnum multicasts, n-1 acks, deliver multicast.
  Fixture f(5);
  f.procs[1]->a_broadcast();
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 3u + 4u);
}

TEST(GmAbcast, SequencerIsFirstViewMember) {
  Fixture f(3);
  EXPECT_TRUE(f.procs[0]->is_sequencer());
  EXPECT_FALSE(f.procs[1]->is_sequencer());
  EXPECT_EQ(f.procs[1]->view().sequencer(), 0);
}

TEST(GmAbcast, ManyMessagesTotalOrder) {
  Fixture f(3);
  std::vector<MsgId> ids;
  for (int round = 0; round < 20; ++round)
    for (auto& p : f.procs) ids.push_back(p->a_broadcast());
  f.sys.scheduler().run();
  f.check_safety(ids);
  EXPECT_EQ(f.procs[0]->log().size(), 60u);
}

TEST(GmAbcast, AggregationUnderBurst) {
  // Messages queued while a batch is in flight ride the next SEQNUM
  // together; the wire cost stays far below per-message signalling.
  Fixture f(3);
  for (int i = 0; i < 30; ++i) f.procs[1]->a_broadcast();
  f.sys.scheduler().run();
  f.check_safety();
  EXPECT_EQ(f.procs[0]->log().size(), 30u);
  // 30 data multicasts + a handful of seqnum/ack/deliver batches.
  EXPECT_LE(f.sys.network().network_uses(), 30u + 30u);
}

TEST(GmAbcast, SequencerCrashTriggersViewChangeAndContinues) {
  fd::QosParams qp;
  qp.detection_time = 20.0;
  Fixture f(3, qp);
  const MsgId before = f.procs[1]->a_broadcast();
  f.sys.scheduler().run_until(50.0);
  f.sys.crash(0);  // sequencer dies
  MsgId after{};
  f.sys.scheduler().schedule_at(60.0, [&] { after = f.procs[2]->a_broadcast(); });
  f.sys.scheduler().run();
  f.check_safety({before, after});
  // Survivors installed a view without p0 and p1 is the new sequencer.
  EXPECT_EQ(f.procs[1]->view().members, (std::vector<net::ProcessId>{1, 2}));
  EXPECT_TRUE(f.procs[1]->is_sequencer());
  EXPECT_GT(f.procs[1]->membership().views_installed(), 0u);
}

TEST(GmAbcast, NonSequencerCrashAlsoShrinksView) {
  // The GM algorithm reacts to the crash of *every* process (§4.4), unlike
  // the FD algorithm which only cares about coordinators.
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(5, qp);
  f.sys.crash(3);
  f.sys.scheduler().run_until(200.0);
  EXPECT_EQ(f.procs[0]->view().members, (std::vector<net::ProcessId>{0, 1, 2, 4}));
  EXPECT_TRUE(f.procs[0]->is_sequencer());
}

TEST(GmAbcast, MessagesInFlightAtViewChangeAreNotLost) {
  fd::QosParams qp;
  qp.detection_time = 15.0;
  Fixture f(5, qp);
  // Broadcast a burst, crash the sequencer while acks are in flight.
  std::vector<MsgId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(f.procs[2]->a_broadcast());
  f.sys.crash_at(0, 5.0);
  f.sys.scheduler().run();
  f.check_safety(ids);
}

TEST(GmAbcast, DeliveryContinuesAcrossMultipleCrashes) {
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(7, qp);
  std::vector<MsgId> ids;
  for (int i = 0; i < 40; ++i) {
    f.sys.scheduler().schedule_at(i * 10.0, [&f, &ids, i] {
      const auto s = static_cast<std::size_t>(3 + i % 4);  // correct senders
      ids.push_back(f.procs[s]->a_broadcast());
    });
  }
  f.sys.crash_at(0, 50.0);
  f.sys.crash_at(1, 150.0);
  f.sys.crash_at(2, 250.0);
  f.sys.scheduler().run();
  f.check_safety(ids);
  EXPECT_EQ(f.procs[3]->view().members, (std::vector<net::ProcessId>{3, 4, 5, 6}));
  EXPECT_EQ(f.procs[3]->log().size(), 40u);
}

TEST(GmAbcast, ViewSequenceIsIdenticalAtAllSurvivors) {
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(5, qp);
  f.sys.crash_at(1, 30.0);
  f.sys.crash_at(3, 80.0);
  f.sys.scheduler().run_until(500.0);
  const auto& v0 = f.procs[0]->view();
  for (int p : {2, 4}) {
    EXPECT_EQ(f.procs[static_cast<std::size_t>(p)]->view().id, v0.id);
    EXPECT_EQ(f.procs[static_cast<std::size_t>(p)]->view().members, v0.members);
  }
  EXPECT_EQ(v0.members, (std::vector<net::ProcessId>{0, 2, 4}));
}

TEST(GmAbcast, WronglyExcludedProcessRejoins) {
  // A single long-lived wrong suspicion of p2 at p0 excludes p2; being
  // correct, p2 must rejoin via state transfer and converge.
  Fixture f(3);
  f.sys.scheduler().schedule_at(20.0, [&] { f.fd.at(0).set_suspected(2, true); });
  f.sys.scheduler().schedule_at(120.0, [&] { f.fd.at(0).set_suspected(2, false); });
  std::vector<MsgId> ids;
  for (int i = 0; i < 30; ++i) {
    f.sys.scheduler().schedule_at(5.0 + i * 10.0, [&f, &ids, i] {
      ids.push_back(f.procs[static_cast<std::size_t>(i % 2)]->a_broadcast());
    });
  }
  f.sys.scheduler().run_until(2000.0);
  // p2 was excluded at some point...
  EXPECT_GE(f.procs[0]->membership().views_installed(), 2u);
  // ...but is back and has the complete log.
  EXPECT_TRUE(f.procs[2]->membership().is_member());
  EXPECT_TRUE(f.procs[2]->view().contains(2));
  f.check_safety(ids);
  EXPECT_EQ(f.procs[2]->log().size(), 30u);
}

TEST(GmAbcast, ExcludedProcessBuffersOwnBroadcasts) {
  Fixture f(3);
  f.sys.scheduler().schedule_at(20.0, [&] { f.fd.at(0).set_suspected(2, true); });
  f.sys.scheduler().schedule_at(200.0, [&] { f.fd.at(0).set_suspected(2, false); });
  // p2 A-broadcasts while (likely) excluded; the message must still be
  // delivered everywhere after the rejoin.
  MsgId while_excluded{};
  f.sys.scheduler().schedule_at(60.0, [&] { while_excluded = f.procs[2]->a_broadcast(); });
  f.sys.scheduler().run_until(3000.0);
  f.check_safety({while_excluded});
}

TEST(GmAbcast, SequencerWronglySuspectedSurvivesButChurns) {
  // A one-sided long wrong suspicion of the sequencer: as the round-1
  // coordinator of the view-change consensus, p0 locks its own proposal
  // (everyone stays) before the suspecter's nack can matter, so it is
  // *not* excluded — but the suspecter keeps re-triggering view changes
  // for the duration of the mistake (the GM algorithm's TM sensitivity).
  Fixture f(3);
  f.sys.scheduler().schedule_at(20.0, [&] { f.fd.at(1).set_suspected(0, true); });
  f.sys.scheduler().schedule_at(300.0, [&] { f.fd.at(1).set_suspected(0, false); });
  std::vector<MsgId> ids;
  for (int i = 0; i < 40; ++i) {
    f.sys.scheduler().schedule_at(5.0 + i * 10.0, [&f, &ids, i] {
      const MsgId id = f.procs[static_cast<std::size_t>(i % 3)]->a_broadcast();
      if (id.seq != 0) ids.push_back(id);
    });
  }
  f.sys.scheduler().run_until(3000.0);
  EXPECT_TRUE(f.procs[0]->membership().is_member());
  EXPECT_TRUE(f.procs[0]->is_sequencer());
  // Many views were installed during the 280 ms mistake...
  EXPECT_GE(f.procs[0]->membership().views_installed(), 5u);
  // ...then the churn stopped (well below one view per mistake-free ms).
  EXPECT_LE(f.procs[0]->membership().views_installed(), 40u);
  f.check_safety(ids);
  EXPECT_EQ(f.procs[0]->log().size(), 40u);
}

TEST(GmAbcast, MemberSuspectedByCoordinatorIsExcludedAndRejoins) {
  // The symmetric case: the suspecter *is* the round-1 coordinator of the
  // view-change consensus (p0), so its proposal — without p2 — wins, and
  // p2 is wrongly excluded.  Being correct, p2 rejoins via state transfer.
  Fixture f(3);
  f.sys.scheduler().schedule_at(20.0, [&] { f.fd.at(0).set_suspected(2, true); });
  f.sys.scheduler().schedule_at(120.0, [&] { f.fd.at(0).set_suspected(2, false); });
  // Right after the first view change decides (~38 ms) p2 is out.  While
  // the suspicion lasts it is repeatedly readmitted and re-excluded (the
  // paper's TM sensitivity); afterwards it stays in.
  f.sys.scheduler().run_until(42.0);
  EXPECT_TRUE(f.procs[2]->membership().is_excluded());
  EXPECT_EQ(f.procs[0]->view().members, (std::vector<net::ProcessId>{0, 1}));
  f.sys.scheduler().run_until(2000.0);
  EXPECT_TRUE(f.procs[2]->membership().is_member());
  // Rejoined at the back of the view.
  EXPECT_EQ(f.procs[0]->view().members, (std::vector<net::ProcessId>{0, 1, 2}));
  f.check_safety();
}

TEST(GmAbcast, UniformityMajorityAckBeforeAnyDelivery) {
  // In the uniform algorithm nobody delivers before the sequencer has a
  // majority of acks: with n=3 the earliest delivery needs data(3ms) +
  // seqnum(3ms) + ack(3ms) = 9ms; the non-uniform variant delivers after
  // data + seqnum = 6ms at the sequencer even earlier.
  struct FirstDeliverySink final : DeliverSink {
    net::System* sys = nullptr;
    double first = -1;
    void on_deliver(const AppMessage&) override {
      if (first < 0) first = sys->now();
    }
  };

  Fixture uni(3);
  uni.procs[1]->a_broadcast();
  FirstDeliverySink first_uni;
  first_uni.sys = &uni.sys;
  for (auto& p : uni.procs) p->set_deliver_sink(&first_uni);
  uni.sys.scheduler().run();
  EXPECT_GE(first_uni.first, 9.0);

  GmAbcastConfig nu;
  nu.uniform = false;
  Fixture non(3, {}, 1, nu);
  non.procs[1]->a_broadcast();
  FirstDeliverySink first_non;
  first_non.sys = &non.sys;
  for (auto& p : non.procs) p->set_deliver_sink(&first_non);
  non.sys.scheduler().run();
  EXPECT_LT(first_non.first, first_uni.first);
}

TEST(GmAbcast, NonUniformVariantKeepsTotalOrderWithoutFailures) {
  GmAbcastConfig nu;
  nu.uniform = false;
  Fixture f(5, {}, 1, nu);
  std::vector<MsgId> ids;
  for (int i = 0; i < 50; ++i) {
    f.sys.scheduler().schedule_at(i * 2.0, [&f, &ids, i] {
      ids.push_back(f.procs[static_cast<std::size_t>(i % 5)]->a_broadcast());
    });
  }
  f.sys.scheduler().run();
  f.check_safety(ids);
  // Two multicasts per message, no acks/delivers: wire usage stays low.
  EXPECT_LE(f.sys.network().network_uses(), 2u * 50u);
}

TEST(GmAbcast, CrashedProcessBroadcastIsNoop) {
  Fixture f(3);
  f.sys.crash(1);
  const MsgId id = f.procs[1]->a_broadcast();
  EXPECT_EQ(id.seq, 0u);
  f.sys.scheduler().run();
  EXPECT_EQ(f.procs[0]->delivered_count(), 0u);
}

TEST(GmAbcast, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    fd::QosParams qp;
    qp.detection_time = 10.0;
    Fixture f(3, qp, seed);
    for (int i = 0; i < 10; ++i)
      f.sys.scheduler().schedule_at(
          i * 3.0, [&f, i] { f.procs[static_cast<std::size_t>(i % 3)]->a_broadcast(); });
    f.sys.crash_at(0, 11.0);
    f.sys.scheduler().run();
    std::vector<MsgId> log;
    for (const auto& m : f.procs[1]->log()) log.push_back(m->id);
    return log;
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

// ------------------------------------------------------------- property

struct Param {
  int n;
  std::uint64_t seed;
  int crashes;
  bool suspicions;
};

class GmAbcastProperty : public ::testing::TestWithParam<Param> {};

TEST_P(GmAbcastProperty, SafetyUnderRandomFaultSchedules) {
  const Param p = GetParam();
  fd::QosParams qp;
  qp.detection_time = 12.0;
  if (p.suspicions) {
    qp.wrong_suspicions = true;
    qp.mistake_recurrence = 400.0;
    qp.mistake_duration = 2.0;
  }
  Fixture f(p.n, qp, p.seed);
  sim::Rng rng(p.seed * 131 + 9);
  std::vector<MsgId> ids;
  for (int i = 0; i < 60; ++i) {
    const double t = rng.uniform(0.0, 300.0);
    const auto sender = static_cast<std::size_t>(rng.uniform_int(0, p.n - 1));
    f.sys.scheduler().schedule_at(t, [&f, &ids, sender] {
      const MsgId id = f.procs[sender]->a_broadcast();
      if (id.seq != 0) ids.push_back(id);
    });
  }
  for (int c = 0; c < p.crashes; ++c) f.sys.crash_at(c, rng.uniform(5.0, 200.0));
  f.sys.scheduler().run_until(30000.0);
  f.check_safety();
  // Liveness for messages from correct senders — but only when crashes and
  // wrong suspicions do not combine: a wrong exclusion shrinks the view,
  // and a real crash on top can exceed f < n/2 *of the current view*,
  // permanently blocking the group.  That is the GM algorithm's
  // documented resiliency limit (paper §5.2 evaluates the two fault types
  // separately for exactly this reason), not a defect to assert against.
  if (p.crashes == 0 || !p.suspicions) {
    std::vector<MsgId> from_correct;
    for (const MsgId& id : ids)
      if (id.origin >= p.crashes) from_correct.push_back(id);
    f.check_safety(from_correct);
  }
}

std::vector<Param> grid() {
  std::vector<Param> out;
  for (int n : {3, 5, 7})
    for (std::uint64_t s : {11ULL, 22ULL, 33ULL, 44ULL})
      for (int crashes : {0, (n - 1) / 2})
        for (bool susp : {false, true}) out.push_back({n, s, crashes, susp});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GmAbcastProperty, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           const auto& p = info.param;
                           return "i" + std::to_string(info.index) + "_n" + std::to_string(p.n) +
                                  "_c" + std::to_string(p.crashes) +
                                  (p.suspicions ? "_susp" : "_clean");
                         });

}  // namespace
}  // namespace fdgm::abcast
