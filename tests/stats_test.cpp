// Tests of the statistics utilities: Welford accumulator, merging,
// Student-t confidence intervals, percentiles and the histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace fdgm::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean() - offset, 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(4), 2.776, 1e-3);
  EXPECT_NEAR(t_critical_95(9), 2.262, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-3);
}

TEST(MeanCi, SingleSampleHasZeroWidth) {
  const MeanCi ci = mean_ci_95({5.0});
  EXPECT_EQ(ci.mean, 5.0);
  EXPECT_EQ(ci.half_width, 0.0);
}

TEST(MeanCi, KnownInterval) {
  // Five samples, mean 10, sample stddev sqrt(2.5); t(4) = 2.776.
  const MeanCi ci = mean_ci_95({8.0, 9.0, 10.0, 11.0, 12.0});
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  const double se = std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci.half_width, 2.776 * se, 1e-3);
  EXPECT_LT(ci.lo(), 10.0);
  EXPECT_GT(ci.hi(), 10.0);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 50), 3.0);
  EXPECT_EQ(percentile(v, 100), 5.0);
  EXPECT_EQ(percentile(v, 25), 2.0);
  EXPECT_NEAR(percentile(v, 90), 4.6, 1e-9);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_EQ(percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(Histogram, CountsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9}) h.add(x);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_NEAR(h.bin_fraction(1), 2.0 / 6.0, 1e-12);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_EQ(h.bin_lo(0), 0.0);
  EXPECT_EQ(h.bin_hi(0), 25.0);
  EXPECT_EQ(h.bin_lo(3), 75.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, EmptyHistogramIsWellDefined) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.render().empty());  // one line per non-empty bucket: none
}

TEST(Histogram, SingleSampleQuantilesAllLandInItsBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.7);
  // With one sample every quantile is that sample's bucket; linear
  // interpolation puts it at the bucket midpoint.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 3.0);
    EXPECT_LT(h.quantile(q), 4.0);
  }
  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(Histogram, OverflowBucketSaturatesAtHi) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(1e9);
  EXPECT_EQ(h.overflow(), 100u);
  EXPECT_EQ(h.count(), 100u);
  // The saturated end carries no position information: every quantile
  // reports the range bound, not the raw value.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  for (int i = 0; i < 100; ++i) h.add(-1e9);
  EXPECT_EQ(h.underflow(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
}

TEST(Histogram, MergeSumsCountsAndSaturatedEnds) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  a.add(-1.0);
  b.add(1.7);
  b.add(8.2);
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(8), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  // b is untouched.
  EXPECT_EQ(b.count(), 3u);
}

TEST(Histogram, MergeRejectsDisjointOrMismatchedRanges) {
  Histogram a(0.0, 10.0, 10);
  Histogram lo(10.0, 20.0, 10);   // disjoint range
  Histogram bins(0.0, 10.0, 20);  // same range, different binning
  EXPECT_THROW(a.merge(lo), std::invalid_argument);
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  // A failed merge must not have partially applied.
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, QuantileInterpolatesAcrossBuckets) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Uniform fill: quantiles track the value range linearly.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

}  // namespace
}  // namespace fdgm::util
