// Unit tests of the discrete-event scheduler: ordering, FIFO ties,
// cancellation, run_until semantics, stop, the guard rails, the
// generation-counted EventId semantics, a 1M-op randomized
// schedule/cancel/fire stress run (exercised under ASan by the CI
// sanitize job) and the zero-allocation steady-state guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <stdexcept>
#include <vector>

#include "sim/scheduler.hpp"

// GCC pairs the malloc-backed operator new below with the free-backed
// operator delete across inlining and flags a false mismatch; the pair
// is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Allocation-counting harness: counts every global operator new in this
// test binary so the steady-state tests can assert the slab scheduler
// performs zero heap allocations per event.
namespace {
std::uint64_t g_alloc_count = 0;
}
void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace fdgm::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.executed(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, ExecutesInTimestampOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(5.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(9.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 9.0);
}

TEST(Scheduler, EqualTimestampsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(3.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  double fired_at = -1;
  s.schedule_at(10.0, [&] { s.schedule_after(5.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Scheduler, RejectsPastAndNegative) {
  Scheduler s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelReturnsFalseForUnknownOrDouble) {
  Scheduler s;
  EventId id = s.schedule_at(1.0, [] {});
  EXPECT_FALSE(s.cancel(9999));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST(Scheduler, CancelledEventDoesNotAdvanceTime) {
  Scheduler s;
  EventId id = s.schedule_at(100.0, [] {});
  s.schedule_at(1.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.now(), 1.0);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) s.schedule_at(t, [&times, &s] { times.push_back(s.now()); });
  s.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), 2.5);
  s.run_until(10.0);
  EXPECT_EQ(times.size(), 4u);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(Scheduler, RunUntilInclusiveOfBoundaryEvents) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilAdvancesTimeWithEmptyQueue) {
  Scheduler s;
  s.run_until(42.0);
  EXPECT_EQ(s.now(), 42.0);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0}) {
    s.schedule_at(t, [&] {
      ++count;
      if (count == 2) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.stopped());
  s.clear_stop();
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, MaxEventsGuard) {
  Scheduler s;
  // A self-rescheduling event would run forever without the guard.
  std::function<void()> loop = [&] { s.schedule_after(1.0, loop); };
  s.schedule_after(1.0, loop);
  const std::uint64_t n = s.run(1000);
  EXPECT_EQ(n, 1000u);
}

TEST(Scheduler, EventsScheduledDuringExecutionAtSameTimeRun) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 1.0);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  // Generation counting: once an event fired, its id must never cancel a
  // later event that happens to reuse the same slab slot.
  Scheduler s;
  int fired = 0;
  EventId a = s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_FALSE(s.cancel(a));
  EventId b = s.schedule_at(2.0, [&] { ++fired; });  // reuses a's slot
  EXPECT_FALSE(s.cancel(a));                         // stale id, live slot
  EXPECT_TRUE(s.cancel(b));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, OversizedCallbackStillWorks) {
  // Callables beyond the inline slab buffer take the heap fallback.
  Scheduler s;
  struct Big {
    double blob[16];
  } big{};
  big.blob[7] = 42.0;
  double seen = 0;
  static_assert(sizeof(Big) > Scheduler::kInlineCallbackBytes);
  EventId id = s.schedule_at(1.0, [big, &seen] { seen = big.blob[7]; });
  s.schedule_at(2.0, [big, &seen] { seen += big.blob[7]; });
  EXPECT_TRUE(s.cancel(id));  // cancellation must destroy the heap copy
  s.run();
  EXPECT_EQ(seen, 42.0);
}

TEST(Scheduler, StressMillionOpsRandomizedCancellation) {
  // 1M schedule/cancel/fire ops with randomized interleaving: every
  // scheduled event either fires exactly once or is cancelled exactly
  // once.  The CI sanitize job runs this under ASan/UBSan, which guards
  // the slab's placement-new/relocate/destroy paths.
  Scheduler s;
  std::mt19937_64 rng(20260729);
  std::vector<EventId> open;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t hits = 0;
  constexpr std::uint64_t kOps = 1'000'000;
  while (scheduled < kOps) {
    const std::uint64_t burst = 1 + rng() % 8;
    for (std::uint64_t i = 0; i < burst && scheduled < kOps; ++i) {
      const double delay = static_cast<double>(rng() % 1000) * 0.1;
      const std::uint64_t token = scheduled;
      open.push_back(
          s.schedule_after(delay, [&hits, token] { hits += 1 + token % 2; }));
      ++scheduled;
    }
    if (!open.empty() && rng() % 4 == 0) {
      const std::size_t idx = rng() % open.size();
      if (s.cancel(open[idx])) ++cancelled;
      open[idx] = open.back();
      open.pop_back();
    }
    if (rng() % 8 == 0) s.run(rng() % 64);  // partial drains interleave
  }
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), scheduled - cancelled);
  EXPECT_GE(hits, s.executed());  // every fired callback ran its body
}

TEST(Scheduler, SteadyStateZeroHeapAllocationsPerEvent) {
  Scheduler s;
  std::uint64_t sink = 0;
  // Realistic ~40-byte capture, like a network pipeline stage closure.
  auto burst = [&s, &sink] {
    Scheduler* sp = &s;
    for (int i = 0; i < 256; ++i) {
      const auto a = static_cast<std::uint64_t>(i);
      s.schedule_after(static_cast<double>(i % 16), [sp, a, &sink] {
        sink += a + sp->executed();
      });
    }
  };
  burst();
  s.run();  // warm-up: heap and slab grow to capacity
  const std::uint64_t before = g_alloc_count;
  for (int round = 0; round < 50; ++round) {
    burst();
    s.run();
  }
  EXPECT_EQ(g_alloc_count - before, 0u) << "scheduler steady state must not allocate";
  EXPECT_GT(sink, 0u);
}

TEST(Scheduler, SteadyStateZeroHeapAllocationsWithCancellation) {
  Scheduler s;
  std::uint64_t sink = 0;
  std::vector<EventId> ids(128);
  auto round = [&] {
    for (int i = 0; i < 128; ++i)
      ids[static_cast<std::size_t>(i)] =
          s.schedule_after(static_cast<double>(i % 16), [&sink] { ++sink; });
    for (int i = 0; i < 128; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
    s.run();
  };
  round();  // warm-up
  const std::uint64_t before = g_alloc_count;
  for (int r = 0; r < 50; ++r) round();
  EXPECT_EQ(g_alloc_count - before, 0u) << "O(1) cancel must not allocate";
}

}  // namespace
}  // namespace fdgm::sim
