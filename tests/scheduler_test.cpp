// Unit tests of the discrete-event scheduler: ordering, FIFO ties,
// cancellation, run_until semantics, stop, the guard rails, the
// generation-counted EventId semantics, a 1M-op randomized
// schedule/cancel/fire stress run (exercised under ASan by the CI
// sanitize job) and the zero-allocation steady-state guarantee.
//
// Every test runs against both pending-queue backends (4-ary heap and
// hierarchical timing wheel) — they are required to be observably
// identical.  The wheel-specific suite at the bottom additionally fuzzes
// cross-backend order equivalence (ties, cancellations, nested schedules
// and far-future overflow spills included).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/exec_ctx.hpp"
#include "sim/scheduler.hpp"

// GCC pairs the malloc-backed operator new below with the free-backed
// operator delete across inlining and flags a false mismatch; the pair
// is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Allocation-counting harness: counts every global operator new in this
// test binary so the steady-state tests can assert the slab scheduler
// performs zero heap allocations per event.  Atomic: the parallel
// backend's worker threads allocate too (their partitions' slab growth),
// and the counter must not itself be a race under TSan.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace fdgm::sim {
namespace {

class SchedulerTest : public ::testing::TestWithParam<SchedulerBackend> {
 protected:
  [[nodiscard]] static SchedulerConfig cfg() { return SchedulerConfig{GetParam()}; }
};

INSTANTIATE_TEST_SUITE_P(Backends, SchedulerTest,
                         ::testing::Values(SchedulerBackend::kHeap, SchedulerBackend::kWheel,
                                           SchedulerBackend::kParallel),
                         [](const auto& info) { return scheduler_backend_name(info.param); });

TEST_P(SchedulerTest, StartsAtTimeZero) {
  Scheduler s(cfg());
  EXPECT_EQ(s.backend(), GetParam());
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.executed(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST_P(SchedulerTest, ExecutesInTimestampOrder) {
  Scheduler s(cfg());
  std::vector<int> order;
  s.schedule_at(5.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(9.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 9.0);
}

TEST_P(SchedulerTest, EqualTimestampsRunFifo) {
  Scheduler s(cfg());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(3.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler s(cfg());
  double fired_at = -1;
  s.schedule_at(10.0, [&] { s.schedule_after(5.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST_P(SchedulerTest, RejectsPastAndNegative) {
  Scheduler s(cfg());
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST_P(SchedulerTest, CancelPreventsExecution) {
  Scheduler s(cfg());
  bool fired = false;
  EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST_P(SchedulerTest, CancelReturnsFalseForUnknownOrDouble) {
  Scheduler s(cfg());
  EventId id = s.schedule_at(1.0, [] {});
  EXPECT_FALSE(s.cancel(9999));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST_P(SchedulerTest, CancelledEventDoesNotAdvanceTime) {
  Scheduler s(cfg());
  EventId id = s.schedule_at(100.0, [] {});
  s.schedule_at(1.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.now(), 1.0);
}

TEST_P(SchedulerTest, ScheduleAfterDrainingPastCancelledFarEvent) {
  // Regression: draining a queue whose tail was cancelled leaves the
  // wheel cursor ahead of now(); a later schedule between now() and the
  // cursor must still work (and fire in order with a new far event).
  Scheduler s(cfg());
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  EventId far = s.schedule_at(100.0, [&] { order.push_back(99); });
  s.cancel(far);
  s.run();
  EXPECT_EQ(s.now(), 1.0);
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(150.0, [&] { order.push_back(3); });
  s.schedule_at(2.0, [&] { order.push_back(4); });  // FIFO tie behind the cursor
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(s.now(), 150.0);
}

TEST_P(SchedulerTest, ScheduleAfterDrainingPastCancelledOverflowEvent) {
  // Same shape through the wheel's overflow heap: the cancelled event
  // sits beyond the top window, so the drain takes the overflow-jump
  // path before finding the queue empty.
  Scheduler s(cfg());
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  EventId far = s.schedule_at(5.0e6, [&] { ++fired; });
  s.cancel(far);
  s.run();
  EXPECT_EQ(s.now(), 1.0);
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 2.0);
}

TEST_P(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler s(cfg());
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) s.schedule_at(t, [&times, &s] { times.push_back(s.now()); });
  s.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), 2.5);
  s.run_until(10.0);
  EXPECT_EQ(times.size(), 4u);
  EXPECT_EQ(s.now(), 10.0);
}

TEST_P(SchedulerTest, RunUntilInclusiveOfBoundaryEvents) {
  Scheduler s(cfg());
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST_P(SchedulerTest, RunUntilAdvancesTimeWithEmptyQueue) {
  Scheduler s(cfg());
  s.run_until(42.0);
  EXPECT_EQ(s.now(), 42.0);
}

TEST_P(SchedulerTest, ScheduleBetweenRunUntilBoundaries) {
  // A peeked-but-not-due event must not block a later schedule that lands
  // before it (regression guard for the wheel cursor's refill path).
  Scheduler s(cfg());
  std::vector<int> order;
  s.schedule_at(100.0, [&] { order.push_back(2); });
  s.run_until(50.0);  // peeks the t=100 event, leaves it pending
  s.schedule_at(60.0, [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(SchedulerTest, StopHaltsRun) {
  Scheduler s(cfg());
  int count = 0;
  for (double t : {1.0, 2.0, 3.0}) {
    s.schedule_at(t, [&] {
      ++count;
      if (count == 2) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.stopped());
  s.clear_stop();
  s.run();
  EXPECT_EQ(count, 3);
}

TEST_P(SchedulerTest, MaxEventsGuard) {
  Scheduler s(cfg());
  // A self-rescheduling event would run forever without the guard.
  std::function<void()> loop = [&] { s.schedule_after(1.0, loop); };
  s.schedule_after(1.0, loop);
  const std::uint64_t n = s.run(1000);
  EXPECT_EQ(n, 1000u);
}

TEST_P(SchedulerTest, EventsScheduledDuringExecutionAtSameTimeRun) {
  Scheduler s(cfg());
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 1.0);
}

TEST_P(SchedulerTest, ExecutedCounter) {
  Scheduler s(cfg());
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST_P(SchedulerTest, PendingCountExcludesCancelled) {
  Scheduler s(cfg());
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
}

TEST_P(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler s(cfg());
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST_P(SchedulerTest, CancelAfterFireReturnsFalse) {
  // Generation counting: once an event fired, its id must never cancel a
  // later event that happens to reuse the same slab slot.
  Scheduler s(cfg());
  int fired = 0;
  EventId a = s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_FALSE(s.cancel(a));
  EventId b = s.schedule_at(2.0, [&] { ++fired; });  // reuses a's slot
  EXPECT_FALSE(s.cancel(a));                         // stale id, live slot
  EXPECT_TRUE(s.cancel(b));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SchedulerTest, OversizedCallbackStillWorks) {
  // Callables beyond the inline slab buffer take the heap fallback.
  Scheduler s(cfg());
  struct Big {
    double blob[16];
  } big{};
  big.blob[7] = 42.0;
  double seen = 0;
  static_assert(sizeof(Big) > Scheduler::kInlineCallbackBytes);
  EventId id = s.schedule_at(1.0, [big, &seen] { seen = big.blob[7]; });
  s.schedule_at(2.0, [big, &seen] { seen += big.blob[7]; });
  EXPECT_TRUE(s.cancel(id));  // cancellation must destroy the heap copy
  s.run();
  EXPECT_EQ(seen, 42.0);
}

TEST_P(SchedulerTest, StressMillionOpsRandomizedCancellation) {
  // 1M schedule/cancel/fire ops with randomized interleaving: every
  // scheduled event either fires exactly once or is cancelled exactly
  // once.  The CI sanitize job runs this under ASan/UBSan, which guards
  // the slab's placement-new/relocate/destroy paths — and, for the wheel
  // backend, the bucket/cascade/overflow record paths.
  Scheduler s(cfg());
  std::mt19937_64 rng(20260729);
  std::vector<EventId> open;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t hits = 0;
  constexpr std::uint64_t kOps = 1'000'000;
  while (scheduled < kOps) {
    const std::uint64_t burst = 1 + rng() % 8;
    for (std::uint64_t i = 0; i < burst && scheduled < kOps; ++i) {
      // Mostly short horizons; one in 512 lands far enough out to cross
      // wheel levels, one in 4096 beyond the top window (overflow spill).
      double delay = static_cast<double>(rng() % 1000) * 0.1;
      if (rng() % 512 == 0) delay += static_cast<double>(rng() % 100'000);
      if (rng() % 4096 == 0) delay += 2.0e6;
      const std::uint64_t token = scheduled;
      open.push_back(s.schedule_after(delay, [&hits, token] { hits += 1 + token % 2; }));
      ++scheduled;
    }
    if (!open.empty() && rng() % 4 == 0) {
      const std::size_t idx = rng() % open.size();
      if (s.cancel(open[idx])) ++cancelled;
      open[idx] = open.back();
      open.pop_back();
    }
    if (rng() % 8 == 0) s.run(rng() % 64);  // partial drains interleave
  }
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), scheduled - cancelled);
  EXPECT_GE(hits, s.executed());  // every fired callback ran its body
}

TEST_P(SchedulerTest, SteadyStateZeroHeapAllocationsPerEvent) {
  Scheduler s(cfg());
  std::uint64_t sink = 0;
  // Realistic ~40-byte capture, like a network pipeline stage closure.
  auto burst = [&s, &sink] {
    Scheduler* sp = &s;
    for (int i = 0; i < 256; ++i) {
      const auto a = static_cast<std::uint64_t>(i);
      s.schedule_after(static_cast<double>(i % 16), [sp, a, &sink] {
        sink += a + sp->executed();
      });
    }
  };
  // Warm-up: heap/slab capacity, and (for the wheel) one full lap of the
  // level-0 slots so every bucket the cursor will revisit has capacity.
  for (int round = 0; round < 4; ++round) {
    burst();
    s.run();
  }
  const std::uint64_t before = g_alloc_count;
  for (int round = 0; round < 50; ++round) {
    burst();
    s.run();
  }
  EXPECT_EQ(g_alloc_count - before, 0u) << "scheduler steady state must not allocate";
  EXPECT_GT(sink, 0u);
}

TEST_P(SchedulerTest, SteadyStateZeroHeapAllocationsWithCancellation) {
  Scheduler s(cfg());
  std::uint64_t sink = 0;
  std::vector<EventId> ids(128);
  auto round = [&] {
    for (int i = 0; i < 128; ++i)
      ids[static_cast<std::size_t>(i)] =
          s.schedule_after(static_cast<double>(i % 16), [&sink] { ++sink; });
    for (int i = 0; i < 128; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
    s.run();
  };
  for (int r = 0; r < 4; ++r) round();  // warm-up (see above)
  const std::uint64_t before = g_alloc_count;
  for (int r = 0; r < 50; ++r) round();
  EXPECT_EQ(g_alloc_count - before, 0u) << "O(1) cancel must not allocate";
}

// ------------------------------------------------------------------- wheel

/// Executes a deterministic randomized load and records every firing as
/// (time, token): N initial events over quantized times (forcing FIFO
/// ties), ~25% cancellations, nested follow-up schedules from inside
/// callbacks, and a far-future slice spilling into the wheel's overflow.
std::vector<std::pair<double, std::uint64_t>> firing_trace(
    SchedulerBackend backend, std::uint64_t seed, double tick = SchedulerConfig{}.wheel_tick_ms) {
  Scheduler s(SchedulerConfig{backend, tick});
  std::mt19937_64 rng(seed);
  std::vector<std::pair<double, std::uint64_t>> fired;
  std::vector<EventId> ids;
  constexpr int kEvents = 4000;
  for (std::uint64_t token = 0; token < kEvents; ++token) {
    double t = static_cast<double>(rng() % 2000) * 0.25;  // quantized: many ties
    if (rng() % 64 == 0) t += static_cast<double>(rng() % 3) * 1.5e6;  // overflow band
    ids.push_back(s.schedule_at(t, [&s, &fired, token] {
      fired.emplace_back(s.now(), token);
      if (token % 3 == 0) {
        const std::uint64_t follow = token + 1'000'000;
        s.schedule_after(static_cast<double>(token % 7) * 0.25,
                         [&s, &fired, follow] { fired.emplace_back(s.now(), follow); });
      }
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 4) s.cancel(ids[i]);
  // Interleave bounded drains with run_until boundaries and late arrivals.
  s.run_until(120.0);
  s.schedule_at(130.5, [&s, &fired] { fired.emplace_back(s.now(), 42'000'000); });
  s.run(500);
  s.run();
  return fired;
}

TEST(SchedulerWheel, FiringOrderBitIdenticalToHeap) {
  for (std::uint64_t seed : {1ull, 7ull, 20260729ull}) {
    const auto heap = firing_trace(SchedulerBackend::kHeap, seed);
    const auto wheel = firing_trace(SchedulerBackend::kWheel, seed);
    ASSERT_EQ(heap.size(), wheel.size()) << "seed " << seed;
    EXPECT_EQ(heap, wheel) << "seed " << seed;
  }
}

TEST(SchedulerWheel, FarFutureOverflowFiresInOrder) {
  // Events far beyond the top wheel window (~17 simulated minutes at the
  // default tick) route through the overflow heap and must still fire in
  // global (t, seq) order, interleaved with near events scheduled later.
  Scheduler s(SchedulerConfig{SchedulerBackend::kWheel});
  std::vector<int> order;
  s.schedule_at(5.0e6, [&] { order.push_back(4); });
  s.schedule_at(2.5e6, [&] { order.push_back(3); });
  s.schedule_at(2.5e6, [&] { order.push_back(5); });  // FIFO tie across windows
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(100.0, [&] {
    order.push_back(2);
    s.schedule_after(6.0e6, [&] { order.push_back(6); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 4, 6}));
  EXPECT_EQ(s.now(), 100.0 + 6.0e6);
}

TEST(SchedulerWheel, CancelAcrossLevelsAndOverflow) {
  Scheduler s(SchedulerConfig{SchedulerBackend::kWheel});
  int fired = 0;
  EventId near = s.schedule_at(0.5, [&] { ++fired; });
  EventId mid = s.schedule_at(500.0, [&] { ++fired; });
  EventId far = s.schedule_at(3.0e6, [&] { ++fired; });
  s.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(near));
  EXPECT_TRUE(s.cancel(mid));
  EXPECT_TRUE(s.cancel(far));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 1.0);  // cancelled far-future events advance nothing
}

TEST(SchedulerWheel, RejectsNonPositiveTick) {
  EXPECT_THROW(Scheduler(SchedulerConfig{SchedulerBackend::kWheel, 0.0}), std::invalid_argument);
  EXPECT_THROW(Scheduler(SchedulerConfig{SchedulerBackend::kWheel, -1.0}), std::invalid_argument);
}

TEST(SchedulerWheel, CoarseAndFineTicksPreserveOrder) {
  // The tick size is a pure performance knob: any value must produce the
  // heap backend's order (buckets re-sort by (t, seq) when drained).
  const auto heap = firing_trace(SchedulerBackend::kHeap, 99);
  for (double tick : {4.0, 0.001})
    EXPECT_EQ(firing_trace(SchedulerBackend::kWheel, 99, tick), heap) << "tick " << tick;
}

// ---------------------------------------------------------------- parallel

// Without partitions every event is shared and kParallel steps serially,
// so the un-owned trace must already be bit-identical to the heap's.
TEST(SchedulerParallel, UnpartitionedFiringOrderBitIdenticalToHeap) {
  for (std::uint64_t seed : {1ull, 7ull, 20260729ull})
    EXPECT_EQ(firing_trace(SchedulerBackend::kParallel, seed),
              firing_trace(SchedulerBackend::kHeap, seed))
        << "seed " << seed;
}

/// Trace recorder whose observation point is the round barrier: on a
/// staging worker the record is deferred and replayed in exact global
/// (time, seq) order, on the sequential backends it runs inline — so a
/// bit-identical trace IS the determinism contract of the round engine,
/// not merely a per-partition projection of it.
struct TraceRec {
  std::vector<std::tuple<double, int, std::uint64_t>>* out = nullptr;
  void record(double t, int owner, std::uint64_t token) { out->emplace_back(t, owner, token); }
  void add(double t, int owner, std::uint64_t token) {
    if (stage_effect<&TraceRec::record>(this, t, owner, token)) return;
    record(t, owner, token);
  }
};

/// Deterministic randomized *owned* load: events spread over `kOwners`
/// node partitions plus a shared slice (the round bounds), quantized
/// times forcing FIFO ties across partitions, ~20% cancellations from the
/// serial context, owner-inherited follow-up schedules fired from inside
/// worker callbacks, and a mid-run run_until boundary.
std::vector<std::tuple<double, int, std::uint64_t>> owned_firing_trace(SchedulerBackend backend,
                                                                       std::uint64_t seed,
                                                                       int threads = 1) {
  SchedulerConfig cfg{backend};
  cfg.threads = threads;
  Scheduler s(cfg);
  constexpr int kOwners = 8;
  if (backend == SchedulerBackend::kParallel) {
    s.set_partitions(kOwners);
    s.set_lookahead([] { return 2.0; });
  }
  std::vector<std::tuple<double, int, std::uint64_t>> fired;
  TraceRec rec{&fired};
  std::mt19937_64 rng(seed);
  std::vector<EventId> ids;
  constexpr std::uint64_t kEvents = 6000;
  for (std::uint64_t token = 0; token < kEvents; ++token) {
    const double t = static_cast<double>(rng() % 4000) * 0.25;  // quantized: many ties
    const int owner =
        rng() % 8 == 0 ? kOwnerShared : static_cast<int>(rng() % static_cast<unsigned>(kOwners));
    ids.push_back(s.schedule_at_owned(owner, t, [&s, &rec, owner, token] {
      rec.add(s.now(), owner, token);
      if (token % 3 == 0) {
        // Inherits the executing event's owner: stays in-partition, which
        // is the in-pass provisional-execution path on a staging worker.
        const std::uint64_t follow = token + 1'000'000;
        s.schedule_after(static_cast<double>(token % 5) * 0.25,
                         [&s, &rec, owner, follow] { rec.add(s.now(), owner, follow); });
      }
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 5) s.cancel(ids[i]);
  s.run_until(300.0);
  s.run_until(1.0e9);
  fired.emplace_back(0.0, -2, s.executed());  // executed-count sentinel
  return fired;
}

// The tentpole contract at scheduler level: the conservative round engine
// (partitioned events, in-pass provisional execution, barrier replay)
// reproduces the heap backend's observable firing order bit for bit, for
// every worker count.  threads = 1 drives the full staging machinery on
// the caller; 2 and 8 add real cross-thread interleavings.
TEST(SchedulerParallel, OwnedFiringOrderBitIdenticalToHeapAcrossThreadCounts) {
  for (std::uint64_t seed : {3ull, 11ull, 20260808ull}) {
    const auto heap = owned_firing_trace(SchedulerBackend::kHeap, seed);
    for (int threads : {1, 2, 8}) {
      const auto par = owned_firing_trace(SchedulerBackend::kParallel, seed, threads);
      ASSERT_EQ(par.size(), heap.size()) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par, heap) << "seed " << seed << " threads " << threads;
    }
  }
}

// Stress shape for the sanitizer jobs (TSan runs this in CI): many more
// owners than workers, so each worker multiplexes several partitions per
// round, across repeated rounds with ties and nested schedules.
TEST(SchedulerParallel, StressManyOwnersFewWorkers) {
  SchedulerConfig cfg{SchedulerBackend::kParallel};
  cfg.threads = 4;
  Scheduler s(cfg);
  constexpr int kOwners = 32;
  s.set_partitions(kOwners);
  s.set_lookahead([] { return 1.0; });
  std::vector<std::tuple<double, int, std::uint64_t>> fired;
  TraceRec rec{&fired};
  std::mt19937_64 rng(77);
  std::uint64_t expected = 0;
  for (std::uint64_t token = 0; token < 20000; ++token) {
    const double t = static_cast<double>(rng() % 8000) * 0.125;
    const int owner = static_cast<int>(rng() % kOwners);
    ++expected;
    if (token % 4 == 0) ++expected;  // follow-up
    s.schedule_at_owned(owner, t, [&s, &rec, owner, token] {
      rec.add(s.now(), owner, token);
      if (token % 4 == 0)
        s.schedule_after(0.125, [&s, &rec, owner, token] { rec.add(s.now(), owner, token); });
    });
  }
  s.run_until(2000.0);
  EXPECT_EQ(s.executed(), expected);
  EXPECT_EQ(fired.size(), expected);
  // Replay order must be globally sorted by time (seq breaks ties within
  // equal times, which the recorder observes through insertion order).
  for (std::size_t i = 1; i < fired.size(); ++i)
    ASSERT_LE(std::get<0>(fired[i - 1]), std::get<0>(fired[i])) << "at " << i;
}

}  // namespace
}  // namespace fdgm::sim
