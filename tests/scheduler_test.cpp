// Unit tests of the discrete-event scheduler: ordering, FIFO ties,
// cancellation, run_until semantics, stop, and the guard rails.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/scheduler.hpp"

namespace fdgm::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.executed(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, ExecutesInTimestampOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(5.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(9.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 9.0);
}

TEST(Scheduler, EqualTimestampsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(3.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  double fired_at = -1;
  s.schedule_at(10.0, [&] { s.schedule_after(5.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Scheduler, RejectsPastAndNegative) {
  Scheduler s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelReturnsFalseForUnknownOrDouble) {
  Scheduler s;
  EventId id = s.schedule_at(1.0, [] {});
  EXPECT_FALSE(s.cancel(9999));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST(Scheduler, CancelledEventDoesNotAdvanceTime) {
  Scheduler s;
  EventId id = s.schedule_at(100.0, [] {});
  s.schedule_at(1.0, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.now(), 1.0);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) s.schedule_at(t, [&times, &s] { times.push_back(s.now()); });
  s.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), 2.5);
  s.run_until(10.0);
  EXPECT_EQ(times.size(), 4u);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(Scheduler, RunUntilInclusiveOfBoundaryEvents) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilAdvancesTimeWithEmptyQueue) {
  Scheduler s;
  s.run_until(42.0);
  EXPECT_EQ(s.now(), 42.0);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0}) {
    s.schedule_at(t, [&] {
      ++count;
      if (count == 2) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.stopped());
  s.clear_stop();
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, MaxEventsGuard) {
  Scheduler s;
  // A self-rescheduling event would run forever without the guard.
  std::function<void()> loop = [&] { s.schedule_after(1.0, loop); };
  s.schedule_after(1.0, loop);
  const std::uint64_t n = s.run(1000);
  EXPECT_EQ(n, 1000u);
}

TEST(Scheduler, EventsScheduledDuringExecutionAtSameTimeRun) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 1.0);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace fdgm::sim
