// Integration tests of the four benchmark scenarios (paper §5.2) — small
// versions of the paper's figures whose qualitative shape is asserted:
//
//   normal-steady:    FD == GM latency (Fig. 4);
//   crash-steady:     latency drops with crashes, GM <= FD (Fig. 5);
//   suspicion-steady: GM collapses at small TMR where FD still works
//                     (Fig. 6) and GM is sensitive to TM (Fig. 7);
//   crash-transient:  overhead a few times the normal latency, FD < GM
//                     (Fig. 8).
#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.hpp"

namespace fdgm::core {
namespace {

SimConfig base(Algorithm a, int n, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.algorithm = a;
  cfg.n = n;
  cfg.seed = seed;
  return cfg;
}

SteadyConfig quick_steady(double T) {
  SteadyConfig sc;
  sc.throughput = T;
  sc.warmup_ms = 1000.0;
  sc.samples = 300;
  sc.replicas = 3;
  sc.max_time_ms = 60000.0;
  return sc;
}

TEST(Scenario, NormalSteadyFdEqualsGm) {
  for (int n : {3, 7}) {
    const PointResult fd = run_steady(base(Algorithm::kFd, n), quick_steady(100.0));
    const PointResult gm = run_steady(base(Algorithm::kGm, n), quick_steady(100.0));
    ASSERT_TRUE(fd.stable);
    ASSERT_TRUE(gm.stable);
    // Identical message pattern => identical latency (same seeds).
    EXPECT_NEAR(fd.latency.mean, gm.latency.mean, 0.2) << "n=" << n;
  }
}

TEST(Scenario, NormalSteadyLatencyGrowsWithLoad) {
  const PointResult lo = run_steady(base(Algorithm::kFd, 3), quick_steady(50.0));
  const PointResult hi = run_steady(base(Algorithm::kFd, 3), quick_steady(500.0));
  ASSERT_TRUE(lo.stable && hi.stable);
  EXPECT_GT(hi.latency.mean, lo.latency.mean);
}

TEST(Scenario, NormalSteadyLatencyGrowsWithN) {
  const PointResult n3 = run_steady(base(Algorithm::kFd, 3), quick_steady(100.0));
  const PointResult n7 = run_steady(base(Algorithm::kFd, 7), quick_steady(100.0));
  ASSERT_TRUE(n3.stable && n7.stable);
  EXPECT_GT(n7.latency.mean, n3.latency.mean);
}

TEST(Scenario, CrashSteadyLatencyDecreasesWithCrashes) {
  // Crashed processes stop loading the network (Fig. 5).
  SimConfig cfg = base(Algorithm::kFd, 7);
  cfg.fd_params.detection_time = 0.0;
  SteadyConfig sc = quick_steady(300.0);
  const PointResult none = run_steady(cfg, sc);
  const PointResult two = run_steady(cfg, sc, {5, 6});
  ASSERT_TRUE(none.stable && two.stable);
  EXPECT_LT(two.latency.mean, none.latency.mean);
}

TEST(Scenario, CrashSteadyGmSlightlyBetterThanFd) {
  // The sequencer waits for a majority of the *shrunken* view, the FD
  // coordinator still needs a majority of n (Fig. 5).
  SimConfig fd_cfg = base(Algorithm::kFd, 7);
  fd_cfg.fd_params.detection_time = 0.0;
  SimConfig gm_cfg = base(Algorithm::kGm, 7);
  gm_cfg.fd_params.detection_time = 0.0;
  SteadyConfig sc = quick_steady(200.0);
  sc.warmup_ms = 2000.0;
  const PointResult fd = run_steady(fd_cfg, sc, {4, 5, 6});
  const PointResult gm = run_steady(gm_cfg, sc, {4, 5, 6});
  ASSERT_TRUE(fd.stable && gm.stable);
  EXPECT_LT(gm.latency.mean, fd.latency.mean);
}

TEST(Scenario, SuspicionSteadyGmCollapsesWhereFdWorks) {
  // Fig. 6, n=3, T=10/s: at TMR = 10 ms the FD algorithm still works
  // while the GM algorithm thrashes on view changes.
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 10.0;
  qp.mistake_duration = 0.0;
  SimConfig fd_cfg = base(Algorithm::kFd, 3);
  fd_cfg.fd_params = qp;
  SimConfig gm_cfg = base(Algorithm::kGm, 3);
  gm_cfg.fd_params = qp;
  SteadyConfig sc = quick_steady(10.0);
  sc.samples = 60;
  sc.max_time_ms = 30000.0;
  const PointResult fd = run_steady(fd_cfg, sc);
  const PointResult gm = run_steady(gm_cfg, sc);
  EXPECT_TRUE(fd.stable);
  // Our GM implementation degrades more gracefully than the paper's
  // ("does not work below TMR = 50 ms"), but it must be clearly worse
  // than the FD algorithm in this regime.
  EXPECT_TRUE(!gm.stable || gm.latency.mean > 1.25 * fd.latency.mean);
}

TEST(Scenario, SuspicionSteadyGmWorseThanFdAtModerateTmr) {
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 500.0;
  qp.mistake_duration = 0.0;
  SimConfig fd_cfg = base(Algorithm::kFd, 3);
  fd_cfg.fd_params = qp;
  SimConfig gm_cfg = base(Algorithm::kGm, 3);
  gm_cfg.fd_params = qp;
  SteadyConfig sc = quick_steady(10.0);
  sc.samples = 100;
  sc.min_window_ms = 5000.0;
  const PointResult fd = run_steady(fd_cfg, sc);
  const PointResult gm = run_steady(gm_cfg, sc);
  ASSERT_TRUE(fd.stable);
  if (gm.stable) {
    EXPECT_GT(gm.latency.mean, fd.latency.mean);
  }
}

TEST(Scenario, SuspicionSteadyGmSensitiveToMistakeDuration) {
  // Fig. 7: growing TM hurts the GM algorithm (repeated exclusions and
  // rejoins) while the FD algorithm stays usable.
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 1000.0;
  qp.mistake_duration = 100.0;
  SimConfig fd_cfg = base(Algorithm::kFd, 3);
  fd_cfg.fd_params = qp;
  SimConfig gm_cfg = base(Algorithm::kGm, 3);
  gm_cfg.fd_params = qp;
  SteadyConfig sc = quick_steady(10.0);
  sc.samples = 100;
  sc.min_window_ms = 5000.0;
  const PointResult fd = run_steady(fd_cfg, sc);
  const PointResult gm = run_steady(gm_cfg, sc);
  ASSERT_TRUE(fd.stable);
  if (gm.stable) {
    EXPECT_GT(gm.latency.mean, 1.5 * fd.latency.mean);
  }
}

TEST(Scenario, CrashTransientFdBeatsGm) {
  // Fig. 8: after the crash of the coordinator/sequencer the FD algorithm
  // recovers with one extra consensus round; the GM algorithm pays a full
  // view change.
  for (double td : {0.0, 10.0}) {
    SimConfig fd_cfg = base(Algorithm::kFd, 3);
    fd_cfg.fd_params.detection_time = td;
    SimConfig gm_cfg = base(Algorithm::kGm, 3);
    gm_cfg.fd_params.detection_time = td;
    TransientConfig tc;
    tc.throughput = 50.0;
    tc.replicas = 8;
    tc.crash = 0;
    tc.sender = 1;
    const TransientResult fd = run_transient(fd_cfg, tc);
    const TransientResult gm = run_transient(gm_cfg, tc);
    ASSERT_TRUE(fd.stable && gm.stable) << td;
    EXPECT_LT(fd.latency.mean, gm.latency.mean) << "TD=" << td;
    // Latency always exceeds the detection time.
    EXPECT_GE(fd.latency.mean, td);
    EXPECT_GE(gm.latency.mean, td);
  }
}

TEST(Scenario, CrashTransientOverheadIsModest) {
  // "The latency overhead of both algorithms is only a few times higher
  // than the latency in the normal-steady scenario" (§7).
  SimConfig cfg = base(Algorithm::kFd, 3);
  cfg.fd_params.detection_time = 10.0;
  TransientConfig tc;
  tc.throughput = 50.0;
  tc.replicas = 8;
  const TransientResult t = run_transient(cfg, tc);
  const PointResult steady = run_steady(base(Algorithm::kFd, 3), quick_steady(50.0));
  ASSERT_TRUE(t.stable && steady.stable);
  const double overhead = t.latency.mean - 10.0;
  EXPECT_LT(overhead, 6.0 * steady.latency.mean);
}

TEST(Scenario, TransientWorstSenderPicksMaximum) {
  SimConfig cfg = base(Algorithm::kFd, 3);
  cfg.fd_params.detection_time = 10.0;
  TransientConfig tc;
  tc.throughput = 50.0;
  tc.replicas = 4;
  tc.crash = 0;
  const TransientResult worst = run_transient_worst_sender(cfg, tc);
  ASSERT_TRUE(worst.stable);
  for (net::ProcessId q : {1, 2}) {
    tc.sender = q;
    const TransientResult r = run_transient(cfg, tc);
    EXPECT_LE(r.latency.mean, worst.latency.mean + 1e-9);
  }
}

TEST(Scenario, UnstablePointReportsNan) {
  // Far beyond saturation the runner must flag instability, not hang.
  SteadyConfig sc = quick_steady(5000.0);
  sc.max_time_ms = 20000.0;
  sc.replicas = 2;
  const PointResult r = run_steady(base(Algorithm::kFd, 3), sc);
  EXPECT_FALSE(r.stable);
  EXPECT_TRUE(std::isnan(r.latency.mean));
}

}  // namespace
}  // namespace fdgm::core
