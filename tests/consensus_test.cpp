// Tests of the Chandra-Toueg ◇S consensus: agreement / validity /
// termination in failure-free runs, coordinator crash handling, wrong
// suspicions, message-pattern checks (Fig. 1), the re-numbering offset,
// and randomized property sweeps over crash/suspicion schedules.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/chandra_toueg.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::consensus {
namespace {

class Value final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 34;
  explicit Value(int v) : Payload(kProto, kKind), v(v) {}
  int v;
};

int value_of(net::PayloadPtr p) {
  const Value* v = net::payload_cast<Value>(p);
  return v != nullptr ? v->v : -1;
}

constexpr std::uint32_t kCtx = 0;

struct Fixture {
  explicit Fixture(int n, fd::QosParams qp = {}, std::uint64_t seed = 1)
      : sys(n, {}, seed), fd(sys, qp) {
    decisions.assign(static_cast<std::size_t>(n), {});
    for (int i = 0; i < n; ++i) {
      rbs.push_back(std::make_unique<rbcast::ReliableBroadcast>(sys, i, fd.at(i)));
      services.push_back(std::make_unique<ConsensusService>(sys, i, fd.at(i), *rbs.back()));
      auto* slot = &decisions[static_cast<std::size_t>(i)];
      services.back()->register_context(
          kCtx, ConsensusService::ContextConfig{
                    .join = [this, i](const InstanceKey&) -> std::optional<StartInfo> {
                      // Late joiners propose their process id by default.
                      return StartInfo{&sys.all(), 0, sys.arena().make<Value>(100 + i)};
                    },
                    .on_decide =
                        [slot](const InstanceKey& key, const net::PayloadPtr& v) {
                          slot->emplace(key.number, value_of(v));
                        },
                });
    }
    fd.start();
  }

  /// Every process proposes `base + its id` for instance k.
  void propose_all(std::uint64_t k, int base = 0, int offset = 0) {
    for (int i = 0; i < sys.n(); ++i) {
      if (sys.node(i).crashed()) continue;
      services[static_cast<std::size_t>(i)]->start(
          InstanceKey{kCtx, k},
          StartInfo{&sys.all(), offset, sys.arena().make<Value>(base + i)});
    }
  }

  /// Checks uniform agreement for instance k among processes that decided;
  /// returns the decided value.
  int check_agreement(std::uint64_t k) {
    std::optional<int> decided;
    for (int i = 0; i < sys.n(); ++i) {
      auto it = decisions[static_cast<std::size_t>(i)].find(k);
      if (it == decisions[static_cast<std::size_t>(i)].end()) continue;
      if (!decided)
        decided = it->second;
      else
        EXPECT_EQ(*decided, it->second) << "disagreement at process " << i;
    }
    EXPECT_TRUE(decided.has_value()) << "nobody decided instance " << k;
    return decided.value_or(-1);
  }

  [[nodiscard]] std::size_t deciders(std::uint64_t k) const {
    std::size_t c = 0;
    for (const auto& d : decisions) c += d.contains(k);
    return c;
  }

  net::System sys;
  fd::QosFailureDetectorModel fd;
  std::vector<std::unique_ptr<rbcast::ReliableBroadcast>> rbs;
  std::vector<std::unique_ptr<ConsensusService>> services;
  std::vector<std::map<std::uint64_t, int>> decisions;
};

TEST(Consensus, FailureFreeDecidesCoordinatorValue) {
  Fixture f(3);
  f.propose_all(1);
  f.sys.scheduler().run();
  // Round-1 coordinator with offset 0 is p0; its value must win (validity:
  // it proposes its own initial value in the optimized first round).
  EXPECT_EQ(f.check_agreement(1), 0);
  EXPECT_EQ(f.deciders(1), 3u);
}

TEST(Consensus, AllDecideForVariousN) {
  for (int n : {1, 2, 3, 4, 5, 7, 9}) {
    Fixture f(n);
    f.propose_all(1);
    f.sys.scheduler().run();
    EXPECT_EQ(f.deciders(1), static_cast<std::size_t>(n)) << "n=" << n;
    f.check_agreement(1);
  }
}

TEST(Consensus, OffsetSelectsRoundOneCoordinator) {
  Fixture f(5);
  f.propose_all(1, 0, /*offset=*/3);
  f.sys.scheduler().run();
  EXPECT_EQ(f.check_agreement(1), 3);
}

TEST(Consensus, FailureFreeMessagePattern) {
  // Fig. 1: one proposal multicast, n-1 unicast acks, one decision
  // multicast (the initial data dissemination belongs to abcast, not
  // consensus).  Total wire slots: 2 multicasts + (n-1) unicasts.
  Fixture f(5);
  f.propose_all(1);
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 2u + 4u);
}

TEST(Consensus, CoordinatorCrashBeforeProposeTriggersRoundTwo) {
  fd::QosParams qp;
  qp.detection_time = 20.0;
  Fixture f(3, qp);
  f.sys.crash(0);  // round-1 coordinator dead from the start
  f.propose_all(1);
  f.sys.scheduler().run();
  EXPECT_EQ(f.deciders(1), 2u);
  // Round 2's coordinator is p1; its estimate (its own initial, since no
  // value was locked) must win.
  EXPECT_EQ(f.check_agreement(1), 1);
}

TEST(Consensus, CoordinatorCrashAfterProposeStillDecides) {
  fd::QosParams qp;
  qp.detection_time = 50.0;
  Fixture f(5, qp);
  f.propose_all(1);
  // Let the proposal go out (it is on the CPU/wire within ~3ms), then
  // crash the coordinator before it can collect acks.
  f.sys.scheduler().run_until(2.0);
  f.sys.crash(0);
  f.sys.scheduler().run();
  ASSERT_EQ(f.deciders(1), 4u);
  // Agreement must hold regardless of which round decided.
  f.check_agreement(1);
}

TEST(Consensus, DecisionReachesLateJoiner) {
  // p2 never proposes explicitly; it joins when consensus traffic arrives,
  // and must still learn the decision.
  Fixture f(3);
  for (int i : {0, 1})
    f.services[static_cast<std::size_t>(i)]->start(
        InstanceKey{kCtx, 1}, StartInfo{&f.sys.all(), 0, f.sys.arena().make<Value>(i)});
  f.sys.scheduler().run();
  EXPECT_EQ(f.deciders(1), 3u);
  f.check_agreement(1);
}

TEST(Consensus, SingleWrongSuspicionDoesNotKillTheRound) {
  // One process nacks (wrong suspicion of the coordinator) but the
  // coordinator still gathers a majority of acks and decides in round 1.
  Fixture f(5);
  f.propose_all(1);
  // Inject a wrong suspicion at p4 right after the proposal is sent.
  f.sys.scheduler().schedule_at(4.0, [&] {
    f.fd.at(4).set_suspected(0, true);
    f.fd.at(4).set_suspected(0, false);
  });
  f.sys.scheduler().run();
  EXPECT_EQ(f.deciders(1), 5u);
  EXPECT_EQ(f.check_agreement(1), 0);
}

TEST(Consensus, MajorityWrongSuspicionsStillAgree) {
  Fixture f(5);
  f.propose_all(1);
  f.sys.scheduler().schedule_at(4.0, [&] {
    for (int q = 1; q < 5; ++q) {
      f.fd.at(q).set_suspected(0, true);
      f.fd.at(q).set_suspected(0, false);
    }
  });
  f.sys.scheduler().run();
  EXPECT_GE(f.deciders(1), 5u);
  f.check_agreement(1);
}

TEST(Consensus, ConcurrentInstancesAreIndependent) {
  Fixture f(3);
  f.propose_all(1, 10);
  f.propose_all(2, 20);
  f.propose_all(3, 30);
  f.sys.scheduler().run();
  EXPECT_EQ(f.check_agreement(1), 10);
  EXPECT_EQ(f.check_agreement(2), 20);
  EXPECT_EQ(f.check_agreement(3), 30);
}

TEST(Consensus, TwoProcessSystemToleratesNoCrashButDecides) {
  Fixture f(2);
  f.propose_all(1);
  f.sys.scheduler().run();
  EXPECT_EQ(f.deciders(1), 2u);
  EXPECT_EQ(f.check_agreement(1), 0);
}

TEST(Consensus, DecidedInstanceIgnoresStragglers) {
  Fixture f(3);
  f.propose_all(1);
  f.sys.scheduler().run();
  EXPECT_TRUE(f.services[0]->decided(InstanceKey{kCtx, 1}));
  EXPECT_FALSE(f.services[0]->running(InstanceKey{kCtx, 1}));
  // Restarting a decided instance is a no-op.
  f.services[0]->start(InstanceKey{kCtx, 1},
                       StartInfo{&f.sys.all(), 0, f.sys.arena().make<Value>(99)});
  f.sys.scheduler().run();
  EXPECT_EQ(f.decisions[0].at(1), 0);
}

TEST(Consensus, ValidityDecisionIsSomeProposal) {
  // Under arbitrary wrong suspicions the decided value must still be one
  // of the proposed values.
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 30.0;
  qp.mistake_duration = 5.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Fixture f(5, qp, seed);
    f.propose_all(1, 10);
    f.sys.scheduler().run_until(20000.0);
    if (f.deciders(1) == 0) continue;  // extreme schedules may stall; safety only
    const int v = f.check_agreement(1);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 15);
  }
}

// ---------------------------------------------------------------- property

struct PropertyParam {
  int n;
  std::uint64_t seed;
  int crashes;        // crashed during the run (minority)
  bool suspicions;    // wrong suspicions enabled
};

class ConsensusProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(ConsensusProperty, UniformAgreementValidityTermination) {
  const PropertyParam p = GetParam();
  fd::QosParams qp;
  qp.detection_time = 15.0;
  if (p.suspicions) {
    qp.wrong_suspicions = true;
    qp.mistake_recurrence = 60.0;
    qp.mistake_duration = 2.0;
  }
  Fixture f(p.n, qp, p.seed);
  f.propose_all(1, 10);
  // Crash a minority at staggered random-ish times derived from the seed.
  sim::Rng rng(p.seed);
  for (int c = 0; c < p.crashes; ++c) {
    const auto victim = static_cast<net::ProcessId>(c);  // includes coordinator p0
    f.sys.crash_at(victim, 1.0 + rng.uniform(0.0, 25.0));
  }
  f.sys.scheduler().run_until(20000.0);

  // Termination: every correct process decides (with a live majority).
  std::size_t correct = 0;
  for (int i = 0; i < p.n; ++i) correct += !f.sys.node(i).crashed();
  ASSERT_GT(correct * 2, static_cast<std::size_t>(p.n));
  std::size_t correct_deciders = 0;
  for (int i = 0; i < p.n; ++i)
    if (!f.sys.node(i).crashed() && f.decisions[static_cast<std::size_t>(i)].contains(1))
      ++correct_deciders;
  EXPECT_EQ(correct_deciders, correct);

  // Uniform agreement (includes decisions at processes that later crashed)
  // and validity.
  const int v = f.check_agreement(1);
  EXPECT_GE(v, 10);
  EXPECT_LT(v, 10 + p.n);
}

std::vector<PropertyParam> property_grid() {
  std::vector<PropertyParam> out;
  for (int n : {3, 5, 7})
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL})
      for (int crashes : {0, 1, (n - 1) / 2})
        for (bool susp : {false, true})
          out.push_back({n, seed * 17 + static_cast<std::uint64_t>(crashes), crashes, susp});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsensusProperty, ::testing::ValuesIn(property_grid()),
                         [](const ::testing::TestParamInfo<PropertyParam>& info) {
                           const auto& p = info.param;
                           return "i" + std::to_string(info.index) + "_n" + std::to_string(p.n) +
                                  "_c" + std::to_string(p.crashes) +
                                  (p.suspicions ? "_susp" : "_clean");
                         });

}  // namespace
}  // namespace fdgm::consensus
