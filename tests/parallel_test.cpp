// Tests of the parallel experiment engine: pool basics, fan-out ordering,
// exception propagation, and the determinism contract — run_steady /
// run_transient produce bit-identical results for every job count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "core/runner.hpp"

namespace fdgm::core {
namespace {

TEST(EffectiveJobs, ZeroMeansHardware) {
  EXPECT_GE(effective_jobs(0), 1u);
  EXPECT_EQ(effective_jobs(1), 1u);
  EXPECT_EQ(effective_jobs(7), 7u);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  }  // ~ThreadPool joins after the queue drained
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const auto out = parallel_map(100, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(SharedPool, ReusedAcrossSequentialFanOutsCoversEveryIndex) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(123);
    parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(pool.workers(), 4u);
}

TEST(SharedPool, MapMatchesSequentialAndPropagatesExceptions) {
  ThreadPool pool(3);
  const auto out = parallel_map(pool, 64, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
  EXPECT_THROW(parallel_for(pool, 16,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool survives a throwing fan-out and keeps serving.
  const auto again = parallel_map(pool, 8, [](std::size_t i) { return i; });
  for (std::size_t i = 0; i < again.size(); ++i) EXPECT_EQ(again[i], i);
}

SteadyConfig small_steady(std::size_t jobs) {
  SteadyConfig sc;
  sc.throughput = 100.0;
  sc.warmup_ms = 500.0;
  sc.samples = 80;
  sc.replicas = 4;
  sc.max_time_ms = 30000.0;
  sc.jobs = jobs;
  return sc;
}

TEST(RunnerParallel, SteadyIdenticalAcrossJobCounts) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 42;
  const PointResult seq = run_steady(cfg, small_steady(1));
  ASSERT_TRUE(seq.stable);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const PointResult par = run_steady(cfg, small_steady(jobs));
    ASSERT_TRUE(par.stable) << "jobs=" << jobs;
    // Bit-identical, not approximately equal: same seeds, same reduction
    // order, no shared state between replicas.
    EXPECT_EQ(seq.latency.mean, par.latency.mean) << "jobs=" << jobs;
    EXPECT_EQ(seq.latency.half_width, par.latency.half_width) << "jobs=" << jobs;
    EXPECT_EQ(seq.total_samples, par.total_samples) << "jobs=" << jobs;
  }
}

TEST(RunnerParallel, TransientIdenticalAcrossJobCounts) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 7;
  cfg.fd_params.detection_time = 10.0;
  TransientConfig tc;
  tc.throughput = 50.0;
  tc.replicas = 6;
  tc.jobs = 1;
  const TransientResult seq = run_transient(cfg, tc);
  ASSERT_TRUE(seq.stable);
  tc.jobs = 4;
  const TransientResult par = run_transient(cfg, tc);
  ASSERT_TRUE(par.stable);
  EXPECT_EQ(seq.latency.mean, par.latency.mean);
  EXPECT_EQ(seq.latency.half_width, par.latency.half_width);
}

TEST(RunnerParallel, WorstSenderIdenticalAcrossJobCounts) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 11;
  cfg.fd_params.detection_time = 10.0;
  TransientConfig tc;
  tc.throughput = 50.0;
  tc.replicas = 4;
  tc.crash = 0;
  tc.jobs = 1;
  const TransientResult seq = run_transient_worst_sender(cfg, tc);
  ASSERT_TRUE(seq.stable);
  tc.jobs = 4;
  const TransientResult par = run_transient_worst_sender(cfg, tc);
  ASSERT_TRUE(par.stable);
  EXPECT_EQ(seq.latency.mean, par.latency.mean);
  EXPECT_EQ(seq.latency.half_width, par.latency.half_width);
}

TEST(RunnerParallel, UnstablePointStillFlaggedWhenParallel) {
  SteadyConfig sc = small_steady(4);
  sc.throughput = 5000.0;  // far beyond saturation
  sc.replicas = 2;
  sc.max_time_ms = 20000.0;
  SimConfig cfg;
  cfg.n = 3;
  const PointResult r = run_steady(cfg, sc);
  EXPECT_FALSE(r.stable);
  EXPECT_TRUE(std::isnan(r.latency.mean));
}

}  // namespace
}  // namespace fdgm::core
