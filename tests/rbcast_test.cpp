// Tests of the reliable broadcast layer: single-multicast fast path,
// duplicate suppression, relay on suspicion, garbage collection, and
// client-tag routing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "rbcast/reliable_broadcast.hpp"

namespace fdgm::rbcast {
namespace {

constexpr int kTag = 1;

class Body final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 33;
  explicit Body(int v) : Payload(kProto, kKind), value(v) {}
  int value;
};

struct Fixture {
  explicit Fixture(int n, fd::QosParams qp = {}) : sys(n, {}, 1), fd(sys, qp) {
    deliveries.reserve(static_cast<std::size_t>(n));  // lambdas keep pointers
    for (int i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<ReliableBroadcast>(sys, i, fd.at(i)));
      auto* log = &deliveries.emplace_back();
      stacks.back()->register_client(
          kTag, [log](const RbId&, net::ProcessId origin, net::PayloadPtr p) {
            const Body* b = net::payload_cast<Body>(p);
            log->emplace_back(origin, b != nullptr ? b->value : -1);
          });
    }
    fd.start();
  }

  net::System sys;
  fd::QosFailureDetectorModel fd;
  std::vector<std::unique_ptr<ReliableBroadcast>> stacks;
  std::vector<std::vector<std::pair<net::ProcessId, int>>> deliveries;
};

TEST(Rbcast, EveryoneDeliversOnce) {
  Fixture f(4);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(7));
  f.sys.scheduler().run();
  for (int p = 0; p < 4; ++p) {
    ASSERT_EQ(f.deliveries[static_cast<std::size_t>(p)].size(), 1u) << p;
    EXPECT_EQ(f.deliveries[static_cast<std::size_t>(p)][0], std::make_pair(0, 7));
  }
}

TEST(Rbcast, FailureFreeCostsOneWireSlot) {
  Fixture f(5);
  f.stacks[2]->broadcast(kTag, f.sys.arena().make<Body>(1));
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 1u);
  for (const auto& st : f.stacks) EXPECT_EQ(st->relays(), 0u);
}

TEST(Rbcast, SenderDeliversLocallyImmediately) {
  Fixture f(3);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(5));
  // Before running the scheduler at all: local delivery already happened.
  EXPECT_EQ(f.deliveries[0].size(), 1u);
  f.sys.scheduler().run();
  EXPECT_EQ(f.deliveries[0].size(), 1u);  // self copy deduplicated
}

TEST(Rbcast, OrderPreservedPerOrigin) {
  Fixture f(3);
  for (int i = 0; i < 5; ++i) f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(i));
  f.sys.scheduler().run();
  for (int p = 0; p < 3; ++p) {
    ASSERT_EQ(f.deliveries[static_cast<std::size_t>(p)].size(), 5u);
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(f.deliveries[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)].second, i);
  }
}

TEST(Rbcast, SuspicionTriggersRelay) {
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(3, qp);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(3));
  f.sys.scheduler().run();
  f.sys.crash(0);
  f.sys.scheduler().run();  // detection at +10ms -> relays fire
  std::uint64_t total_relays = 0;
  for (const auto& st : f.stacks) total_relays += st->relays();
  EXPECT_EQ(total_relays, 2u);  // p1 and p2 each relay once
  // Still delivered exactly once everywhere.
  for (int p = 1; p < 3; ++p) EXPECT_EQ(f.deliveries[static_cast<std::size_t>(p)].size(), 1u);
}

TEST(Rbcast, RelayHappensAtMostOncePerMessage) {
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 50.0;
  qp.mistake_duration = 1.0;
  Fixture f(3, qp);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(3));
  f.sys.scheduler().run_until(5000.0);  // many suspicion edges of p0
  EXPECT_LE(f.stacks[1]->relays(), 1u);
  EXPECT_LE(f.stacks[2]->relays(), 1u);
  EXPECT_EQ(f.deliveries[1].size(), 1u);
}

TEST(Rbcast, ReleasedMessagesAreNotRelayed) {
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(3, qp);
  RbId seen_id{};
  // Re-register a client on stack 1 that releases immediately: use a
  // separate tag to keep the fixture's logging client.
  f.stacks[1]->register_client(2, [&](const RbId& id, net::ProcessId, const net::PayloadPtr&) {
    seen_id = id;
    f.stacks[1]->release(id);
  });
  f.stacks[0]->register_client(2, [](const RbId&, net::ProcessId, const net::PayloadPtr&) {});
  f.stacks[2]->register_client(2, [](const RbId&, net::ProcessId, const net::PayloadPtr&) {});
  f.stacks[0]->broadcast(2, f.sys.arena().make<Body>(9));
  f.sys.scheduler().run();
  EXPECT_EQ(f.stacks[1]->retained(), 0u);
  f.sys.crash(0);
  f.sys.scheduler().run();
  EXPECT_EQ(f.stacks[1]->relays(), 0u);
  EXPECT_EQ(f.stacks[2]->relays(), 1u);  // did not release, so it relays
}

TEST(Rbcast, GroupBroadcastReachesGroupOnly) {
  Fixture f(4);
  f.stacks[0]->broadcast_group(kTag, {0, 1, 2}, f.sys.arena().make<Body>(1));
  f.sys.scheduler().run();
  EXPECT_EQ(f.deliveries[0].size(), 1u);
  EXPECT_EQ(f.deliveries[1].size(), 1u);
  EXPECT_EQ(f.deliveries[2].size(), 1u);
  EXPECT_TRUE(f.deliveries[3].empty());
}

TEST(Rbcast, DistinctClientTagsAreIsolated) {
  Fixture f(2);
  std::vector<int> tag2;
  f.stacks[0]->register_client(2, [](const RbId&, net::ProcessId, const net::PayloadPtr&) {});
  f.stacks[1]->register_client(2, [&](const RbId&, net::ProcessId, const net::PayloadPtr& p) {
    tag2.push_back(net::payload_cast<Body>(p)->value);
  });
  f.stacks[0]->broadcast(2, f.sys.arena().make<Body>(77));
  f.sys.scheduler().run();
  EXPECT_EQ(tag2, (std::vector<int>{77}));
  EXPECT_TRUE(f.deliveries[1].empty());  // kTag client saw nothing
}

TEST(Rbcast, DuplicateClientTagRejected) {
  Fixture f(2);
  EXPECT_THROW(f.stacks[0]->register_client(
                   kTag, [](const RbId&, net::ProcessId, const net::PayloadPtr&) {}),
               std::logic_error);
}

TEST(Rbcast, RetainedCountTracksLifecycle) {
  Fixture f(2);
  EXPECT_EQ(f.stacks[1]->retained(), 0u);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(1));
  f.sys.scheduler().run();
  EXPECT_EQ(f.stacks[1]->retained(), 1u);
}

TEST(Rbcast, CrashedReceiverDoesNotDeliver) {
  Fixture f(3);
  f.sys.crash(2);
  f.stacks[0]->broadcast(kTag, f.sys.arena().make<Body>(4));
  f.sys.scheduler().run();
  EXPECT_TRUE(f.deliveries[2].empty());
  EXPECT_EQ(f.deliveries[1].size(), 1u);
}

TEST(Rbcast, ManyOriginsInterleaved) {
  Fixture f(3);
  for (int round = 0; round < 10; ++round)
    for (int p = 0; p < 3; ++p)
      f.stacks[static_cast<std::size_t>(p)]->broadcast(kTag, f.sys.arena().make<Body>(round));
  f.sys.scheduler().run();
  for (int p = 0; p < 3; ++p) EXPECT_EQ(f.deliveries[static_cast<std::size_t>(p)].size(), 30u);
}

}  // namespace
}  // namespace fdgm::rbcast
