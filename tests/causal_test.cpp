// Causal tracing tests: armed-causal invisibility (same golden delivery
// hashes and executed-event counts as a disarmed run, on every scheduler
// backend), flight-recorder determinism of the edge slabs under the
// parallel backend, the critical-path walker's attribution semantics
// (exact sums, claim priorities, phase defaults), the empirical FD QoS
// meter, and the shape of the critical-path CSV export.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/observer.hpp"

namespace fdgm::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Armed-causal invisibility: same harness and golden constants as
// determinism_test.cpp, with causal edge recording switched on.
// ---------------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

struct HashSink final : abcast::DeliverSink {
  Fnv* f = nullptr;
  SimRun* run = nullptr;
  int p = 0;
  void on_deliver(const abcast::AppMessage& m) override {
    f->mix(static_cast<std::uint64_t>(p));
    f->mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.id.origin)));
    f->mix(m.id.seq);
    f->mix(std::bit_cast<std::uint64_t>(m.sent_at));
    f->mix(std::bit_cast<std::uint64_t>(run->system().now()));
  }
};

struct CausalRunResult {
  std::uint64_t hash = 0;
  std::uint64_t edges_dropped = 0;
  std::size_t edges_recorded = 0;
  std::string critical_path_csv;
};

CausalRunResult causal_run(Algorithm algo, sim::SchedulerBackend backend, int threads,
                           std::size_t edge_capacity, bool transport = false,
                           double loss = 0.0) {
  SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 5;
  cfg.seed = 424242;
  cfg.scheduler.backend = backend;
  cfg.scheduler.threads = threads;
  cfg.transport.enabled = transport;
  cfg.obs.enabled = true;
  cfg.obs.causal = true;
  cfg.obs.edge_capacity = edge_capacity;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence = 2000.0;
  cfg.fd_params.mistake_duration = 50.0;
  if (loss > 0.0) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLoss;
    e.rate = loss;
    e.at = 0.0;
    e.until = 1.0e7;
    cfg.faults.add(e);
  }
  SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
  Fnv f;
  std::vector<HashSink> sinks(static_cast<std::size_t>(cfg.n));
  for (int p = 0; p < cfg.n; ++p) {
    auto& sink = sinks[static_cast<std::size_t>(p)];
    sink.f = &f;
    sink.run = &run;
    sink.p = p;
    run.proc(p).set_deliver_sink(&sink);
  }
  run.start();
  run.run_until(3000.0);
  f.mix(run.system().scheduler().executed());

  CausalRunResult out;
  out.hash = f.h;
  const obs::Observer* o = run.observer();
  out.edges_dropped = o->edges_dropped();
  out.edges_recorded = o->edges_recorded();
  std::ostringstream csv;
  o->write_critical_path_csv(csv);
  out.critical_path_csv = csv.str();
  return out;
}

// Golden constants from determinism_test.cpp (captured from the PR-2
// core).  Armed causal tracing must reproduce them: recording edges is
// passive, so the delivery sequence AND the executed event count are
// bit-identical to a disarmed run.
constexpr std::uint64_t kGoldenFd = 0xbe21fd2abfc47b91ULL;
constexpr std::uint64_t kGoldenGm = 0x04be61f21cc65d6eULL;

TEST(CausalGolden, ArmedCausalMatchesGoldenFdHeap) {
  EXPECT_EQ(causal_run(Algorithm::kFd, sim::SchedulerBackend::kHeap, 0, 65536).hash,
            kGoldenFd);
}

TEST(CausalGolden, ArmedCausalMatchesGoldenGmHeap) {
  EXPECT_EQ(causal_run(Algorithm::kGm, sim::SchedulerBackend::kHeap, 0, 65536).hash,
            kGoldenGm);
}

TEST(CausalGolden, ArmedCausalMatchesGoldenFdWheel) {
  EXPECT_EQ(causal_run(Algorithm::kFd, sim::SchedulerBackend::kWheel, 0, 65536).hash,
            kGoldenFd);
}

TEST(CausalGolden, ArmedCausalMatchesGoldenGmWheel) {
  EXPECT_EQ(causal_run(Algorithm::kGm, sim::SchedulerBackend::kWheel, 0, 65536).hash,
            kGoldenGm);
}

TEST(CausalGolden, ArmedCausalMatchesGoldenFdParallel) {
  EXPECT_EQ(causal_run(Algorithm::kFd, sim::SchedulerBackend::kParallel, 2, 65536).hash,
            kGoldenFd);
}

TEST(CausalGolden, ArmedCausalMatchesGoldenGmParallel) {
  EXPECT_EQ(causal_run(Algorithm::kGm, sim::SchedulerBackend::kParallel, 2, 65536).hash,
            kGoldenGm);
}

// An undersized edge slab drops edges (flight-recorder semantics) but
// must not perturb the run: the golden hash still reproduces.
TEST(CausalGolden, UndersizedEdgeSlabKeepsGoldenHash) {
  const CausalRunResult r =
      causal_run(Algorithm::kGm, sim::SchedulerBackend::kHeap, 0, 64);
  EXPECT_EQ(r.hash, kGoldenGm);
  EXPECT_GT(r.edges_dropped, 0u);
}

// Edge recording (and dropping, when the slab is undersized) happens at
// the round barrier in global (time, seq) order under the parallel
// backend, so the recorded edges, the drop count and the walked CSV are
// identical for every worker count — and identical to the sequential
// backends.
TEST(CausalGolden, EdgeSlabsIdenticalAcrossBackendsAndThreads) {
  const CausalRunResult heap =
      causal_run(Algorithm::kGm, sim::SchedulerBackend::kHeap, 0, 65536);
  for (int threads : {1, 2, 8}) {
    const CausalRunResult par =
        causal_run(Algorithm::kGm, sim::SchedulerBackend::kParallel, threads, 65536);
    EXPECT_EQ(par.hash, heap.hash) << "threads=" << threads;
    EXPECT_EQ(par.edges_recorded, heap.edges_recorded) << "threads=" << threads;
    EXPECT_EQ(par.edges_dropped, heap.edges_dropped) << "threads=" << threads;
    EXPECT_EQ(par.critical_path_csv, heap.critical_path_csv) << "threads=" << threads;
  }
}

TEST(CausalGolden, UndersizedSlabDropsIdenticalAcrossThreads) {
  const CausalRunResult heap =
      causal_run(Algorithm::kGm, sim::SchedulerBackend::kHeap, 0, 64);
  ASSERT_GT(heap.edges_dropped, 0u);
  for (int threads : {1, 2, 8}) {
    const CausalRunResult par =
        causal_run(Algorithm::kGm, sim::SchedulerBackend::kParallel, threads, 64);
    EXPECT_EQ(par.edges_dropped, heap.edges_dropped) << "threads=" << threads;
    EXPECT_EQ(par.critical_path_csv, heap.critical_path_csv) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------
// Walker semantics on synthetic edges.
// ---------------------------------------------------------------------

obs::Config causal_cfg() {
  obs::Config c;
  c.enabled = true;
  c.causal = true;
  return c;
}

obs::MsgRefList one(int origin, std::uint64_t seq) {
  obs::MsgRefList refs;
  refs.add(origin, seq);
  return refs;
}

/// Sum of a row's per-cause buckets.
double row_sum(const obs::MsgCausal& m) {
  double s = 0.0;
  for (double v : m.ms) s += v;
  return s;
}

double bucket(const obs::MsgCausal& m, obs::Cause c) {
  return m.ms[static_cast<std::size_t>(c)];
}

TEST(CausalWalker, PerCauseSumsAddUpExactly) {
  obs::Observer o(3, causal_cfg());
  o.on_submit(0, 1, 10.0);
  o.on_order_start(0, 1, 12.0);
  o.on_ordered(0, 1, 20.0, 1);
  o.on_delivered(0, 1, 27.5, 2);
  // A couple of hops inside the ordering phase.
  o.trace_marker(obs::EdgeKind::kSendEnq, 0, one(0, 1), 12.0);
  o.trace_marker(obs::EdgeKind::kSendDone, 0, one(0, 1), 13.0);
  o.trace_marker(obs::EdgeKind::kWireEnq, 0, one(0, 1), 13.0);
  o.trace_marker(obs::EdgeKind::kWireDone, 0, one(0, 1), 15.0);

  const auto paths = o.critical_paths(0.0, kInf);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(row_sum(paths[0]), 27.5 - 10.0);
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kCpuQueue), 1.0);
  // Wire = the claimed hop [13, 15) plus the delivery phase's [20, 27.5)
  // residual (wire is the delivery default).
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kWire), 2.0 + 7.5);
  // Ordering residual [12, 20) minus the claimed cpu/wire hops.
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kConsensusRound), 5.0);
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kBatchWait), 2.0);
}

// Without a kSeqEnter anchor the ordering-phase residual is consensus
// time (FD); with one it is sequencer-queue time (GM).
TEST(CausalWalker, OrderingResidualDefaultsByStack) {
  obs::Observer fd(3, causal_cfg());
  fd.on_submit(0, 1, 0.0);
  fd.on_order_start(0, 1, 0.0);
  fd.on_ordered(0, 1, 8.0, 1);
  fd.on_delivered(0, 1, 10.0, 2);
  const auto fd_paths = fd.critical_paths(0.0, kInf);
  ASSERT_EQ(fd_paths.size(), 1u);
  EXPECT_DOUBLE_EQ(bucket(fd_paths[0], obs::Cause::kConsensusRound), 8.0);
  EXPECT_DOUBLE_EQ(bucket(fd_paths[0], obs::Cause::kWire), 2.0);  // delivery default

  obs::Observer gm(3, causal_cfg());
  gm.on_submit(0, 1, 0.0);
  gm.on_order_start(0, 1, 0.0);
  gm.trace_marker(obs::EdgeKind::kSeqEnter, 1, one(0, 1), 2.0);
  gm.on_ordered(0, 1, 8.0, 1);
  gm.on_delivered(0, 1, 10.0, 2);
  const auto gm_paths = gm.critical_paths(0.0, kInf);
  ASSERT_EQ(gm_paths.size(), 1u);
  // [2, 8) claimed by the sequencer-queue anchor; the [0, 2) residual
  // falls to the seq_queue default too (kSeqEnter was seen).
  EXPECT_DOUBLE_EQ(bucket(gm_paths[0], obs::Cause::kSeqQueue), 8.0);
  EXPECT_DOUBLE_EQ(bucket(gm_paths[0], obs::Cause::kConsensusRound), 0.0);
}

// A loss-recovery stall outranks the hops of the recovering frame: time
// covered by both is attributed to the stall, not double-counted.
TEST(CausalWalker, StallOutranksOverlappingHops) {
  obs::Observer o(3, causal_cfg());
  o.on_submit(0, 1, 0.0);
  o.on_order_start(0, 1, 0.0);
  o.on_ordered(0, 1, 2.0, 1);
  o.on_delivered(0, 1, 12.0, 2);
  // Delivery phase [2, 12): a NACK stall [2, 9) overlapping a recv-CPU
  // pair [8, 10).
  o.trace_stall(obs::EdgeKind::kStallNack, 2, one(0, 1), 2.0, 9.0);
  o.trace_marker(obs::EdgeKind::kRecvEnq, 2, one(0, 1), 8.0);
  o.trace_marker(obs::EdgeKind::kRecvDone, 2, one(0, 1), 10.0);

  const auto paths = o.critical_paths(0.0, kInf);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kLossNack), 7.0);
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kCpuQueue), 1.0);  // only [9, 10)
  EXPECT_DOUBLE_EQ(bucket(paths[0], obs::Cause::kWire), 2.0);      // residual
  EXPECT_DOUBLE_EQ(row_sum(paths[0]), 12.0);
}

// Submission-phase residual: batch wait by default, credit wait when a
// kCreditClosed marker was recorded for the message.
TEST(CausalWalker, SubmissionResidualSplitsByCreditMarker) {
  obs::Observer batch(3, causal_cfg());
  batch.on_submit(0, 1, 0.0);
  batch.on_order_start(0, 1, 4.0);
  batch.on_ordered(0, 1, 5.0, 1);
  batch.on_delivered(0, 1, 6.0, 2);
  const auto b = batch.critical_paths(0.0, kInf);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(bucket(b[0], obs::Cause::kBatchWait), 4.0);
  EXPECT_DOUBLE_EQ(bucket(b[0], obs::Cause::kCreditWait), 0.0);

  obs::Observer credit(3, causal_cfg());
  credit.on_submit(0, 1, 0.0);
  credit.trace_marker(obs::EdgeKind::kCreditClosed, 0, one(0, 1), 0.0);
  credit.on_order_start(0, 1, 4.0);
  credit.on_ordered(0, 1, 5.0, 1);
  credit.on_delivered(0, 1, 6.0, 2);
  const auto c = credit.critical_paths(0.0, kInf);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(bucket(c[0], obs::Cause::kCreditWait), 4.0);
  EXPECT_DOUBLE_EQ(bucket(c[0], obs::Cause::kBatchWait), 0.0);
}

TEST(CausalWalker, WindowFiltersBySubmitTime) {
  obs::Observer o(3, causal_cfg());
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const double t = static_cast<double>(s) * 10.0;
    o.on_submit(0, s, t);
    o.on_order_start(0, s, t);
    o.on_ordered(0, s, t + 1.0, 1);
    o.on_delivered(0, s, t + 2.0, 2);
  }
  EXPECT_EQ(o.critical_paths(0.0, kInf).size(), 3u);
  EXPECT_EQ(o.critical_paths(15.0, 25.0).size(), 1u);
  const obs::CauseTotals t = o.cause_totals(15.0, 25.0);
  EXPECT_EQ(t.count, 1u);
  double sum = 0.0;
  for (double v : t.sums) sum += v;
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

// Disarmed causal tracing: markers are dropped, the walker still works
// off the lifecycle spans alone (pure residual attribution).
TEST(CausalWalker, MarkersIgnoredWhenCausalOff) {
  obs::Config cfg;
  cfg.enabled = true;  // armed, but causal off
  obs::Observer o(3, cfg);
  EXPECT_FALSE(o.causal());
  o.trace_marker(obs::EdgeKind::kSendEnq, 0, one(0, 1), 1.0);
  EXPECT_EQ(o.edges_recorded(), 0u);
}

// ---------------------------------------------------------------------
// Empirical FD QoS meter.
// ---------------------------------------------------------------------

obs::Config armed() {
  obs::Config c;
  c.enabled = true;
  return c;
}

TEST(QosMeter, CrashDetectionMeasuresTd) {
  obs::Observer o(3, armed());
  o.on_crash(2, 100.0);
  // Monitors 0 and 1 suspect the crashed target 30 / 50 ms later.
  o.on_fd_transition(0, 2, 0b11, 130.0);
  o.on_fd_transition(1, 2, 0b11, 150.0);
  const obs::QosMeasured& q = o.qos_measured();
  EXPECT_EQ(q.detections, 2u);
  EXPECT_DOUBLE_EQ(q.td_sum_ms, 30.0 + 50.0);
  EXPECT_EQ(q.mistakes, 0u);
  EXPECT_EQ(q.transitions, 2u);
}

TEST(QosMeter, DetectionCreditedOncePerCrash) {
  obs::Observer o(3, armed());
  o.on_crash(2, 100.0);
  o.on_fd_transition(0, 2, 0b11, 130.0);
  // Spurious extra suspect edge about the same crash epoch: no new
  // detection (transitions still count).
  o.on_fd_transition(0, 2, 0b01, 140.0);
  o.on_fd_transition(0, 2, 0b11, 150.0);
  const obs::QosMeasured& q = o.qos_measured();
  EXPECT_EQ(q.detections, 1u);
  EXPECT_DOUBLE_EQ(q.td_sum_ms, 30.0);

  // A recovery + second crash opens a new epoch: the next suspicion is a
  // fresh detection.
  o.on_recover(2, 200.0);
  o.on_fd_transition(0, 2, 0b00, 230.0);
  o.on_crash(2, 300.0);
  o.on_fd_transition(0, 2, 0b11, 340.0);
  EXPECT_EQ(o.qos_measured().detections, 2u);
  EXPECT_DOUBLE_EQ(o.qos_measured().td_sum_ms, 30.0 + 40.0);
}

TEST(QosMeter, WrongSuspicionMeasuresTmAndTmr) {
  obs::Observer o(2, armed());
  // Two completed mistakes of monitor 0 about the alive target 1.
  o.on_fd_transition(0, 1, 0b01, 1000.0);  // mistake 1 starts
  o.on_fd_transition(0, 1, 0b00, 1040.0);  // lasts 40 ms
  o.on_fd_transition(0, 1, 0b01, 3000.0);  // mistake 2: gap 2000 ms
  o.on_fd_transition(0, 1, 0b00, 3060.0);  // lasts 60 ms
  const obs::QosMeasured& q = o.qos_measured();
  EXPECT_EQ(q.mistakes, 2u);
  EXPECT_EQ(q.tm_count, 2u);
  EXPECT_DOUBLE_EQ(q.tm_sum_ms, 40.0 + 60.0);
  EXPECT_EQ(q.tmr_count, 1u);
  EXPECT_DOUBLE_EQ(q.tmr_sum_ms, 2000.0);
  EXPECT_EQ(q.detections, 0u);
}

// A mistake in progress when the target actually crashes ends at the
// crash (the suspicion became correct) and the monitor is credited with
// an instant detection.
TEST(QosMeter, CrashClosesInFlightMistake) {
  obs::Observer o(2, armed());
  o.on_fd_transition(0, 1, 0b01, 1000.0);  // wrong suspicion opens
  o.on_crash(1, 1025.0);                   // target dies mid-mistake
  const obs::QosMeasured& q = o.qos_measured();
  EXPECT_EQ(q.tm_count, 1u);
  EXPECT_DOUBLE_EQ(q.tm_sum_ms, 25.0);
  EXPECT_EQ(q.detections, 1u);
  EXPECT_DOUBLE_EQ(q.td_sum_ms, 0.0);
}

// ---------------------------------------------------------------------
// Export shapes.
// ---------------------------------------------------------------------

TEST(CausalCsv, CriticalPathCsvShape) {
  obs::Observer o(2, causal_cfg());
  o.on_submit(0, 1, 0.0);
  o.on_order_start(0, 1, 0.0);
  o.on_ordered(0, 1, 1.0, 1);
  o.on_delivered(0, 1, 3.0, 1);
  std::ostringstream os;
  o.write_critical_path_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("origin,seq,submit_ms,delivered_ms,latency_ms,credit_wait,"
                     "batch_wait,cpu_queue,wire,loss_nack,loss_timer,loss_backoff,"
                     "seq_queue,consensus_round,reorder_hold"),
            std::string::npos);
  EXPECT_NE(csv.find("\n0,1,0,3,3,"), std::string::npos);
  EXPECT_NE(csv.find("# cause,sum_ms,p50_ms,p99_ms over 1 messages"), std::string::npos);
  EXPECT_NE(csv.find("# consensus_round,1,"), std::string::npos);
}

// End-to-end exactness at the stack level: every walked message of a
// lossy transported run decomposes to its end-to-end latency, bit-exact
// sums within floating-point residue.
TEST(CausalEndToEnd, LossyRunDecomposesEveryMessageExactly) {
  for (Algorithm algo : {Algorithm::kFd, Algorithm::kGm}) {
    SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 5;
    cfg.seed = 424242;
    cfg.transport.enabled = true;
    cfg.obs.enabled = true;
    cfg.obs.causal = true;
    cfg.fd_params.detection_time = 30.0;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLoss;
    e.rate = 0.05;
    e.at = 0.0;
    e.until = 1.0e7;
    cfg.faults.add(e);
    SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
    run.start();
    run.run_until(3000.0);

    const obs::Observer* o = run.observer();
    ASSERT_NE(o, nullptr);
    const auto paths = o->critical_paths(0.0, kInf);
    ASSERT_GT(paths.size(), 100u);
    std::size_t recovery_rows = 0;
    for (const obs::MsgCausal& m : paths) {
      const double e2e = m.delivered - m.submit;
      EXPECT_NEAR(row_sum(m), e2e, 1e-9 * std::max(1.0, e2e));
      const double recovery = bucket(m, obs::Cause::kLossNack) +
                              bucket(m, obs::Cause::kLossTimer) +
                              bucket(m, obs::Cause::kLossBackoff);
      if (recovery > 0.0) ++recovery_rows;
    }
    // 5% loss at n=5: a visible fraction of messages must show recovery
    // stalls on their critical path.
    EXPECT_GT(recovery_rows, 10u) << "algo=" << static_cast<int>(algo);
  }
}

}  // namespace
}  // namespace fdgm::core
