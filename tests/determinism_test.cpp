// Golden-seed determinism: one FD and one GM steady-state run (n = 5,
// wrong suspicions on, fixed seed) must reproduce the exact delivery
// sequence — process, message id, broadcast time and delivery time of
// every local A-delivery, in global event order — that the pre-refactor
// event core produced.  The committed hashes were captured from the PR-2
// core; any accidental change to event ordering (scheduler FIFO ties,
// network pipeline stage order, payload handling) shows up here long
// before it would surface as a drifting results CSV.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/experiment.hpp"

namespace fdgm::core {
namespace {

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

/// Mixes every local A-delivery of one process into the shared hash.
struct HashSink final : abcast::DeliverSink {
  Fnv* f = nullptr;
  SimRun* run = nullptr;
  int p = 0;
  void on_deliver(const abcast::AppMessage& m) override {
    f->mix(static_cast<std::uint64_t>(p));
    f->mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.id.origin)));
    f->mix(m.id.seq);
    f->mix(std::bit_cast<std::uint64_t>(m.sent_at));
    f->mix(std::bit_cast<std::uint64_t>(run->system().now()));
  }
};

std::uint64_t delivery_hash(Algorithm algo,
                            sim::SchedulerBackend backend = sim::SchedulerBackend::kHeap,
                            bool transport = false, bool batching = false,
                            bool observed = false, int threads = 0) {
  SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 5;
  cfg.seed = 424242;
  cfg.scheduler.backend = backend;
  cfg.scheduler.threads = threads;
  cfg.transport.enabled = transport;
  cfg.batching.enabled = batching;
  cfg.obs.enabled = observed;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence = 2000.0;
  cfg.fd_params.mistake_duration = 50.0;
  SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
  Fnv f;
  std::vector<HashSink> sinks(static_cast<std::size_t>(cfg.n));
  for (int p = 0; p < cfg.n; ++p) {
    auto& sink = sinks[static_cast<std::size_t>(p)];
    sink.f = &f;
    sink.run = &run;
    sink.p = p;
    run.proc(p).set_deliver_sink(&sink);
  }
  run.start();
  run.run_until(3000.0);
  f.mix(run.system().scheduler().executed());
  return f.h;
}

// Captured from the pre-refactor (PR-2) core at the same config; see the
// file comment.  If a change legitimately alters event ordering, recapture
// both constants and say so loudly in the PR.
constexpr std::uint64_t kGoldenFd = 0xbe21fd2abfc47b91ULL;
constexpr std::uint64_t kGoldenGm = 0x04be61f21cc65d6eULL;

TEST(GoldenSeed, FdDeliverySequenceMatchesPreRefactorCore) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd), kGoldenFd);
}

TEST(GoldenSeed, GmDeliverySequenceMatchesPreRefactorCore) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm), kGoldenGm);
}

// The hash must also be invariant to repetition within one process (no
// hidden global state in the refactored core).
TEST(GoldenSeed, HashIsStableAcrossRepeatedRuns) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd), delivery_hash(Algorithm::kFd));
}

// The timing-wheel scheduler backend must reproduce the heap backend's
// delivery sequences bit-for-bit — same golden constants, not merely
// self-consistency.  This is the protocol-stack-level proof that the two
// backends order events identically (the scheduler unit tests fuzz the
// same property on synthetic loads).
TEST(GoldenSeed, WheelBackendMatchesHeapGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kWheel), kGoldenFd);
}

TEST(GoldenSeed, WheelBackendMatchesHeapGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kWheel), kGoldenGm);
}

// The armed retransmission transport must be invisible on loss-free
// channels: with nothing to recover it stamps frames (counter arithmetic
// in the existing wire-completion events) but schedules no timers and
// sends no control frames, so the delivery sequence AND the executed
// event count reproduce the same golden constants — the strongest form
// of the "bit-identical when loss is off" guarantee, checked for both
// scheduler backends.
TEST(GoldenSeed, TransportArmedMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kHeap, true), kGoldenFd);
}

TEST(GoldenSeed, TransportArmedMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kHeap, true), kGoldenGm);
}

TEST(GoldenSeed, TransportArmedWheelMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kWheel, true), kGoldenFd);
}

TEST(GoldenSeed, TransportArmedWheelMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kWheel, true), kGoldenGm);
}

// Batching armed: the delivery sequence legitimately differs from the
// unbatched goldens (submissions ride flush timers and batch payloads),
// but it must be just as deterministic — its own golden constants,
// reproduced bit-for-bit by both scheduler backends and across repeats.
constexpr std::uint64_t kGoldenFdBatch = 0x811dfe8fedd5b845ULL;
constexpr std::uint64_t kGoldenGmBatch = 0x37617f72e9f8c429ULL;

TEST(GoldenSeed, BatchingArmedGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kHeap, false, true),
            kGoldenFdBatch);
}

TEST(GoldenSeed, BatchingArmedGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kHeap, false, true),
            kGoldenGmBatch);
}

TEST(GoldenSeed, BatchingArmedWheelMatchesHeapGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kWheel, false, true),
            kGoldenFdBatch);
}

TEST(GoldenSeed, BatchingArmedWheelMatchesHeapGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kWheel, false, true),
            kGoldenGmBatch);
}

// Observability armed: the observer is strictly passive — it never
// schedules events and never draws from the RNG — so arming it must
// reproduce the *same* golden constants (delivery sequence AND executed
// event count), not merely a self-consistent one.  This is stronger than
// "off is free": tracing a run cannot perturb it.  Checked across both
// scheduler backends, with the transport armed, and with batching on.
TEST(GoldenSeed, ObserverArmedMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kHeap, false, false, true),
            kGoldenFd);
}

TEST(GoldenSeed, ObserverArmedMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kHeap, false, false, true),
            kGoldenGm);
}

TEST(GoldenSeed, ObserverArmedWheelMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kWheel, false, false, true),
            kGoldenFd);
}

TEST(GoldenSeed, ObserverArmedWheelMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kWheel, false, false, true),
            kGoldenGm);
}

TEST(GoldenSeed, ObserverArmedWithTransportMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kHeap, true, false, true),
            kGoldenFd);
}

TEST(GoldenSeed, ObserverArmedWithTransportMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kHeap, true, false, true),
            kGoldenGm);
}

TEST(GoldenSeed, ObserverArmedBatchingGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kHeap, false, true, true),
            kGoldenFdBatch);
}

TEST(GoldenSeed, ObserverArmedBatchingGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kHeap, false, true, true),
            kGoldenGmBatch);
}

// The parallel (conservative-PDES) backend must reproduce the sequential
// goldens bit for bit — delivery sequence, RNG draws AND executed event
// count (the hash mixes it) — for every thread count.  threads = 1 runs
// rounds through the full staging machinery on the caller alone, which
// isolates the round/barrier logic from actual concurrency; threads = 2
// and 8 add real worker interleavings on top.  Covered in every armed
// variant whose state crosses partitions differently: plain, loss-free
// transport, batching, and the observer.
class GoldenSeedParallel : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Threads, GoldenSeedParallel, ::testing::Values(1, 2, 8));

TEST_P(GoldenSeedParallel, MatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kParallel, false, false, false,
                          GetParam()),
            kGoldenFd);
}

TEST_P(GoldenSeedParallel, MatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kParallel, false, false, false,
                          GetParam()),
            kGoldenGm);
}

TEST_P(GoldenSeedParallel, TransportArmedMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kParallel, true, false, false,
                          GetParam()),
            kGoldenFd);
}

TEST_P(GoldenSeedParallel, TransportArmedMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kParallel, true, false, false,
                          GetParam()),
            kGoldenGm);
}

TEST_P(GoldenSeedParallel, BatchingArmedGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kParallel, false, true, false,
                          GetParam()),
            kGoldenFdBatch);
}

TEST_P(GoldenSeedParallel, BatchingArmedGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kParallel, false, true, false,
                          GetParam()),
            kGoldenGmBatch);
}

TEST_P(GoldenSeedParallel, ObserverArmedMatchesGoldenFd) {
  EXPECT_EQ(delivery_hash(Algorithm::kFd, sim::SchedulerBackend::kParallel, false, false, true,
                          GetParam()),
            kGoldenFd);
}

TEST_P(GoldenSeedParallel, ObserverArmedMatchesGoldenGm) {
  EXPECT_EQ(delivery_hash(Algorithm::kGm, sim::SchedulerBackend::kParallel, false, false, true,
                          GetParam()),
            kGoldenGm);
}

// Executed-event counts asserted directly (not only through the hash):
// the parallel backend must execute exactly the events the heap backend
// does — neither skipping stale records differently nor double-running
// staged work.
TEST(GoldenSeedParallel_Counts, ExecutedEventCountMatchesHeap) {
  for (Algorithm algo : {Algorithm::kFd, Algorithm::kGm}) {
    std::uint64_t heap_executed = 0;
    {
      SimConfig cfg;
      cfg.algorithm = algo;
      cfg.n = 5;
      cfg.seed = 424242;
      cfg.fd_params.detection_time = 30.0;
      cfg.fd_params.wrong_suspicions = true;
      cfg.fd_params.mistake_recurrence = 2000.0;
      cfg.fd_params.mistake_duration = 50.0;
      SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
      run.start();
      run.run_until(3000.0);
      heap_executed = run.system().scheduler().executed();
    }
    for (int threads : {1, 2, 8}) {
      SimConfig cfg;
      cfg.algorithm = algo;
      cfg.n = 5;
      cfg.seed = 424242;
      cfg.scheduler.backend = sim::SchedulerBackend::kParallel;
      cfg.scheduler.threads = threads;
      cfg.fd_params.detection_time = 30.0;
      cfg.fd_params.wrong_suspicions = true;
      cfg.fd_params.mistake_recurrence = 2000.0;
      cfg.fd_params.mistake_duration = 50.0;
      SimRun run(cfg, WorkloadConfig{.throughput = 200.0});
      run.start();
      run.run_until(3000.0);
      EXPECT_EQ(run.system().scheduler().executed(), heap_executed)
          << algorithm_name(algo) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace fdgm::core
