// Tests of the retransmission transport (src/transport/): in-order
// transparency on loss-free channels, gap detection + NACK recovery,
// exponential-backoff timer behavior under tail loss, duplicate
// suppression with explicit acks, multi-gap reorder buffering, the
// loss-fuzz property (same delivered set, per-origin FIFO, intra-run
// total-order agreement at 5% loss) and jobs-count determinism of the
// lossy runner path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "abcast/abcast.hpp"
#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "net/system.hpp"
#include "transport/transport.hpp"

namespace fdgm::transport {
namespace {

/// Test payload with an identifying value (kind >= 32: test-local).
class TestMsg final : public net::Payload {
 public:
  static constexpr net::ProtocolId kProto = net::ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 40;
  explicit TestMsg(int v) : Payload(kProto, kKind), v(v) {}
  int v;
};

/// Records the values delivered to one node, in order.
class Recorder final : public net::Layer {
 public:
  void on_message(const net::Message& m) override {
    const TestMsg* p = net::payload_cast<TestMsg>(m);
    ASSERT_NE(p, nullptr);
    values.push_back(p->v);
  }
  std::vector<int> values;
};

struct Fixture {
  explicit Fixture(int n, Config cfg = Config{.enabled = true}) : sys(n, {}, 1, {}, cfg) {
    for (int i = 0; i < n; ++i) {
      recorders.push_back(std::make_unique<Recorder>());
      sys.node(i).register_handler(net::ProtocolId::kApplication, recorders.back().get());
    }
  }

  void send(net::ProcessId from, net::ProcessId to, int v) {
    sys.node(from).send(to, net::ProtocolId::kApplication, sys.arena().make<TestMsg>(v));
  }
  void run_for(double ms) { sys.scheduler().run_until(sys.now() + ms); }
  Transport& tp() { return *sys.transport(); }

  net::System sys;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(Transport, InOrderNoLossIsTransparent) {
  Fixture f(2);
  for (int v = 1; v <= 5; ++v) f.send(0, 1, v);
  f.sys.scheduler().run();
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1, 2, 3, 4, 5}));
  const Stats& st = f.tp().stats();
  EXPECT_EQ(st.data_frames, 5u);
  EXPECT_EQ(st.retransmits, 0u);
  EXPECT_EQ(st.nacks, 0u);
  EXPECT_EQ(st.acks, 0u);
  EXPECT_EQ(st.duplicates, 0u);
  EXPECT_EQ(st.buffered, 0u);
  // No loss, no buffering: the channel carries no recovery state at all.
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);
  EXPECT_EQ(f.tp().expected_seq(0, 1), 6u);
  EXPECT_EQ(f.sys.scheduler().pending(), 0u);  // no retransmission timers
}

TEST(Transport, GapTriggersNackRecoveryInOrder) {
  Fixture f(2);
  sim::Rng loss_rng(7);
  f.send(0, 1, 1);
  f.run_for(10.0);
  ASSERT_EQ(f.recorders[1]->values, (std::vector<int>{1}));

  f.sys.network().set_loss(1.0, &loss_rng);
  f.send(0, 1, 2);  // dropped after the wire stage
  f.run_for(10.0);
  f.sys.network().clear_loss();
  EXPECT_EQ(f.tp().outstanding(0, 1), 1u);  // buffered for retransmission

  f.send(0, 1, 3);  // creates the gap at the receiver -> NACK -> retransmit
  f.run_for(200.0);
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1, 2, 3}));
  const Stats& st = f.tp().stats();
  EXPECT_GE(st.nacks, 1u);
  EXPECT_GE(st.retransmits, 1u);
  EXPECT_GE(st.buffered, 1u);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);  // acked and pruned
  EXPECT_EQ(f.tp().expected_seq(0, 1), 4u);
}

TEST(Transport, TailLossRecoveredByBackoffTimer) {
  Fixture f(2);
  sim::Rng loss_rng(7);
  f.send(0, 1, 1);
  f.run_for(10.0);

  f.sys.network().set_loss(1.0, &loss_rng);
  f.send(0, 1, 2);  // the last frame of the conversation: no successor
  // First timer round fires inside the loss window, so the retransmission
  // is dropped too and the RTO doubles.
  f.run_for(70.0);
  f.sys.network().clear_loss();
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1}));
  EXPECT_GE(f.tp().stats().timer_rounds, 1u);

  // The backed-off round lands after the window and succeeds; the retx
  // flag elicits an explicit ACK that empties the ring.
  f.run_for(400.0);
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1, 2}));
  const Stats& st = f.tp().stats();
  EXPECT_GE(st.retransmits, 2u);
  EXPECT_GE(st.timer_rounds, 2u);
  EXPECT_GE(st.acks, 1u);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);
  EXPECT_EQ(f.sys.scheduler().pending(), 0u);  // timer cancelled, channel idle
}

TEST(Transport, SpuriousRetransmitIsSuppressedAndAcked) {
  Fixture f(2);
  sim::Rng loss_rng(7);
  // Loss "active" but vanishingly unlikely: the frame is buffered and
  // timed, yet delivered on the first attempt.  With no reverse traffic
  // the sender can only learn the outcome from the dup-triggered ACK.
  f.sys.network().set_loss(1e-12, &loss_rng);
  f.send(0, 1, 1);
  f.run_for(500.0);
  f.sys.network().clear_loss();

  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1}));  // exactly once
  const Stats& st = f.tp().stats();
  EXPECT_EQ(st.retransmits, 1u);  // one spurious round before the ACK
  EXPECT_EQ(st.duplicates, 1u);
  EXPECT_EQ(st.acks, 1u);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);
  EXPECT_EQ(f.sys.scheduler().pending(), 0u);
}

TEST(Transport, MultiGapReorderDeliversInSequence) {
  Fixture f(2);
  sim::Rng loss_rng(7);
  f.send(0, 1, 1);
  f.run_for(10.0);

  f.sys.network().set_loss(1.0, &loss_rng);
  f.send(0, 1, 2);
  f.send(0, 1, 3);
  f.run_for(10.0);
  f.sys.network().clear_loss();
  EXPECT_EQ(f.tp().outstanding(0, 1), 2u);

  f.send(0, 1, 4);
  f.send(0, 1, 5);
  f.run_for(400.0);
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1, 2, 3, 4, 5}));
  const Stats& st = f.tp().stats();
  EXPECT_GE(st.buffered, 2u);  // 4 and 5 parked while 2, 3 were recovered
  EXPECT_GE(st.retransmits, 2u);
  EXPECT_EQ(f.tp().expected_seq(0, 1), 6u);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);
}

// Composition race: a frame stamped while the loss filter is off is not
// ring-buffered — but if a directed cut holds it and the heal lands
// inside a loss window, the re-injection runs the loss filter again and
// can drop it.  The drop notification must insert it into the ring, or
// the channel deadlocks on the missing sequence number forever.
TEST(Transport, HeldFrameDroppedAtHealIsStillRecovered) {
  Fixture f(2);
  sim::Rng loss_rng(7);
  f.send(0, 1, 1);
  f.run_for(10.0);

  f.sys.network().set_asym_partition({0}, {1});
  f.send(0, 1, 2);  // stamped loss-free, then held by the cut
  f.run_for(10.0);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);  // not buffered: it cannot be lost yet

  f.sys.network().set_loss(1.0, &loss_rng);
  f.sys.network().heal_asym_partition();  // re-filter drops the held frame
  f.run_for(5.0);
  f.sys.network().clear_loss();
  EXPECT_EQ(f.tp().outstanding(0, 1), 1u);  // the drop notification buffered it

  f.send(0, 1, 3);  // reveals the gap -> NACK -> retransmit of the lost frame
  f.run_for(400.0);
  EXPECT_EQ(f.recorders[1]->values, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(f.tp().stats().retransmits, 1u);
  EXPECT_EQ(f.tp().outstanding(0, 1), 0u);
}

TEST(Transport, ChannelsSequenceIndependently) {
  Fixture f(3);
  for (int v = 1; v <= 3; ++v) {
    f.send(0, 2, v);
    f.send(1, 2, 10 + v);
  }
  f.sys.scheduler().run();
  EXPECT_EQ(f.tp().expected_seq(0, 2), 4u);
  EXPECT_EQ(f.tp().expected_seq(1, 2), 4u);
  EXPECT_EQ(f.tp().expected_seq(0, 1), 1u);  // untouched channel
  // Per-origin FIFO within the interleaved arrival order.
  std::vector<int> from0;
  std::vector<int> from1;
  for (int v : f.recorders[2]->values) (v < 10 ? from0 : from1).push_back(v);
  EXPECT_EQ(from0, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(from1, (std::vector<int>{11, 12, 13}));
}

// ------------------------------------------------ full-stack properties

struct Delivered {
  /// Per process, the global delivery order of (origin, seq).
  std::vector<std::vector<abcast::MsgId>> order;
};

Delivered run_stack(core::Algorithm algo, double loss_rate, double horizon, double drain) {
  core::SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 3;
  cfg.seed = 777;
  cfg.transport.enabled = true;
  cfg.fd_params.detection_time = 30.0;
  if (loss_rate > 0.0) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLoss;
    e.rate = loss_rate;
    e.at = 0.0;
    e.until = 1.0e9;
    cfg.faults.add(e);
  }
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
  Delivered d;
  d.order.resize(3);
  struct OrderSink final : abcast::DeliverSink {
    Delivered* d = nullptr;
    int p = 0;
    void on_deliver(const abcast::AppMessage& m) override {
      d->order[static_cast<std::size_t>(p)].push_back(m.id);
    }
  };
  std::vector<OrderSink> sinks(3);
  for (int p = 0; p < 3; ++p) {
    auto& sink = sinks[static_cast<std::size_t>(p)];
    sink.d = &d;
    sink.p = p;
    run.proc(p).set_deliver_sink(&sink);
  }
  run.start();
  run.run_until(horizon);
  run.workload().stop();
  run.run_until(horizon + drain);
  return d;
}

// The ISSUE's loss-fuzz property: at 5% sustained loss both stacks must
// deliver exactly the messages of the loss-free run (same set), keep
// per-origin FIFO order, and keep all replicas of one run in agreement on
// the total order (atomic broadcast survives the lossy channel).
TEST(TransportStack, LossFuzzSameSetPerOriginFifoAndAgreement) {
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    SCOPED_TRACE(core::algorithm_name(algo));
    const Delivered clean = run_stack(algo, 0.0, 3000.0, 8000.0);
    const Delivered lossy = run_stack(algo, 0.05, 3000.0, 15000.0);

    // Intra-run agreement: every process delivered the same total order.
    for (int p = 1; p < 3; ++p) {
      EXPECT_EQ(lossy.order[0], lossy.order[static_cast<std::size_t>(p)]);
      EXPECT_EQ(clean.order[0], clean.order[static_cast<std::size_t>(p)]);
    }
    ASSERT_FALSE(clean.order[0].empty());

    // Same delivered set as the loss-free run.
    std::vector<abcast::MsgId> a = clean.order[0];
    std::vector<abcast::MsgId> b = lossy.order[0];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "message set changed under loss";

    // Per-origin FIFO: each sender's messages appear in seq order.
    for (const Delivered* d : {&clean, &lossy}) {
      std::map<net::ProcessId, std::uint64_t> last;
      for (const abcast::MsgId& id : d->order[0]) {
        EXPECT_LT(last[id.origin], id.seq);
        last[id.origin] = id.seq;
      }
    }
  }
}

// The lossy runner path must stay bit-identical for any job count
// (replica seeding and reduction order are worker-independent).
TEST(TransportStack, LossyRunStatsIdenticalAcrossJobCounts) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kFd;
  cfg.n = 3;
  cfg.seed = 4242;
  cfg.transport.enabled = true;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kLoss;
  e.rate = 0.02;
  e.at = 0.0;
  e.until = 1.0e9;
  cfg.faults.add(e);

  core::SteadyConfig sc;
  sc.throughput = 150.0;
  sc.samples = 120;
  sc.warmup_ms = 500.0;
  sc.replicas = 4;

  sc.jobs = 1;
  const core::PointResult r1 = core::run_steady(cfg, sc);
  sc.jobs = 4;
  const core::PointResult r4 = core::run_steady(cfg, sc);

  ASSERT_TRUE(r1.stable);
  EXPECT_EQ(r1.latency.mean, r4.latency.mean);
  EXPECT_EQ(r1.latency.half_width, r4.latency.half_width);
  EXPECT_EQ(r1.events, r4.events);
  EXPECT_EQ(r1.retransmits, r4.retransmits);
  EXPECT_EQ(r1.dup_suppressed, r4.dup_suppressed);
  EXPECT_GT(r1.retransmits, 0u);  // the loss actually exercised recovery
}

}  // namespace
}  // namespace fdgm::transport
