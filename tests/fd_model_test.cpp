// Tests of the QoS failure-detector model (paper §6.2): detection time TD,
// permanence of crash suspicions, the TMR/TM renewal process statistics,
// listener edge notifications, and independence of pair modules.
#include <gtest/gtest.h>

#include <vector>

#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "util/stats.hpp"

namespace fdgm::fd {
namespace {

class EdgeLog final : public SuspicionListener {
 public:
  explicit EdgeLog(net::System& sys) : sys_(&sys) {}
  void on_suspect(net::ProcessId p) override { suspects.emplace_back(p, sys_->now()); }
  void on_trust(net::ProcessId p) override { trusts.emplace_back(p, sys_->now()); }
  std::vector<std::pair<net::ProcessId, sim::Time>> suspects;
  std::vector<std::pair<net::ProcessId, sim::Time>> trusts;

 private:
  net::System* sys_;
};

TEST(FdModel, NoSuspicionsWithoutCrashesOrMistakes) {
  net::System sys(3, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{});
  fd.start();
  sys.scheduler().run_until(10000.0);
  for (int q = 0; q < 3; ++q)
    for (int p = 0; p < 3; ++p) EXPECT_FALSE(fd.at(q).suspects(p));
}

TEST(FdModel, CrashDetectedAfterExactlyTd) {
  net::System sys(3, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 75.0});
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.start();
  sys.crash_at(0, 100.0);
  sys.scheduler().run_until(1000.0);
  ASSERT_EQ(log.suspects.size(), 1u);
  EXPECT_EQ(log.suspects[0].first, 0);
  EXPECT_DOUBLE_EQ(log.suspects[0].second, 175.0);
  EXPECT_TRUE(fd.at(1).suspects(0));
  EXPECT_TRUE(fd.at(2).suspects(0));
}

TEST(FdModel, CrashSuspicionIsPermanent) {
  net::System sys(2, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 0.0});
  fd.start();
  sys.crash_at(0, 10.0);
  sys.scheduler().run_until(100000.0);
  EXPECT_TRUE(fd.at(1).suspects(0));
}

TEST(FdModel, ZeroTdDetectsInstantly) {
  net::System sys(2, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 0.0});
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.start();
  sys.crash_at(0, 50.0);
  sys.scheduler().run_until(51.0);
  ASSERT_EQ(log.suspects.size(), 1u);
  EXPECT_DOUBLE_EQ(log.suspects[0].second, 50.0);
}

TEST(FdModel, WrongSuspicionRecurrenceMatchesTmr) {
  net::System sys(2, {}, 7);
  QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 200.0;
  qp.mistake_duration = 0.0;
  QosFailureDetectorModel fd(sys, qp);
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.start();
  const double horizon = 400000.0;
  sys.scheduler().run_until(horizon);
  // Expect ~horizon/TMR mistakes; allow 10% slack.
  const double expected = horizon / qp.mistake_recurrence;
  EXPECT_NEAR(static_cast<double>(log.suspects.size()), expected, expected * 0.10);
  // TM = 0: every suspect edge is followed by a trust edge at the same time.
  ASSERT_EQ(log.trusts.size(), log.suspects.size());
  for (std::size_t i = 0; i < log.suspects.size(); ++i)
    EXPECT_DOUBLE_EQ(log.trusts[i].second, log.suspects[i].second);
}

TEST(FdModel, MistakeDurationMatchesTm) {
  net::System sys(2, {}, 11);
  QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 1000.0;
  qp.mistake_duration = 40.0;
  QosFailureDetectorModel fd(sys, qp);
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.start();
  sys.scheduler().run_until(2000000.0);
  ASSERT_GT(log.suspects.size(), 200u);
  util::RunningStats durations;
  const std::size_t n = std::min(log.suspects.size(), log.trusts.size());
  for (std::size_t i = 0; i < n; ++i)
    durations.add(log.trusts[i].second - log.suspects[i].second);
  EXPECT_NEAR(durations.mean(), qp.mistake_duration, qp.mistake_duration * 0.15);
}

TEST(FdModel, PairsAreIndependent) {
  net::System sys(3, {}, 5);
  QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 500.0;
  QosFailureDetectorModel fd(sys, qp);
  EdgeLog log1(sys);
  EdgeLog log2(sys);
  fd.at(1).add_listener(&log1);
  fd.at(2).add_listener(&log2);
  fd.start();
  sys.scheduler().run_until(100000.0);
  ASSERT_GT(log1.suspects.size(), 50u);
  ASSERT_GT(log2.suspects.size(), 50u);
  // Different modules must not fire at identical instants.
  std::size_t coincide = 0;
  for (const auto& [p, t] : log1.suspects)
    for (const auto& [p2, t2] : log2.suspects)
      if (t == t2) ++coincide;
  EXPECT_LT(coincide, 3u);
}

TEST(FdModel, NoWrongSuspicionsOfCrashedTarget) {
  // Once a crash is detected, the renewal process must go quiet: the
  // suspicion is final, no trust edge may follow.
  net::System sys(2, {}, 3);
  QosParams qp;
  qp.detection_time = 10.0;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 50.0;
  qp.mistake_duration = 5.0;
  QosFailureDetectorModel fd(sys, qp);
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.start();
  sys.crash_at(0, 1000.0);
  sys.scheduler().run_until(100000.0);
  EXPECT_TRUE(fd.at(1).suspects(0));
  // After detection (t=1010) no trust edge may occur.
  for (const auto& [p, t] : log.trusts) EXPECT_LT(t, 1010.0 + 1e-9);
}

TEST(FdModel, SuspectedSnapshot) {
  net::System sys(4, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 0.0});
  fd.start();
  sys.crash_at(1, 1.0);
  sys.crash_at(3, 2.0);
  sys.scheduler().run_until(10.0);
  EXPECT_EQ(fd.at(0).suspected(), (std::vector<net::ProcessId>{1, 3}));
}

TEST(FdModel, ListenerRemoval) {
  net::System sys(2, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 0.0});
  EdgeLog log(sys);
  fd.at(1).add_listener(&log);
  fd.at(1).remove_listener(&log);
  fd.start();
  sys.crash_at(0, 1.0);
  sys.scheduler().run_until(10.0);
  EXPECT_TRUE(log.suspects.empty());
}

TEST(FdModel, EdgeCountsOnlyRisingEdges) {
  net::System sys(2, {}, 1);
  QosFailureDetectorModel fd(sys, QosParams{.detection_time = 0.0});
  fd.start();
  fd.at(1).set_suspected(0, true);
  fd.at(1).set_suspected(0, true);  // no-op
  fd.at(1).set_suspected(0, false);
  fd.at(1).set_suspected(0, true);
  EXPECT_EQ(fd.at(1).suspicion_edges(), 2u);
}

TEST(FdModel, RejectsInvalidParams) {
  net::System sys(2, {}, 1);
  EXPECT_THROW(QosFailureDetectorModel(sys, QosParams{.detection_time = -1.0}),
               std::invalid_argument);
  QosParams bad;
  bad.wrong_suspicions = true;
  bad.mistake_recurrence = 0.0;
  EXPECT_THROW(QosFailureDetectorModel(sys, bad), std::invalid_argument);
}

TEST(FdModel, DeterministicAcrossRuns) {
  auto run_once = [] {
    net::System sys(3, {}, 99);
    QosParams qp;
    qp.wrong_suspicions = true;
    qp.mistake_recurrence = 100.0;
    qp.mistake_duration = 10.0;
    QosFailureDetectorModel fd(sys, qp);
    EdgeLog log(sys);
    fd.at(1).add_listener(&log);
    fd.start();
    sys.scheduler().run_until(10000.0);
    return log.suspects;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fdgm::fd
