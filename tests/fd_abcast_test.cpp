// Tests of the Chandra-Toueg (FD) atomic broadcast: the uniform atomic
// broadcast properties — validity, uniform agreement, uniform integrity,
// uniform total order — in failure-free runs, under crashes, and under
// wrong suspicions; plus aggregation, message-pattern and re-numbering
// behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "abcast/fd_abcast.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"

namespace fdgm::abcast {
namespace {

struct Fixture {
  explicit Fixture(int n, fd::QosParams qp = {}, std::uint64_t seed = 1,
                   FdAbcastConfig cfg = {})
      : sys(n, {}, seed), fd(sys, qp) {
    for (int i = 0; i < n; ++i)
      procs.push_back(std::make_unique<FdAbcastProcess>(sys, i, fd.at(i), cfg));
    fd.start();
  }

  /// Asserts the defining safety properties over the delivery logs:
  /// integrity (no duplicates), uniform total order (logs are prefixes of
  /// one another — crashed processes included), and, for the ids in
  /// `must_deliver`, validity at every correct process.
  void check_safety(const std::vector<MsgId>& must_deliver = {}) {
    for (const auto& p : procs) {
      std::vector<MsgId> seen;
      for (const auto& m : p->log()) seen.push_back(m->id);
      std::sort(seen.begin(), seen.end());
      EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
          << "duplicate delivery at " << p->id();
    }
    // Prefix consistency.
    for (std::size_t a = 0; a < procs.size(); ++a) {
      for (std::size_t b = a + 1; b < procs.size(); ++b) {
        const auto& la = procs[a]->log();
        const auto& lb = procs[b]->log();
        const std::size_t k = std::min(la.size(), lb.size());
        for (std::size_t i = 0; i < k; ++i)
          ASSERT_EQ(la[i]->id, lb[i]->id)
              << "order divergence at position " << i << " between " << a << " and " << b;
      }
    }
    for (const MsgId& id : must_deliver) {
      for (const auto& p : procs) {
        if (sys.node(p->id()).crashed()) continue;
        const auto& log = p->log();
        EXPECT_TRUE(std::any_of(log.begin(), log.end(),
                                [&](const AppMessagePtr& m) { return m->id == id; }))
            << "message not delivered at correct process " << p->id();
      }
    }
  }

  net::System sys;
  fd::QosFailureDetectorModel fd;
  std::vector<std::unique_ptr<FdAbcastProcess>> procs;
};

TEST(FdAbcast, SingleMessageDeliveredEverywhere) {
  Fixture f(3);
  const MsgId id = f.procs[1]->a_broadcast();
  f.sys.scheduler().run();
  f.check_safety({id});
  for (const auto& p : f.procs) EXPECT_EQ(p->delivered_count(), 1u);
}

TEST(FdAbcast, FailureFreeMessagePattern) {
  // Fig. 1: data multicast + proposal multicast + (n-1) acks + decision
  // multicast = 3 multicasts and n-1 unicasts on the wire.
  Fixture f(5);
  f.procs[0]->a_broadcast();
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 3u + 4u);
}

TEST(FdAbcast, ManyMessagesTotalOrder) {
  Fixture f(3);
  std::vector<MsgId> ids;
  for (int round = 0; round < 20; ++round)
    for (auto& p : f.procs) ids.push_back(p->a_broadcast());
  f.sys.scheduler().run();
  f.check_safety(ids);
  EXPECT_EQ(f.procs[0]->log().size(), 60u);
}

TEST(FdAbcast, InterleavedBroadcastsOverTime) {
  Fixture f(5);
  std::vector<MsgId> ids;
  for (int i = 0; i < 50; ++i) {
    f.sys.scheduler().schedule_at(i * 2.0, [&f, &ids, i] {
      ids.push_back(f.procs[static_cast<std::size_t>(i % 5)]->a_broadcast());
    });
  }
  f.sys.scheduler().run();
  f.check_safety(ids);
  EXPECT_EQ(f.procs[2]->log().size(), 50u);
}

TEST(FdAbcast, AggregationUnderBurst) {
  // A burst of messages broadcast at the same instant must be ordered by
  // far fewer consensus instances than messages (aggregation, §4.1).
  Fixture f(3);
  for (int i = 0; i < 30; ++i) f.procs[0]->a_broadcast();
  f.sys.scheduler().run();
  f.check_safety();
  EXPECT_EQ(f.procs[0]->log().size(), 30u);
  EXPECT_LE(f.procs[0]->decided_instances(), 6u);
}

TEST(FdAbcast, DeliveryOrderWithinDecisionIsById) {
  Fixture f(3);
  // Three messages from distinct origins, same instant: they ride the
  // same consensus and must come out ordered by (origin, seq).
  const MsgId a = f.procs[2]->a_broadcast();
  const MsgId b = f.procs[0]->a_broadcast();
  const MsgId c = f.procs[1]->a_broadcast();
  f.sys.scheduler().run();
  f.check_safety({a, b, c});
  // All three in one decision: check relative order b < c < a.
  const auto& log = f.procs[0]->log();
  std::map<MsgId, std::size_t> pos;
  for (std::size_t i = 0; i < log.size(); ++i) pos[log[i]->id] = i;
  if (f.procs[0]->decided_instances() == 1) {
    EXPECT_LT(pos[b], pos[c]);
    EXPECT_LT(pos[c], pos[a]);
  }
}

TEST(FdAbcast, CrashedProcessBroadcastIsNoop) {
  Fixture f(3);
  f.sys.crash(1);
  const MsgId id = f.procs[1]->a_broadcast();
  EXPECT_EQ(id.seq, 0u);  // null id
  f.sys.scheduler().run();
  EXPECT_EQ(f.procs[0]->delivered_count(), 0u);
}

TEST(FdAbcast, SurvivesCoordinatorCrash) {
  fd::QosParams qp;
  qp.detection_time = 20.0;
  Fixture f(3, qp);
  const MsgId id = f.procs[1]->a_broadcast();
  f.sys.crash(0);  // round-1 coordinator dies immediately
  f.sys.scheduler().run();
  f.check_safety({id});
  EXPECT_GE(f.procs[1]->delivered_count(), 1u);
  EXPECT_GE(f.procs[2]->delivered_count(), 1u);
}

TEST(FdAbcast, SurvivesCoordinatorCrashMidConsensus) {
  fd::QosParams qp;
  qp.detection_time = 20.0;
  Fixture f(5, qp);
  const MsgId id = f.procs[1]->a_broadcast();
  f.sys.crash_at(0, 4.5);  // after the proposal is out
  f.sys.scheduler().run();
  f.check_safety({id});
}

TEST(FdAbcast, ContinuesAfterCrashSteadyState) {
  fd::QosParams qp;
  qp.detection_time = 10.0;
  Fixture f(5, qp);
  f.sys.crash(3);
  f.sys.crash(4);
  std::vector<MsgId> ids;
  for (int i = 0; i < 30; ++i) {
    f.sys.scheduler().schedule_at(50.0 + i * 3.0, [&f, &ids, i] {
      ids.push_back(f.procs[static_cast<std::size_t>(i % 3)]->a_broadcast());
    });
  }
  f.sys.scheduler().run();
  f.check_safety(ids);
  EXPECT_EQ(f.procs[0]->log().size(), 30u);
}

TEST(FdAbcast, RenumberingMovesCoordinatorAwayFromCrashed) {
  // With re-numbering, after the first decision the crashed p0 stops being
  // the round-1 coordinator, so later messages decide in round 1 without
  // waiting for suspicion.  Compare the delivery time of a late message
  // with and without the optimization.
  struct LateDeliverySink final : DeliverSink {
    net::System* sys = nullptr;
    double delivered_at = -1;
    void on_deliver(const AppMessage& m) override {
      if (m.sent_at >= 500.0 && delivered_at < 0) delivered_at = sys->now();
    }
  };
  auto late_latency = [](bool renumber) {
    fd::QosParams qp;
    qp.detection_time = 100.0;
    FdAbcastConfig fc;
    fc.renumbering = renumber;
    Fixture f(3, qp, 1, fc);
    f.sys.crash(0);
    // Several early messages let the winner anchor move past the pipeline
    // window; then measure a message in the re-numbered steady state.
    for (int i = 0; i < 5; ++i)
      f.sys.scheduler().schedule_at(150.0 + 50.0 * i, [&] { f.procs[1]->a_broadcast(); });
    LateDeliverySink sink;
    sink.sys = &f.sys;
    f.sys.scheduler().schedule_at(500.0, [&] {
      f.procs[1]->a_broadcast();
      f.procs[1]->set_deliver_sink(&sink);
    });
    f.sys.scheduler().run();
    return sink.delivered_at - 500.0;
  };
  const double with = late_latency(true);
  const double without = late_latency(false);
  EXPECT_GT(with, 0.0);
  // Without re-numbering every consensus pays an extra round (nack the
  // permanently suspected p0, estimates to p1, ...); with it, the
  // steady-state latency is the failure-free one (paper §7: "the
  // steady-state latency is the same regardless of which processes we
  // forced to crash ... the optimization incurs no cost").
  EXPECT_LT(with, 12.0);
  EXPECT_GT(without, with + 2.0);
}

TEST(FdAbcast, WrongSuspicionsDoNotBreakSafety) {
  fd::QosParams qp;
  qp.wrong_suspicions = true;
  qp.mistake_recurrence = 40.0;
  qp.mistake_duration = 3.0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    Fixture f(3, qp, seed);
    std::vector<MsgId> ids;
    for (int i = 0; i < 40; ++i) {
      f.sys.scheduler().schedule_at(i * 5.0, [&f, &ids, i] {
        ids.push_back(f.procs[static_cast<std::size_t>(i % 3)]->a_broadcast());
      });
    }
    f.sys.scheduler().run_until(5000.0);
    f.check_safety(ids);
  }
}

TEST(FdAbcast, UniformAgreementIncludesCrashedDeliveries) {
  // Whatever a process delivered before crashing must be (eventually)
  // delivered by the correct processes, in the same order — guaranteed
  // here by prefix-checking logs of crashed processes too.
  fd::QosParams qp;
  qp.detection_time = 15.0;
  Fixture f(5, qp, 3);
  std::vector<MsgId> ids;
  for (int i = 0; i < 20; ++i) {
    f.sys.scheduler().schedule_at(i * 2.0, [&f, &ids, i] {
      ids.push_back(f.procs[static_cast<std::size_t>(i % 5)]->a_broadcast());
    });
  }
  f.sys.crash_at(2, 17.0);
  f.sys.crash_at(0, 23.0);
  f.sys.scheduler().run();
  f.check_safety();
  // Correct processes must have delivered everything broadcast by correct
  // processes.
  std::vector<MsgId> from_correct;
  for (const MsgId& id : ids)
    if (id.seq != 0 && id.origin != 0 && id.origin != 2) from_correct.push_back(id);
  f.check_safety(from_correct);
}

TEST(FdAbcast, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Fixture f(3, {}, seed);
    for (int i = 0; i < 10; ++i)
      f.sys.scheduler().schedule_at(i * 3.0,
                                    [&f, i] { f.procs[static_cast<std::size_t>(i % 3)]->a_broadcast(); });
    f.sys.scheduler().run();
    std::vector<MsgId> log;
    for (const auto& m : f.procs[0]->log()) log.push_back(m->id);
    return log;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

// ------------------------------------------------------------- property

struct Param {
  int n;
  std::uint64_t seed;
  int crashes;
  bool suspicions;
};

class FdAbcastProperty : public ::testing::TestWithParam<Param> {};

TEST_P(FdAbcastProperty, SafetyUnderRandomFaultSchedules) {
  const Param p = GetParam();
  fd::QosParams qp;
  qp.detection_time = 12.0;
  if (p.suspicions) {
    qp.wrong_suspicions = true;
    qp.mistake_recurrence = 80.0;
    qp.mistake_duration = 4.0;
  }
  Fixture f(p.n, qp, p.seed);
  sim::Rng rng(p.seed * 31 + 7);
  std::vector<MsgId> ids;
  for (int i = 0; i < 60; ++i) {
    const double t = rng.uniform(0.0, 300.0);
    const auto sender = static_cast<std::size_t>(
        rng.uniform_int(0, p.n - 1));
    f.sys.scheduler().schedule_at(t, [&f, &ids, sender] {
      const MsgId id = f.procs[sender]->a_broadcast();
      if (id.seq != 0) ids.push_back(id);
    });
  }
  for (int c = 0; c < p.crashes; ++c)
    f.sys.crash_at(c, rng.uniform(5.0, 200.0));
  f.sys.scheduler().run_until(20000.0);
  f.check_safety();
  // Liveness: messages from never-crashed senders delivered at correct
  // processes.
  std::vector<MsgId> from_correct;
  for (const MsgId& id : ids)
    if (id.origin >= p.crashes) from_correct.push_back(id);
  f.check_safety(from_correct);
}

std::vector<Param> grid() {
  std::vector<Param> out;
  for (int n : {3, 5, 7})
    for (std::uint64_t s : {11ULL, 22ULL, 33ULL, 44ULL})
      for (int crashes : {0, (n - 1) / 2})
        for (bool susp : {false, true}) out.push_back({n, s, crashes, susp});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FdAbcastProperty, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           const auto& p = info.param;
                           return "i" + std::to_string(info.index) + "_n" + std::to_string(p.n) +
                                  "_c" + std::to_string(p.crashes) +
                                  (p.suspicions ? "_susp" : "_clean");
                         });

}  // namespace
}  // namespace fdgm::abcast
