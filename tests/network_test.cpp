// Tests of the contention-aware network model (paper §6.1): exact timing
// of the CPU(λ) / network(1) / CPU(λ) pipeline, FIFO queueing at both
// resource types, multicast cost, self-delivery, and the software-crash
// semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/system.hpp"

namespace fdgm::net {
namespace {

/// Records (destination, time) of every delivery to one node.
class Recorder final : public Layer {
 public:
  explicit Recorder(System& sys) : sys_(&sys) {}
  void on_message(const Message& m) override { arrivals.emplace_back(m.src, sys_->now()); }
  std::vector<std::pair<ProcessId, sim::Time>> arrivals;

 private:
  System* sys_;
};

/// Oversized payload for the timing-independence test.
class BigPayload final : public Payload {
 public:
  static constexpr ProtocolId kProto = ProtocolId::kApplication;
  static constexpr std::uint8_t kKind = 32;
  BigPayload() : Payload(kProto, kKind) {}
  std::vector<int> blob = std::vector<int>(1000, 7);
};

struct Fixture {
  explicit Fixture(int n, double lambda = 1.0) : sys(n, NetworkConfig{lambda, 1.0}, 1) {
    for (int i = 0; i < n; ++i) {
      recorders.push_back(std::make_unique<Recorder>(sys));
      sys.node(i).register_handler(ProtocolId::kApplication, recorders.back().get());
    }
  }
  PayloadPtr payload() { return sys.arena().make<BlankPayload>(); }

  System sys;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(Network, UnicastTakesLambdaPlusOnePlusLambda) {
  Fixture f(2);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  ASSERT_EQ(f.recorders[1]->arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(f.recorders[1]->arrivals[0].second, 3.0);  // 1 + 1 + 1
}

TEST(Network, LambdaScalesCpuStages) {
  Fixture f(2, 2.5);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_DOUBLE_EQ(f.recorders[1]->arrivals[0].second, 6.0);  // 2.5 + 1 + 2.5
}

TEST(Network, LambdaZeroIsPureWire) {
  Fixture f(2, 0.0);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_DOUBLE_EQ(f.recorders[1]->arrivals[0].second, 1.0);
}

TEST(Network, SenderCpuSerializesBackToBackSends) {
  Fixture f(3);
  // Two sends at t=0 from the same host: CPU jobs at [0,1] and [1,2];
  // wire at [1,2] and [2,3]; receive CPUs in parallel on distinct hosts.
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.node(0).send(2, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_DOUBLE_EQ(f.recorders[1]->arrivals[0].second, 3.0);
  EXPECT_DOUBLE_EQ(f.recorders[2]->arrivals[0].second, 4.0);
}

TEST(Network, WireSerializesConcurrentSenders) {
  Fixture f(3);
  // p0 and p1 both send to p2 at t=0: CPU stages run in parallel (distinct
  // hosts), the wire serializes [1,2], [2,3]; p2's CPU serializes receives.
  f.sys.node(0).send(2, ProtocolId::kApplication, f.payload());
  f.sys.node(1).send(2, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  ASSERT_EQ(f.recorders[2]->arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(f.recorders[2]->arrivals[0].second, 3.0);
  EXPECT_DOUBLE_EQ(f.recorders[2]->arrivals[1].second, 4.0);
}

TEST(Network, ReceiverCpuSerializesDeliveries) {
  Fixture f(3, 2.0);
  f.sys.node(0).send(2, ProtocolId::kApplication, f.payload());
  f.sys.node(1).send(2, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  // CPU send [0,2] both; wire [2,3] and [3,4]; recv CPU [3,5] and [5,7].
  EXPECT_DOUBLE_EQ(f.recorders[2]->arrivals[0].second, 5.0);
  EXPECT_DOUBLE_EQ(f.recorders[2]->arrivals[1].second, 7.0);
}

TEST(Network, MulticastUsesOneWireSlot) {
  Fixture f(4);
  f.sys.node(0).multicast_all(ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 1u);
  // All remote receivers get it at λ+1+λ = 3 (their CPUs are parallel).
  for (int p = 1; p < 4; ++p) {
    ASSERT_EQ(f.recorders[static_cast<std::size_t>(p)]->arrivals.size(), 1u) << p;
    EXPECT_DOUBLE_EQ(f.recorders[static_cast<std::size_t>(p)]->arrivals[0].second, 3.0);
  }
}

TEST(Network, MulticastSelfCopyBypassesWire) {
  Fixture f(3);
  f.sys.node(0).multicast_all(ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  // Self copy at CPU-send completion (t=1), remote at t=3.
  ASSERT_EQ(f.recorders[0]->arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(f.recorders[0]->arrivals[0].second, 1.0);
}

TEST(Network, UnicastToSelfOnlyCostsCpu) {
  Fixture f(2);
  f.sys.node(0).send(0, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.sys.network().network_uses(), 0u);
  ASSERT_EQ(f.recorders[0]->arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(f.recorders[0]->arrivals[0].second, 1.0);
}

TEST(Network, MulticastToSubsetOnlyReachesSubset) {
  Fixture f(4);
  f.sys.node(0).multicast({1, 3}, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.recorders[1]->arrivals.size(), 1u);
  EXPECT_TRUE(f.recorders[2]->arrivals.empty());
  EXPECT_EQ(f.recorders[3]->arrivals.size(), 1u);
}

TEST(Network, PerPairFifoOrder) {
  Fixture f(2);
  // Tag messages via distinct payload identities; check arrival order by
  // send order using timestamps (strictly increasing).
  for (int i = 0; i < 5; ++i) f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  ASSERT_EQ(f.recorders[1]->arrivals.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_LT(f.recorders[1]->arrivals[i - 1].second, f.recorders[1]->arrivals[i].second);
}

TEST(Network, CrashedProcessSendsNothing) {
  Fixture f(2);
  f.sys.crash(0);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_TRUE(f.recorders[1]->arrivals.empty());
  EXPECT_EQ(f.sys.node(0).sent_count(), 0u);
}

TEST(Network, MessagesInFlightAtCrashStillDelivered) {
  // Software crash: the send was accepted by the CPU before the crash.
  Fixture f(2);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.crash_at(0, 0.5);
  f.sys.scheduler().run();
  ASSERT_EQ(f.recorders[1]->arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(f.recorders[1]->arrivals[0].second, 3.0);
}

TEST(Network, CrashedReceiverDropsButCpuIsOccupied) {
  Fixture f(2);
  f.sys.crash(1);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_TRUE(f.recorders[1]->arrivals.empty());
  EXPECT_EQ(f.sys.node(1).received_count(), 0u);
  // The receive-side CPU job still ran (NIC/kernel processing).
  EXPECT_EQ(f.sys.network().cpu_uses(1), 1u);
}

TEST(Network, CrashIsIdempotentAndNotifiesOnce) {
  Fixture f(2);
  int notifications = 0;
  f.sys.add_crash_listener([&](ProcessId, sim::Time) { ++notifications; });
  f.sys.crash(0);
  f.sys.crash(0);
  EXPECT_EQ(notifications, 1);
  EXPECT_TRUE(f.sys.node(0).crashed());
}

TEST(Network, AliveListExcludesCrashed) {
  Fixture f(3);
  f.sys.crash(1);
  const auto alive = f.sys.alive();
  EXPECT_EQ(alive, (std::vector<ProcessId>{0, 2}));
}

TEST(Network, DeliveryTapSeesEveryDelivery) {
  Fixture f(3);
  int taps = 0;
  f.sys.network().set_delivery_tap([&](const Message&, ProcessId) { ++taps; });
  f.sys.node(0).multicast_all(ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(taps, 3);  // self + 2 remote
}

TEST(Network, UtilizationAccounting) {
  Fixture f(2);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_DOUBLE_EQ(f.sys.network().network_busy_time(), 2.0);
  EXPECT_EQ(f.sys.network().cpu_uses(0), 2u);
  EXPECT_EQ(f.sys.network().cpu_uses(1), 2u);
}

TEST(Network, RejectsBadDestinations) {
  Fixture f(2);
  EXPECT_THROW(f.sys.node(0).send(7, ProtocolId::kApplication, f.payload()),
               std::out_of_range);
}

TEST(Network, MessageTimingIndependentOfPayloadSize) {
  // The model charges one wire unit per message regardless of content —
  // the paper's abstraction.  Two different payloads, same timing.
  Fixture f(2);
  f.sys.node(0).send(1, ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  const double t1 = f.recorders[1]->arrivals[0].second;
  Fixture g(2);
  g.sys.node(0).send(1, ProtocolId::kApplication, g.sys.arena().make<BigPayload>());
  g.sys.scheduler().run();
  EXPECT_DOUBLE_EQ(g.recorders[1]->arrivals[0].second, t1);
}

}  // namespace
}  // namespace fdgm::net
