// Observer unit tests: span lifecycle semantics (first-write-wins,
// capacity drops), the counter registry, phase-window accounting, lazy
// metrics windows, and the shape of the two export formats.  End-to-end
// armed-run passivity is covered by the determinism tests; allocation
// freedom by the perf-smoke micro kernels.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/observer.hpp"

namespace fdgm::obs {
namespace {

Config armed() {
  Config c;
  c.enabled = true;
  return c;
}

TEST(ObsSpan, LifecycleTimestampsAreRecordedInOrder) {
  Observer o(3, armed());
  o.on_submit(1, 1, 10.0);
  o.on_order_start(1, 1, 12.0);
  o.on_ordered(1, 1, 20.0);
  o.on_delivered(1, 1, 25.0);

  const Span* s = o.span(1, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->submit, 10.0);
  EXPECT_DOUBLE_EQ(s->order_start, 12.0);
  EXPECT_DOUBLE_EQ(s->ordered, 20.0);
  EXPECT_DOUBLE_EQ(s->delivered, 25.0);
  EXPECT_EQ(o.spans_recorded(), 1u);
}

// ordered/delivered fire once per process; only the global first
// transition must stick.
TEST(ObsSpan, FirstWriteWins) {
  Observer o(3, armed());
  o.on_submit(0, 1, 1.0);
  o.on_ordered(0, 1, 5.0);
  o.on_ordered(0, 1, 7.0);
  o.on_delivered(0, 1, 9.0);
  o.on_delivered(0, 1, 11.0);

  const Span* s = o.span(0, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->ordered, 5.0);
  EXPECT_DOUBLE_EQ(s->delivered, 9.0);
}

// on_submit is the only creation point: hooks for a message that was
// never submitted (or whose slab slot was dropped) are ignored.
TEST(ObsSpan, HooksWithoutSubmitAreIgnored) {
  Observer o(3, armed());
  o.on_ordered(0, 1, 5.0);
  o.on_delivered(0, 1, 9.0);
  EXPECT_EQ(o.span(0, 1), nullptr);
  EXPECT_EQ(o.spans_recorded(), 0u);

  // Out-of-range origins and seq 0 never crash either.
  o.on_submit(-1, 1, 1.0);
  o.on_submit(3, 1, 1.0);
  o.on_submit(0, 0, 1.0);
  EXPECT_EQ(o.spans_recorded(), 0u);
}

// Flight-recorder semantics: a full slab drops (and counts) new spans
// instead of growing.
TEST(ObsSpan, CapacityOverflowDropsAndCounts) {
  Config cfg = armed();
  cfg.span_capacity = 2;
  Observer o(2, cfg);
  o.on_submit(0, 1, 1.0);
  o.on_submit(0, 2, 2.0);
  o.on_submit(0, 3, 3.0);  // dropped: slab for origin 0 is full
  o.on_submit(1, 1, 4.0);  // origin 1 has its own slab

  EXPECT_EQ(o.spans_recorded(), 3u);
  EXPECT_EQ(o.spans_dropped(), 1u);
  EXPECT_EQ(o.span(0, 3), nullptr);
  ASSERT_NE(o.span(1, 1), nullptr);
}

TEST(ObsCounters, PerNodeAndAggregateTotals) {
  Observer o(3, armed());
  o.count(0, Counter::kTransportNacks, 1.0);
  o.count(0, Counter::kTransportNacks, 2.0, 4);
  o.count(2, Counter::kTransportNacks, 3.0);
  o.count(1, Counter::kSuspicions, 4.0);

  EXPECT_EQ(o.node_total(0, Counter::kTransportNacks), 5u);
  EXPECT_EQ(o.node_total(1, Counter::kTransportNacks), 0u);
  EXPECT_EQ(o.node_total(2, Counter::kTransportNacks), 1u);
  EXPECT_EQ(o.total(Counter::kTransportNacks), 6u);
  EXPECT_EQ(o.total(Counter::kSuspicions), 1u);
  EXPECT_EQ(o.total(Counter::kViewChanges), 0u);
}

TEST(ObsCounters, RetransmitTracksPerOriginConcentration) {
  Observer o(3, armed());
  o.on_retransmit(0, 1.0);
  o.on_retransmit(0, 2.0);
  o.on_retransmit(2, 3.0);
  EXPECT_EQ(o.retx_origin(0), 2u);
  EXPECT_EQ(o.retx_origin(1), 0u);
  EXPECT_EQ(o.retx_origin(2), 1u);
  EXPECT_EQ(o.total(Counter::kTransportRetx), 3u);
}

TEST(ObsCounters, BatchFlushFeedsHistogramAndReorderPeakIsMax) {
  Observer o(2, armed());
  o.on_batch_flush(0, 4, 1.0);
  o.on_batch_flush(0, 9, 2.0);
  EXPECT_EQ(o.total(Counter::kBatchesFlushed), 2u);
  EXPECT_EQ(o.batch_hist().count(), 2u);

  o.reorder_depth(1, 3);
  o.reorder_depth(1, 7);
  o.reorder_depth(1, 2);
  EXPECT_EQ(o.reorder_peak(1), 7u);
  EXPECT_EQ(o.reorder_peak(0), 0u);
}

TEST(ObsPhases, TotalsFilterBySubmitWindowAndCompletion) {
  Observer o(2, armed());
  // In-window, completed: submit 10, order_start 12, ordered 20, deliver 26.
  o.on_submit(0, 1, 10.0);
  o.on_order_start(0, 1, 12.0);
  o.on_ordered(0, 1, 20.0);
  o.on_delivered(0, 1, 26.0);
  // In-window, never delivered: excluded.
  o.on_submit(0, 2, 15.0);
  // Submitted outside [0, 100): excluded.
  o.on_submit(1, 1, 150.0);
  o.on_delivered(1, 1, 160.0);

  const PhaseTotals pt = o.phase_totals(0.0, 100.0);
  EXPECT_EQ(pt.count, 1u);
  EXPECT_DOUBLE_EQ(pt.submit_wait_ms, 2.0);
  EXPECT_DOUBLE_EQ(pt.ordering_ms, 8.0);
  EXPECT_DOUBLE_EQ(pt.delivery_ms, 6.0);
}

// A delivery that never saw order_start/ordered hooks (e.g. a GM
// view-change flush) falls back so the three phases still sum to the
// end-to-end latency.
TEST(ObsPhases, DeliveredWithoutOrderingFallsBack) {
  Observer o(1, armed());
  o.on_submit(0, 1, 10.0);
  o.on_delivered(0, 1, 30.0);

  const PhaseTotals pt = o.phase_totals(0.0, 100.0);
  EXPECT_EQ(pt.count, 1u);
  EXPECT_DOUBLE_EQ(pt.submit_wait_ms + pt.ordering_ms + pt.delivery_ms, 20.0);
}

TEST(ObsMetrics, WindowsRollLazilyOnHookTimestamps) {
  Config cfg = armed();
  cfg.metrics_window_ms = 100.0;
  Observer o(2, cfg);
  EXPECT_EQ(o.snapshot_count(), 0u);

  o.count(0, Counter::kSuspicions, 50.0);  // inside the first window
  EXPECT_EQ(o.snapshot_count(), 0u);
  o.count(0, Counter::kSuspicions, 150.0);  // crosses the 100 ms boundary
  EXPECT_EQ(o.snapshot_count(), 1u);
  o.count(0, Counter::kSuspicions, 460.0);  // skips windows: still one snapshot
  EXPECT_EQ(o.snapshot_count(), 2u);
}

TEST(ObsMetrics, SnapshotOverflowDropsAndCounts) {
  Config cfg = armed();
  cfg.metrics_window_ms = 10.0;
  cfg.snapshot_capacity = 1;
  Observer o(1, cfg);
  o.count(0, Counter::kSuspicions, 15.0);
  o.count(0, Counter::kSuspicions, 25.0);
  o.count(0, Counter::kSuspicions, 35.0);
  EXPECT_EQ(o.snapshot_count(), 1u);
  EXPECT_EQ(o.snapshots_dropped(), 2u);
}

TEST(ObsExport, TraceJsonHasMetadataAndPhaseEvents) {
  Observer o(2, armed());
  o.on_submit(1, 1, 10.0);
  o.on_order_start(1, 1, 12.0);
  o.on_ordered(1, 1, 20.0);
  o.on_delivered(1, 1, 26.0);

  std::ostringstream ss;
  o.write_trace_json(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(out.find("process_name"), std::string::npos);
  EXPECT_NE(out.find("\"submit-wait\""), std::string::npos);
  EXPECT_NE(out.find("\"ordering\""), std::string::npos);
  EXPECT_NE(out.find("\"delivery\""), std::string::npos);
  // Balanced JSON braces/brackets, no trailing comma before a closer.
  EXPECT_EQ(out.find(",]"), std::string::npos);
  EXPECT_EQ(out.find(",}"), std::string::npos);
}

TEST(ObsExport, MetricsCsvHasHeaderAndOneRowPerSnapshot) {
  Config cfg = armed();
  cfg.metrics_window_ms = 10.0;
  Observer o(1, cfg);
  o.count(0, Counter::kSuspicions, 15.0);
  o.count(0, Counter::kSuspicions, 25.0);

  std::ostringstream ss;
  o.write_metrics_csv(ss);
  std::istringstream in(ss.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("t_ms,", 0), 0u);
  EXPECT_NE(header.find("suspicions"), std::string::npos);
  EXPECT_NE(header.find("transport_retx"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, o.snapshot_count());
}

TEST(ObsExport, PerNodeMetricsCsvHasOneRowPerNodePerWindow) {
  Config cfg = armed();
  cfg.metrics_window_ms = 10.0;
  cfg.per_node_metrics = true;
  Observer o(3, cfg);
  o.count(0, Counter::kSuspicions, 15.0);
  o.count(1, Counter::kSuspicions, 25.0);

  std::ostringstream ss;
  o.write_metrics_per_node_csv(ss);
  std::istringstream in(ss.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("t_ms,node,", 0), 0u);
  EXPECT_NE(header.find("suspicions"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, o.snapshot_count() * 3u);
}

// Per-node rows are only collected when the config asks for them; the
// export then has nothing to write (header only).
TEST(ObsExport, PerNodeMetricsOffByDefault) {
  Config cfg = armed();
  cfg.metrics_window_ms = 10.0;
  Observer o(2, cfg);
  o.count(0, Counter::kSuspicions, 15.0);
  o.count(0, Counter::kSuspicions, 25.0);
  ASSERT_GT(o.snapshot_count(), 0u);

  std::ostringstream ss;
  o.write_metrics_per_node_csv(ss);
  std::istringstream in(ss.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 0u);
}

TEST(ObsExport, TraceJsonCarriesFlowEventsWhenCausal) {
  Config cfg = armed();
  cfg.causal = true;
  Observer o(2, cfg);
  o.on_submit(1, 1, 10.0);
  o.on_order_start(1, 1, 12.0);
  o.on_ordered(1, 1, 20.0, 0);
  o.on_delivered(1, 1, 26.0, 0);

  std::ostringstream ss;
  o.write_trace_json(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(out.find("dominant_cause"), std::string::npos);
  EXPECT_EQ(out.find(",]"), std::string::npos);
  EXPECT_EQ(out.find(",}"), std::string::npos);
}

TEST(ObsExport, CounterNamesAreStableSnakeCase) {
  EXPECT_STREQ(counter_name(Counter::kTransportRetx), "transport_retx");
  EXPECT_STREQ(counter_name(Counter::kCreditSheds), "credit_sheds");
  for (std::size_t c = 0; c < kCounterCount; ++c)
    EXPECT_NE(counter_name(static_cast<Counter>(c)), nullptr);
}

}  // namespace
}  // namespace fdgm::obs
