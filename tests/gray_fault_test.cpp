// Gray-failure fault model tests: grammar round-trips and diagnostics for
// the four gray kinds (limp / flap / drift / corrupt), a parser fuzz loop,
// per-kind unit semantics (CPU stretch, deterministic link flapping, clock
// skew in the QoS detector, checksum-detected corruption with and without
// the retransmission transport), exact neutrality of factor-1 windows, and
// bit-identity of gray-faulted runs across scheduler backends, thread
// counts and replica job counts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/injector.hpp"
#include "net/system.hpp"
#include "obs/observer.hpp"

namespace fdgm {
namespace {

using fault::FaultKind;
using fault::FaultSchedule;

// ------------------------------------------------------------- grammar

TEST(GrayGrammar, ParsesTheFourKinds) {
  const FaultSchedule s = FaultSchedule::parse(
      "limp p3 x4 @1000 for 2000; flap p0->p2 period 40 duty 0.5 @1000 for 2000; "
      "drift p1 x0.8 @1000 for 2000; corrupt 0.01 @1000 for 2000");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kLimp);
  EXPECT_EQ(s.events()[0].process, 3);
  EXPECT_DOUBLE_EQ(s.events()[0].factor, 4.0);
  EXPECT_DOUBLE_EQ(s.events()[0].until, 3000.0);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kFlap);
  EXPECT_EQ(s.events()[1].groups,
            (std::vector<std::vector<net::ProcessId>>{{0}, {2}}));
  EXPECT_DOUBLE_EQ(s.events()[1].period, 40.0);
  EXPECT_DOUBLE_EQ(s.events()[1].duty, 0.5);
  EXPECT_EQ(s.events()[2].kind, FaultKind::kDrift);
  EXPECT_DOUBLE_EQ(s.events()[2].factor, 0.8);
  EXPECT_EQ(s.events()[3].kind, FaultKind::kCorrupt);
  EXPECT_DOUBLE_EQ(s.events()[3].rate, 0.01);
  EXPECT_TRUE(s.events()[3].groups.empty());
}

TEST(GrayGrammar, RoundTripsThroughToString) {
  const char* specs[] = {
      "limp p3 x4 @1000 for 2000",
      "limp p0 x1.5 @0.25 for 1e6",
      "drift p1 x0.8 @1000 for 2000",
      "flap p0->p2 period 40 duty 0.5 @1000 for 2000",
      "flap p0,p1->p2,p3 period 12.5 duty 0.125 @500 for 250",
      "corrupt 0.01 @1000 for 2000",
      "corrupt 0.05 p0,p1->p2 @1000 for 2000",
      "limp p0 x2 @100 for 50; corrupt 1 @200 for 10; drift p2 x0.5 @300 for 5",
  };
  for (const char* spec : specs) {
    const FaultSchedule parsed = FaultSchedule::parse(spec);
    EXPECT_EQ(FaultSchedule::parse(parsed.to_string()), parsed) << spec;
  }
}

TEST(GrayGrammar, RejectsMalformedInput) {
  EXPECT_THROW(FaultSchedule::parse("limp p0 4 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("limp p0 x0 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("limp p0 x-3 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("limp x4 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("drift p0 x4 @0"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("flap p0->p1 period 0 duty 0.5 @0 for 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("flap p0->p1 period 40 duty 1.5 @0 for 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("flap p0,p1 period 40 duty 0.5 @0 for 10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("corrupt 1.5 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("corrupt 0.5 p0p1 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("corrupt 0.5 @0 for -10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("limp p0 xnan @0 for 10"), std::invalid_argument);
}

TEST(GrayGrammar, DiagnosticsCarryTokenAndOffset) {
  try {
    (void)FaultSchedule::parse("limp p0 4 @0 for 10");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at token '4'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(offset 8)"), std::string::npos) << msg;
  }
  // Offsets are absolute in the full schedule string, not per-event.
  try {
    (void)FaultSchedule::parse("crash p0 @5; limp p1 y4 @0 for 5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at token 'y4'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(offset 21)"), std::string::npos) << msg;
  }
}

// Garbage in, exception (or a parse) out — never a crash, never a hang.
// Seeded mt19937: the corpus is identical on every run.
TEST(GrayGrammar, FuzzedInputNeverCrashes) {
  std::mt19937 rng(20260808);
  const std::string pool =
      "limp flap drift corrupt crash recover partition apartition loss delay storm "
      "p0123456789 xX@.,;->{}| for period duty heal einf-+\t ";
  const char* seeds[] = {
      "limp p3 x4 @1000 for 2000",
      "flap p0->p2 period 40 duty 0.5 @1000 for 2000",
      "drift p1 x0.8 @1000 for 2000",
      "corrupt 0.05 p0,p1->p2 @1000 for 2000",
      "partition {0,1|2} @1000 heal @3000",
  };
  auto try_parse = [](const std::string& text) {
    try {
      const FaultSchedule s = FaultSchedule::parse(text);
      (void)s.to_string();
    } catch (const std::invalid_argument&) {
      // expected for most inputs
    }
  };
  for (int i = 0; i < 2000; ++i) {
    // Pure noise.
    std::string noise;
    const std::size_t len = rng() % 64;
    for (std::size_t j = 0; j < len; ++j) noise += pool[rng() % pool.size()];
    try_parse(noise);
    // A valid spec with a random splice of noise (truncations, overwrites,
    // insertions) — closer to real typos than uniform noise.
    std::string mutated = seeds[rng() % std::size(seeds)];
    const std::size_t at = rng() % (mutated.size() + 1);
    const std::size_t cut = rng() % 8;
    mutated.erase(at, cut);
    std::string splice;
    for (std::size_t j = 0, m = rng() % 8; j < m; ++j) splice += pool[rng() % pool.size()];
    mutated.insert(std::min(at, mutated.size()), splice);
    try_parse(mutated);
  }
}

// --------------------------------------------------------- limp (unit)

/// Counts deliveries per node (same shape as fault_test's fixture).
class Counter final : public net::Layer {
 public:
  void on_message(const net::Message&) override { ++count; }
  int count = 0;
};

struct NetFixture {
  explicit NetFixture(int n) : sys(n, net::NetworkConfig{1.0, 1.0}, 1) {
    for (int i = 0; i < n; ++i) {
      counters.push_back(std::make_unique<Counter>());
      sys.node(i).register_handler(net::ProtocolId::kApplication, counters.back().get());
    }
  }
  net::PayloadPtr payload() { return sys.arena().make<net::BlankPayload>(); }

  net::System sys;
  std::vector<std::unique_ptr<Counter>> counters;
};

TEST(GrayLimp, StretchesOnlyTheLimpingNodesCpuStages) {
  {
    NetFixture f(2);  // baseline: lambda + wire + lambda = 3 ms
    f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
    f.sys.scheduler().run();
    EXPECT_DOUBLE_EQ(f.sys.now(), 3.0);
  }
  {
    NetFixture f(2);  // receiver limps: 1 + 1 + 4
    f.sys.network().set_cpu_limp(1, 4.0);
    f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
    f.sys.scheduler().run();
    EXPECT_DOUBLE_EQ(f.sys.now(), 6.0);
    EXPECT_EQ(f.counters[1]->count, 1);
  }
  {
    NetFixture f(2);  // sender limps: 4 + 1 + 1
    f.sys.network().set_cpu_limp(0, 4.0);
    f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
    f.sys.scheduler().run();
    EXPECT_DOUBLE_EQ(f.sys.now(), 6.0);
  }
  NetFixture bad(2);
  EXPECT_THROW(bad.sys.network().set_cpu_limp(0, 0.0), std::invalid_argument);
  EXPECT_THROW(bad.sys.network().set_cpu_limp(0, -1.0), std::invalid_argument);
}

TEST(GrayLimp, InjectorArmsAndResetsTheWindow) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("limp p1 x4 @100 for 200");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(150.0);
  EXPECT_DOUBLE_EQ(run.system().network().cpu_limp(1), 4.0);
  EXPECT_DOUBLE_EQ(run.fd_model().limp_factor(1), 4.0);
  EXPECT_DOUBLE_EQ(run.system().network().cpu_limp(0), 1.0);
  run.run_until(400.0);
  EXPECT_DOUBLE_EQ(run.system().network().cpu_limp(1), 1.0);
  EXPECT_DOUBLE_EQ(run.fd_model().limp_factor(1), 1.0);
}

// --------------------------------------------------------- flap (unit)

TEST(GrayFlap, DownHoldsUpReleasesAndCountersNest) {
  NetFixture f(3);
  f.sys.network().set_flap_down({0}, {1});
  EXPECT_TRUE(f.sys.network().flap_blocked(0, 1));
  EXPECT_FALSE(f.sys.network().flap_blocked(1, 0));  // directed
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());  // held
  f.sys.node(1).send(0, net::ProtocolId::kApplication, f.payload());  // flows
  f.sys.node(0).send(2, net::ProtocolId::kApplication, f.payload());  // unrelated
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 0);
  EXPECT_EQ(f.counters[0]->count, 1);
  EXPECT_EQ(f.counters[2]->count, 1);
  EXPECT_EQ(f.sys.network().held_deliveries(), 1u);

  // Overlapping windows nest: two downs need two ups.
  f.sys.network().set_flap_down({0}, {1});
  f.sys.network().set_flap_up({0}, {1});
  EXPECT_TRUE(f.sys.network().flap_blocked(0, 1));
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 0);
  f.sys.network().set_flap_up({0}, {1});
  EXPECT_FALSE(f.sys.network().flap_blocked(0, 1));
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 1);  // released at the final up
}

TEST(GrayFlap, InjectorDrivesTheDeterministicCycle) {
  // Cycle = up phase then down phase: down at 150, up 200, down 250,
  // up 300, down 350, clipped up at 400 — six transitions, window clean.
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.obs.enabled = true;
  cfg.faults = FaultSchedule::parse("flap p0->p1 period 100 duty 0.5 @100 for 300");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(120.0);
  EXPECT_FALSE(run.system().network().flap_blocked(0, 1));  // up phase first
  run.run_until(160.0);
  EXPECT_TRUE(run.system().network().flap_blocked(0, 1));
  run.run_until(210.0);
  EXPECT_FALSE(run.system().network().flap_blocked(0, 1));
  run.run_until(260.0);
  EXPECT_TRUE(run.system().network().flap_blocked(0, 1));
  run.run_until(500.0);
  EXPECT_FALSE(run.system().network().flap_blocked(0, 1));  // window never leaves it down
  ASSERT_NE(run.observer(), nullptr);
  EXPECT_EQ(run.observer()->total(obs::Counter::kFlapTransitions), 6u);
}

TEST(GrayFlap, FullDutyIsANoOp) {
  core::SimConfig cfg;
  cfg.n = 2;
  cfg.obs.enabled = true;
  cfg.faults = FaultSchedule::parse("flap p0->p1 period 50 duty 1 @100 for 300");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(600.0);
  EXPECT_FALSE(run.system().network().flap_blocked(0, 1));
  EXPECT_EQ(run.observer()->total(obs::Counter::kFlapTransitions), 0u);
}

// -------------------------------------------------------- drift (unit)

TEST(GrayDrift, FastClockDetectsACrashSooner) {
  // TD = 30; p1's clock runs 2x fast, so p1's effective detection delay is
  // 15 ms while p2 still takes 30: after p0's crash at 100, p1 suspects by
  // 120, p2 only by 140.
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.fd_params.detection_time = 30.0;
  cfg.faults = FaultSchedule::parse("drift p1 x2 @0 for 1000; crash p0 @100");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(120.0);
  EXPECT_TRUE(run.fd_model().at(1).suspects(0));
  EXPECT_FALSE(run.fd_model().at(2).suspects(0));
  EXPECT_DOUBLE_EQ(run.fd_model().clock_rate(1), 2.0);
  run.run_until(140.0);
  EXPECT_TRUE(run.fd_model().at(2).suspects(0));
  run.run_until(1100.0);
  EXPECT_DOUBLE_EQ(run.fd_model().clock_rate(1), 1.0);  // window reset
}

TEST(GrayDrift, SlowClockDetectsACrashLater) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.fd_params.detection_time = 30.0;
  cfg.faults = FaultSchedule::parse("drift p1 x0.5 @0 for 1000; crash p0 @100");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(140.0);
  EXPECT_FALSE(run.fd_model().at(1).suspects(0));  // needs 30 / 0.5 = 60 ms
  EXPECT_TRUE(run.fd_model().at(2).suspects(0));
  run.run_until(170.0);
  EXPECT_TRUE(run.fd_model().at(1).suspects(0));
}

// ------------------------------------------------------ corrupt (unit)

TEST(GrayCorrupt, DigestFlipsOnAnyIdentityField) {
  const net::BlankPayload payload;
  net::Message m{0, 1, net::ProtocolId::kApplication, {}, &payload};
  m.frame.seq = 7;
  m.frame.check = net::frame_digest(m);
  EXPECT_TRUE(net::frame_checksum_ok(m));
  net::Message damaged = m;
  damaged.frame.check ^= 0xA5;  // what the corrupt filter does in transit
  EXPECT_FALSE(net::frame_checksum_ok(damaged));
  net::Message other = m;
  other.src = 2;
  EXPECT_NE(net::frame_digest(other), net::frame_digest(m));
  net::Message reseq = m;
  reseq.frame.seq = 8;
  EXPECT_NE(net::frame_digest(reseq), net::frame_digest(m));
  // The mutable header bits are excluded: acks and the retx flag change
  // between stamping and verification.
  net::Message acked = m;
  acked.frame.ack = 99;
  acked.frame.seq |= net::FrameHeader::kRetxBit;
  EXPECT_EQ(net::frame_digest(acked), net::frame_digest(m));
}

TEST(GrayCorrupt, WithoutTransportDetectedFramesAreDroppedAndCounted) {
  NetFixture f(2);
  f.sys.network().enable_checksums();
  sim::Rng rng(9);
  f.sys.network().set_corrupt(1.0, &rng);
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 0);  // detected at delivery, dropped
  EXPECT_EQ(f.sys.network().corrupted_deliveries(), 1u);
  EXPECT_EQ(f.sys.network().corruption_detected(), 1u);

  f.sys.network().clear_corrupt();
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 1);  // clean frames flow again
  EXPECT_EQ(f.sys.network().corruption_detected(), 1u);
}

TEST(GrayCorrupt, RejectsBadRates) {
  NetFixture f(2);
  sim::Rng rng(9);
  EXPECT_THROW(f.sys.network().set_corrupt(1.5, &rng), std::invalid_argument);
  EXPECT_THROW(f.sys.network().set_corrupt(-0.5, &rng), std::invalid_argument);
}

TEST(GrayCorrupt, TransportRecoversEverythingAcrossAFullCorruptionWindow) {
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 3;
    cfg.transport.enabled = true;
    cfg.faults = FaultSchedule::parse("corrupt 1 @500 for 300");
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
    run.start();
    run.run_until(4000.0);
    run.workload().stop();
    run.run_until(10000.0);
    EXPECT_EQ(run.recorder().stale_undelivered(run.system().now(), 2000.0), 0u)
        << core::algorithm_name(algo) << ": messages lost to corruption";
    EXPECT_GT(run.system().network().corrupted_deliveries(), 0u);
    ASSERT_NE(run.system().transport(), nullptr);
    EXPECT_GT(run.system().transport()->stats().corrupt_dropped, 0u);
    EXPECT_GT(run.system().transport()->stats().retransmits, 0u);
    // Detection happened in the transport's verify, not at final delivery.
    EXPECT_EQ(run.system().network().corruption_detected(), 0u);
  }
}

// ------------------------------------------------- neutrality & identity

// A factor-1 gray window must be *exactly* neutral on the latency numbers:
// x * 1.0 == x for every service time and timer.  (The injector events
// themselves change the executed-event count, so this is asserted on the
// windowed latency means, not on the delivery hash.)
TEST(GrayDeterminism, FactorOneWindowsAreExactlyNeutral) {
  core::WindowedConfig wc;
  wc.throughput = 100.0;
  wc.t_end = 3000.0;
  wc.windows = {{500.0, 3000.0}};
  wc.replicas = 2;
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    core::SimConfig plain;
    plain.algorithm = algo;
    plain.n = 3;
    plain.seed = 77;
    plain.fd_params.detection_time = 30.0;
    plain.fd_params.wrong_suspicions = true;
    plain.fd_params.mistake_recurrence = 2000.0;
    plain.fd_params.mistake_duration = 50.0;
    core::SimConfig neutral = plain;
    neutral.faults =
        FaultSchedule::parse("limp p0 x1 @600 for 1000; drift p1 x1 @600 for 1000");
    const core::WindowedResult a = core::run_windowed(plain, wc);
    const core::WindowedResult b = core::run_windowed(neutral, wc);
    ASSERT_TRUE(a.stable);
    ASSERT_TRUE(b.stable);
    EXPECT_EQ(a.windows[0].mean, b.windows[0].mean) << core::algorithm_name(algo);
    EXPECT_EQ(a.windows[0].half_width, b.windows[0].half_width);
  }
}

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

struct HashSink final : abcast::DeliverSink {
  Fnv* f = nullptr;
  core::SimRun* run = nullptr;
  int p = 0;
  void on_deliver(const abcast::AppMessage& m) override {
    f->mix(static_cast<std::uint64_t>(p));
    f->mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.id.origin)));
    f->mix(m.id.seq);
    f->mix(std::bit_cast<std::uint64_t>(m.sent_at));
    f->mix(std::bit_cast<std::uint64_t>(run->system().now()));
  }
};

/// Delivery-sequence hash of a run with all four gray kinds active at
/// once, transport armed (so corruption is recovered, not lost).
std::uint64_t gray_hash(core::Algorithm algo, sim::SchedulerBackend backend,
                        int threads = 0) {
  core::SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 5;
  cfg.seed = 424242;
  cfg.scheduler.backend = backend;
  cfg.scheduler.threads = threads;
  cfg.transport.enabled = true;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence = 2000.0;
  cfg.fd_params.mistake_duration = 50.0;
  cfg.faults = FaultSchedule::parse(
      "limp p0 x4 @800 for 600; drift p1 x0.7 @900 for 500; "
      "flap p0->p2 period 80 duty 0.5 @1000 for 400; corrupt 0.08 @1200 for 300");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
  Fnv f;
  std::vector<HashSink> sinks(static_cast<std::size_t>(cfg.n));
  for (int p = 0; p < cfg.n; ++p) {
    auto& sink = sinks[static_cast<std::size_t>(p)];
    sink.f = &f;
    sink.run = &run;
    sink.p = p;
    run.proc(p).set_deliver_sink(&sink);
  }
  run.start();
  run.run_until(3000.0);
  f.mix(run.system().scheduler().executed());
  return f.h;
}

// All four gray kinds at once must be bit-identical — delivery sequence
// AND executed event count — across the heap, wheel and parallel backends
// (the parallel one at 1, 2 and 8 worker threads).
TEST(GrayDeterminism, GrayRunBitIdenticalAcrossBackends) {
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    const std::uint64_t heap = gray_hash(algo, sim::SchedulerBackend::kHeap);
    EXPECT_EQ(gray_hash(algo, sim::SchedulerBackend::kWheel), heap)
        << core::algorithm_name(algo) << " wheel";
    for (int threads : {1, 2, 8})
      EXPECT_EQ(gray_hash(algo, sim::SchedulerBackend::kParallel, threads), heap)
          << core::algorithm_name(algo) << " par t" << threads;
  }
}

// Gray-faulted windowed scenarios reduce identically for any job count
// (replica seeding and aggregation order are job-independent).
TEST(GrayDeterminism, GrayWindowedBitIdenticalAcrossJobs) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kGm;
  cfg.n = 5;
  cfg.seed = 42;
  cfg.obs.enabled = true;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence = 2000.0;
  cfg.fd_params.mistake_duration = 50.0;
  cfg.faults = FaultSchedule::parse(
      "limp p0 x4 @1200 for 800; flap p1->p0 period 100 duty 0.5 @2200 for 600; "
      "drift p2 x1.5 @3000 for 500");
  core::WindowedConfig wc;
  wc.throughput = 100.0;
  wc.t_end = 5000.0;
  wc.windows = {{500.0, 2500.0}, {2500.0, 5000.0}};
  wc.replicas = 4;

  std::vector<core::WindowedResult> results;
  for (std::size_t jobs : {1u, 8u}) {
    core::WindowedConfig w = wc;
    w.jobs = jobs;
    results.push_back(core::run_windowed(cfg, w));
  }
  ASSERT_EQ(results[1].stable, results[0].stable);
  ASSERT_EQ(results[1].windows.size(), results[0].windows.size());
  for (std::size_t w = 0; w < results[0].windows.size(); ++w) {
    EXPECT_EQ(results[1].windows[w].mean, results[0].windows[w].mean);
    EXPECT_EQ(results[1].windows[w].half_width, results[0].windows[w].half_width);
  }
  EXPECT_EQ(results[1].suspicions, results[0].suspicions);
  EXPECT_EQ(results[1].view_changes, results[0].view_changes);
  EXPECT_EQ(results[1].corruption_detected, results[0].corruption_detected);
}

}  // namespace
}  // namespace fdgm
