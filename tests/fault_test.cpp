// Tests of the fault-injection subsystem: schedule parsing round-trips,
// the network fault-filter stage (partition hold/heal, loss, delay
// spikes), recovery rejoin through the GM state-transfer path and the FD
// log sync, suspicion storms, and bit-identical results across job counts
// for a faulted scenario.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/injector.hpp"
#include "net/system.hpp"

namespace fdgm {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;

// ------------------------------------------------------------- parsing

TEST(FaultSchedule, ParsesTheIssueExample) {
  const FaultSchedule s = FaultSchedule::parse("crash p0 @500; partition {0,1|2} @1000 heal @3000");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(s.events()[0].process, 0);
  EXPECT_DOUBLE_EQ(s.events()[0].at, 500.0);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kPartition);
  EXPECT_EQ(s.events()[1].groups, (std::vector<std::vector<net::ProcessId>>{{0, 1}, {2}}));
  EXPECT_DOUBLE_EQ(s.events()[1].at, 1000.0);
  EXPECT_DOUBLE_EQ(s.events()[1].until, 3000.0);
}

TEST(FaultSchedule, RoundTripsThroughToString) {
  const char* specs[] = {
      "crash p0 @500",
      "recover p3 @1500.5",
      "partition {p0,p1|p2,p3} @1000 heal @3000",
      "loss 0.25 @100 for 400",
      "delay x4 @100 for 50",
      "storm p1,p2 @1000 for 50",
      "crash p1 @5; recover p1 @10; storm p0 @20 for 5",
      "crash p0 @123456.75",  // > 6 significant digits must survive
      "loss 0.2 @0.1 for 1e6",
      "apartition p0,p1->p2 @1000 heal @3000",
      "apartition p3->p0,p1,p2 @500 heal @501",
  };
  for (const char* spec : specs) {
    const FaultSchedule parsed = FaultSchedule::parse(spec);
    EXPECT_EQ(FaultSchedule::parse(parsed.to_string()), parsed) << spec;
  }
}

TEST(FaultSchedule, KeepsEventsOrderedByTime) {
  const FaultSchedule s = FaultSchedule::parse("recover p0 @900; crash p0 @400; storm p1 @600 for 10");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.events()[0].at, 400.0);
  EXPECT_DOUBLE_EQ(s.events()[1].at, 600.0);
  EXPECT_DOUBLE_EQ(s.events()[2].at, 900.0);
}

TEST(FaultSchedule, RejectsMalformedInput) {
  EXPECT_THROW(FaultSchedule::parse("crash x @10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("crash p0"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("partition {0,1} @5 heal @9"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("loss 1.5 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("delay 4 @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("explode p0 @10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("partition {0|1} @10 heal @5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("crash p1e300 @5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("crash p1.5 @5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("partition {0,1|1,2} @5 heal @9"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("apartition p0,p1 @5 heal @9"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("apartition ->p1 @5 heal @9"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("apartition p0-> @5 heal @9"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("apartition p0->p1 @9 heal @5"), std::invalid_argument);
  // Times that would corrupt or abort the scheduler must fail at parse.
  EXPECT_THROW(FaultSchedule::parse("crash p0 @-5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("crash p0 @nan"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("delay xinf @0 for 10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("loss 0.5 @10 for inf"), std::invalid_argument);
}

// ------------------------------------------------- network fault filter

/// Counts deliveries per node.
class Counter final : public net::Layer {
 public:
  void on_message(const net::Message&) override { ++count; }
  int count = 0;
};

struct NetFixture {
  explicit NetFixture(int n) : sys(n, net::NetworkConfig{1.0, 1.0}, 1) {
    for (int i = 0; i < n; ++i) {
      counters.push_back(std::make_unique<Counter>());
      sys.node(i).register_handler(net::ProtocolId::kApplication, counters.back().get());
    }
  }
  net::PayloadPtr payload() { return sys.arena().make<net::BlankPayload>(); }

  net::System sys;
  std::vector<std::unique_ptr<Counter>> counters;
};

TEST(FaultFilter, PartitionHoldsCrossGroupDeliveriesUntilHeal) {
  NetFixture f(4);
  f.sys.network().set_partition({{0, 1}, {2, 3}});
  f.sys.node(0).multicast_all(net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[0]->count, 1);  // loopback bypasses the filter
  EXPECT_EQ(f.counters[1]->count, 1);  // same group
  EXPECT_EQ(f.counters[2]->count, 0);  // held
  EXPECT_EQ(f.counters[3]->count, 0);
  EXPECT_EQ(f.sys.network().held_deliveries(), 2u);

  f.sys.network().heal_partition();
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[2]->count, 1);  // released at the heal
  EXPECT_EQ(f.counters[3]->count, 1);
}

TEST(FaultFilter, UnlistedProcessesFormAnImplicitGroup) {
  NetFixture f(5);
  f.sys.network().set_partition({{0, 1}, {2}});
  EXPECT_FALSE(f.sys.network().partitioned(0, 1));
  EXPECT_TRUE(f.sys.network().partitioned(0, 2));
  EXPECT_TRUE(f.sys.network().partitioned(2, 3));
  EXPECT_FALSE(f.sys.network().partitioned(3, 4));  // both unlisted: same side
}

TEST(FaultFilter, FullLossDropsEveryRemoteDelivery) {
  NetFixture f(3);
  sim::Rng rng(7);
  f.sys.network().set_loss(1.0, &rng);
  f.sys.node(0).multicast_all(net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[0]->count, 1);  // loopback is not subject to loss
  EXPECT_EQ(f.counters[1]->count, 0);
  EXPECT_EQ(f.counters[2]->count, 0);
  EXPECT_EQ(f.sys.network().lost_deliveries(), 2u);

  f.sys.network().clear_loss();
  f.sys.node(0).multicast_all(net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 1);
  EXPECT_EQ(f.counters[2]->count, 1);
}

TEST(FaultFilter, AsymPartitionCutsOnlyTheGivenDirection) {
  NetFixture f(3);
  f.sys.network().set_asym_partition({0}, {2});
  EXPECT_TRUE(f.sys.network().asym_cut(0, 2));
  EXPECT_FALSE(f.sys.network().asym_cut(2, 0));
  f.sys.node(0).send(2, net::ProtocolId::kApplication, f.payload());  // held
  f.sys.node(2).send(0, net::ProtocolId::kApplication, f.payload());  // flows
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());  // unrelated link
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[2]->count, 0);
  EXPECT_EQ(f.counters[0]->count, 1);
  EXPECT_EQ(f.counters[1]->count, 1);
  EXPECT_EQ(f.sys.network().held_deliveries(), 1u);

  f.sys.network().heal_asym_partition();
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[2]->count, 1);  // released at the heal
}

TEST(FaultFilter, AsymPartitionReplacementRefiltersHeldMessages) {
  NetFixture f(3);
  f.sys.network().set_asym_partition({0}, {1});
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 0);
  // The replacing cut no longer blocks 0 -> 1: the held message flows.
  f.sys.network().set_asym_partition({1}, {2});
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 1);
}

TEST(FaultFilter, AsymPartitionRejectsBadIds) {
  NetFixture f(2);
  EXPECT_THROW(f.sys.network().set_asym_partition({0}, {7}), std::out_of_range);
  EXPECT_THROW(f.sys.network().set_asym_partition({-1}, {0}), std::out_of_range);
}

TEST(Injector, AsymPartitionHoldsAndHealsOnSchedule) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("apartition p0->p2 @100 heal @400");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 10.0});
  run.start();
  run.run_until(200.0);
  EXPECT_TRUE(run.system().network().asym_cut(0, 2));
  EXPECT_FALSE(run.system().network().asym_cut(2, 0));
  run.run_until(500.0);
  EXPECT_FALSE(run.system().network().asym_cut(0, 2));
}

TEST(FaultFilter, CrashAtAndRestartAtDriveTheNodeLifecycle) {
  NetFixture f(2);
  f.sys.crash_at(1, 10.0);
  f.sys.restart_at(1, 20.0);
  f.sys.scheduler().run_until(15.0);
  EXPECT_TRUE(f.sys.node(1).crashed());
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());  // dropped: dst dead
  f.sys.scheduler().run_until(25.0);
  EXPECT_FALSE(f.sys.node(1).crashed());
  EXPECT_EQ(f.counters[1]->count, 0);
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  EXPECT_EQ(f.counters[1]->count, 1);
}

TEST(FaultFilter, DelayFactorScalesTheWireStage) {
  NetFixture f(2);
  f.sys.network().set_delay_factor(5.0);
  f.sys.node(0).send(1, net::ProtocolId::kApplication, f.payload());
  f.sys.scheduler().run();
  // lambda + 5 * network_time + lambda = 1 + 5 + 1.
  EXPECT_DOUBLE_EQ(f.sys.now(), 7.0);
  EXPECT_EQ(f.counters[1]->count, 1);
}

// -------------------------------------------------------- injector basics

TEST(Injector, FiresScheduledEventsAndSkipsBadIds) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("crash p1 @100; crash p9 @200");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 50.0});
  run.start();
  run.run_until(500.0);
  EXPECT_TRUE(run.system().node(1).crashed());
  ASSERT_NE(run.injector(), nullptr);
  EXPECT_EQ(run.injector()->fired(), 1u);
  EXPECT_EQ(run.injector()->skipped(), 1u);
}

TEST(Injector, RecoveryRestartsTheNodeAndItsWorkload) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("crash p2 @200; recover p2 @600");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 300.0});
  run.start();
  run.run_until(400.0);
  EXPECT_TRUE(run.system().node(2).crashed());
  const std::uint64_t sent_while_down = run.system().node(2).sent_count();
  run.run_until(3000.0);
  EXPECT_FALSE(run.system().node(2).crashed());
  EXPECT_EQ(run.system().node(2).incarnation(), 1u);
  // The Poisson arrival chain resumed after the restart.
  EXPECT_GT(run.system().node(2).sent_count(), sent_while_down);
}

// ------------------------------------------------------- suspicion storms

TEST(Injector, StormForcesAndReleasesSuspicions) {
  core::SimConfig cfg;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("storm p0 @300 for 100");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 50.0});
  run.start();
  run.run_until(350.0);
  EXPECT_TRUE(run.fd_model().at(1).suspects(0));
  EXPECT_TRUE(run.fd_model().at(2).suspects(0));
  EXPECT_FALSE(run.fd_model().at(0).suspects(1));  // only the accused is suspected
  run.run_until(1500.0);
  EXPECT_FALSE(run.fd_model().at(1).suspects(0));
  EXPECT_FALSE(run.fd_model().at(2).suspects(0));
}

// ------------------------------------------- crash-recovery, both stacks

/// Runs a crash+recover cycle against one algorithm and checks that the
/// recovered process catches up with the group: same log prefix, workload
/// keeps being delivered afterwards.
void check_recovery(core::Algorithm algo) {
  core::SimConfig cfg;
  cfg.algorithm = algo;
  cfg.n = 3;
  cfg.fd_params.detection_time = 10.0;
  cfg.faults = FaultSchedule::parse("crash p2 @500; recover p2 @1500");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
  run.start();
  run.run_until(6000.0);
  run.workload().stop();
  run.run_until(12000.0);

  const auto& rec = run.recorder();
  EXPECT_EQ(rec.stale_undelivered(run.system().now(), 2000.0), 0u)
      << "messages stuck undelivered after the recovery";
  // The recovered process rejoined and caught up: it delivered messages
  // broadcast long after its crash window.
  const std::uint64_t d2 = run.proc(2).delivered_count();
  const std::uint64_t d0 = run.proc(0).delivered_count();
  EXPECT_GT(d2, 0u);
  EXPECT_GE(d2 + 50, d0) << "recovered process lagging far behind";
}

TEST(Recovery, GmProcessRejoinsViaStateTransfer) { check_recovery(core::Algorithm::kGm); }

TEST(Recovery, FdProcessCatchesUpViaLogSync) { check_recovery(core::Algorithm::kFd); }

TEST(Recovery, GmBufferedOwnMessagesSurviveACrashDuringRejoin) {
  // p2 recovers at 600 but cannot rejoin before the recovery is detected
  // (TD = 300, trust at 900); meanwhile its workload resumes and buffers
  // own messages — which the recorder already counted.  The re-crash at
  // 800 hits while still excluded; the buffer must survive into the next
  // incarnation or those messages can never be delivered anywhere.
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kGm;
  cfg.n = 3;
  cfg.fd_params.detection_time = 300.0;
  cfg.faults = FaultSchedule::parse("crash p2 @500; recover p2 @600; crash p2 @800; recover p2 @1600");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 300.0});
  run.start();
  run.run_until(6000.0);
  run.workload().stop();
  run.run_until(12000.0);
  EXPECT_EQ(run.recorder().stale_undelivered(run.system().now(), 2000.0), 0u)
      << "messages submitted while excluded were lost across the re-crash";
}

TEST(Recovery, GmLogsAgreeAfterChurn) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kGm;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("crash p2 @500; recover p2 @1200; crash p2 @2500; recover p2 @3200");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
  run.start();
  run.run_until(7000.0);
  run.workload().stop();
  run.run_until(13000.0);

  auto& p0 = dynamic_cast<abcast::GmAbcastProcess&>(run.proc(0));
  auto& p2 = dynamic_cast<abcast::GmAbcastProcess&>(run.proc(2));
  // p0 went through at least exclusion + readmission per churn cycle.
  EXPECT_GE(p0.membership().views_installed(), 4u);
  // Total order: the shorter log is a prefix of the longer one.
  const auto& log0 = p0.log();
  const auto& log2 = p2.log();
  const std::size_t common = std::min(log0.size(), log2.size());
  ASSERT_GT(common, 0u);
  for (std::size_t i = 0; i < common; ++i)
    ASSERT_EQ(log0[i]->id, log2[i]->id) << "order diverged at " << i;
  EXPECT_GE(log2.size() + 50, log0.size());
}

TEST(Recovery, FdLogsAgreeAfterChurn) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kFd;
  cfg.n = 3;
  cfg.faults = FaultSchedule::parse("crash p1 @500; recover p1 @1200; crash p1 @2500; recover p1 @3200");
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 200.0});
  run.start();
  run.run_until(7000.0);
  run.workload().stop();
  run.run_until(13000.0);

  auto& p0 = dynamic_cast<abcast::FdAbcastProcess&>(run.proc(0));
  auto& p1 = dynamic_cast<abcast::FdAbcastProcess&>(run.proc(1));
  const auto& log0 = p0.log();
  const auto& log1 = p1.log();
  const std::size_t common = std::min(log0.size(), log1.size());
  ASSERT_GT(common, 0u);
  for (std::size_t i = 0; i < common; ++i)
    ASSERT_EQ(log0[i]->id, log1[i]->id) << "order diverged at " << i;
  EXPECT_GE(log1.size() + 50, log0.size());
}

// ------------------------------------------- partition through the stacks

TEST(Partition, DeliveryResumesAcrossTheHealBothAlgorithms) {
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 5;
    cfg.faults = FaultSchedule::parse("partition {0,1,2|3,4} @1000 heal @2500");
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 100.0});
    run.start();
    run.run_until(6000.0);
    run.workload().stop();
    run.run_until(12000.0);
    EXPECT_EQ(run.recorder().stale_undelivered(run.system().now(), 2000.0), 0u)
        << core::algorithm_name(algo) << ": messages lost across the partition";
    EXPECT_GT(run.system().network().held_deliveries(), 0u);
  }
}

TEST(Partition, AsymmetricCutDrainsAfterHealBothAlgorithms) {
  for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 5;
    // The majority can be heard by the minority's senders but not reach
    // them: minority members learn the order only at the heal.
    cfg.faults = FaultSchedule::parse("apartition p0,p1,p2->p3,p4 @1000 heal @2500");
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 100.0});
    run.start();
    run.run_until(6000.0);
    run.workload().stop();
    run.run_until(12000.0);
    EXPECT_EQ(run.recorder().stale_undelivered(run.system().now(), 2000.0), 0u)
        << core::algorithm_name(algo) << ": messages lost across the directed cut";
    EXPECT_GT(run.system().network().held_deliveries(), 0u);
  }
}

// ----------------------------------------------------- jobs determinism

TEST(Determinism, FaultedScenarioIsBitIdenticalAcrossJobs) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kGm;
  cfg.n = 5;
  cfg.seed = 42;
  cfg.faults = FaultSchedule::parse(
      "crash p4 @1200; recover p4 @1700; storm p0 @2600 for 20; "
      "partition {0,1,2|3,4} @3000 heal @3800");
  core::WindowedConfig wc;
  wc.throughput = 100.0;
  wc.t_end = 5000.0;
  wc.windows = {{500.0, 2500.0}, {2500.0, 5000.0}};
  wc.replicas = 4;

  std::vector<core::WindowedResult> results;
  for (std::size_t jobs : {1u, 2u, 8u}) {
    core::WindowedConfig w = wc;
    w.jobs = jobs;
    results.push_back(core::run_windowed(cfg, w));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].stable, results[0].stable);
    ASSERT_EQ(results[i].windows.size(), results[0].windows.size());
    for (std::size_t w = 0; w < results[0].windows.size(); ++w) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(results[i].windows[w].mean, results[0].windows[w].mean);
      EXPECT_EQ(results[i].windows[w].half_width, results[0].windows[w].half_width);
      EXPECT_EQ(results[i].windows[w].n, results[0].windows[w].n);
    }
  }
}

}  // namespace
}  // namespace fdgm
