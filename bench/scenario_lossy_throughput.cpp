// Lossy-channel throughput (beyond the paper): the paper evaluates both
// atomic broadcast stacks over quasi-reliable channels; this family arms
// the retransmission transport (src/transport/) and drives sustained
// message loss through the full stacks — every point-to-point frame is
// dropped independently with probability `loss` for the entire run,
// including the drain, and the transport's NACK + backoff-timer machinery
// recovers the gaps.  Sweeps loss in {0, 0.1%, 1%, 5%} and n in
// {3, 7, 16, 32}, steady state and with one crashed process.
//
// The loss = 0 rows double as the bit-identity check: with the transport
// armed but nothing to recover, latencies equal the loss-free figures
// exactly (the CI diffs a transport-on vs transport-off CSV).
//
// With --profile the table appends the transport's own diagnostics —
// retransmissions per simulated second and duplicate-suppression counts —
// which are deterministic (unlike the wall-clock columns the driver
// appends), but kept out of the default layout so the standard CSVs stay
// comparable across PRs.
//
// The "-b" modes at the end arm submission batching (abcast::BatchConfig)
// on top of the transport and extend the group-size axis beyond the
// unbatched ceiling — appended after the original sweep so the previous
// CSV is a byte prefix of the new one.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

/// Covers warmup, measurement and drain of every budget (ms).
constexpr double kLossHorizon = 1.0e7;

/// Offered load per group size: the subject is the loss axis, so the
/// load is kept comfortably inside each size's no-loss capacity (at
/// n = 32 the recovery traffic of a 5% loss on top of T = 100 would
/// saturate the shared medium — a capacity statement, not a loss one).
double throughput_for(int n) { return n >= 32 ? 50.0 : 100.0; }

util::Table run_lossy(const ScenarioContext& ctx) {
  std::vector<std::string> headers{"n", "loss [%]", "mode", "T [1/s]",
                                   "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"};
  if (ctx.profile) {
    // "seq-retx" is the sequencer-concentration metric: the share of all
    // retransmissions whose original sender is process 0 — the GM
    // sequencer.  A uniform spread would put it at 1/n; the GM column
    // sitting far above that quantifies the fixed-sequencer hotspot (the
    // FD column is the no-special-role baseline of the same process).
    headers.insert(headers.end(), {"FD retx/s", "FD dups", "FD seq-retx", "GM retx/s",
                                   "GM dups", "GM seq-retx"});
  }
  util::Table table(headers);

  const bool quick = ctx.param_flag("quick");
  std::vector<int> ns{3, 7, 16, 32};
  if (quick) ns = {3, 7};
  // Batched extension rows: beyond the unbatched group-size ceiling.
  std::vector<int> ns_b{32, 48};
  if (quick) ns_b = {7};

  struct Point {
    int n;
    double loss;
    const char* mode;
    bool batch;
  };
  std::vector<Point> points;
  for (int n : ns)
    for (double loss : {0.0, 0.001, 0.01, 0.05})
      for (const char* mode : {"steady", "crash"})
        points.push_back({n, loss, mode, false});
  for (int n : ns_b)
    for (double loss : {0.0, 0.01})
      for (const char* mode : {"steady-b", "crash-b"})
        points.push_back({n, loss, mode, true});

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    jobs.push_back([pt, &ctx] {
      const bool crash = pt.mode[0] == 'c';
      const double throughput = throughput_for(pt.n);
      core::SteadyConfig sc = steady_from_ctx(throughput, ctx);
      if (crash) sc.warmup_ms += 1000.0;  // absorb detection + view change

      const std::vector<net::ProcessId> crashes =
          crash ? std::vector<net::ProcessId>{pt.n - 1} : std::vector<net::ProcessId>{};

      std::vector<std::string> row{std::to_string(pt.n), util::Table::cell(pt.loss * 100.0),
                                   pt.mode, util::Table::cell(throughput, 0)};
      std::vector<std::string> diag;
      for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
        core::SimConfig cfg = sim_config_ctx(algo, pt.n, ctx);
        cfg.transport.enabled = true;  // the scenario's premise
        cfg.batching.enabled = pt.batch;
        cfg.fd_params.detection_time = 30.0;
        if (pt.loss > 0.0) {
          fault::FaultEvent e;
          e.kind = fault::FaultKind::kLoss;
          e.rate = pt.loss;
          e.at = 0.0;
          e.until = kLossHorizon;
          cfg.faults.add(e);
        }
        const core::PointResult r = core::run_steady(cfg, sc, crashes);
        add_point_cells(row, r);
        if (ctx.profile) {
          diag.push_back(util::Table::cell(
              static_cast<double>(r.retransmits) / (r.sim_ms / 1000.0), 2));
          diag.push_back(std::to_string(r.dup_suppressed));
          diag.push_back(r.retransmits == 0
                             ? "-"
                             : util::Table::cell(static_cast<double>(r.retx_origin0) /
                                                     static_cast<double>(r.retransmits),
                                                 3));
        }
      }
      row.insert(row.end(), diag.begin(), diag.end());
      return row;
    });
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"lossy_throughput",
                             "Abcast under sustained message loss through the "
                             "retransmission transport, loss up to 5%, n up to 48 "
                             "(batched rows)",
                             "beyond paper", run_lossy, {}}};

}  // namespace
}  // namespace fdgm::bench
