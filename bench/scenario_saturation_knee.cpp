// Saturation knee (beyond the paper): latency vs offered load for both
// atomic broadcast stacks, with and without submission batching, at group
// sizes where the ordering layer — one consensus instance per message
// (FD), one sequence-number round per message (GM) — is what saturates
// first.  The knee of a configuration is the largest offered load whose
// point is still stable (converged and drained); loads past the knee
// render as "unstable", mirroring how the paper leaves saturated settings
// off its graphs.
//
// Batching moves the knee to the right: k submissions share one ordering
// decision (and, on the wire, one rbcast / one AppBatch multicast), with
// the adaptive target k tracking the network backlog so an idle system
// still pays single-message latency.  The shed columns report the open-
// loop arrivals the credit window refused at each load — 0 below the
// knee, climbing past it, always 0 with batching off (no flow control).
//
// Row order: n, then mode (plain before batch), then load — so the plain
// and batch series of one group size sit next to each other in the CSV.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

/// shed / (generated + shed), in percent ("-" before anything arrived).
std::string shed_cell(const core::PointResult& r) {
  const double total = static_cast<double>(r.generated + r.shed);
  if (total <= 0.0) return "-";
  return util::Table::cell(100.0 * static_cast<double>(r.shed) / total, 1);
}

util::Table run_knee(const ScenarioContext& ctx) {
  util::Table table({"n", "mode", "T [1/s]", "FD [ms]", "FD ci95", "FD shed [%]",
                     "GM [ms]", "GM ci95", "GM shed [%]"});

  const bool quick = ctx.param_flag("quick");
  const std::vector<int> ns =
      ctx.param_ints("ns", quick ? std::vector<int>{7} : std::vector<int>{7, 16}, 2, 4096);
  const std::vector<int> loads = ctx.param_ints(
      "loads",
      quick ? std::vector<int>{100, 500, 2000}
            : std::vector<int>{100, 250, 500, 1000, 2000, 4000},
      1, 1000000);

  struct Point {
    int n;
    int load;
    bool batch;
  };
  std::vector<Point> points;
  for (int n : ns)
    for (bool batch : {false, true})
      for (int load : loads) points.push_back({n, load, batch});

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    jobs.push_back([pt, &ctx] {
      core::SteadyConfig sc = steady_from_ctx(static_cast<double>(pt.load), ctx);

      std::vector<std::string> row{std::to_string(pt.n), pt.batch ? "batch" : "plain",
                                   util::Table::cell(static_cast<double>(pt.load), 0)};
      for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
        core::SimConfig cfg = sim_config_ctx(algo, pt.n, ctx);
        cfg.batching.enabled = pt.batch;  // per-row, independent of --batch
        cfg.fd_params.detection_time = 30.0;
        const core::PointResult r = core::run_steady(cfg, sc);
        add_point_cells(row, r);
        row.push_back(shed_cell(r));
      }
      return row;
    });
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"saturation_knee",
                             "Latency vs offered load around saturation, batching on/off "
                             "(the knee = largest stable load per configuration)",
                             "beyond paper",
                             run_knee,
                             {{"ns", "comma-separated group sizes (2..4096)"},
                              {"loads", "comma-separated offered loads in msgs/s (1..1e6)"}}}};

}  // namespace
}  // namespace fdgm::bench
