// Causal critical-path decomposition under loss (armed src/obs/ causal
// tracing): *why* does a lossy delivery take as long as it does?
//
// The lossy_decomposition scenario splits latency into the three
// lifecycle phases (submission wait / ordering / delivery) but cannot say
// what the time inside a phase was spent on.  This scenario arms the
// causal edge recorder and walks every delivered message's critical path,
// attributing each millisecond to exactly one cause:
//
//   credit_wait / batch_wait   flow-control credit closed / batch timer
//   cpu_queue                  send- or receive-side CPU queueing
//   wire                       frames in flight on the shared medium
//   loss_nack / loss_timer /   transport recovery of a lost frame, split
//   loss_backoff               by which mechanism recovered it
//   seq_queue                  waiting in the GM sequencer's pending queue
//   consensus_round            covered by a Chandra-Toueg round (FD)
//   reorder_hold               delivered frames held for per-pair FIFO
//
// The per-cause means add up to the end-to-end mean over the same message
// population, so the rows refine lossy_decomposition's totals.  The
// headline question from the ROADMAP hotspot: GM's post-ordering tail at
// n = 32 @ 5% loss — is it wire, sequencer retransmission recovery, or
// reorder hold?
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kLossHorizon = 1.0e7;

double throughput_for(int n) { return n >= 32 ? 50.0 : 100.0; }

util::Table run_critical_path(const ScenarioContext& ctx) {
  std::vector<std::string> headers{"algo", "n", "loss [%]", "T [1/s]", "total [ms]"};
  for (std::size_t c = 0; c < obs::kCauseCount; ++c)
    headers.push_back(std::string(obs::cause_name(static_cast<obs::Cause>(c))) + " [ms]");
  util::Table table(headers);

  const bool quick = ctx.param_flag("quick");

  struct Point {
    int n;
    double loss;
  };
  std::vector<Point> points{{7, 0.05}, {32, 0.05}};
  if (quick) points = {{3, 0.01}, {7, 0.05}};

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
      jobs.push_back([pt, algo, &ctx] {
        const double throughput = throughput_for(pt.n);
        const core::SteadyConfig sc = steady_from_ctx(throughput, ctx);

        core::SimConfig cfg = sim_config_ctx(algo, pt.n, ctx);
        cfg.transport.enabled = true;
        cfg.fd_params.detection_time = 30.0;
        cfg.obs.enabled = true;
        cfg.obs.causal = true;
        fault::FaultEvent e;
        e.kind = fault::FaultKind::kLoss;
        e.rate = pt.loss;
        e.at = 0.0;
        e.until = kLossHorizon;
        cfg.faults.add(e);

        const core::PointResult r = core::run_steady(cfg, sc);
        std::vector<std::string> row{core::algorithm_name(algo), std::to_string(pt.n),
                                     util::Table::cell(pt.loss * 100.0),
                                     util::Table::cell(throughput, 0)};
        if (!r.stable || r.cause_count == 0) {
          row.emplace_back("unstable");
          for (std::size_t c = 0; c < obs::kCauseCount; ++c) row.emplace_back("-");
          return row;
        }
        const auto per = [&](double sum) {
          return util::Table::cell(sum / static_cast<double>(r.cause_count));
        };
        double total = 0.0;
        for (double s : r.cause_ms) total += s;
        row.push_back(per(total));
        for (double s : r.cause_ms) row.push_back(per(s));
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"critical_path",
                             "Causal critical-path decomposition under loss (armed causal "
                             "tracing): every ms of a delivery attributed to one cause, "
                             "refining lossy_decomposition's phase splits",
                             "beyond paper", run_critical_path, {}}};

}  // namespace
}  // namespace fdgm::bench
