// Microbenchmarks of the simulation substrate: event-core throughput
// (schedule→fire, schedule/cancel/fire), network-hop cost, multicast
// fan-out and end-to-end consensus/abcast instance cost.  These bound how
// much simulated time the figure benches can afford.
//
// The scheduler kernels also report allocs_per_event, counted by the
// global operator new override below — the refactored event core must
// show 0 in steady state (asserted by scheduler_test's allocation
// harness; the counter here tracks the same property per benchmark run).
//
// Builds against Google Benchmark when available, or against the tiny
// built-in harness in bench/microbench.hpp (-DFDGM_MICROBENCH_FALLBACK,
// CMake option FDGM_BENCH_FALLBACK), which supports the same API subset
// plus --benchmark_format=json.  Before/after numbers for the PR-3 event
// core refactor are recorded in BENCH_pr3.json at the repository root.
#ifdef FDGM_MICROBENCH_FALLBACK
#include "microbench.hpp"
#else
#include <benchmark/benchmark.h>
#endif

#include <array>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/experiment.hpp"
#include "fd/qos_model.hpp"
#include "net/system.hpp"
#include "obs/observer.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "transport/transport.hpp"

// GCC pairs the malloc-backed operator new below with the free-backed
// operator delete across inlining and flags a false mismatch; the pair
// is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// ---------------------------------------------------------- alloc counting
namespace {
std::uint64_t g_allocs = 0;
}
void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

using namespace fdgm;

namespace {

std::uint64_t g_sink = 0;

void schedule_fire_kernel(benchmark::State& state, const sim::SchedulerConfig& cfg) {
  const int batch = static_cast<int>(state.range(0));
  sim::Scheduler s(cfg);
  // Realistic callback capture (~40 bytes, like a network pipeline stage).
  auto schedule_batch = [&] {
    sim::Scheduler* sp = &s;
    for (int i = 0; i < batch; ++i) {
      std::uint64_t a = static_cast<std::uint64_t>(i);
      std::uint64_t b = a ^ 0x9e3779b97f4a7c15ULL;
      s.schedule_after(static_cast<double>(i % 64), [sp, a, b, i] {
        g_sink += a + b + static_cast<std::uint64_t>(i) + sp->executed();
      });
    }
  };
  // Warm-up: grow queue/slab capacity (several laps so the wheel's cursor
  // has visited every bucket it will revisit).
  for (int r = 0; r < 4; ++r) {
    schedule_batch();
    s.run();
  }
  const std::uint64_t a0 = g_allocs;
  std::int64_t events = 0;
  for (auto _ : state) {
    schedule_batch();
    s.run();
    events += batch;
  }
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(events);
}

void BM_SchedulerScheduleFire(benchmark::State& state) {
  schedule_fire_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kHeap});
}
BENCHMARK(BM_SchedulerScheduleFire)->Arg(1024)->Arg(16384);

void BM_WheelScheduleFire(benchmark::State& state) {
  schedule_fire_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kWheel});
}
BENCHMARK(BM_WheelScheduleFire)->Arg(1024)->Arg(16384);

void schedule_cancel_fire_kernel(benchmark::State& state, const sim::SchedulerConfig& cfg) {
  const int batch = static_cast<int>(state.range(0));
  sim::Scheduler s(cfg);
  std::vector<sim::EventId> ids(static_cast<std::size_t>(batch));
  auto round = [&] {
    sim::Scheduler* sp = &s;
    for (int i = 0; i < batch; ++i) {
      std::uint64_t a = static_cast<std::uint64_t>(i);
      std::uint64_t b = a * 3;
      ids[static_cast<std::size_t>(i)] =
          s.schedule_after(static_cast<double>(i % 64), [sp, a, b, i] {
            g_sink += a + b + static_cast<std::uint64_t>(i) + sp->executed();
          });
    }
    for (int i = 0; i < batch; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
    s.run();
  };
  for (int r = 0; r < 4; ++r) round();  // warm-up
  const std::uint64_t a0 = g_allocs;
  std::int64_t events = 0;
  for (auto _ : state) {
    round();
    events += batch;
  }
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(events);
}

void BM_SchedulerScheduleCancelFire(benchmark::State& state) {
  schedule_cancel_fire_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kHeap});
}
BENCHMARK(BM_SchedulerScheduleCancelFire)->Arg(1024);

void BM_WheelScheduleCancelFire(benchmark::State& state) {
  schedule_cancel_fire_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kWheel});
}
BENCHMARK(BM_WheelScheduleCancelFire)->Arg(1024);

// FD-timer mix at n = 128: the pending-queue population a large group's
// failure-detector layer creates — one long-horizon renewal timer per
// ordered pair (n(n-1) = 16256 of them) parked under a hot stream of
// short protocol events, with a steady churn of cancel+reschedule on the
// cold timers (detection edges / releases / storm extensions).  The heap
// pays O(log 16k) with cache misses on every hot operation; the wheel
// parks the cold population in its upper levels / overflow and serves
// the hot stream from level 0.
void fd_timer_mix_kernel(benchmark::State& state, const sim::SchedulerConfig& cfg) {
  constexpr int kN = 128;
  constexpr int kPairs = kN * (kN - 1);
  sim::Scheduler s(cfg);
  std::mt19937_64 rng(20260729);
  std::vector<sim::EventId> renewals(kPairs);
  // Far enough out that no parked timer ever comes due inside the
  // benchmark loop (each iteration advances 4 ms; the harness runs tens
  // of thousands of iterations): the population stays at exactly kPairs
  // and every counted event is a hot one.
  auto long_horizon = [&rng] {
    return 1.0e6 + static_cast<double>(rng() % 2'000'000);  // ~17 .. ~50 min
  };
  for (int i = 0; i < kPairs; ++i)
    renewals[static_cast<std::size_t>(i)] = s.schedule_after(long_horizon(), [] { ++g_sink; });

  auto round = [&] {
    sim::Scheduler* sp = &s;
    for (int i = 0; i < 512; ++i) {
      const auto a = static_cast<std::uint64_t>(i);
      s.schedule_after(static_cast<double>(i % 32) * 0.125,
                       [sp, a] { g_sink += a + sp->executed(); });
    }
    for (int i = 0; i < 64; ++i) {
      const std::size_t idx = rng() % renewals.size();
      s.cancel(renewals[idx]);
      renewals[idx] = s.schedule_after(long_horizon(), [] { ++g_sink; });
    }
    s.run_until(s.now() + 4.0);  // drains the short events only
  };
  for (int r = 0; r < 8; ++r) round();  // warm-up
  const std::uint64_t a0 = g_allocs;
  std::int64_t events = 0;
  for (auto _ : state) {
    round();
    events += 512 + 2 * 64;  // fires + cancel/reschedule pairs
  }
  state.SetItemsProcessed(events);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(events);
}

void BM_FdTimerMix128_heap(benchmark::State& state) {
  fd_timer_mix_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kHeap});
}
BENCHMARK(BM_FdTimerMix128_heap);

void BM_FdTimerMix128_wheel(benchmark::State& state) {
  fd_timer_mix_kernel(state, sim::SchedulerConfig{sim::SchedulerBackend::kWheel});
}
BENCHMARK(BM_FdTimerMix128_wheel);

void BM_NetworkUnicastHop(benchmark::State& state) {
  net::System sys(2, net::NetworkConfig{}, 1);
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } sink;
  sys.node(1).register_handler(net::ProtocolId::kApplication, &sink);
  const net::BlankPayload payload;
  std::int64_t msgs = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) sys.node(0).send(1, net::ProtocolId::kApplication, &payload);
    sys.scheduler().run();
    msgs += 1000;
  }
  state.SetItemsProcessed(msgs);
  benchmark::DoNotOptimize(sys.network().messages_delivered());
}
BENCHMARK(BM_NetworkUnicastHop);

void BM_NetworkMulticastFanout(benchmark::State& state) {
  constexpr int kN = 8;
  net::System sys(kN, net::NetworkConfig{}, 1);
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } sink;
  for (int i = 0; i < kN; ++i)
    sys.node(i).register_handler(net::ProtocolId::kApplication, &sink);
  const net::BlankPayload payload;
  std::int64_t deliveries = 0;
  for (auto _ : state) {
    for (int i = 0; i < 250; ++i)
      sys.node(i % kN).multicast_all(net::ProtocolId::kApplication, &payload);
    sys.scheduler().run();
    deliveries += 250 * kN;
  }
  state.SetItemsProcessed(deliveries);
  benchmark::DoNotOptimize(sys.network().messages_delivered());
}
BENCHMARK(BM_NetworkMulticastFanout);

// Transport hot path, no loss: bidirectional unicast streams through the
// armed retransmission transport (sequence stamping + piggyback-ack
// bookkeeping + in-order release on every hop).  The no-loss path must
// stay allocation-free: no ring pushes, no timers, no control frames —
// allocs_per_event is asserted 0 by the perf-smoke CI job.
void transport_pingpong_kernel(benchmark::State& state, sim::SchedulerBackend backend) {
  net::System sys(2, net::NetworkConfig{}, 1, sim::SchedulerConfig{backend},
                  transport::Config{.enabled = true});
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } sink;
  sys.node(0).register_handler(net::ProtocolId::kApplication, &sink);
  sys.node(1).register_handler(net::ProtocolId::kApplication, &sink);
  const net::BlankPayload payload;
  auto round = [&] {
    for (int i = 0; i < 500; ++i) {
      sys.node(0).send(1, net::ProtocolId::kApplication, &payload);
      sys.node(1).send(0, net::ProtocolId::kApplication, &payload);
    }
    sys.scheduler().run();
  };
  for (int r = 0; r < 4; ++r) round();  // warm-up: grow slab/list capacity
  const std::uint64_t a0 = g_allocs;
  std::int64_t msgs = 0;
  for (auto _ : state) {
    round();
    msgs += 1000;
  }
  state.SetItemsProcessed(msgs);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(msgs);
  benchmark::DoNotOptimize(sys.transport()->stats().data_frames);
}

void BM_TransportPingPong_heap(benchmark::State& state) {
  transport_pingpong_kernel(state, sim::SchedulerBackend::kHeap);
}
BENCHMARK(BM_TransportPingPong_heap);

void BM_TransportPingPong_wheel(benchmark::State& state) {
  transport_pingpong_kernel(state, sim::SchedulerBackend::kWheel);
}
BENCHMARK(BM_TransportPingPong_wheel);

// Raw frame-checksum cost: stamp + verify over a resident message set,
// nothing else.  This is the per-frame arithmetic a corrupt-armed run adds
// to every delivery; it must not allocate.
void BM_FrameChecksumKernel(benchmark::State& state) {
  constexpr int kMsgs = 256;
  const net::BlankPayload payload;
  std::vector<net::Message> msgs;
  msgs.reserve(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    net::Message m{i % 8, (i + 1) % 8, net::ProtocolId::kApplication, {}, &payload};
    m.frame.seq = static_cast<std::uint32_t>(i + 1);  // stamped: seq_no != 0
    msgs.push_back(m);
  }
  const std::uint64_t a0 = g_allocs;
  std::int64_t frames = 0;
  std::uint64_t ok = 0;
  for (auto _ : state) {
    for (net::Message& m : msgs) {
      m.frame.check = net::frame_digest(m);
      ok += net::frame_checksum_ok(m) ? 1 : 0;
    }
    frames += kMsgs;
  }
  state.SetItemsProcessed(frames);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(frames);
  benchmark::DoNotOptimize(ok);
}
BENCHMARK(BM_FrameChecksumKernel);

// Transport hot path with checksums latched (what arming any `corrupt`
// window does for the whole run): every delivery additionally stamps the
// digest at the wire and verifies it at Transport::on_frame.  The delta
// against BM_TransportPingPong_heap is the end-to-end checksum tax; the
// path must stay allocation-free (perf-smoke asserts it).
void BM_TransportChecksumPingPong_heap(benchmark::State& state) {
  net::System sys(2, net::NetworkConfig{}, 1, sim::SchedulerConfig{},
                  transport::Config{.enabled = true});
  sys.network().enable_checksums();
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } sink;
  sys.node(0).register_handler(net::ProtocolId::kApplication, &sink);
  sys.node(1).register_handler(net::ProtocolId::kApplication, &sink);
  const net::BlankPayload payload;
  auto round = [&] {
    for (int i = 0; i < 500; ++i) {
      sys.node(0).send(1, net::ProtocolId::kApplication, &payload);
      sys.node(1).send(0, net::ProtocolId::kApplication, &payload);
    }
    sys.scheduler().run();
  };
  for (int r = 0; r < 4; ++r) round();  // warm-up: grow slab/list capacity
  const std::uint64_t a0 = g_allocs;
  std::int64_t msgs = 0;
  for (auto _ : state) {
    round();
    msgs += 1000;
  }
  state.SetItemsProcessed(msgs);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(msgs);
  benchmark::DoNotOptimize(sys.transport()->stats().data_frames);
  benchmark::DoNotOptimize(sys.transport()->stats().corrupt_dropped);
}
BENCHMARK(BM_TransportChecksumPingPong_heap);

// Transport recovery path: a 5%-lossy unidirectional stream — every round
// drains completely, so the measured cost includes gap detection, NACKs,
// timer rounds, retransmissions and duplicate-triggered ACKs.  This path
// is allowed to allocate (control payloads live in the arena, rings grow
// to the loss burst), so no allocs_per_event counter is reported.
void BM_TransportLossyRecovery(benchmark::State& state) {
  net::System sys(2, net::NetworkConfig{}, 1, sim::SchedulerConfig{},
                  transport::Config{.enabled = true});
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } sink;
  sys.node(0).register_handler(net::ProtocolId::kApplication, &sink);
  sys.node(1).register_handler(net::ProtocolId::kApplication, &sink);
  sim::Rng loss_rng(99);
  const net::BlankPayload payload;
  std::int64_t msgs = 0;
  for (auto _ : state) {
    sys.network().set_loss(0.05, &loss_rng);
    for (int i = 0; i < 500; ++i) sys.node(0).send(1, net::ProtocolId::kApplication, &payload);
    sys.scheduler().run();  // drains: every gap recovered, timers settled
    sys.network().clear_loss();
    sys.scheduler().run();
    msgs += 500;
  }
  state.SetItemsProcessed(msgs);
  benchmark::DoNotOptimize(sys.transport()->stats().retransmits);
}
BENCHMARK(BM_TransportLossyRecovery);

// Batched submission machinery in isolation: an AtomicBroadcastProcess
// subclass whose ordering layer is a local loopback (submit/flush deliver
// immediately), fed from preallocated AppMessages.  Each round first
// queues unicast traffic to build a real network backlog — the adaptive
// batch target reads it, so the queue accumulates and flush_batch runs
// with count > 1 — then drains everything including the flush timer.
// Steady state must not allocate: the submission queue and its flush
// scratch ping-pong capacity, the timer lives in the scheduler slab, and
// no payload is created (perf-smoke asserts allocs_per_event == 0).
void batched_submit_kernel(benchmark::State& state, sim::SchedulerBackend backend) {
  constexpr int kMsgs = 64;
  net::System sys(2, net::NetworkConfig{}, 11, sim::SchedulerConfig{backend});
  class Sink final : public net::Layer {
   public:
    void on_message(const net::Message&) override {}
  } net_sink;
  sys.node(1).register_handler(net::ProtocolId::kApplication, &net_sink);

  class Loopback final : public abcast::AtomicBroadcastProcess {
   public:
    Loopback(net::System& s, abcast::BatchConfig b) : AtomicBroadcastProcess(s, 0, b) {}
    void feed(abcast::AppMessagePtr m) { enqueue_submission(m); }
    [[nodiscard]] std::uint64_t delivered_count() const override { return delivered_; }
    std::uint64_t batched = 0;

   protected:
    void submit_now(abcast::AppMessagePtr msg) override {
      ++delivered_;
      deliver(*msg);
    }
    void flush_batch(const abcast::AppMessagePtr* msgs, std::size_t count) override {
      delivered_ += count;
      batched += count;
      for (std::size_t i = 0; i < count; ++i) deliver(*msgs[i]);
    }

   private:
    std::uint64_t delivered_ = 0;
  };
  class DropSink final : public abcast::DeliverSink {
   public:
    void on_deliver(const abcast::AppMessage&) override { ++g_sink; }
  } drop;

  abcast::BatchConfig bc;
  bc.enabled = true;
  Loopback proc(sys, bc);
  proc.set_deliver_sink(&drop);
  std::vector<abcast::AppMessagePtr> msgs;
  for (int i = 0; i < kMsgs; ++i)
    msgs.push_back(sys.arena().make<abcast::AppMessage>(
        abcast::MsgId{0, static_cast<std::uint64_t>(i) + 1}, 0.0));

  const net::BlankPayload payload;
  auto round = [&] {
    // Backlog first: the adaptive target turns it into batches of k > 1.
    for (int i = 0; i < kMsgs; ++i) sys.node(0).send(1, net::ProtocolId::kApplication, &payload);
    for (int i = 0; i < kMsgs; ++i) proc.feed(msgs[static_cast<std::size_t>(i)]);
    sys.scheduler().run();  // drains the network and fires the flush timer
  };
  // Warm-up.  Besides queue/scratch/slab capacity, pre-grow the wheel's
  // far-future overflow storage and cancel again: a long run crosses the
  // wheel's top-window boundary (~2^20 simulated ms), where in-flight
  // events briefly straddle into the overflow — its vector must already
  // hold the largest straddle population or the crossing allocates.
  {
    std::vector<sim::EventId> far;
    for (int i = 0; i < 512; ++i)
      far.push_back(sys.scheduler().schedule_after(3.0e9 + i, [] { ++g_sink; }));
    for (sim::EventId e : far) sys.scheduler().cancel(e);
  }
  for (int r = 0; r < 16; ++r) round();
  const std::uint64_t a0 = g_allocs;
  std::int64_t items = 0;
  for (auto _ : state) {
    round();
    items += 2 * kMsgs;  // network messages + batched submissions
  }
  state.SetItemsProcessed(items);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(items);
  // The adaptive target really amortized: most submissions rode batches.
  state.counters["batched_fraction"] =
      static_cast<double>(proc.batched) / static_cast<double>(proc.delivered_count());
}

void BM_BatchedSubmit_heap(benchmark::State& state) {
  batched_submit_kernel(state, sim::SchedulerBackend::kHeap);
}
BENCHMARK(BM_BatchedSubmit_heap);

void BM_BatchedSubmit_wheel(benchmark::State& state) {
  batched_submit_kernel(state, sim::SchedulerBackend::kWheel);
}
BENCHMARK(BM_BatchedSubmit_wheel);

// Armed observer hot path in isolation: the full hook mix a protocol
// round produces — span lifecycle (submit / order_start / ordered /
// delivered), counters, retransmit attribution, reorder gauges and lazy
// metrics-window rolls.  The slabs are reserved at construction and a
// snapshot row is a fixed array, so after construction the hooks must
// never allocate — including once the span slabs fill and the observer
// switches to flight-recorder drops (the kernel deliberately runs past
// capacity).  perf-smoke asserts allocs_per_event == 0 here; together
// with the determinism tests (armed run reproduces the golden hashes)
// this is the "armed is free" half of the observability contract.
void BM_ObserverArmedHooks(benchmark::State& state) {
  constexpr int kN = 8;
  constexpr int kMsgs = 64;
  obs::Config cfg;
  cfg.enabled = true;
  obs::Observer o(kN, cfg);
  double now = 0.0;
  std::array<std::uint64_t, kN> seqs{};  // seq numbers are dense per origin
  auto round = [&] {
    for (int i = 0; i < kMsgs; ++i) {
      const int origin = i % kN;
      const std::uint64_t s = ++seqs[static_cast<std::size_t>(origin)];
      o.on_submit(origin, s, now);
      o.on_order_start(origin, s, now + 0.1);
      o.on_ordered(origin, s, now + 1.0);
      o.on_delivered(origin, s, now + 2.0);
      o.count(origin, obs::Counter::kConsensusRounds, now);
      o.on_retransmit(origin, now);
      o.reorder_depth(origin, static_cast<std::size_t>(i % 7));
      now += 0.25;  // crosses a metrics-window boundary every 400 hooks
    }
  };
  round();  // warm-up (nothing to grow, but keep the kernel shape uniform)
  const std::uint64_t a0 = g_allocs;
  std::int64_t hooks = 0;
  for (auto _ : state) {
    round();
    hooks += kMsgs * 7;
  }
  state.SetItemsProcessed(hooks);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(hooks);
  benchmark::DoNotOptimize(o.total(obs::Counter::kTransportRetx));
  benchmark::DoNotOptimize(o.spans_dropped());
}
BENCHMARK(BM_ObserverArmedHooks);

// Armed *causal* hot path: edge recording via trace_marker/trace_stall
// (the classify step is the caller's; this kernel measures the recorder)
// plus the FD QoS meter's transition bookkeeping.  The edge slabs are
// reserved at construction, MsgRefList is a fixed array and a QoS
// transition touches only pre-sized vectors, so the hooks must never
// allocate — including after the slabs fill and edges start dropping
// (the kernel runs past capacity on purpose).  perf-smoke asserts
// allocs_per_event == 0 here, the causal half of "armed is free".
void BM_CausalHookKernel(benchmark::State& state) {
  constexpr int kN = 8;
  constexpr int kMsgs = 32;
  obs::Config cfg;
  cfg.enabled = true;
  cfg.causal = true;
  cfg.edge_capacity = 1024;  // deliberately small: exercise the drop path
  obs::Observer o(kN, cfg);
  double now = 0.0;
  std::array<std::uint64_t, kN> seqs{};
  auto round = [&] {
    for (int i = 0; i < kMsgs; ++i) {
      const int origin = i % kN;
      const std::uint64_t s = ++seqs[static_cast<std::size_t>(origin)];
      o.on_submit(origin, s, now);
      o.on_order_start(origin, s, now);
      obs::MsgRefList refs;
      refs.add(origin, s);
      // One hop's worth of markers plus a recovery stall, per message.
      o.trace_marker(obs::EdgeKind::kSendEnq, origin, refs, now);
      o.trace_marker(obs::EdgeKind::kSendDone, origin, refs, now + 0.01);
      o.trace_marker(obs::EdgeKind::kWireEnq, origin, refs, now + 0.01);
      o.trace_marker(obs::EdgeKind::kWireDone, origin, refs, now + 0.4);
      o.trace_stall(obs::EdgeKind::kStallNack, origin, refs, now, now + 1.0);
      o.on_ordered(origin, s, now + 1.0, origin);
      o.on_delivered(origin, s, now + 2.0, origin);
      // QoS meter edges: a wrong suspicion opening and closing.
      o.on_fd_transition(origin, (origin + 1) % kN, 0b01, now);
      o.on_fd_transition(origin, (origin + 1) % kN, 0b00, now + 0.5);
      now += 0.25;
    }
  };
  round();  // warm-up
  const std::uint64_t a0 = g_allocs;
  std::int64_t hooks = 0;
  for (auto _ : state) {
    round();
    hooks += kMsgs * 11;
  }
  state.SetItemsProcessed(hooks);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_allocs - a0) / static_cast<double>(hooks);
  benchmark::DoNotOptimize(o.edges_recorded());
  benchmark::DoNotOptimize(o.edges_dropped());
  benchmark::DoNotOptimize(o.qos_measured().transitions);
}
BENCHMARK(BM_CausalHookKernel);

void BM_AbcastSecond(benchmark::State& state) {
  // Cost of one simulated second of atomic broadcast at T=300/s, n=3.
  const auto algo = static_cast<core::Algorithm>(state.range(0));
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 3;
    cfg.seed = 7;
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 300.0});
    run.start();
    run.run_until(1000.0);
    benchmark::DoNotOptimize(run.recorder().total_delivered());
  }
}
BENCHMARK(BM_AbcastSecond)
    ->Arg(static_cast<int>(core::Algorithm::kFd))
    ->Arg(static_cast<int>(core::Algorithm::kGm));

// Same run with the observer armed: the end-to-end cost of tracing every
// message lifecycle plus the counter registry.  Compare against
// BM_AbcastSecond — the delta is the observability tax on a full
// simulated second (the hooks themselves are allocation-free, see
// BM_ObserverArmedHooks).
void BM_AbcastSecondObserved(benchmark::State& state) {
  const auto algo = static_cast<core::Algorithm>(state.range(0));
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 3;
    cfg.seed = 7;
    cfg.obs.enabled = true;
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 300.0});
    run.start();
    run.run_until(1000.0);
    benchmark::DoNotOptimize(run.recorder().total_delivered());
    benchmark::DoNotOptimize(run.observer()->spans_recorded());
  }
}
BENCHMARK(BM_AbcastSecondObserved)
    ->Arg(static_cast<int>(core::Algorithm::kFd))
    ->Arg(static_cast<int>(core::Algorithm::kGm));

// One simulated second of FD-heavy atomic broadcast at n = 128 (the
// scale_throughput composition: T = 100/s, one renewal timer per ordered
// pair).  Items = scheduler events, so items_per_second is the
// events/sec figure and 1e9 / items_per_second the ns/event the
// BENCH_pr4.json before/after compares.  The SimRun persists across
// iterations: this measures the steady state, not the n^2 setup.
void abcast_scale_kernel(benchmark::State& state, sim::SchedulerBackend backend) {
  core::SimConfig cfg;
  cfg.algorithm = core::Algorithm::kFd;
  cfg.n = 128;
  cfg.seed = 7;
  cfg.scheduler.backend = backend;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence = 128.0 * 127.0 * 5000.0;
  cfg.fd_params.mistake_duration = 50.0;
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = 100.0});
  run.start();
  run.run_until(1000.0);  // past startup transients
  std::int64_t events = 0;
  for (auto _ : state) {
    const std::uint64_t e0 = run.system().scheduler().executed();
    run.run_until(run.system().scheduler().now() + 1000.0);
    events += static_cast<std::int64_t>(run.system().scheduler().executed() - e0);
  }
  state.SetItemsProcessed(events);
  benchmark::DoNotOptimize(run.recorder().total_delivered());
}

void BM_AbcastScaleSecond128_heap(benchmark::State& state) {
  abcast_scale_kernel(state, sim::SchedulerBackend::kHeap);
}
BENCHMARK(BM_AbcastScaleSecond128_heap);

void BM_AbcastScaleSecond128_wheel(benchmark::State& state) {
  abcast_scale_kernel(state, sim::SchedulerBackend::kWheel);
}
BENCHMARK(BM_AbcastScaleSecond128_wheel);

void BM_AbcastScaleSecond128_par(benchmark::State& state) {
  abcast_scale_kernel(state, sim::SchedulerBackend::kParallel);
}
BENCHMARK(BM_AbcastScaleSecond128_par);

// QoS-model construction at n = 128: formerly an eager n^2 loop forking
// one mt19937_64 per ordered pair (16256 engines, ~2500 state words
// each) before the first event ran — quadratic setup that dominated
// short large-n runs and was pure waste for the (default) silent pairs.
// PairState is now lazy: construction sizes an engine-less vector, and a
// pair materializes its fork (replaying its draw count, so streams are
// bit-identical to the eager layout) only on its first mistake draw.
// Items = one constructed model; compare against the eager-cost
// reference kernel below.
void BM_QosModelSetup128(benchmark::State& state) {
  constexpr int kN = 128;
  net::System sys(kN, net::NetworkConfig{}, 7);
  fd::QosParams params;
  params.detection_time = 30.0;
  params.wrong_suspicions = true;
  params.mistake_recurrence = 128.0 * 127.0 * 5000.0;
  params.mistake_duration = 50.0;
  std::int64_t models = 0;
  for (auto _ : state) {
    fd::QosFailureDetectorModel model(sys, params);
    benchmark::DoNotOptimize(&model);
    ++models;
  }
  state.SetItemsProcessed(models);
}
BENCHMARK(BM_QosModelSetup128);

// Reference: the eager cost BM_QosModelSetup128 no longer pays — n(n-1) =
// 16256 independent mt19937_64 forks, exactly the per-pair seeding the
// old constructor performed.  The lazy model amortizes this across the
// run (and skips it entirely for pairs that never draw).
void BM_RngForkPerPair128(benchmark::State& state) {
  const sim::Rng base(20260808);
  constexpr int kPairs = 128 * 127;
  std::int64_t forks = 0;
  for (auto _ : state) {
    std::uint64_t mixed = 0;
    for (int i = 0; i < kPairs; ++i) {
      sim::Rng engine = base.fork(static_cast<std::uint64_t>(i));
      mixed ^= engine.next_u64();
    }
    benchmark::DoNotOptimize(mixed);
    forks += kPairs;
  }
  state.SetItemsProcessed(forks);
}
BENCHMARK(BM_RngForkPerPair128);

}  // namespace

BENCHMARK_MAIN();
