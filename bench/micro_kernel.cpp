// Microbenchmarks of the simulation substrate: event-queue throughput,
// network-hop cost and end-to-end consensus/abcast instance cost.  These
// bound how much simulated time the figure benches can afford.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "net/system.hpp"
#include "sim/scheduler.hpp"

using namespace fdgm;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) s.schedule_at(static_cast<double>(i % 64), [] {});
    s.run();
    benchmark::DoNotOptimize(s.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_NetworkUnicastHop(benchmark::State& state) {
  for (auto _ : state) {
    net::System sys(2, net::NetworkConfig{}, 1);
    class Sink final : public net::Layer {
     public:
      void on_message(const net::Message&) override {}
    } sink;
    sys.node(1).register_handler(net::ProtocolId::kApplication, &sink);
    for (int i = 0; i < 1000; ++i)
      sys.node(0).send(1, net::ProtocolId::kApplication, std::make_shared<net::Payload>());
    sys.scheduler().run();
    benchmark::DoNotOptimize(sys.network().messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkUnicastHop);

void BM_AbcastSecond(benchmark::State& state) {
  // Cost of one simulated second of atomic broadcast at T=300/s, n=3.
  const auto algo = static_cast<core::Algorithm>(state.range(0));
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.algorithm = algo;
    cfg.n = 3;
    cfg.seed = 7;
    core::SimRun run(cfg, core::WorkloadConfig{.throughput = 300.0});
    run.start();
    run.run_until(1000.0);
    benchmark::DoNotOptimize(run.recorder().total_delivered());
  }
}
BENCHMARK(BM_AbcastSecond)
    ->Arg(static_cast<int>(core::Algorithm::kFd))
    ->Arg(static_cast<int>(core::Algorithm::kGm));

}  // namespace
