// Phase-latency decomposition under loss (src/obs/): where does the time
// of a lossy delivery actually go?
//
// Arms the observability layer and splits each stack's end-to-end delivery
// latency into the three lifecycle phases the observer records per
// message:
//
//   submit [ms]   submission wait — a_broadcast to entering the ordering
//                 machinery (zero unbatched, queueing delay batched)
//   order [ms]    ordering — FD: until the first consensus decision
//                 covering the message; GM: until the sequencer assigns
//                 its sequence number
//   deliver [ms]  ordered to the first A-delivery anywhere — under loss
//                 this is transport-recovery time (the decision / SEQNUM /
//                 content frames that must survive the lossy wire)
//
// plus the sequencer-concentration metric (share of retransmissions
// originating at process 0, the GM sequencer).  The sweep focuses on the
// ROADMAP hotspot question — n = 32 @ 5% loss, where GM's 2.1 s dwarfs
// FD's 0.53 s — with smaller points for scale context.  Same load and
// fault setup as lossy_throughput, so the totals line up with its rows.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kLossHorizon = 1.0e7;

double throughput_for(int n) { return n >= 32 ? 50.0 : 100.0; }

util::Table run_decomposition(const ScenarioContext& ctx) {
  std::vector<std::string> headers{"algo", "n", "loss [%]", "T [1/s]", "total [ms]",
                                   "submit [ms]", "order [ms]", "deliver [ms]",
                                   "seq-retx share", "retx/s"};
  // --profile: end-to-end latency quantiles from the armed observer's
  // histogram (machine-independent, but omitted from the default CSV
  // layout so the committed results stay byte-stable).
  if (ctx.profile) {
    headers.emplace_back("p50 [ms]");
    headers.emplace_back("p99 [ms]");
  }
  util::Table table(headers);

  const bool quick = ctx.param_flag("quick");

  struct Point {
    int n;
    double loss;
  };
  std::vector<Point> points{{7, 0.01}, {16, 0.05}, {32, 0.01}, {32, 0.05}};
  if (quick) points = {{3, 0.01}, {7, 0.05}};

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
      jobs.push_back([pt, algo, &ctx] {
        const double throughput = throughput_for(pt.n);
        const core::SteadyConfig sc = steady_from_ctx(throughput, ctx);

        core::SimConfig cfg = sim_config_ctx(algo, pt.n, ctx);
        cfg.transport.enabled = true;
        cfg.fd_params.detection_time = 30.0;
        cfg.obs.enabled = true;
        fault::FaultEvent e;
        e.kind = fault::FaultKind::kLoss;
        e.rate = pt.loss;
        e.at = 0.0;
        e.until = kLossHorizon;
        cfg.faults.add(e);

        const core::PointResult r = core::run_steady(cfg, sc);
        std::vector<std::string> row{core::algorithm_name(algo), std::to_string(pt.n),
                                     util::Table::cell(pt.loss * 100.0),
                                     util::Table::cell(throughput, 0)};
        if (!r.stable || r.phase_count == 0) {
          row.insert(row.end(), {"unstable", "-", "-", "-", "-", "-"});
          if (ctx.profile) row.insert(row.end(), {"-", "-"});
          return row;
        }
        const auto per = [&](double sum) {
          return util::Table::cell(sum / static_cast<double>(r.phase_count));
        };
        // The three phase means add up to the end-to-end mean over the
        // same message population (global-first deliveries), which can
        // sit slightly below the per-process latency column of
        // lossy_throughput — by construction, min <= mean over processes.
        row.push_back(per(r.phase_submit_ms + r.phase_order_ms + r.phase_deliver_ms));
        row.push_back(per(r.phase_submit_ms));
        row.push_back(per(r.phase_order_ms));
        row.push_back(per(r.phase_deliver_ms));
        row.push_back(r.retransmits == 0
                          ? "-"
                          : util::Table::cell(static_cast<double>(r.retx_origin0) /
                                                  static_cast<double>(r.retransmits),
                                              3));
        row.push_back(util::Table::cell(
            static_cast<double>(r.retransmits) / (r.sim_ms / 1000.0), 2));
        if (ctx.profile) {
          row.push_back(util::Table::cell(r.lat_p50));
          row.push_back(util::Table::cell(r.lat_p99));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"lossy_decomposition",
                             "Phase-latency decomposition under loss (armed src/obs/): "
                             "submission-wait / ordering / transport-recovery splits plus "
                             "sequencer retx concentration, focused on n = 32 @ 5%",
                             "beyond paper", run_decomposition, {}}};

}  // namespace
}  // namespace fdgm::bench
