#include "scenario.hpp"

#include <stdexcept>

namespace fdgm::bench {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario s) {
  if (s.name.empty() || !s.run) throw std::invalid_argument("Scenario: name and run required");
  if (find(s.name) != nullptr)
    throw std::invalid_argument("Scenario: duplicate name " + s.name);
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const Scenario& s : scenarios_)
    if (s.name == name) return &s;
  return nullptr;
}

ScenarioRegistrar::ScenarioRegistrar(Scenario s) {
  ScenarioRegistry::instance().add(std::move(s));
}

}  // namespace fdgm::bench
