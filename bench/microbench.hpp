// Tiny built-in timing harness: a drop-in subset of the Google Benchmark
// API (State iteration, BENCHMARK()->Arg() registration, DoNotOptimize,
// SetItemsProcessed, counters, --benchmark_format=json), so micro_kernel
// builds and runs on machines without the library.  Selected by the CMake
// option FDGM_BENCH_FALLBACK (or automatically when the library is not
// found); the real library remains the default when available.
//
// Methodology: each benchmark is calibrated to run for ~0.25 s of wall
// time (one probe iteration sizes the batch), then timed over the whole
// batch with steady_clock; reported real_time is ns per iteration.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

class State;
using Function = void (*)(State&);

namespace detail {

struct Registration {
  std::string name;
  Function fn = nullptr;
  std::vector<std::int64_t> args;  // one run per entry; empty = one run, no arg
};

inline std::vector<Registration>& registry() {
  static std::vector<Registration> r;
  return r;
}

}  // namespace detail

/// GB-compatible counter: implicitly convertible from/to double.
struct Counter {
  double value = 0.0;
  Counter() = default;
  Counter(double v) : value(v) {}  // NOLINT(google-explicit-constructor)
  operator double() const { return value; }  // NOLINT(google-explicit-constructor)
};

class State {
 public:
  explicit State(std::int64_t iterations, std::int64_t arg, bool has_arg)
      : target_(iterations), arg_(arg), has_arg_(has_arg) {}

  /// Minimal range-for protocol: `for (auto _ : state)` runs target_ times.
  /// operator* yields a class type so the unused loop variable does not
  /// trigger -Wunused-variable (mirrors Google Benchmark).
  struct [[maybe_unused]] Tick {};  // attribute silences the unused `_`
  struct iterator {
    std::int64_t left;
    bool operator!=(const iterator& o) const { return left != o.left; }
    void operator++() { --left; }
    Tick operator*() const { return {}; }
  };
  iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return iterator{target_};
  }
  iterator end() { return iterator{0}; }

  [[nodiscard]] std::int64_t range(std::size_t /*i*/ = 0) const { return has_arg_ ? arg_ : 0; }
  [[nodiscard]] std::int64_t iterations() const { return target_; }
  void SetItemsProcessed(std::int64_t n) { items_ = n; }
  [[nodiscard]] std::int64_t items_processed() const { return items_; }
  [[nodiscard]] double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  std::map<std::string, Counter> counters;

 private:
  std::int64_t target_;
  std::int64_t arg_;
  bool has_arg_;
  std::int64_t items_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

class RegistrationHandle {
 public:
  explicit RegistrationHandle(std::size_t index) : index_(index) {}
  RegistrationHandle* Arg(std::int64_t a) {
    detail::registry()[index_].args.push_back(a);
    return this;
  }

 private:
  std::size_t index_;
};

inline RegistrationHandle* RegisterBenchmark(const char* name, Function fn) {
  detail::registry().push_back(detail::Registration{name, fn, {}});
  // Handles only feed ->Arg() chains during static init; leak them.
  return new RegistrationHandle(detail::registry().size() - 1);
}

#define BENCHMARK(fn)                                         \
  static ::benchmark::RegistrationHandle* fn##_registration = \
      ::benchmark::RegisterBenchmark(#fn, fn)

namespace detail {

struct Result {
  std::string name;
  double ns_per_iter = 0.0;
  double items_per_second = 0.0;
  std::int64_t iterations = 0;
  std::map<std::string, Counter> counters;
};

inline Result run_one(const Registration& reg, std::int64_t arg, bool has_arg,
                      const std::string& name) {
  // Probe with one iteration, then size a batch for ~0.25 s of wall time.
  State probe(1, arg, has_arg);
  reg.fn(probe);
  const double probe_ns = std::max(probe.elapsed_ns(), 1.0);
  const auto iters =
      std::clamp<std::int64_t>(static_cast<std::int64_t>(250e6 / probe_ns), 1, 10'000'000);

  State state(iters, arg, has_arg);
  reg.fn(state);
  const double total_ns = state.elapsed_ns();

  Result res;
  res.name = name;
  res.iterations = iters;
  res.ns_per_iter = total_ns / static_cast<double>(iters);
  if (state.items_processed() > 0)
    res.items_per_second = static_cast<double>(state.items_processed()) / (total_ns * 1e-9);
  res.counters = state.counters;
  return res;
}

}  // namespace detail

inline int RunAll(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) json = true;

  std::vector<detail::Result> results;
  for (const auto& reg : detail::registry()) {
    if (reg.args.empty()) {
      results.push_back(detail::run_one(reg, 0, false, reg.name));
    } else {
      for (std::int64_t a : reg.args)
        results.push_back(detail::run_one(reg, a, true, reg.name + "/" + std::to_string(a)));
    }
  }

  if (json) {
    std::printf("{\n  \"context\": {\"library\": \"fdgm-microbench-fallback\"},\n");
    std::printf("  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::printf("    {\"name\": \"%s\", \"iterations\": %lld, \"real_time\": %.2f, "
                  "\"time_unit\": \"ns\", \"items_per_second\": %.2f",
                  r.name.c_str(), static_cast<long long>(r.iterations), r.ns_per_iter,
                  r.items_per_second);
      for (const auto& [k, v] : r.counters) std::printf(", \"%s\": %.4f", k.c_str(), v.value);
      std::printf("}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    for (const auto& r : results) {
      std::printf("%-40s %12.2f ns %14.0f items/s", r.name.c_str(), r.ns_per_iter,
                  r.items_per_second);
      for (const auto& [k, v] : r.counters) std::printf("  %s=%.4f", k.c_str(), v.value);
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace benchmark

#define BENCHMARK_MAIN() \
  int main(int argc, char** argv) { return ::benchmark::RunAll(argc, argv); }
