// Crash-recovery churn scenario (beyond the paper's figures): one process
// of five repeatedly crashes and recovers while the others keep
// broadcasting.  Each recovery makes the GM algorithm pay a full
// exclusion + readmission (view change, state transfer); the FD algorithm
// only re-syncs the recovered process's log on the side, so its latency
// should stay close to the crash-steady level.  The sweep varies the
// detection time TD and the downtime per cycle.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr int kN = 5;
constexpr net::ProcessId kChurner = 4;  // never the initial coordinator/sequencer
constexpr double kUptime = 1500.0;      // alive span per cycle (ms)
constexpr int kCycles = 3;

util::Table run_churn(const ScenarioContext& ctx) {
  util::Table table({"n", "TD [ms]", "down [ms]", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]",
                     "GM ci95"});
  const double throughput = 100.0;
  std::vector<RowJob> jobs;
  for (double td : {0.0, 100.0}) {
    for (double down : {250.0, 1000.0}) {
      jobs.push_back([td, down, throughput, &ctx] {
        const double t0 = ctx.budget.warmup_ms;
        const double period = kUptime + down;
        const double t_end = t0 + 500.0 + kCycles * period + 500.0;

        fault::FaultSchedule churn;
        for (int c = 0; c < kCycles; ++c) {
          fault::FaultEvent crash;
          crash.kind = fault::FaultKind::kCrash;
          crash.process = kChurner;
          crash.at = t0 + 500.0 + c * period;
          churn.add(crash);
          fault::FaultEvent recover;
          recover.kind = fault::FaultKind::kRecover;
          recover.process = kChurner;
          recover.at = crash.at + down;
          churn.add(recover);
        }

        core::WindowedConfig wc;
        wc.throughput = throughput;
        wc.t_end = t_end;
        wc.windows = {{t0, t_end}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(kN), util::Table::cell(td, 0),
                                     util::Table::cell(down, 0),
                                     util::Table::cell(throughput, 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, kN, ctx);
          cfg.fd_params.detection_time = td;
          cfg.faults.merge(churn);
          add_window_cells(row, core::run_windowed(cfg, wc));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"crash_recovery_churn",
                             "Crash-recovery churn: repeated crash+rejoin of one process, "
                             "GM view-change cost vs FD log sync",
                             "beyond paper", run_churn, {}}};

}  // namespace
}  // namespace fdgm::bench
