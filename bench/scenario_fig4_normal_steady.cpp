// Figure 4: latency vs throughput in the normal-steady scenario (neither
// crashes nor suspicions), n = 3 and n = 7, lambda = 1.  The paper plots a
// single curve per n because the two algorithms perform identically; we
// emit both series so the equality is visible.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_fig4(const ScenarioContext& ctx) {
  util::Table table({"n", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double t : throughput_sweep(n)) {
      jobs.push_back([n, t, &ctx] {
        const auto fd = core::run_steady(sim_config_ctx(core::Algorithm::kFd, n, ctx),
                                         steady_from_ctx(t, ctx));
        const auto gm = core::run_steady(sim_config_ctx(core::Algorithm::kGm, n, ctx),
                                         steady_from_ctx(t, ctx));
        std::vector<std::string> row{std::to_string(n), util::Table::cell(t, 0)};
        add_point_cells(row, fd);
        add_point_cells(row, gm);
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"fig4", "Normal-steady scenario: latency vs throughput", "Fig. 4",
                             run_fig4, {}}};

}  // namespace
}  // namespace fdgm::bench
