// Suspicion-storm scenario (beyond the paper's figures): instead of the
// independent per-pair mistakes of Figs. 6-7, every alive process wrongly
// suspects the initial coordinator / sequencer p0 *simultaneously*, for a
// window of D ms, four times per run.  Correlated storms are the
// worst case for the GM algorithm — each one excludes p0 and forces a
// view change plus readmission — while the FD algorithm only pays a round
// change when p0 coordinates.  Expected shape: GM degrades sharply with
// the storm duration, FD stays within a few round trips of normal.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kStormGap = 600.0;  // start-to-start gap between storms (ms)
constexpr int kStorms = 4;

util::Table run_storm(const ScenarioContext& ctx) {
  util::Table table(
      {"n", "D [ms]", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  const double throughput = 100.0;
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double dur : {1.0, 25.0, 100.0}) {
      jobs.push_back([n, dur, throughput, &ctx] {
        const double t0 = ctx.budget.warmup_ms;
        const double t_end = t0 + 300.0 + kStorms * kStormGap + 500.0;

        fault::FaultSchedule storms;
        for (int s = 0; s < kStorms; ++s) {
          fault::FaultEvent storm;
          storm.kind = fault::FaultKind::kSuspicionStorm;
          storm.accused = {0};
          storm.at = t0 + 300.0 + s * kStormGap;
          storm.until = storm.at + dur;
          storms.add(storm);
        }

        core::WindowedConfig wc;
        wc.throughput = throughput;
        wc.t_end = t_end;
        wc.windows = {{t0, t_end}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(n), util::Table::cell(dur, 0),
                                     util::Table::cell(throughput, 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, n, ctx);
          cfg.faults.merge(storms);
          add_window_cells(row, core::run_windowed(cfg, wc));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"suspicion_storm",
                             "Suspicion storms: correlated wrong suspicions of the "
                             "coordinator/sequencer vs Figs. 6-7's marginal sweep",
                             "beyond paper", run_storm, {}}};

}  // namespace
}  // namespace fdgm::bench
