// Scenario registry for the unified bench driver.
//
// Every paper figure (and ablation) registers its sweep once — name, title,
// figure reference and a function producing one result table — and
// `fdgm_bench` selects scenarios by name, fans replica runs out across
// worker threads and renders the table as text, CSV or JSON.  Adding a
// figure means adding one `scenario_*.cpp` file with a registrar; no new
// main, no new CMake target.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "fault/fault_schedule.hpp"
#include "util/csv.hpp"

namespace fdgm::bench {

/// Everything a scenario needs to size and seed its sweep.
struct ScenarioContext {
  BenchBudget budget;
  /// Worker threads for the replica fan-out (0 = hardware concurrency).
  std::size_t jobs = 1;
  /// Base seed; replica r of a point uses seed + r exactly as before.
  std::uint64_t seed = 1000;
  /// Worker pool shared across every fill_rows call of the whole bench
  /// invocation (one pool per process instead of one per sweep).  Null:
  /// fall back to a transient pool per call.
  core::ThreadPool* pool = nullptr;
  /// Extra fault schedule from the CLI (--faults), applied to every
  /// simulation of the sweep on top of whatever the scenario injects.
  /// Events referencing processes outside a run's 0..n-1 are skipped.
  fault::FaultSchedule faults;
  /// Scheduler backend from the CLI (--backend), applied to every
  /// simulation of every sweep.  Both backends are bit-identical (the
  /// CI diffs CSVs across them); the wheel pays off at large n.
  sim::SchedulerConfig scheduler;
  /// Retransmission transport from the CLI (--transport), applied to
  /// every simulation of every sweep.  With loss off an armed transport
  /// is bit-identical to running without it (the CI diffs CSVs across
  /// the two); scenarios that *require* the transport (lossy_throughput)
  /// arm it themselves regardless of this flag.
  transport::Config transport;
  /// --profile: scenarios may append extra machine-independent
  /// diagnostic columns (e.g. retransmissions/sec) that are omitted from
  /// the default CSV layout.
  bool profile = false;
};

struct Scenario {
  std::string name;    // CLI handle, e.g. "fig5"
  std::string title;   // one-line description
  std::string figure;  // paper reference, e.g. "Fig. 5"
  std::function<util::Table(const ScenarioContext&)> run;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  void add(Scenario s);

  /// nullptr when no scenario has that name.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// All scenarios in registration order.
  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

/// Put one of these at namespace scope in each scenario file:
///   namespace { const ScenarioRegistrar reg{{ "fig4", ... }}; }
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario s);
};

/// Shared helper: SteadyConfig from a context.  Replicas inside one point
/// run sequentially (jobs = 1): the driver parallelises across the sweep's
/// points instead, which keeps every worker busy without oversubscribing.
inline core::SteadyConfig steady_from_ctx(double throughput, const ScenarioContext& ctx) {
  return steady_config(throughput, ctx.budget);
}

/// Shared helper: SimConfig from a context — seed plus the CLI-level fault
/// schedule.  Every scenario builds its configs through this so that
/// `fdgm_bench <scenario> --faults "..."` affects any sweep.
inline core::SimConfig sim_config_ctx(core::Algorithm a, int n, const ScenarioContext& ctx,
                                      double lambda = 1.0) {
  core::SimConfig cfg = sim_config(a, n, lambda, ctx.seed);
  cfg.faults = ctx.faults;
  cfg.scheduler = ctx.scheduler;
  cfg.transport = ctx.transport;
  return cfg;
}

/// Appends "mean, ci95" cells for a steady or transient result
/// ("unstable, -" when the point saturated — mirroring the paper leaving
/// such settings off the graphs).  Both result types expose .stable and
/// .latency, which is all this needs.
template <typename Result>
void add_point_cells(std::vector<std::string>& row, const Result& r) {
  if (!r.stable) {
    row.emplace_back("unstable");
    row.emplace_back("-");
    return;
  }
  row.push_back(util::Table::cell(r.latency.mean));
  row.push_back(util::Table::cell(r.latency.half_width));
}

/// add_point_cells for windowed results: "mean, ci95" cells per window,
/// "unstable, -" per window when the point failed to converge/drain.
inline void add_window_cells(std::vector<std::string>& row, const core::WindowedResult& r) {
  for (const util::MeanCi& w : r.windows) {
    if (!r.stable) {
      row.emplace_back("unstable");
      row.emplace_back("-");
    } else {
      row.push_back(util::Table::cell(w.mean));
      row.push_back(util::Table::cell(w.half_width));
    }
  }
}

/// One sweep point = one row job.  The driver fans the jobs out across
/// ctx.jobs workers and appends the rows in declaration order, so the
/// rendered table is identical for every job count.
using RowJob = std::function<std::vector<std::string>()>;

inline void fill_rows(util::Table& table, const ScenarioContext& ctx,
                      const std::vector<RowJob>& row_jobs) {
  std::vector<std::vector<std::string>> rows =
      ctx.pool != nullptr
          ? core::parallel_map(*ctx.pool, row_jobs.size(),
                               [&](std::size_t i) { return row_jobs[i](); })
          : core::parallel_map(row_jobs.size(), ctx.jobs,
                               [&](std::size_t i) { return row_jobs[i](); });
  for (auto& r : rows) table.add_row(std::move(r));
}

}  // namespace fdgm::bench
