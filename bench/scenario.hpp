// Scenario registry for the unified bench driver.
//
// Every paper figure (and ablation) registers its sweep once — name, title,
// figure reference and a function producing one result table — and
// `fdgm_bench` selects scenarios by name, fans replica runs out across
// worker threads and renders the table as text, CSV or JSON.  Adding a
// figure means adding one `scenario_*.cpp` file with a registrar; no new
// main, no new CMake target.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "fault/fault_schedule.hpp"
#include "util/csv.hpp"

namespace fdgm::bench {

/// Everything a scenario needs to size and seed its sweep.
struct ScenarioContext {
  BenchBudget budget;
  /// Worker threads for the replica fan-out (0 = hardware concurrency).
  std::size_t jobs = 1;
  /// Base seed; replica r of a point uses seed + r exactly as before.
  std::uint64_t seed = 1000;
  /// Worker pool shared across every fill_rows call of the whole bench
  /// invocation (one pool per process instead of one per sweep).  Null:
  /// fall back to a transient pool per call.
  core::ThreadPool* pool = nullptr;
  /// Extra fault schedule from the CLI (--faults), applied to every
  /// simulation of the sweep on top of whatever the scenario injects.
  /// Events referencing processes outside a run's 0..n-1 are skipped.
  fault::FaultSchedule faults;
  /// Scheduler backend from the CLI (--backend), applied to every
  /// simulation of every sweep.  Both backends are bit-identical (the
  /// CI diffs CSVs across them); the wheel pays off at large n.
  sim::SchedulerConfig scheduler;
  /// Retransmission transport from the CLI (--transport), applied to
  /// every simulation of every sweep.  With loss off an armed transport
  /// is bit-identical to running without it (the CI diffs CSVs across
  /// the two); scenarios that *require* the transport (lossy_throughput)
  /// arm it themselves regardless of this flag.
  transport::Config transport;
  /// --profile: scenarios may append extra machine-independent
  /// diagnostic columns (e.g. retransmissions/sec) that are omitted from
  /// the default CSV layout.
  bool profile = false;
  /// Submission batching from the CLI (--batch), applied to every
  /// simulation of every sweep.  Scenarios with dedicated batched rows
  /// (saturation_knee, the "-b" modes) arm it themselves per row.
  abcast::BatchConfig batching;
  /// Observability from the CLI (--trace/--metrics arm it for every
  /// simulation of every sweep; scenarios that need the phase
  /// decomposition, like lossy_decomposition, arm it themselves).  Armed
  /// observability is passive — the default CSV columns are unchanged.
  obs::Config obs;
  /// Per-scenario parameters from the CLI (`--set key=value`, repeatable).
  /// The driver rejects keys that no selected scenario (and no driver
  /// knob) declares; values are validated by the typed getters below.
  std::map<std::string, std::string> params;

  /// `--set key=1` / `key=0` flag (absent: false).
  [[nodiscard]] bool param_flag(const std::string& key) const {
    auto it = params.find(key);
    if (it == params.end()) return false;
    if (it->second == "1" || it->second == "true") return true;
    if (it->second == "0" || it->second == "false") return false;
    throw std::invalid_argument("--set " + key + " expects 0|1, got '" + it->second + "'");
  }

  [[nodiscard]] std::uint64_t param_u64(const std::string& key, std::uint64_t def,
                                        std::uint64_t lo, std::uint64_t hi) const {
    auto it = params.find(key);
    if (it == params.end()) return def;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || v < lo || v > hi)
      throw std::invalid_argument("--set " + key + " expects an integer in [" +
                                  std::to_string(lo) + ", " + std::to_string(hi) + "], got '" +
                                  it->second + "'");
    return v;
  }

  [[nodiscard]] double param_double(const std::string& key, double def, double lo,
                                    double hi) const {
    auto it = params.find(key);
    if (it == params.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || v < lo || v > hi)
      throw std::invalid_argument("--set " + key + " expects a number in [" +
                                  std::to_string(lo) + ", " + std::to_string(hi) + "], got '" +
                                  it->second + "'");
    return v;
  }

  /// Comma-separated integer list, each element range-checked.
  [[nodiscard]] std::vector<int> param_ints(const std::string& key, std::vector<int> def,
                                            int lo, int hi) const {
    auto it = params.find(key);
    if (it == params.end()) return def;
    std::vector<int> out;
    const std::string& s = it->second;
    std::size_t pos = 0;
    while (pos <= s.size()) {
      const std::size_t comma = std::min(s.find(',', pos), s.size());
      char* end = nullptr;
      const std::string tok = s.substr(pos, comma - pos);
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' || v < lo || v > hi)
        throw std::invalid_argument("--set " + key + " expects comma-separated integers in [" +
                                    std::to_string(lo) + ", " + std::to_string(hi) +
                                    "], got '" + s + "'");
      out.push_back(static_cast<int>(v));
      pos = comma + 1;
    }
    return out;
  }
};

/// One `--set` key a scenario accepts, with its --list help text.
struct ParamSpec {
  std::string key;
  std::string help;
};

struct Scenario {
  std::string name;    // CLI handle, e.g. "fig5"
  std::string title;   // one-line description
  std::string figure;  // paper reference, e.g. "Fig. 5"
  std::function<util::Table(const ScenarioContext&)> run;
  /// Accepted `--set` keys (beyond the driver-level quick/replicas/samples).
  std::vector<ParamSpec> params;
  /// False: the scenario's output is wall-clock-dependent (timing studies
  /// like pdes_speedup), so `--all` skips it — it only runs when named
  /// explicitly.  Keeps `--all --out results/` regenerable byte-for-byte.
  bool in_all = true;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  void add(Scenario s);

  /// nullptr when no scenario has that name.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// All scenarios in registration order.
  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

/// Put one of these at namespace scope in each scenario file:
///   namespace { const ScenarioRegistrar reg{{ "fig4", ... }}; }
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario s);
};

/// Shared helper: SteadyConfig from a context.  Replicas inside one point
/// run sequentially (jobs = 1): the driver parallelises across the sweep's
/// points instead, which keeps every worker busy without oversubscribing.
inline core::SteadyConfig steady_from_ctx(double throughput, const ScenarioContext& ctx) {
  return steady_config(throughput, ctx.budget);
}

/// Shared helper: SimConfig from a context — seed plus the CLI-level fault
/// schedule.  Every scenario builds its configs through this so that
/// `fdgm_bench <scenario> --faults "..."` affects any sweep.
inline core::SimConfig sim_config_ctx(core::Algorithm a, int n, const ScenarioContext& ctx,
                                      double lambda = 1.0) {
  core::SimConfig cfg = sim_config(a, n, lambda, ctx.seed);
  cfg.faults = ctx.faults;
  cfg.scheduler = ctx.scheduler;
  cfg.transport = ctx.transport;
  cfg.batching = ctx.batching;
  cfg.obs = ctx.obs;
  return cfg;
}

/// Appends "mean, ci95" cells for a steady or transient result
/// ("unstable, -" when the point saturated — mirroring the paper leaving
/// such settings off the graphs).  Both result types expose .stable and
/// .latency, which is all this needs.
template <typename Result>
void add_point_cells(std::vector<std::string>& row, const Result& r) {
  if (!r.stable) {
    row.emplace_back("unstable");
    row.emplace_back("-");
    return;
  }
  row.push_back(util::Table::cell(r.latency.mean));
  row.push_back(util::Table::cell(r.latency.half_width));
}

/// add_point_cells for windowed results: "mean, ci95" cells per window,
/// "unstable, -" per window when the point failed to converge/drain.
inline void add_window_cells(std::vector<std::string>& row, const core::WindowedResult& r) {
  for (const util::MeanCi& w : r.windows) {
    if (!r.stable) {
      row.emplace_back("unstable");
      row.emplace_back("-");
    } else {
      row.push_back(util::Table::cell(w.mean));
      row.push_back(util::Table::cell(w.half_width));
    }
  }
}

/// One sweep point = one row job.  The driver fans the jobs out across
/// ctx.jobs workers and appends the rows in declaration order, so the
/// rendered table is identical for every job count.
using RowJob = std::function<std::vector<std::string>()>;

inline void fill_rows(util::Table& table, const ScenarioContext& ctx,
                      const std::vector<RowJob>& row_jobs) {
  std::vector<std::vector<std::string>> rows =
      ctx.pool != nullptr
          ? core::parallel_map(*ctx.pool, row_jobs.size(),
                               [&](std::size_t i) { return row_jobs[i](); })
          : core::parallel_map(row_jobs.size(), ctx.jobs,
                               [&](std::size_t i) { return row_jobs[i](); });
  for (auto& r : rows) table.add_row(std::move(r));
}

}  // namespace fdgm::bench
