// Ablation A1 (paper §8, "Non-uniform atomic broadcast"): the GM based
// algorithm admits an efficient non-uniform variant using only two
// multicasts (data + seqnum) — the uniformity requirement cannot be
// dropped from the FD algorithm.  This scenario quantifies the price of
// uniformity: latency of uniform GM vs non-uniform GM vs FD in the
// normal-steady scenario.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_nonuniform(const ScenarioContext& ctx) {
  util::Table table({"n", "T [1/s]", "FD uniform [ms]", "FD ci95", "GM uniform [ms]", "GM ci95",
                     "GM non-uniform [ms]", "GM-nu ci95"});
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double t : throughput_sweep(n)) {
      jobs.push_back([n, t, &ctx] {
        const auto fd = core::run_steady(sim_config_ctx(core::Algorithm::kFd, n, ctx),
                                         steady_from_ctx(t, ctx));
        const auto gm = core::run_steady(sim_config_ctx(core::Algorithm::kGm, n, ctx),
                                         steady_from_ctx(t, ctx));
        const auto nu = core::run_steady(
            sim_config_ctx(core::Algorithm::kGmNonUniform, n, ctx), steady_from_ctx(t, ctx));
        std::vector<std::string> row{std::to_string(n), util::Table::cell(t, 0)};
        add_point_cells(row, fd);
        add_point_cells(row, gm);
        add_point_cells(row, nu);
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"ablation_nonuniform_gm",
                             "Ablation: the price of uniformity (non-uniform GM variant)",
                             "paper §8", run_nonuniform, {}}};

}  // namespace
}  // namespace fdgm::bench
