// Figure 5: latency vs throughput in the crash-steady scenario.  Crashes
// happen "a long time ago" (at t = 0 with TD = 0); non-coordinator /
// non-sequencer processes crash (with the FD algorithm's re-numbering the
// choice does not matter, §7).  Expected shape: latency decreases with the
// number of crashes (less load) and GM is slightly below FD for the same
// number of crashes (majority of the shrunken view).
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

std::vector<net::ProcessId> crash_set(int n, int crashes) {
  std::vector<net::ProcessId> out;
  for (int c = 0; c < crashes; ++c) out.push_back(n - 1 - c);  // highest ids
  return out;
}

util::Table run_fig5(const ScenarioContext& ctx) {
  util::Table table({"n", "crashes", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    const int max_crashes = (n - 1) / 2;
    for (int crashes = 0; crashes <= max_crashes; ++crashes) {
      for (double t : throughput_sweep(n)) {
        jobs.push_back([n, crashes, t, &ctx] {
          auto fd_cfg = sim_config_ctx(core::Algorithm::kFd, n, ctx);
          auto gm_cfg = sim_config_ctx(core::Algorithm::kGm, n, ctx);
          fd_cfg.fd_params.detection_time = 0.0;
          gm_cfg.fd_params.detection_time = 0.0;
          auto sc = steady_from_ctx(t, ctx);
          sc.warmup_ms += 1000.0;  // absorb the view change / re-numbering
          const auto fd = core::run_steady(fd_cfg, sc, crash_set(n, crashes));
          const auto gm = core::run_steady(gm_cfg, sc, crash_set(n, crashes));
          std::vector<std::string> row{std::to_string(n), std::to_string(crashes),
                                       util::Table::cell(t, 0)};
          add_point_cells(row, fd);
          add_point_cells(row, gm);
          return row;
        });
      }
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"fig5", "Crash-steady scenario: latency vs throughput", "Fig. 5",
                             run_fig5, {}}};

}  // namespace
}  // namespace fdgm::bench
