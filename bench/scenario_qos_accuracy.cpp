// Empirical FD QoS accuracy (armed src/obs/ QoS meter): does the failure
// detector actually deliver the Chen-Toueg-Aguilera QoS it was configured
// for?
//
// The simulator *drives* the detector from the QoS parameters (TD, TMR,
// TM), so on a healthy system the measured metrics should match the
// configured targets — that is the calibration check.  The interesting
// rows are the degraded ones: packet loss must NOT move the measured QoS
// (the QoS detector is an abstraction above the wire, one of the paper's
// modelling choices made visible), while a gray *limping* node must widen
// the measured-vs-configured gap exactly as the coupling in
// fd::QosFailureDetectorModel predicts — pairs monitoring a k-limping
// node make mistakes k times more often, each lasting k times longer, and
// the limping monitor detects the crash k times later.
//
// Each replica crashes the last process mid-run and recovers it 1 s later,
// so measured T_D has real detections to average over; the observer's
// meter compares every suspect/trust edge against the ground-truth crash
// state the System reports.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr int kN = 5;

util::Table run_qos_accuracy(const ScenarioContext& ctx) {
  util::Table table({"TD [ms]", "TMR [ms]", "TM [ms]", "loss [%]", "limp x",
                     "meas TD [ms]", "meas TMR [ms]", "meas TM [ms]", "detections",
                     "mistakes", "transitions"});
  const double throughput = 100.0;
  const bool quick = ctx.param_flag("quick");

  struct Point {
    double td, tmr, tm;
    double loss;    // frame loss rate over the whole run
    double limp;    // limp factor on one bystander (1 = healthy)
  };
  // Calibration sweep x degradation: TD / TMR / TM around the golden
  // operating point, then loss (should be invariant) and limp (should
  // widen the gap).
  std::vector<Point> points{
      {30.0, 2000.0, 50.0, 0.0, 1.0},   // golden operating point
      {10.0, 2000.0, 50.0, 0.0, 1.0},   // faster detection
      {100.0, 2000.0, 50.0, 0.0, 1.0},  // slower detection
      {30.0, 500.0, 50.0, 0.0, 1.0},    // more frequent mistakes
      {30.0, 2000.0, 200.0, 0.0, 1.0},  // longer mistakes
      {30.0, 2000.0, 50.0, 5.0, 1.0},   // loss: measured QoS must not move
      {30.0, 2000.0, 50.0, 0.0, 4.0},   // gray limp: gap must widen
      {30.0, 500.0, 200.0, 5.0, 4.0},   // combined degradation
  };
  if (quick)
    points = {{30.0, 2000.0, 50.0, 0.0, 1.0},
              {30.0, 2000.0, 50.0, 5.0, 1.0},
              {30.0, 2000.0, 50.0, 0.0, 4.0}};

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    jobs.push_back([pt, throughput, &ctx] {
      const double t0 = ctx.budget.warmup_ms;
      const double crash_at = t0 + 4000.0;
      const double recover_at = crash_at + 1000.0;
      const double t_end = recover_at + 1000.0;

      fault::FaultSchedule faults;
      fault::FaultEvent crash;
      crash.kind = fault::FaultKind::kCrash;
      crash.process = kN - 1;
      crash.at = crash_at;
      faults.add(crash);
      fault::FaultEvent recover;
      recover.kind = fault::FaultKind::kRecover;
      recover.process = kN - 1;
      recover.at = recover_at;
      faults.add(recover);
      if (pt.loss > 0.0) {
        fault::FaultEvent loss;
        loss.kind = fault::FaultKind::kLoss;
        loss.rate = pt.loss / 100.0;
        loss.at = 0.0;
        loss.until = t_end * 10.0;
        faults.add(loss);
      }
      if (pt.limp != 1.0) {
        // A bystander limps for the whole run (p2: never the coordinator
        // or sequencer, never the crashed process).
        fault::FaultEvent limp;
        limp.kind = fault::FaultKind::kLimp;
        limp.process = 2;
        limp.factor = pt.limp;
        limp.at = 0.0;
        limp.until = t_end * 10.0;
        faults.add(limp);
      }

      core::WindowedConfig wc;
      wc.throughput = throughput;
      wc.t_end = t_end;
      wc.windows = {{t0, t_end}};
      wc.replicas = ctx.budget.replicas;

      core::SimConfig cfg = sim_config_ctx(core::Algorithm::kFd, kN, ctx);
      cfg.faults.merge(faults);
      cfg.transport.enabled = pt.loss > 0.0 ? true : cfg.transport.enabled;
      cfg.fd_params.detection_time = pt.td;
      cfg.fd_params.wrong_suspicions = true;
      cfg.fd_params.mistake_recurrence = pt.tmr;
      cfg.fd_params.mistake_duration = pt.tm;
      cfg.obs.enabled = true;  // arms the QoS meter; passive otherwise

      const core::WindowedResult res = core::run_windowed(cfg, wc);
      const obs::QosMeasured& q = res.qos;
      std::vector<std::string> row{
          util::Table::cell(pt.td, 0), util::Table::cell(pt.tmr, 0),
          util::Table::cell(pt.tm, 0), util::Table::cell(pt.loss, 0),
          util::Table::cell(pt.limp, 0)};
      if (!res.stable) {
        row.insert(row.end(), {"unstable", "-", "-", "-", "-", "-"});
        return row;
      }
      auto ratio = [](double sum, std::uint64_t count) {
        return count == 0 ? std::string("-")
                          : util::Table::cell(sum / static_cast<double>(count));
      };
      row.push_back(ratio(q.td_sum_ms, q.detections));
      row.push_back(ratio(q.tmr_sum_ms, q.tmr_count));
      row.push_back(ratio(q.tm_sum_ms, q.tm_count));
      row.push_back(std::to_string(q.detections));
      row.push_back(std::to_string(q.mistakes));
      row.push_back(std::to_string(q.transitions));
      return row;
    });
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"qos_accuracy",
                             "Empirical FD QoS meter: measured T_D / T_MR / T_M vs the "
                             "configured Chen-Toueg targets, under loss (invariant) and "
                             "gray limp (gap widens)",
                             "beyond paper", run_qos_accuracy, {}}};

}  // namespace
}  // namespace fdgm::bench
