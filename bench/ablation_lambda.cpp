// Ablation A2 (paper §6.1): the lambda parameter models the relative CPU
// cost of a message vs its network transmission; the paper publishes
// lambda = 1 and refers to the extended report for other values.  This
// bench sweeps lambda in the normal-steady scenario: with large lambda
// the hosts become the bottleneck, with small lambda the wire does.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Ablation: lambda sweep (CPU vs network bottleneck)", "paper §6.1");
  util::Table table({"n", "lambda", "T [1/s]", "FD [ms]", "GM [ms]"});
  for (double lambda : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    for (double t : {50.0, 300.0}) {
      const auto fd =
          core::run_steady(sim_config(core::Algorithm::kFd, 3, lambda), steady_config(t, b));
      const auto gm =
          core::run_steady(sim_config(core::Algorithm::kGm, 3, lambda), steady_config(t, b));
      table.add_row({"3", util::Table::cell(lambda, 1), util::Table::cell(t, 0), fmt_point(fd),
                     fmt_point(gm)});
    }
  }
  table.print(std::cout);
  return 0;
}
