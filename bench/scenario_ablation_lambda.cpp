// Ablation A2 (paper §6.1): the lambda parameter models the relative CPU
// cost of a message vs its network transmission; the paper publishes
// lambda = 1 and refers to the extended report for other values.  This
// scenario sweeps lambda in the normal-steady scenario: with large lambda
// the hosts become the bottleneck, with small lambda the wire does.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_lambda(const ScenarioContext& ctx) {
  util::Table table({"n", "lambda", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  std::vector<RowJob> jobs;
  for (double lambda : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    for (double t : {50.0, 300.0}) {
      jobs.push_back([lambda, t, &ctx] {
        const auto fd = core::run_steady(
            sim_config_ctx(core::Algorithm::kFd, 3, ctx, lambda), steady_from_ctx(t, ctx));
        const auto gm = core::run_steady(
            sim_config_ctx(core::Algorithm::kGm, 3, ctx, lambda), steady_from_ctx(t, ctx));
        std::vector<std::string> row{"3", util::Table::cell(lambda, 1), util::Table::cell(t, 0)};
        add_point_cells(row, fd);
        add_point_cells(row, gm);
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"ablation_lambda",
                             "Ablation: lambda sweep (CPU vs network bottleneck)", "paper §6.1",
                             run_lambda, {}}};

}  // namespace
}  // namespace fdgm::bench
