// PDES speedup: the parallel scheduler backend (--backend par) against the
// sequential heap backend on identical FD-stack steady-state runs, across
// group sizes n in {32, 64, 128, 192}.
//
// The load is the scale_throughput shape — wrong-suspicion QoS timers give
// every node partition a dense private timer population (O(n) per node,
// O(n^2) total) underneath the protocol's message events, which is exactly
// the per-node work the conservative round engine parallelises.  Both
// backends execute the *same* simulation (the golden-seed suite proves
// delivery sequences and event counts bit-identical); this scenario only
// measures wall clock, reporting events, Mev/s per backend and the
// speedup ratio.
//
// Points run strictly sequentially on the calling thread — fanning them
// out across --jobs workers would corrupt both walls.  The parallel run
// honours --threads (0 = hardware threads).
#include <chrono>

#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kThroughput = 200.0;     // msgs/s across the group
constexpr double kSystemMistakeGap = 5000.0;  // one wrong suspicion / 5 s system-wide

core::SimConfig point_config(int n, const ScenarioContext& ctx,
                             sim::SchedulerBackend backend) {
  core::SimConfig cfg = sim_config_ctx(core::Algorithm::kFd, n, ctx);
  cfg.scheduler.backend = backend;
  cfg.fd_params.detection_time = 30.0;
  cfg.fd_params.wrong_suspicions = true;
  cfg.fd_params.mistake_recurrence =
      static_cast<double>(n) * static_cast<double>(n - 1) * kSystemMistakeGap;
  cfg.fd_params.mistake_duration = 50.0;
  return cfg;
}

struct Timed {
  double wall_s = 0.0;
  std::uint64_t events = 0;
};

Timed timed_run(const core::SimConfig& cfg, double horizon_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  core::SimRun run(cfg, core::WorkloadConfig{.throughput = kThroughput});
  run.start();
  run.run_until(horizon_ms);
  Timed t;
  t.events = run.system().scheduler().executed();
  t.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return t;
}

util::Table run_pdes(const ScenarioContext& ctx) {
  util::Table table({"n", "events", "heap wall [s]", "heap Mev/s", "par wall [s]", "par Mev/s",
                     "threads", "speedup"});
  const bool quick = ctx.param_flag("quick");
  const std::vector<int> ns = ctx.param_ints(
      "ns", quick ? std::vector<int>{32, 64} : std::vector<int>{32, 64, 128, 192}, 2, 4096);
  const double horizon = quick ? 2000.0 : 6000.0;

  for (int n : ns) {
    const Timed heap = timed_run(point_config(n, ctx, sim::SchedulerBackend::kHeap), horizon);

    core::SimConfig par_cfg = point_config(n, ctx, sim::SchedulerBackend::kParallel);
    par_cfg.scheduler.threads = ctx.scheduler.threads;
    const Timed par = timed_run(par_cfg, horizon);
    // SimRun resolves/clamps the worker count into its stored config; a
    // fresh run reports the same resolution without re-timing anything.
    const core::SimRun probe(par_cfg, core::WorkloadConfig{.throughput = kThroughput});
    const int threads = probe.config().scheduler.threads;

    if (par.events != heap.events)
      throw std::runtime_error("pdes_speedup: backend event counts diverged at n=" +
                               std::to_string(n));
    table.add_row({std::to_string(n), std::to_string(heap.events),
                   util::Table::cell(heap.wall_s, 2),
                   util::Table::cell(static_cast<double>(heap.events) / heap.wall_s / 1e6, 2),
                   util::Table::cell(par.wall_s, 2),
                   util::Table::cell(static_cast<double>(par.events) / par.wall_s / 1e6, 2),
                   std::to_string(threads),
                   util::Table::cell(heap.wall_s / par.wall_s, 2)});
  }
  return table;
}

const ScenarioRegistrar reg{{"pdes_speedup",
                             "Parallel backend speedup vs the sequential heap backend, "
                             "FD stack with dense per-node timers, n up to 192",
                             "beyond paper",
                             run_pdes,
                             {{"ns", "comma-separated group sizes (2..4096)"}},
                             /*in_all=*/false}};

}  // namespace
}  // namespace fdgm::bench
