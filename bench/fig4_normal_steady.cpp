// Figure 4: latency vs throughput in the normal-steady scenario (neither
// crashes nor suspicions), n = 3 and n = 7, lambda = 1.  The paper plots a
// single curve per n because the two algorithms perform identically; we
// print both columns so the equality is visible.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Normal-steady scenario: latency vs throughput", "Fig. 4");
  for (int n : {3, 7}) {
    util::Table table({"n", "T [1/s]", "FD [ms]", "GM [ms]"});
    for (double t : throughput_sweep(n)) {
      const auto fd = core::run_steady(sim_config(core::Algorithm::kFd, n), steady_config(t, b));
      const auto gm = core::run_steady(sim_config(core::Algorithm::kGm, n), steady_config(t, b));
      table.add_row({std::to_string(n), util::Table::cell(t, 0), fmt_point(fd), fmt_point(gm)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
