// Gray-failure scenario (beyond the paper's figures): a *limping* node —
// alive, correct, but serving every CPU job k times slower — is the
// canonical gray failure.  The sweep crosses the limp factor with which
// role limps: p0 (the FD algorithm's initial coordinator AND the GM
// algorithm's sequencer) versus a bystander process.  The headline
// question: does the GM stack's membership machinery *exclude* a
// limping-but-alive sequencer (paying view changes + readmission), while
// the FD stack's QoS detector merely churns suspicions and rides the
// degradation out?  The observer's suspicion / view-change counters
// decompose the answer; armed observability is passive, so the latency
// columns are unchanged by the instrumentation.
//
// The failure detector must be running its QoS mistake process for a limp
// to be *visible* as failure information at all (in the suspicion-free
// nice path both stacks are bit-identical by construction): the sweep
// arms wrong_suspicions with a realistic (TMR, TM) operating point, which
// the limp coupling in fd::QosFailureDetectorModel then degrades — pairs
// monitoring a k-limping node make mistakes k times more often, each
// lasting k times longer.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_gray(const ScenarioContext& ctx) {
  util::Table table({"n", "role", "x", "FD pre [ms]", "FD pre ci95", "FD limp [ms]",
                     "FD limp ci95", "FD post [ms]", "FD post ci95", "FD susp",
                     "GM pre [ms]", "GM pre ci95", "GM limp [ms]", "GM limp ci95",
                     "GM post [ms]", "GM post ci95", "GM views"});
  const double throughput = 100.0;
  const int n = 5;
  const std::vector<int> factors = ctx.param_ints("factors", {2, 4, 8}, 2, 64);

  struct Role {
    const char* name;
    net::ProcessId who;
  };
  // p0 leads both stacks (FD initial coordinator, GM sequencer); p2 is a
  // plain group member in both.
  const std::vector<Role> roles{{"leader", 0}, {"bystander", 2}};

  std::vector<RowJob> jobs;
  for (const Role& role : roles) {
    for (int factor : factors) {
      jobs.push_back([role, factor, n, throughput, &ctx] {
        const double t0 = ctx.budget.warmup_ms;
        const double limp_at = t0 + 1000.0;
        const double limp_end = limp_at + 3000.0;
        const double t_end = limp_end + 1000.0;

        fault::FaultEvent limp;
        limp.kind = fault::FaultKind::kLimp;
        limp.process = role.who;
        limp.factor = static_cast<double>(factor);
        limp.at = limp_at;
        limp.until = limp_end;
        fault::FaultSchedule gray;
        gray.add(limp);

        core::WindowedConfig wc;
        wc.throughput = throughput;
        wc.t_end = t_end;
        wc.windows = {{t0, limp_at}, {limp_at, limp_end}, {limp_end, t_end}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(n), role.name,
                                     util::Table::cell(static_cast<double>(factor), 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, n, ctx);
          cfg.faults.merge(gray);
          // Realistic QoS operating point (the Fig. 6/7 mid-range): TD
          // 30 ms, a mistake every ~2 s per pair lasting ~50 ms.  The limp
          // multiplies both margins for pairs monitoring the slow node.
          cfg.fd_params.detection_time = 30.0;
          cfg.fd_params.wrong_suspicions = true;
          cfg.fd_params.mistake_recurrence = 2000.0;
          cfg.fd_params.mistake_duration = 50.0;
          cfg.obs.enabled = true;  // passive: only the counter columns need it
          const core::WindowedResult res = core::run_windowed(cfg, wc);
          add_window_cells(row, res);
          row.push_back(std::to_string(algo == core::Algorithm::kFd ? res.suspicions
                                                                    : res.view_changes));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{
    {"gray_failure",
     "Gray failures: limping leader vs bystander — does GM exclude a "
     "slow-but-alive sequencer while FD rides it out?",
     "beyond paper",
     run_gray,
     {{"factors", "comma-separated limp factors to sweep (default 2,4,8)"}}}};

}  // namespace
}  // namespace fdgm::bench
