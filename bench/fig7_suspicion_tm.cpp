// Figure 7: latency vs mistake duration TM in the suspicion-steady
// scenario, with TMR fixed per panel exactly as in the paper:
//   (n=3, T=10):  TMR = 1000 ms     (n=7, T=10):  TMR = 10000 ms
//   (n=3, T=300): TMR = 10000 ms    (n=7, T=300): TMR = 100000 ms
// Expected shape: the GM algorithm is sensitive to TM as well (repeated
// exclusions while the mistake lasts), the FD algorithm much less so.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Suspicion-steady scenario: latency vs TM (TMR fixed)", "Fig. 7");
  struct Panel {
    int n;
    double t;
    double tmr;
  };
  const std::vector<Panel> panels{
      {3, 10.0, 1000.0}, {7, 10.0, 10000.0}, {3, 300.0, 10000.0}, {7, 300.0, 100000.0}};
  const std::vector<double> tm_sweep{1, 10, 100, 300, 1000};
  for (const Panel& p : panels) {
    util::Table table({"n", "T [1/s]", "TMR [ms]", "TM [ms]", "FD [ms]", "GM [ms]"});
    for (double tm : tm_sweep) {
      auto fd_cfg = sim_config(core::Algorithm::kFd, p.n);
      auto gm_cfg = sim_config(core::Algorithm::kGm, p.n);
      for (auto* cfg : {&fd_cfg, &gm_cfg}) {
        cfg->fd_params.wrong_suspicions = true;
        cfg->fd_params.mistake_recurrence = p.tmr;
        cfg->fd_params.mistake_duration = tm;
      }
      auto sc = steady_config(p.t, b);
      sc.min_window_ms = std::min(10.0 * p.tmr, 25000.0);
      const auto fd = core::run_steady(fd_cfg, sc);
      const auto gm = core::run_steady(gm_cfg, sc);
      table.add_row({std::to_string(p.n), util::Table::cell(p.t, 0),
                     util::Table::cell(p.tmr, 0), util::Table::cell(tm, 0), fmt_point(fd),
                     fmt_point(gm)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
