// Rotating suspicion storms (ROADMAP backlog item): like the
// `suspicion_storm` scenario, every alive process wrongly suspects a
// target simultaneously for a window of D ms — but the target *rotates*
// across the whole group, one process per storm window.  A fixed-target
// storm only ever dethrones p0; a rotating storm eventually hits whoever
// currently coordinates/sequences, so the GM stack pays one view change
// per window that lands on a member of the current view (including
// readmitting the previous victim), while the FD stack only pays a round
// change when the storm happens to hit the instance coordinator.
// Expected shape: GM degrades with D like the fixed-target storm but
// keeps paying across the whole run (there is no "safe" sequencer to
// settle on); FD stays within a few round trips of normal.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kStormGap = 600.0;  // start-to-start gap between storms (ms)
constexpr int kStorms = 8;           // >= n for every swept group: no process is spared

util::Table run_rotating(const ScenarioContext& ctx) {
  util::Table table(
      {"n", "D [ms]", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  const double throughput = 100.0;
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double dur : {1.0, 25.0, 100.0}) {
      jobs.push_back([n, dur, throughput, &ctx] {
        const double t0 = ctx.budget.warmup_ms;
        const double t_end = t0 + 300.0 + kStorms * kStormGap + 500.0;

        fault::FaultSchedule storms;
        for (int s = 0; s < kStorms; ++s) {
          fault::FaultEvent storm;
          storm.kind = fault::FaultKind::kSuspicionStorm;
          storm.accused = {s % n};  // the rotation
          storm.at = t0 + 300.0 + s * kStormGap;
          storm.until = storm.at + dur;
          storms.add(storm);
        }

        core::WindowedConfig wc;
        wc.throughput = throughput;
        wc.t_end = t_end;
        wc.windows = {{t0, t_end}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(n), util::Table::cell(dur, 0),
                                     util::Table::cell(throughput, 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, n, ctx);
          cfg.faults.merge(storms);
          add_window_cells(row, core::run_windowed(cfg, wc));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"suspicion_storm_rotating",
                             "Rotating suspicion storms: the storm target cycles through "
                             "the group, one process per window",
                             "beyond paper", run_rotating, {}}};

}  // namespace
}  // namespace fdgm::bench
