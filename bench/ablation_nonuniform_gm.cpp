// Ablation A1 (paper §8, "Non-uniform atomic broadcast"): the GM based
// algorithm admits an efficient non-uniform variant using only two
// multicasts (data + seqnum) — the uniformity requirement cannot be
// dropped from the FD algorithm.  This bench quantifies the price of
// uniformity: latency of uniform GM vs non-uniform GM vs FD in the
// normal-steady scenario.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Ablation: the price of uniformity (non-uniform GM variant)", "paper §8");
  for (int n : {3, 7}) {
    util::Table table({"n", "T [1/s]", "FD uniform [ms]", "GM uniform [ms]", "GM non-uniform [ms]"});
    for (double t : throughput_sweep(n)) {
      const auto fd = core::run_steady(sim_config(core::Algorithm::kFd, n), steady_config(t, b));
      const auto gm = core::run_steady(sim_config(core::Algorithm::kGm, n), steady_config(t, b));
      const auto nu =
          core::run_steady(sim_config(core::Algorithm::kGmNonUniform, n), steady_config(t, b));
      table.add_row({std::to_string(n), util::Table::cell(t, 0), fmt_point(fd), fmt_point(gm),
                     fmt_point(nu)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
