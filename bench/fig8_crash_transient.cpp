// Figure 8: latency overhead (latency - TD) vs throughput in the
// crash-transient scenario: the coordinator / sequencer p0 crashes at tc
// and another process A-broadcasts the probe message at tc.  The paper
// reports the worst sender; TD in {0, 10, 100} ms.  Expected shape: both
// overheads are a few times the normal-steady latency; FD < GM.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Crash-transient scenario: latency overhead vs throughput", "Fig. 8");
  const std::vector<double> sweep{10, 50, 100, 200, 300, 400};
  for (int n : {3, 7}) {
    for (double td : {0.0, 10.0, 100.0}) {
      util::Table table({"n", "TD [ms]", "T [1/s]", "FD overhead [ms]", "GM overhead [ms]"});
      for (double t : sweep) {
        core::TransientConfig tc;
        tc.throughput = t;
        tc.crash = 0;
        tc.replicas = std::max<std::size_t>(6, b.replicas * 2);
        auto fd_cfg = sim_config(core::Algorithm::kFd, n);
        auto gm_cfg = sim_config(core::Algorithm::kGm, n);
        fd_cfg.fd_params.detection_time = td;
        gm_cfg.fd_params.detection_time = td;
        auto fd = core::run_transient_worst_sender(fd_cfg, tc);
        auto gm = core::run_transient_worst_sender(gm_cfg, tc);
        // Overhead = latency - TD (the latency always exceeds TD, §7).
        if (fd.stable) fd.latency.mean -= td;
        if (gm.stable) gm.latency.mean -= td;
        table.add_row({std::to_string(n), util::Table::cell(td, 0), util::Table::cell(t, 0),
                       fmt_transient(fd), fmt_transient(gm)});
      }
      table.print(std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}
