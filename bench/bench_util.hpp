// Shared helpers for the bench scenarios: standard sweep configurations and
// the quick-run budget.  Every scenario emits the series of one paper
// figure (mean latency ± 95% CI per point); absolute values need not match
// the paper's testbed, the shape is what gets compared in EXPERIMENTS.md.
#pragma once

#include <vector>

#include "core/runner.hpp"

namespace fdgm::bench {

/// Replica count / sample budget, overridable for quick smoke runs.
struct BenchBudget {
  std::size_t replicas = 3;
  std::size_t samples = 400;
  double warmup_ms = 1500.0;
  double max_time_ms = 90000.0;
};

/// The smoke-run budget (`--set quick=1`): fewer replicas and samples,
/// shorter horizons.  Scenarios additionally read the `quick` flag to trim
/// their sweeps (fewer group sizes / loads).
inline void shrink_for_quick(BenchBudget& b) {
  b.replicas = 2;
  b.samples = 150;
  b.warmup_ms = 800.0;
  b.max_time_ms = 30000.0;
}

inline core::SteadyConfig steady_config(double throughput, const BenchBudget& b) {
  core::SteadyConfig sc;
  sc.throughput = throughput;
  sc.samples = b.samples;
  sc.warmup_ms = b.warmup_ms;
  sc.max_time_ms = b.max_time_ms;
  sc.replicas = b.replicas;
  return sc;
}

inline core::SimConfig sim_config(core::Algorithm a, int n, double lambda = 1.0,
                                  std::uint64_t seed = 1000) {
  core::SimConfig cfg;
  cfg.algorithm = a;
  cfg.n = n;
  cfg.lambda = lambda;
  cfg.seed = seed;
  return cfg;
}

/// The throughput sweep used by the latency-vs-throughput figures.
inline std::vector<double> throughput_sweep(int n) {
  if (n >= 7) return {10, 50, 100, 200, 300, 400, 500};
  return {10, 50, 100, 200, 300, 400, 500, 600, 700};
}

}  // namespace fdgm::bench
