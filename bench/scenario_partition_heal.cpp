// Partition-heal scenario (beyond the paper's figures): a 5-process system
// splits into a majority {p0,p1,p2} — which keeps the coordinator /
// sequencer — and a minority {p3,p4}; cross-partition messages are held by
// the transport and delivered at the heal (quasi-reliable channels).  The
// table reports the latency of messages broadcast before the split, during
// it, and after the heal.  Expected shape: the majority side keeps
// working, so the "split" column grows roughly with the partition length
// (minority messages wait for the heal) and the "healed" column returns to
// the "pre" level; FD and GM behave alike — no failure detector fires, so
// GM pays no view change.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr int kN = 5;
constexpr double kPhase = 1500.0;  // pre / split / healed phase length (ms)

util::Table run_partition_heal(const ScenarioContext& ctx) {
  util::Table table({"n", "T [1/s]", "FD pre [ms]", "ci95", "FD split [ms]", "ci95",
                     "FD healed [ms]", "ci95", "GM pre [ms]", "ci95", "GM split [ms]", "ci95",
                     "GM healed [ms]", "ci95"});
  std::vector<RowJob> jobs;
  for (double t : {50.0, 100.0, 200.0}) {
    jobs.push_back([t, &ctx] {
      const double t0 = ctx.budget.warmup_ms;
      const double t1 = t0 + kPhase;  // split
      const double t2 = t1 + kPhase;  // heal
      const double t3 = t2 + kPhase;  // end of measurement

      fault::FaultEvent split;
      split.kind = fault::FaultKind::kPartition;
      split.groups = {{0, 1, 2}, {3, 4}};
      split.at = t1;
      split.until = t2;

      core::WindowedConfig wc;
      wc.throughput = t;
      wc.t_end = t3;
      wc.windows = {{t0, t1}, {t1, t2}, {t2, t3}};
      wc.replicas = ctx.budget.replicas;

      std::vector<std::string> row{std::to_string(kN), util::Table::cell(t, 0)};
      for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
        core::SimConfig cfg = sim_config_ctx(algo, kN, ctx);
        cfg.faults.add(split);
        add_window_cells(row, core::run_windowed(cfg, wc));
      }
      return row;
    });
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"partition_heal",
                             "Partition-heal scenario: latency before/during/after a "
                             "minority-majority split",
                             "beyond paper", run_partition_heal, {}}};

}  // namespace
}  // namespace fdgm::bench
