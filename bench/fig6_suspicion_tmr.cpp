// Figure 6: latency vs mistake recurrence time TMR in the suspicion-steady
// scenario, with TM = 0 (point mistakes).  Four panels: (n, T) in
// {3,7} x {10,300} 1/s.  Expected shape: the GM algorithm is far more
// sensitive to wrong suspicions than the FD algorithm; the curves only
// meet at very large TMR.
#include <iostream>

#include "bench_util.hpp"

using namespace fdgm;
using namespace fdgm::bench;

int main() {
  const BenchBudget b = budget_from_env();
  print_header("Suspicion-steady scenario: latency vs TMR (TM = 0)", "Fig. 6");
  const std::vector<double> tmr_sweep{10, 30, 100, 300, 1000, 10000, 100000};
  for (int n : {3, 7}) {
    for (double t : {10.0, 300.0}) {
      util::Table table({"n", "T [1/s]", "TMR [ms]", "FD [ms]", "GM [ms]"});
      for (double tmr : tmr_sweep) {
        auto fd_cfg = sim_config(core::Algorithm::kFd, n);
        auto gm_cfg = sim_config(core::Algorithm::kGm, n);
        for (auto* cfg : {&fd_cfg, &gm_cfg}) {
          cfg->fd_params.wrong_suspicions = true;
          cfg->fd_params.mistake_recurrence = tmr;
          cfg->fd_params.mistake_duration = 0.0;
        }
        auto sc = steady_config(t, b);
        // Let rare mistakes show up: cover at least ~20 recurrence
        // periods, capped to keep the bench fast.
        sc.min_window_ms = std::min(20.0 * tmr, 20000.0);
        const auto fd = core::run_steady(fd_cfg, sc);
        const auto gm = core::run_steady(gm_cfg, sc);
        table.add_row({std::to_string(n), util::Table::cell(t, 0), util::Table::cell(tmr, 0),
                       fmt_point(fd), fmt_point(gm)});
      }
      table.print(std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}
