// Unified benchmark driver: one binary for every paper figure and ablation.
//
//   fdgm_bench --list                    enumerate registered scenarios
//   fdgm_bench fig4 fig5                 run selected scenarios
//   fdgm_bench --all --jobs 8            run everything on 8 workers
//   fdgm_bench fig5 --format csv         machine-readable output
//   fdgm_bench --all --out results/      one file per scenario
//   fdgm_bench fig5 --set quick=1        smoke budget; per-scenario keys
//                                        via repeated --set (see --list)
//
// Results are bit-identical for every --jobs value (replica seeding and
// row order do not depend on the worker count).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/observer.hpp"
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

enum class Format { kTable, kCsv, kJson };

struct Options {
  std::vector<std::string> scenarios;
  std::size_t jobs = 1;
  bool jobs_explicit = false;  // --jobs passed on the command line
  std::uint64_t seed = 1000;
  Format format = Format::kTable;
  std::string out_dir;  // empty: stdout
  bool list = false;
  bool all = false;
  bool profile = false;
  bool transport = false;
  bool batch = false;
  std::string trace_path;    // --trace: Chrome trace-event JSON export
  std::string metrics_path;  // --metrics: windowed counter CSV export
  std::string metrics_per_node_path;  // --metrics-per-node: per-node CSV
  std::string critical_path_path;     // --critical-path: causal decomposition CSV
  bool faults_inline = false;  // --faults given (conflicts with --faults-file)
  bool faults_file = false;    // --faults-file given
  fault::FaultSchedule faults;
  sim::SchedulerConfig scheduler;
  std::map<std::string, std::string> params;  // --set key=value
};

/// Driver-level --set keys, consumed before any scenario runs.
const std::vector<ParamSpec>& driver_params() {
  static const std::vector<ParamSpec> specs{
      {"quick", "1 = smoke budget (fewer replicas/samples, trimmed sweeps)"},
      {"replicas", "independent replica runs per point (default 3, quick: 2)"},
      {"samples", "target measured messages per replica (default 400, quick: 150)"},
  };
  return specs;
}

/// Peak resident set size of this process in MB (0 when unavailable).
double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

void print_usage() {
  std::cout <<
      "Usage: fdgm_bench [options] [scenario ...]\n"
      "\n"
      "Options:\n"
      "  --list            list registered scenarios and exit\n"
      "  --all             run every registered scenario\n"
      "  --jobs N          worker threads (default 1, 0 = hardware threads)\n"
      "  --seed S          base seed (default 1000; replica r uses S+r)\n"
      "  --format F        table | csv | json (default table)\n"
      "  --out DIR         write one <scenario>.<ext> file per scenario\n"
      "  --faults SPEC     inject a fault schedule into every simulation, e.g.\n"
      "                    \"crash p0 @500; partition {0,1|2} @1000 heal @3000\"\n"
      "                    (events: crash/recover p<i> @t; partition {..|..} @t\n"
      "                    heal @t; apartition p<i>,..->p<j>,.. @t heal @t;\n"
      "                    loss <rate> @t for <dur>; delay x<f> @t for <dur>;\n"
      "                    storm p<i>,.. @t for <dur>; limp p<i> x<k> @t for\n"
      "                    <dur>; drift p<i> x<k> @t for <dur>; flap\n"
      "                    p<i>->p<j> period <ms> duty <d> @t for <dur>;\n"
      "                    corrupt <rate> [p<i>,..->p<j>,..] @t for <dur>;\n"
      "                    see README)\n"
      "  --faults-file F   like --faults, but read the schedule from file F\n"
      "                    (newlines are treated as whitespace; ';' still\n"
      "                    separates events).  Mutually exclusive with\n"
      "                    --faults.\n"
      "  --backend B       scheduler backend: heap | wheel | par (default\n"
      "                    heap); bit-identical results, different speed\n"
      "                    profiles (par = intra-run parallel rounds)\n"
      "  --threads N       worker threads per simulation under --backend par\n"
      "                    (default 0 = hardware threads; clamped so that\n"
      "                    --jobs x --threads never oversubscribes)\n"
      "  --transport       arm the retransmission transport in every\n"
      "                    simulation (sequence-numbered per-pair channels\n"
      "                    that survive 'loss' faults; bit-identical to the\n"
      "                    default when no loss fault is scheduled)\n"
      "  --batch           arm submission batching + adaptive flow control\n"
      "                    in every simulation (abcast::BatchConfig defaults)\n"
      "  --trace FILE      arm observability (src/obs/) and export the first\n"
      "                    simulation's per-message lifecycle spans as Chrome\n"
      "                    trace-event JSON (open in Perfetto).  Forces --jobs 1\n"
      "                    so the exported run is deterministic.  Armed\n"
      "                    observability is passive: results are unchanged.\n"
      "  --metrics FILE    like --trace, but exports the windowed per-layer\n"
      "                    counter time-series as CSV; combinable with --trace\n"
      "  --metrics-per-node FILE\n"
      "                    like --metrics, but one row per node per window\n"
      "                    (t_ms, node, counters)\n"
      "  --critical-path FILE\n"
      "                    arm causal tracing and export the per-message\n"
      "                    critical-path decomposition as CSV: every ns of a\n"
      "                    message's latency attributed to one cause (credit\n"
      "                    wait, batch wait, CPU queue, wire, NACK / timer /\n"
      "                    backoff recovery, sequencer queue, consensus round,\n"
      "                    reorder hold), plus per-cause aggregate footers.\n"
      "                    Also enriches --trace JSON with flow events whose\n"
      "                    dominant_cause annotates each message.  Forces\n"
      "                    --jobs 1 like --trace.\n"
      "  --set key=value   scenario/driver parameter, repeatable.  Driver\n"
      "                    keys: quick=1 (smoke budget), replicas=N,\n"
      "                    samples=N; per-scenario keys are listed by --list.\n"
      "                    Unknown keys are rejected.\n"
      "  --profile         append per-scenario wall-clock, events/sec and\n"
      "                    peak-RSS columns to every table (these columns\n"
      "                    are machine-dependent, unlike the latencies)\n"
      "  --help            this text\n";
}

/// Strict unsigned parse: the whole string must be digits.
bool parse_u64(const char* s, std::uint64_t& out) {
  if (!*s) return false;
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

void print_list() {
  const auto& all = ScenarioRegistry::instance().all();
  std::printf("%-24s %-12s %s\n", "name", "figure", "title");
  for (const Scenario& s : all) {
    std::printf("%-24s %-12s %s\n", s.name.c_str(), s.figure.c_str(), s.title.c_str());
    for (const ParamSpec& p : s.params)
      std::printf("%24s   --set %s: %s\n", "", p.key.c_str(), p.help.c_str());
  }
  std::printf("\ndriver-level --set keys (any scenario):\n");
  for (const ParamSpec& p : driver_params())
    std::printf("  --set %s: %s\n", p.key.c_str(), p.help.c_str());
}

/// Returns false (after printing to stderr) on a malformed command line.
bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "fdgm_bench: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      opt.list = true;
    } else if (a == "--all") {
      opt.all = true;
    } else if (a == "--profile") {
      opt.profile = true;
    } else if (a == "--transport") {
      opt.transport = true;
    } else if (a == "--batch") {
      opt.batch = true;
    } else if (a == "--set") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::cerr << "fdgm_bench: --set expects key=value, got '" << v << "'\n";
        return false;
      }
      opt.params[std::string(v, eq)] = std::string(eq + 1);
    } else if (a == "--help" || a == "-h") {
      print_usage();
      std::exit(0);
    } else if (a == "--jobs" || a == "-j") {
      const char* v = need_value(i, a.c_str());
      std::uint64_t n = 0;
      if (!v) return false;
      if (!parse_u64(v, n)) {
        std::cerr << "fdgm_bench: --jobs needs a number, got '" << v << "'\n";
        return false;
      }
      opt.jobs = static_cast<std::size_t>(n);
      opt.jobs_explicit = true;
    } else if (a == "--seed") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      if (!parse_u64(v, opt.seed)) {
        std::cerr << "fdgm_bench: --seed needs a number, got '" << v << "'\n";
        return false;
      }
    } else if (a == "--format") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      if (std::strcmp(v, "table") == 0)
        opt.format = Format::kTable;
      else if (std::strcmp(v, "csv") == 0)
        opt.format = Format::kCsv;
      else if (std::strcmp(v, "json") == 0)
        opt.format = Format::kJson;
      else {
        std::cerr << "fdgm_bench: unknown format '" << v << "' (table|csv|json)\n";
        return false;
      }
    } else if (a == "--out") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.out_dir = v;
    } else if (a == "--trace") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.trace_path = v;
    } else if (a == "--metrics") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.metrics_path = v;
    } else if (a == "--metrics-per-node") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.metrics_per_node_path = v;
    } else if (a == "--critical-path") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.critical_path_path = v;
    } else if (a == "--backend") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      if (std::strcmp(v, "heap") == 0)
        opt.scheduler.backend = sim::SchedulerBackend::kHeap;
      else if (std::strcmp(v, "wheel") == 0)
        opt.scheduler.backend = sim::SchedulerBackend::kWheel;
      else if (std::strcmp(v, "par") == 0)
        opt.scheduler.backend = sim::SchedulerBackend::kParallel;
      else {
        std::cerr << "fdgm_bench: unknown backend '" << v << "' (heap|wheel|par)\n";
        return false;
      }
    } else if (a == "--threads") {
      const char* v = need_value(i, a.c_str());
      std::uint64_t n = 0;
      if (!v) return false;
      if (!parse_u64(v, n)) {
        std::cerr << "fdgm_bench: --threads needs a number, got '" << v << "'\n";
        return false;
      }
      opt.scheduler.threads = static_cast<int>(n);
    } else if (a == "--faults") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.faults_inline = true;
      try {
        opt.faults = fault::FaultSchedule::parse(v);
      } catch (const std::invalid_argument& e) {
        std::cerr << "fdgm_bench: " << e.what() << '\n';
        return false;
      }
    } else if (a == "--faults-file") {
      const char* v = need_value(i, a.c_str());
      if (!v) return false;
      opt.faults_file = true;
      std::ifstream file(v);
      if (!file) {
        std::cerr << "fdgm_bench: cannot read --faults-file '" << v << "'\n";
        return false;
      }
      std::string spec((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
      try {
        opt.faults = fault::FaultSchedule::parse(spec);
      } catch (const std::invalid_argument& e) {
        std::cerr << "fdgm_bench: " << v << ": " << e.what() << '\n';
        return false;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "fdgm_bench: unknown option '" << a << "' (see --help)\n";
      return false;
    } else {
      opt.scenarios.push_back(a);
    }
  }
  if (opt.faults_inline && opt.faults_file) {
    std::cerr << "fdgm_bench: --faults and --faults-file are mutually exclusive\n";
    return false;
  }
  return true;
}

void render(const util::Table& table, Format f, std::ostream& os) {
  switch (f) {
    case Format::kTable:
      table.print(os);
      break;
    case Format::kCsv:
      table.print_csv(os);
      break;
    case Format::kJson:
      table.print_json(os);
      break;
  }
}

const char* extension(Format f) {
  switch (f) {
    case Format::kCsv:
      return "csv";
    case Format::kJson:
      return "json";
    case Format::kTable:
      break;
  }
  return "txt";
}

int run(const Options& opt) {
  const auto& registry = ScenarioRegistry::instance();

  std::vector<const Scenario*> selected;
  if (opt.all) {
    for (const Scenario& s : registry.all())
      if (s.in_all) selected.push_back(&s);
  } else {
    for (const std::string& name : opt.scenarios) {
      const Scenario* s = registry.find(name);
      if (s == nullptr) {
        std::cerr << "fdgm_bench: unknown scenario '" << name << "'; available:\n";
        for (const Scenario& known : registry.all()) std::cerr << "  " << known.name << '\n';
        return 2;
      }
      selected.push_back(s);
    }
  }
  if (selected.empty()) {
    print_usage();
    std::cout << '\n';
    print_list();
    return 2;
  }

  // Every --set key must be declared, either by the driver or by some
  // selected scenario — a typo'd key aborts instead of silently running
  // the default sweep.
  for (const auto& [key, value] : opt.params) {
    bool known = false;
    for (const ParamSpec& p : driver_params()) known |= p.key == key;
    for (const Scenario* s : selected)
      for (const ParamSpec& p : s->params) known |= p.key == key;
    if (!known) {
      std::cerr << "fdgm_bench: no selected scenario accepts --set " << key
                << "; accepted keys:\n";
      for (const ParamSpec& p : driver_params())
        std::cerr << "  " << p.key << " (driver): " << p.help << '\n';
      for (const Scenario* s : selected)
        for (const ParamSpec& p : s->params)
          std::cerr << "  " << p.key << " (" << s->name << "): " << p.help << '\n';
      return 2;
    }
  }

  std::size_t jobs = opt.jobs;
  const bool exporting = !opt.trace_path.empty() || !opt.metrics_path.empty() ||
                         !opt.metrics_per_node_path.empty() ||
                         !opt.critical_path_path.empty();
  if (exporting) {
    // The first armed Observer constructed in the process claims the
    // export; with one worker that is deterministically replica 0 of the
    // first point of the first selected scenario.  The override is silent
    // unless the user explicitly asked for a conflicting job count.
    if (opt.jobs_explicit && opt.jobs != 1)
      std::cerr << "fdgm_bench: --trace/--metrics/--critical-path force --jobs 1 "
                   "for a deterministic export (overriding --jobs "
                << opt.jobs << ")\n";
    jobs = 1;
    obs::Observer::set_export_paths(opt.trace_path, opt.metrics_path,
                                    opt.metrics_per_node_path, opt.critical_path_path);
  }

  ScenarioContext ctx;
  ctx.params = opt.params;
  ctx.jobs = jobs;
  ctx.seed = opt.seed;
  ctx.faults = opt.faults;
  ctx.scheduler = opt.scheduler;
  ctx.transport.enabled = opt.transport;
  ctx.batching.enabled = opt.batch;
  ctx.obs.enabled = exporting;
  ctx.obs.causal = !opt.critical_path_path.empty();
  ctx.obs.per_node_metrics = !opt.metrics_per_node_path.empty();
  ctx.profile = opt.profile;
  try {
    if (ctx.param_flag("quick")) shrink_for_quick(ctx.budget);
    ctx.budget.replicas = ctx.param_u64("replicas", ctx.budget.replicas, 1, 64);
    ctx.budget.samples = ctx.param_u64("samples", ctx.budget.samples, 10, 100000);
  } catch (const std::invalid_argument& e) {
    std::cerr << "fdgm_bench: " << e.what() << '\n';
    return 2;
  }

  // One worker pool for the whole invocation: every scenario's fill_rows
  // reuses the same threads instead of spawning a pool per sweep.
  std::unique_ptr<core::ThreadPool> pool;
  if (const std::size_t workers = core::effective_jobs(jobs); workers > 1) {
    pool = std::make_unique<core::ThreadPool>(workers);
    ctx.pool = pool.get();
  }

  // --profile under --backend par: the per-simulation worker count the
  // runs will resolve to (SimRun divides the hardware budget by the
  // replica pool width so --jobs x --threads never oversubscribes).
  const bool par = opt.scheduler.backend == sim::SchedulerBackend::kParallel;
  std::size_t resolved_threads = 1;
  if (par) {
    const std::size_t hw = core::effective_jobs(0);
    const std::size_t width = pool ? pool->workers() : 1;
    resolved_threads = opt.scheduler.threads <= 0
                           ? std::max<std::size_t>(1, hw / width)
                           : static_cast<std::size_t>(opt.scheduler.threads);
  }

  for (const Scenario* s : selected) {
    const std::uint64_t events0 = core::total_events_executed();
    const auto wall0 = std::chrono::steady_clock::now();
    util::Table table = [&]() -> util::Table {
      try {
        return s->run(ctx);
      } catch (const std::exception& e) {
        std::cerr << "fdgm_bench: scenario '" << s->name << "' failed: " << e.what() << '\n';
        std::exit(1);
      }
    }();
    if (opt.profile) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
      const std::uint64_t events = core::total_events_executed() - events0;
      table.add_column("wall [s]", util::Table::cell(wall_s, 2));
      table.add_column("events", std::to_string(events));
      table.add_column("Mev/s", util::Table::cell(
                                    static_cast<double>(events) / wall_s / 1e6, 2));
      table.add_column("peak RSS [MB]", util::Table::cell(peak_rss_mb(), 1));
      table.add_column("threads", std::to_string(resolved_threads));
      if (par) {
        // Wall baseline: the same scenario, same budget/params, on the
        // sequential heap backend.  The result tables are bit-identical
        // (that is the kParallel contract); only the wall differs.
        ScenarioContext heap_ctx = ctx;
        heap_ctx.scheduler.backend = sim::SchedulerBackend::kHeap;
        const auto h0 = std::chrono::steady_clock::now();
        try {
          (void)s->run(heap_ctx);
        } catch (const std::exception& e) {
          std::cerr << "fdgm_bench: heap baseline for '" << s->name << "' failed: " << e.what()
                    << '\n';
          std::exit(1);
        }
        const double heap_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - h0).count();
        table.add_column("speedup vs heap", util::Table::cell(heap_s / wall_s, 2));
      } else {
        table.add_column("speedup vs heap", "-");
      }
    }
    if (!opt.out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(opt.out_dir, ec);
      if (ec) {
        std::cerr << "fdgm_bench: cannot create --out directory '" << opt.out_dir
                  << "': " << ec.message() << '\n';
        return 2;
      }
      const std::string path = opt.out_dir + "/" + s->name + "." + extension(opt.format);
      std::ofstream file(path);
      if (!file) {
        std::cerr << "fdgm_bench: cannot write " << path << '\n';
        return 2;
      }
      render(table, opt.format, file);
      std::cout << s->name << " -> " << path << '\n';
    } else {
      if (opt.format == Format::kTable) {
        std::cout << "==============================================================\n"
                  << s->title << "\n(reproduces " << s->figure
                  << "; latency in ms, 95% CI over replicas)\n"
                  << "==============================================================\n";
      }
      render(table, opt.format, std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}

}  // namespace
}  // namespace fdgm::bench

int main(int argc, char** argv) {
  fdgm::bench::Options opt;
  if (!fdgm::bench::parse_args(argc, argv, opt)) return 2;
  if (opt.list) {
    fdgm::bench::print_list();
    return 0;
  }
  return fdgm::bench::run(opt);
}
