// Figure 6: latency vs mistake recurrence time TMR in the suspicion-steady
// scenario, with TM = 0 (point mistakes).  Four panels: (n, T) in
// {3,7} x {10,300} 1/s.  Expected shape: the GM algorithm is far more
// sensitive to wrong suspicions than the FD algorithm; the curves only
// meet at very large TMR.
#include <algorithm>

#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_fig6(const ScenarioContext& ctx) {
  util::Table table({"n", "T [1/s]", "TMR [ms]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  const std::vector<double> tmr_sweep{10, 30, 100, 300, 1000, 10000, 100000};
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double t : {10.0, 300.0}) {
      for (double tmr : tmr_sweep) {
        jobs.push_back([n, t, tmr, &ctx] {
          auto fd_cfg = sim_config_ctx(core::Algorithm::kFd, n, ctx);
          auto gm_cfg = sim_config_ctx(core::Algorithm::kGm, n, ctx);
          for (auto* cfg : {&fd_cfg, &gm_cfg}) {
            cfg->fd_params.wrong_suspicions = true;
            cfg->fd_params.mistake_recurrence = tmr;
            cfg->fd_params.mistake_duration = 0.0;
          }
          auto sc = steady_from_ctx(t, ctx);
          // Let rare mistakes show up: cover at least ~20 recurrence
          // periods, capped to keep the bench fast.
          sc.min_window_ms = std::min(20.0 * tmr, 20000.0);
          const auto fd = core::run_steady(fd_cfg, sc);
          const auto gm = core::run_steady(gm_cfg, sc);
          std::vector<std::string> row{std::to_string(n), util::Table::cell(t, 0),
                                       util::Table::cell(tmr, 0)};
          add_point_cells(row, fd);
          add_point_cells(row, gm);
          return row;
        });
      }
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"fig6", "Suspicion-steady scenario: latency vs TMR (TM = 0)",
                             "Fig. 6", run_fig6, {}}};

}  // namespace
}  // namespace fdgm::bench
