// Large-n scaling (beyond the paper): the paper evaluates n = 3..7; this
// family sweeps n in {8, 16, 32, 64, 128} for both stacks, in steady state
// and with one crashed process, and reports the abcast latency *and* the
// simulator's own wall-clock throughput (millions of scheduler events per
// second) — the number the scheduler-backend choice (--backend heap|wheel)
// moves.
//
// The runs are FD-heavy by construction: the QoS model keeps one
// wrong-suspicion renewal timer alive per ordered process pair, so the
// scheduler carries an O(n^2) timer population (16k pending timers at
// n = 128) underneath the hot O(1 ms) protocol events.  TMR is scaled
// with n(n-1) to keep the *system-wide* mistake rate constant across the
// sweep (a fixed per-pair TMR would melt the GM stack at n = 128 with a
// view change every few ms, which is a different experiment).
//
// Column layout: the deterministic columns (latency) come first and the
// wall-clock-dependent ones (Mev/s) last, so the CI can diff the
// deterministic prefix bit-for-bit across scheduler backends.
//
// The "steady-b" rows at the end arm submission batching and push the
// group-size axis past the unbatched ceiling — appended after the
// original sweep so the previous CSV is a byte prefix of the new one.
// `--set ns=...` / `--set batch_ns=...` override either axis (profiling
// and the perf CI pin single sizes that way).
#include <chrono>

#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr double kThroughput = 100.0;  // msgs/s across the group
constexpr double kSystemMistakeGap = 5000.0;  // one wrong suspicion per 5 s system-wide

struct Measured {
  core::PointResult point;
  double wall_s = 0.0;
};

Measured run_measured(const core::SimConfig& cfg, const core::SteadyConfig& sc,
                      const std::vector<net::ProcessId>& crashes) {
  const auto t0 = std::chrono::steady_clock::now();
  Measured m;
  m.point = core::run_steady(cfg, sc, crashes);
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return m;
}

util::Table run_scale(const ScenarioContext& ctx) {
  util::Table table({"n", "mode", "T [1/s]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95",
                     "FD Mev/s", "GM Mev/s"});
  const bool quick = ctx.param_flag("quick");
  const std::vector<int> ns =
      ctx.param_ints("ns", quick ? std::vector<int>{8, 16, 32}
                                 : std::vector<int>{8, 16, 32, 64, 128},
                     2, 4096);
  // Batched extension: larger groups than the unbatched ceiling, steady
  // only (one crashed process is the lossy family's subject).
  const std::vector<int> ns_b =
      ctx.param_ints("batch_ns", quick ? std::vector<int>{32}
                                       : std::vector<int>{128, 192},
                     2, 4096);

  struct Point {
    int n;
    const char* mode;
    bool batch;
  };
  std::vector<Point> points;
  for (int n : ns)
    for (const char* mode : {"steady", "crash"}) points.push_back({n, mode, false});
  for (int n : ns_b) points.push_back({n, "steady-b", true});

  std::vector<RowJob> jobs;
  for (const Point& pt : points) {
    {
      const int n = pt.n;
      const char* mode = pt.mode;
      const bool batch = pt.batch;
      const bool crash = mode[0] == 'c';
      jobs.push_back([n, crash, batch, mode, &ctx] {
        core::SteadyConfig sc = steady_from_ctx(kThroughput, ctx);
        if (crash) sc.warmup_ms += 1000.0;  // absorb detection + view change

        const std::vector<net::ProcessId> crashes =
            crash ? std::vector<net::ProcessId>{n - 1} : std::vector<net::ProcessId>{};

        std::vector<std::string> row{std::to_string(n), mode,
                                     util::Table::cell(kThroughput, 0)};
        std::vector<std::string> rates;
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, n, ctx);
          cfg.batching.enabled = batch;  // per-row, independent of --batch
          cfg.fd_params.detection_time = 30.0;
          // O(n^2) renewal timers; system-wide mistake rate held constant
          // across n (see file comment).
          cfg.fd_params.wrong_suspicions = true;
          cfg.fd_params.mistake_recurrence =
              static_cast<double>(n) * static_cast<double>(n - 1) * kSystemMistakeGap;
          cfg.fd_params.mistake_duration = 50.0;
          const Measured m = run_measured(cfg, sc, crashes);
          add_point_cells(row, m.point);
          rates.push_back(util::Table::cell(
              static_cast<double>(m.point.events) / m.wall_s / 1e6, 2));
        }
        row.insert(row.end(), rates.begin(), rates.end());
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"scale_throughput",
                             "Large-n scaling: abcast latency and simulator events/sec, "
                             "n up to 192 (batched), steady and crash",
                             "beyond paper",
                             run_scale,
                             {{"ns", "comma-separated unbatched group sizes (2..4096)"},
                              {"batch_ns",
                               "comma-separated batched steady-b group sizes (2..4096)"}}}};

}  // namespace
}  // namespace fdgm::bench
