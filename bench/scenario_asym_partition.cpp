// Asymmetric-partition scenario (beyond the paper): a 5-process system
// suffers a *directed* link cut — one side can still be heard but cannot
// hear (or vice versa) — which no symmetric partition can express.  Two
// directions are swept:
//
//   maj->min   {p0,p1,p2} cannot reach {p3,p4}: the minority keeps
//              injecting messages (they reach the sequencer/coordinator
//              and get ordered promptly) but learns the order only at the
//              heal;
//   min->maj   {p3,p4} cannot reach {p0,p1,p2}: minority-origin messages
//              wait for the heal before they can even be ordered, so the
//              "cut" window carries their full outage latency.
//
// No failure detector fires either way (detection is QoS-driven, not
// message-driven), so both stacks ride the cut without view changes —
// the latency asymmetry between the two directions is pure transport
// topology.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr int kN = 5;
constexpr double kPhase = 1500.0;  // pre / cut / healed phase length (ms)

util::Table run_asym(const ScenarioContext& ctx) {
  util::Table table({"n", "dir", "T [1/s]", "FD pre [ms]", "ci95", "FD cut [ms]", "ci95",
                     "FD healed [ms]", "ci95", "GM pre [ms]", "ci95", "GM cut [ms]", "ci95",
                     "GM healed [ms]", "ci95"});
  std::vector<RowJob> jobs;
  for (const char* dir : {"maj->min", "min->maj"}) {
    for (double t : {50.0, 100.0}) {
      jobs.push_back([dir, t, &ctx] {
        const bool maj_to_min = dir[1] == 'a';  // "maj->min" vs "min->maj"
        const double t0 = ctx.budget.warmup_ms;
        const double t1 = t0 + kPhase;  // cut
        const double t2 = t1 + kPhase;  // heal
        const double t3 = t2 + kPhase;  // end of measurement

        fault::FaultEvent cut;
        cut.kind = fault::FaultKind::kAsymPartition;
        const std::vector<net::ProcessId> maj{0, 1, 2};
        const std::vector<net::ProcessId> min{3, 4};
        cut.groups = maj_to_min ? std::vector<std::vector<net::ProcessId>>{maj, min}
                                : std::vector<std::vector<net::ProcessId>>{min, maj};
        cut.at = t1;
        cut.until = t2;

        core::WindowedConfig wc;
        wc.throughput = t;
        wc.t_end = t3;
        wc.windows = {{t0, t1}, {t1, t2}, {t2, t3}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(kN), dir, util::Table::cell(t, 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, kN, ctx);
          cfg.faults.add(cut);
          add_window_cells(row, core::run_windowed(cfg, wc));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"asym_partition",
                             "Asymmetric partition: latency before/during/after a "
                             "one-way majority/minority link cut",
                             "beyond paper", run_asym, {}}};

}  // namespace
}  // namespace fdgm::bench
