// Figure 7: latency vs mistake duration TM in the suspicion-steady
// scenario, with TMR fixed per panel exactly as in the paper:
//   (n=3, T=10):  TMR = 1000 ms     (n=7, T=10):  TMR = 10000 ms
//   (n=3, T=300): TMR = 10000 ms    (n=7, T=300): TMR = 100000 ms
// Expected shape: the GM algorithm is sensitive to TM as well (repeated
// exclusions while the mistake lasts), the FD algorithm much less so.
#include <algorithm>

#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_fig7(const ScenarioContext& ctx) {
  struct Panel {
    int n;
    double t;
    double tmr;
  };
  const std::vector<Panel> panels{
      {3, 10.0, 1000.0}, {7, 10.0, 10000.0}, {3, 300.0, 10000.0}, {7, 300.0, 100000.0}};
  const std::vector<double> tm_sweep{1, 10, 100, 300, 1000};

  util::Table table(
      {"n", "T [1/s]", "TMR [ms]", "TM [ms]", "FD [ms]", "FD ci95", "GM [ms]", "GM ci95"});
  std::vector<RowJob> jobs;
  for (const Panel& p : panels) {
    for (double tm : tm_sweep) {
      jobs.push_back([p, tm, &ctx] {
        auto fd_cfg = sim_config_ctx(core::Algorithm::kFd, p.n, ctx);
        auto gm_cfg = sim_config_ctx(core::Algorithm::kGm, p.n, ctx);
        for (auto* cfg : {&fd_cfg, &gm_cfg}) {
          cfg->fd_params.wrong_suspicions = true;
          cfg->fd_params.mistake_recurrence = p.tmr;
          cfg->fd_params.mistake_duration = tm;
        }
        auto sc = steady_from_ctx(p.t, ctx);
        sc.min_window_ms = std::min(10.0 * p.tmr, 25000.0);
        const auto fd = core::run_steady(fd_cfg, sc);
        const auto gm = core::run_steady(gm_cfg, sc);
        std::vector<std::string> row{std::to_string(p.n), util::Table::cell(p.t, 0),
                                     util::Table::cell(p.tmr, 0), util::Table::cell(tm, 0)};
        add_point_cells(row, fd);
        add_point_cells(row, gm);
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"fig7", "Suspicion-steady scenario: latency vs TM (TMR fixed)",
                             "Fig. 7", run_fig7, {}}};

}  // namespace
}  // namespace fdgm::bench
