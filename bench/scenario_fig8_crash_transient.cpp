// Figure 8: latency overhead (latency - TD) vs throughput in the
// crash-transient scenario: the coordinator / sequencer p0 crashes at tc
// and another process A-broadcasts the probe message at tc.  The paper
// reports the worst sender; TD in {0, 10, 100} ms.  Expected shape: both
// overheads are a few times the normal-steady latency; FD < GM.
#include <algorithm>

#include "scenario.hpp"

namespace fdgm::bench {
namespace {

util::Table run_fig8(const ScenarioContext& ctx) {
  util::Table table({"n", "TD [ms]", "T [1/s]", "FD overhead [ms]", "FD ci95",
                     "GM overhead [ms]", "GM ci95"});
  const std::vector<double> sweep{10, 50, 100, 200, 300, 400};
  std::vector<RowJob> jobs;
  for (int n : {3, 7}) {
    for (double td : {0.0, 10.0, 100.0}) {
      for (double t : sweep) {
        jobs.push_back([n, td, t, &ctx] {
          core::TransientConfig tc;
          tc.throughput = t;
          tc.crash = 0;
          tc.replicas = std::max<std::size_t>(6, ctx.budget.replicas * 2);
          auto fd_cfg = sim_config_ctx(core::Algorithm::kFd, n, ctx);
          auto gm_cfg = sim_config_ctx(core::Algorithm::kGm, n, ctx);
          fd_cfg.fd_params.detection_time = td;
          gm_cfg.fd_params.detection_time = td;
          auto fd = core::run_transient_worst_sender(fd_cfg, tc);
          auto gm = core::run_transient_worst_sender(gm_cfg, tc);
          // Overhead = latency - TD (the latency always exceeds TD, §7).
          if (fd.stable) fd.latency.mean -= td;
          if (gm.stable) gm.latency.mean -= td;
          std::vector<std::string> row{std::to_string(n), util::Table::cell(td, 0),
                                       util::Table::cell(t, 0)};
          add_point_cells(row, fd);
          add_point_cells(row, gm);
          return row;
        });
      }
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"fig8", "Crash-transient scenario: latency overhead vs throughput",
                             "Fig. 8", run_fig8, {}}};

}  // namespace
}  // namespace fdgm::bench
