// Combined partition + churn scenario (beyond the paper): a
// minority/majority split overlaps crash/recovery churn — the composition
// the ROADMAP's "richer fault scenarios" item asked for.  While the
// system is split {p0,p1,p2 | p3,p4}, the minority member p4 crashes; its
// detection triggers a view change (GM) / coordinator bookkeeping (FD)
// that the majority side must complete *without* the minority's votes —
// {p0,p1,p2} is exactly the 3-of-5 quorum, so progress continues but with
// zero slack.  After the heal, p4 recovers and rejoins (GM: JOIN + state
// transfer; FD: log sync), immediately followed by a second churn cycle
// of majority member p1.  The table reports the latency of messages
// broadcast before the split, during it, and from the heal through the
// post-heal churn.
#include "scenario.hpp"

namespace fdgm::bench {
namespace {

constexpr int kN = 5;
constexpr double kPhase = 1500.0;  // pre / split / post phase length (ms)

util::Table run_partition_churn(const ScenarioContext& ctx) {
  util::Table table({"n", "TD [ms]", "T [1/s]", "FD pre [ms]", "ci95", "FD split [ms]", "ci95",
                     "FD post [ms]", "ci95", "GM pre [ms]", "ci95", "GM split [ms]", "ci95",
                     "GM post [ms]", "ci95"});
  std::vector<RowJob> jobs;
  for (double td : {30.0, 100.0}) {
    for (double t : {50.0, 100.0}) {
      jobs.push_back([td, t, &ctx] {
        const double t0 = ctx.budget.warmup_ms;
        const double t1 = t0 + kPhase;          // split
        const double t2 = t1 + kPhase;          // heal
        const double t3 = t2 + 2.0 * kPhase;    // end of measurement

        fault::FaultSchedule faults;
        fault::FaultEvent split;
        split.kind = fault::FaultKind::kPartition;
        split.groups = {{0, 1, 2}, {3, 4}};
        split.at = t1;
        split.until = t2;
        faults.add(split);
        // Minority member crashes mid-split, rejoins after the heal.
        fault::FaultEvent crash4;
        crash4.kind = fault::FaultKind::kCrash;
        crash4.process = 4;
        crash4.at = t1 + 400.0;
        faults.add(crash4);
        fault::FaultEvent rec4;
        rec4.kind = fault::FaultKind::kRecover;
        rec4.process = 4;
        rec4.at = t2 + 300.0;
        faults.add(rec4);
        // Post-heal churn of a majority member overlaps p4's rejoin.
        fault::FaultEvent crash1;
        crash1.kind = fault::FaultKind::kCrash;
        crash1.process = 1;
        crash1.at = t2 + 700.0;
        faults.add(crash1);
        fault::FaultEvent rec1;
        rec1.kind = fault::FaultKind::kRecover;
        rec1.process = 1;
        rec1.at = t2 + 1400.0;
        faults.add(rec1);

        core::WindowedConfig wc;
        wc.throughput = t;
        wc.t_end = t3;
        wc.windows = {{t0, t1}, {t1, t2}, {t2, t3}};
        wc.replicas = ctx.budget.replicas;

        std::vector<std::string> row{std::to_string(kN), util::Table::cell(td, 0),
                                     util::Table::cell(t, 0)};
        for (core::Algorithm algo : {core::Algorithm::kFd, core::Algorithm::kGm}) {
          core::SimConfig cfg = sim_config_ctx(algo, kN, ctx);
          cfg.fd_params.detection_time = td;
          cfg.faults.merge(faults);
          add_window_cells(row, core::run_windowed(cfg, wc));
        }
        return row;
      });
    }
  }
  fill_rows(table, ctx, jobs);
  return table;
}

const ScenarioRegistrar reg{{"partition_churn",
                             "Partition overlapping crash/recovery churn: minority crash "
                             "mid-split, post-heal rejoin plus majority churn",
                             "beyond paper", run_partition_churn, {}}};

}  // namespace
}  // namespace fdgm::bench
